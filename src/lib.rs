#![warn(missing_docs)]

//! Root package of the Nested Enclave reproduction workspace: the
//! examples and cross-crate integration tests live here, re-exporting
//! the two crates they exercise most. Start at `README.md` for the map
//! of the workspace, `ARCHITECTURE.md` for how the crates fit together
//! (§8 covers the `ne-cluster` shard layer), and `EXPERIMENTS.md` for
//! regenerating every table and figure.

pub use ne_core;
pub use ne_sgx;
