//! Root package: examples and integration tests live here.
pub use ne_core;
pub use ne_sgx;
