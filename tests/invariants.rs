//! Property-based tests of the § VII-A security invariants.
//!
//! The key invariant of SGX's TLB-based access control is that *the TLB
//! only ever contains valid translations* (§ II-B). We drive the machine
//! with arbitrary interleavings of benign and hostile operations — enclave
//! transitions, memory accesses, OS remappings, evictions — and audit
//! every core's TLB against invariants 1–4 after every step.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::NestedApp;
use ne_core::transitions::{neenter, neexit};
use ne_sgx::addr::{Ppn, VirtAddr, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::epcm::PagePerms;
use ne_sgx::instr::EvictedPage;
use ne_sgx::ProcessId;
use proptest::prelude::*;

/// One step of the adversarial schedule.
#[derive(Debug, Clone)]
enum Op {
    Read {
        core: usize,
        region: u8,
        offset: u16,
    },
    Write {
        core: usize,
        region: u8,
        offset: u16,
    },
    Eenter {
        core: usize,
        which: u8,
    },
    Eexit {
        core: usize,
    },
    Neenter {
        core: usize,
        which: u8,
    },
    Neexit {
        core: usize,
    },
    Aex {
        core: usize,
    },
    OsRemap {
        victim: u8,
        target: u8,
    },
    OsUnmap {
        victim: u8,
    },
    FlushTlb {
        core: usize,
    },
    Evict {
        which: u8,
        page: u8,
    },
    Reload,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3usize, 0..4u8, 0..2048u16).prop_map(|(core, region, offset)| Op::Read {
            core,
            region,
            offset
        }),
        (0..3usize, 0..4u8, 0..2048u16).prop_map(|(core, region, offset)| Op::Write {
            core,
            region,
            offset
        }),
        (0..3usize, 0..3u8).prop_map(|(core, which)| Op::Eenter { core, which }),
        (0..3usize).prop_map(|core| Op::Eexit { core }),
        (0..3usize, 0..2u8).prop_map(|(core, which)| Op::Neenter { core, which }),
        (0..3usize).prop_map(|core| Op::Neexit { core }),
        (0..3usize).prop_map(|core| Op::Aex { core }),
        (0..4u8, 0..4u8).prop_map(|(victim, target)| Op::OsRemap { victim, target }),
        (0..4u8).prop_map(|victim| Op::OsUnmap { victim }),
        (0..3usize).prop_map(|core| Op::FlushTlb { core }),
        (0..2u8, 0..2u8).prop_map(|(which, page)| Op::Evict { which, page }),
        Just(Op::Reload),
    ]
}

struct Fixture {
    app: NestedApp,
    /// region index → a base VA (0: hub heap, 1: inner-a heap, 2: inner-b
    /// heap, 3: untrusted buffer).
    regions: Vec<VirtAddr>,
    names: Vec<&'static str>,
    evicted: Vec<EvictedPage>,
}

fn fixture() -> Fixture {
    let mut app = NestedApp::new(HwConfig::small());
    app.load(
        EnclaveImage::new("hub", b"provider")
            .heap_pages(4)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b"] {
        app.load(
            EnclaveImage::new(n, b"tenant")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        app.associate(n, "hub").unwrap();
    }
    let untrusted = app.untrusted(0, |cx| cx.alloc_untrusted(2));
    let regions = vec![
        app.layout("hub").unwrap().heap_base,
        app.layout("a").unwrap().heap_base,
        app.layout("b").unwrap().heap_base,
        untrusted,
    ];
    Fixture {
        app,
        regions,
        names: vec!["hub", "a", "b"],
        evicted: Vec::new(),
    }
}

impl Fixture {
    fn apply(&mut self, op: &Op) {
        let m = &mut self.app.machine;
        match op {
            Op::Read {
                core,
                region,
                offset,
            } => {
                let va = self.regions[*region as usize].add(*offset as u64);
                let _ = m.read(*core, va, 8);
            }
            Op::Write {
                core,
                region,
                offset,
            } => {
                let va = self.regions[*region as usize].add(*offset as u64);
                let _ = m.write(*core, va, b"propdata");
            }
            Op::Eenter { core, which } => {
                let name = self.names[*which as usize];
                let l = self.app.layout(name).unwrap();
                let _ = self.app.machine.eenter(*core, l.eid, l.base);
            }
            Op::Eexit { core } => {
                let _ = m.eexit(*core);
            }
            Op::Neenter { core, which } => {
                let name = self.names[1 + *which as usize];
                let l = self.app.layout(name).unwrap();
                let _ = neenter(&mut self.app.machine, *core, l.eid, l.base);
            }
            Op::Neexit { core } => {
                let _ = neexit(m, *core);
            }
            Op::Aex { core } => {
                let _ = m.aex(*core);
            }
            Op::OsRemap { victim, target } => {
                // Hostile OS: point the victim region's page at the frame
                // backing the target region (or at a random frame).
                let victim_va = self.regions[*victim as usize];
                let target_va = self.regions[*target as usize];
                if let Some(pte) = m.os_lookup(ProcessId(0), target_va.vpn()) {
                    m.os_map(ProcessId(0), victim_va.vpn(), pte.ppn, PagePerms::RW);
                } else {
                    m.os_map(ProcessId(0), victim_va.vpn(), Ppn(3), PagePerms::RW);
                }
                // A *hostile* OS also wouldn't flush TLBs... but stale
                // entries were validated when inserted, which is exactly
                // what the invariant audit checks.
            }
            Op::OsUnmap { victim } => {
                let va = self.regions[*victim as usize];
                m.os_unmap(ProcessId(0), va.vpn());
            }
            Op::FlushTlb { core } => m.flush_tlb(*core),
            Op::Evict { which, page } => {
                let name = self.names[1 + *which as usize];
                let l = self.app.layout(name).unwrap();
                let va = l.heap_base.add(*page as u64 * PAGE_SIZE as u64);
                if let Ok(blob) = self.app.machine.ewb(l.eid, va) {
                    self.evicted.push(blob);
                }
            }
            Op::Reload => {
                if let Some(blob) = self.evicted.pop() {
                    let _ = self.app.machine.eldu(&blob);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants 1–4 hold after every step of any adversarial schedule.
    #[test]
    fn tlb_only_ever_contains_valid_translations(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut fx = fixture();
        for (i, op) in ops.iter().enumerate() {
            fx.apply(op);
            fx.app.machine.audit_epcm().unwrap();
            if let Err(violation) = fx.app.machine.audit_tlbs() {
                panic!("after step {i} ({op:?}): {violation}");
            }
        }
    }

    /// Whatever the schedule, untrusted reads of enclave heaps never see
    /// anything but abort-page ones.
    #[test]
    fn untrusted_never_reads_enclave_plaintext(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fx = fixture();
        // Plant recognizable plaintext in each enclave heap.
        for (i, name) in ["hub", "a", "b"].iter().enumerate() {
            let l = fx.app.layout(name).unwrap();
            fx.app.machine.eenter(2, l.eid, l.base).unwrap();
            fx.app.machine.write(2, l.heap_base, b"PLAINTEXT!").unwrap();
            fx.app.machine.eexit(2).unwrap();
            let _ = i;
        }
        for op in &ops {
            fx.apply(op);
        }
        // Force core 2 out of any enclave state the schedule left it in.
        while fx.app.machine.current_enclave(2).is_some() {
            let _ = fx.app.machine.eexit(2);
        }
        for region in 0..3 {
            let va = fx.regions[region];
            if let Ok(data) = fx.app.machine.read(2, va, 10) {
                prop_assert!(
                    data == vec![0xFF; 10] || data != b"PLAINTEXT!",
                    "untrusted read returned enclave plaintext"
                );
            }
        }
    }

    /// Peer inner enclaves never read each other's *data*, no matter the
    /// preceding schedule. (The OS can always redirect a virtual address
    /// to untrusted memory — it owns translation — but it can never make
    /// the peer's EPC contents come back.)
    #[test]
    fn peer_isolation_is_schedule_independent(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fx = fixture();
        let a = fx.app.layout("a").unwrap();
        let b = fx.app.layout("b").unwrap();
        // Plant b's secret before the hostile schedule runs.
        fx.app.machine.eenter(2, b.eid, b.base).unwrap();
        fx.app.machine.write(2, b.heap_base, b"B-SECRET").unwrap();
        fx.app.machine.eexit(2).unwrap();
        for op in &ops {
            fx.apply(op);
        }
        // Put core 2 cleanly inside enclave a.
        while fx.app.machine.current_enclave(2).is_some() {
            let _ = fx.app.machine.eexit(2);
        }
        if fx.app.machine.eenter(2, a.eid, a.base).is_ok() {
            if let Ok(data) = fx.app.machine.read(2, b.heap_base, 8) {
                prop_assert_ne!(data, b"B-SECRET".to_vec(), "inner a read peer b's secret");
            }
        }
    }

    /// Cycle attribution is *total* under any schedule, hostile or not:
    /// every per-core category breakdown sums to that core's clock, the
    /// core clocks sum to the machine total, and the per-enclave buckets
    /// (untrusted included) partition the same total. Unlike the at-rest
    /// transition-pairing identities — which raw instruction sequences can
    /// legitimately violate by EEXITing straight out of an inner enclave —
    /// these must hold after *every single step*.
    #[test]
    fn cycle_attribution_is_total_under_any_schedule(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut fx = fixture();
        for (i, op) in ops.iter().enumerate() {
            fx.apply(op);
            let m = fx.app.machine.metrics();
            let total = m.total_cycles;
            let core_sum: u64 = m.cores.iter().map(|c| c.cycles).sum();
            prop_assert_eq!(core_sum, total, "core clocks diverged after step {} ({:?})", i, op);
            for c in &m.cores {
                prop_assert_eq!(
                    c.breakdown.total(), c.cycles,
                    "core {} breakdown diverged after step {} ({:?})", c.core, i, op
                );
            }
            let enclave_sum: u64 = m.enclaves.iter().map(|e| e.breakdown.total()).sum();
            prop_assert_eq!(enclave_sum, total, "enclave buckets diverged after step {} ({:?})", i, op);
            prop_assert_eq!(
                m.trace_recorded, m.trace_dropped + m.trace_retained as u64,
                "trace accounting diverged after step {} ({:?})", i, op
            );
        }
    }
}
