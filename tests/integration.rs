//! Cross-crate integration tests: whole-application flows spanning the
//! simulator, the nested-enclave extension, and the case-study substrates.

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{EnclaveCtx, NestedApp, TrustedFn};
use ne_sgx::config::HwConfig;
use ne_sgx::PAGE_SIZE;
use std::sync::Arc;

fn tf(
    f: impl Fn(&mut EnclaveCtx<'_>, &[u8]) -> ne_sgx::Result<Vec<u8>> + Send + Sync + 'static,
) -> TrustedFn {
    Arc::new(f)
}

/// An end-to-end three-tier flow: untrusted client → inner application →
/// outer library → untrusted ocall, and all the way back.
#[test]
fn three_tier_call_chain() {
    let mut app = NestedApp::new(HwConfig::testbed());
    app.register_untrusted(
        "log_line",
        Arc::new(|_cx, args| {
            let mut v = b"logged:".to_vec();
            v.extend_from_slice(args);
            Ok(v)
        }),
    );
    let lib = EnclaveImage::new("lib", b"vendor").edl(Edl::new().ocall("log_line"));
    app.load(
        lib,
        [(
            "compress".to_string(),
            tf(|cx, args| {
                // The outer library may itself ocall out to the untrusted
                // world (e.g. for I/O).
                let logged = cx.ocall("log_line", b"compress called")?;
                assert!(logged.starts_with(b"logged:"));
                Ok(args.iter().step_by(2).copied().collect())
            }),
        )],
    )
    .unwrap();
    let inner =
        EnclaveImage::new("app", b"owner").edl(Edl::new().ecall("handle").n_ocall("compress"));
    app.load(
        inner,
        [(
            "handle".to_string(),
            tf(|cx, args| cx.n_ocall("compress", args)),
        )],
    )
    .unwrap();
    app.associate("app", "lib").unwrap();
    let out = app.ecall(0, "app", "handle", b"abcdef").unwrap();
    assert_eq!(out, b"ace");
    let s = app.machine.stats();
    assert_eq!(s.n_ocalls, 1);
    assert_eq!(s.n_ecalls, 1);
    assert!(s.ocalls >= 2, "lib ocall + final eexits");
    app.machine.audit_tlbs().unwrap();
}

/// Deep nesting (§ VIII): three levels, with the innermost reading the
/// outermost's memory through the chain under a depth-3 validator.
#[test]
fn three_level_nesting_end_to_end() {
    use ne_core::validate::NestedValidator;
    use ne_sgx::machine::Machine;
    let machine = Machine::with_validator(
        HwConfig::testbed(),
        Box::new(NestedValidator::with_max_depth(3)),
    );
    let mut app = NestedApp::with_machine(machine);
    for name in ["l0", "l1", "l2"] {
        app.load(
            EnclaveImage::new(name, b"owner")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
    }
    app.associate("l1", "l0").unwrap();
    app.associate("l2", "l1").unwrap();
    // Write into l0's heap from l0 itself.
    let l0 = app.eid("l0").unwrap();
    let l0_base = app.layout("l0").unwrap().base;
    let l0_heap = app.layout("l0").unwrap().heap_base;
    app.machine.eenter(0, l0, l0_base).unwrap();
    app.machine.write(0, l0_heap, b"root data").unwrap();
    app.machine.eexit(0).unwrap();
    // The innermost reads it through the two-hop chain.
    let l2 = app.eid("l2").unwrap();
    let l2_base = app.layout("l2").unwrap().base;
    app.machine.eenter(0, l2, l2_base).unwrap();
    assert_eq!(app.machine.read(0, l0_heap, 9).unwrap(), b"root data");
    app.machine.audit_tlbs().unwrap();
    app.machine.eexit(0).unwrap();
    // But l0 can read neither l1 nor l2.
    let l2_heap = app.layout("l2").unwrap().heap_base;
    app.machine.eenter(0, l0, l0_base).unwrap();
    assert!(app.machine.read(0, l2_heap, 1).is_err());
    app.machine.eexit(0).unwrap();
}

/// The EPC paging path works for enclaves that are part of a nested tree,
/// including the § IV-E shootdown of inner-enclave threads.
#[test]
fn eviction_of_shared_outer_under_load() {
    let mut app = NestedApp::new(HwConfig::testbed());
    app.load(
        EnclaveImage::new("outer", b"o")
            .heap_pages(4)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    app.load(
        EnclaveImage::new("inner", b"i")
            .heap_pages(2)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    app.associate("inner", "outer").unwrap();
    let outer = app.layout("outer").unwrap();
    let inner = app.layout("inner").unwrap();
    // Inner thread caches translations into the outer heap.
    app.machine.eenter(1, inner.eid, inner.base).unwrap();
    app.machine
        .write(1, outer.heap_base, b"will be evicted")
        .unwrap();
    // OS evicts that outer page: the inner thread must take an AEX.
    let blob = app.machine.ewb(outer.eid, outer.heap_base).unwrap();
    assert_eq!(app.machine.current_enclave(1), None);
    assert!(app.machine.stats().aexes >= 1);
    // Reload and resume; the data survives.
    app.machine.eldu(&blob).unwrap();
    app.machine.eresume(1, inner.eid, inner.base).unwrap();
    assert_eq!(
        app.machine.read(1, outer.heap_base, 15).unwrap(),
        b"will be evicted"
    );
    app.machine.audit_tlbs().unwrap();
}

/// Two inner enclaves exchange a multi-page payload through the outer
/// channel with full integrity.
#[test]
fn bulk_transfer_through_outer_channel() {
    use ne_core::channel::OuterChannel;
    let mut app = NestedApp::new(HwConfig::testbed());
    app.load(
        EnclaveImage::new("hub", b"p")
            .heap_pages(40)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b"] {
        app.load(EnclaveImage::new(n, b"t").heap_pages(2).edl(Edl::new()), [])
            .unwrap();
        app.associate(n, "hub").unwrap();
    }
    let payload: Vec<u8> = (0..3 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    let ch = {
        let mut cx = app.enclave_ctx(0, "a");
        let ch = OuterChannel::create(&mut cx, "hub", 4 * PAGE_SIZE as u64 + 128).unwrap();
        ch.send(&mut cx, &payload).unwrap();
        ch
    };
    app.machine.eexit(0).unwrap();
    let b = app.layout("b").unwrap();
    app.machine.eenter(0, b.eid, b.base).unwrap();
    {
        let mut cx = app.enclave_ctx(0, "b");
        let got = ch.recv(&mut cx).unwrap().unwrap();
        assert_eq!(got, payload);
    }
    app.machine.eexit(0).unwrap();
}

/// Sealing: data sealed by an enclave with EGETKEY survives teardown and
/// reload of the *same* enclave, and is unreadable by a different enclave.
#[test]
fn sealing_across_reload() {
    use ne_crypto::gcm::AesGcm;
    use ne_sgx::attest::KeyPolicy;
    let mut app = NestedApp::new(HwConfig::testbed());
    let img = EnclaveImage::new("sealer", b"owner")
        .heap_pages(1)
        .edl(Edl::new());
    app.load(img.clone(), []).unwrap();
    let l = app.layout("sealer").unwrap();
    app.machine.eenter(0, l.eid, l.base).unwrap();
    let key = app.machine.egetkey(0, KeyPolicy::SealToEnclave).unwrap();
    app.machine.eexit(0).unwrap();
    let sealed = AesGcm::new(&key).seal(&[0; 12], b"persist me", b"");
    // Tear down and load an identical enclave at the same address.
    app.machine.eremove(l.eid).unwrap();
    let l2 = ne_core::load_image(&mut app.machine, ne_sgx::ProcessId(0), l.base, &img).unwrap();
    app.machine.eenter(0, l2.eid, l2.base).unwrap();
    let key2 = app.machine.egetkey(0, KeyPolicy::SealToEnclave).unwrap();
    app.machine.eexit(0).unwrap();
    assert_eq!(key, key2, "same identity ⇒ same sealing key");
    assert_eq!(
        AesGcm::new(&key2).open(&[0; 12], &sealed, b"").unwrap(),
        b"persist me"
    );
    // A different enclave derives a different key.
    let other = EnclaveImage::new("other", b"owner")
        .heap_pages(1)
        .edl(Edl::new());
    app.load(other, []).unwrap();
    let lo = app.layout("other").unwrap();
    app.machine.eenter(0, lo.eid, lo.base).unwrap();
    let key3 = app.machine.egetkey(0, KeyPolicy::SealToEnclave).unwrap();
    app.machine.eexit(0).unwrap();
    assert_ne!(key, key3);
    assert!(AesGcm::new(&key3).open(&[0; 12], &sealed, b"").is_err());
}

/// The full mini-TLS stack over enclave boundaries: handshake, then
/// records served by the nested echo app.
#[test]
fn tls_stack_end_to_end() {
    use ne_tls::echo::{run_echo, EchoConfig};
    use ne_tls::handshake::{perform_handshake, CipherSuite, ClientHello, TLS_VERSION};
    let hello = ClientHello {
        version: TLS_VERSION,
        suites: vec![CipherSuite::Aes128Gcm],
        random: [3; 16],
    };
    let keys = perform_handshake(b"master", &hello, [4; 16]).unwrap();
    assert_eq!(keys.suite, CipherSuite::Aes128Gcm);
    let run = run_echo(&EchoConfig {
        chunk_size: 512,
        num_messages: 10,
        nested: true,
        trace: false,
        reference: false,
    })
    .unwrap();
    assert_eq!(run.bytes, 5120);
    assert!(run.n_ocalls > 0);
}

/// Multi-core: two cores run two different inner enclaves concurrently
/// against the same shared outer enclave.
#[test]
fn concurrent_inners_on_two_cores() {
    let mut app = NestedApp::new(HwConfig::testbed());
    app.load(
        EnclaveImage::new("hub", b"p").heap_pages(8).edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b"] {
        app.load(EnclaveImage::new(n, b"t").heap_pages(2).edl(Edl::new()), [])
            .unwrap();
        app.associate(n, "hub").unwrap();
    }
    let a = app.layout("a").unwrap();
    let b = app.layout("b").unwrap();
    let hub_heap = app.layout("hub").unwrap().heap_base;
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine.eenter(1, b.eid, b.base).unwrap();
    // Both cores touch the shared outer heap — distinct offsets.
    app.machine.write(0, hub_heap, b"from-a").unwrap();
    app.machine.write(1, hub_heap.add(64), b"from-b").unwrap();
    assert_eq!(app.machine.read(1, hub_heap, 6).unwrap(), b"from-a");
    assert_eq!(app.machine.read(0, hub_heap.add(64), 6).unwrap(), b"from-b");
    // But neither can read the other's private heap.
    assert!(app.machine.read(0, b.heap_base, 1).is_err());
    assert!(app.machine.read(1, a.heap_base, 1).is_err());
    app.machine.audit_tlbs().unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.eexit(1).unwrap();
}
