//! Property test: the metrics checker accepts every run the runtime can
//! produce.
//!
//! [`MachineMetrics::check`] encodes identities that must hold for *any*
//! workload driven through the SDK runtime — per-core category breakdowns
//! summing to the core clocks, per-enclave attribution summing to the
//! machine total, and (at rest) enclave entries pairing with exits. Here
//! we generate random call mixes over a nested outer/inner application —
//! computation, ocalls, n_ocalls, enclave memory traffic — and assert the
//! checker stays green after every completed top-level ecall.
//!
//! [`MachineMetrics::check`]: ne_sgx::metrics::MachineMetrics::check

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedFn};
use ne_sgx::config::HwConfig;
use ne_sgx::profile::{Histogram, ProfileEvent};
use proptest::prelude::*;
use std::sync::Arc;

/// One top-level ecall of the generated workload.
#[derive(Debug, Clone)]
enum Call {
    /// Pure in-enclave computation of the given cost.
    Compute { cycles: u64 },
    /// An ocall to the untrusted sink with a payload of the given size.
    Ocall { len: u16 },
    /// An n_ocall from the inner enclave down into the outer library.
    NOcall { len: u16 },
    /// Enclave heap traffic (write + read back) of the given size.
    Memory { len: u16 },
}

fn call_strategy() -> impl Strategy<Value = Call> {
    prop_oneof![
        (1..50_000u64).prop_map(|cycles| Call::Compute { cycles }),
        (0..1024u16).prop_map(|len| Call::Ocall { len }),
        (0..1024u16).prop_map(|len| Call::NOcall { len }),
        (1..2048u16).prop_map(|len| Call::Memory { len }),
    ]
}

/// Outer "lib" + inner "app" with one trusted function per [`Call`] kind.
fn build_app() -> NestedApp {
    let mut app = NestedApp::new(HwConfig::small());
    app.register_untrusted(
        "sink",
        Arc::new(|_cx: &mut ne_core::runtime::UntrustedCtx<'_>, args: &[u8]| Ok(args.to_vec()))
            as UntrustedFn,
    );
    let lib = EnclaveImage::new("lib", b"provider")
        .heap_pages(4)
        .edl(Edl::new());
    let lib_work: TrustedFn = Arc::new(|cx, args| {
        cx.charge(100 + args.len() as u64);
        Ok(args.to_vec())
    });
    app.load(lib, [("lib_work".to_string(), lib_work)])
        .expect("load lib");
    let inner = EnclaveImage::new("app", b"tenant").heap_pages(8).edl(
        Edl::new()
            .ecall("compute")
            .ecall("do_ocall")
            .ecall("do_nocall")
            .ecall("do_memory")
            .ocall("sink")
            .n_ocall("lib_work"),
    );
    let compute: TrustedFn = Arc::new(|cx, args| {
        let cycles = u64::from_le_bytes(args[..8].try_into().expect("8 bytes"));
        cx.charge(cycles);
        Ok(vec![])
    });
    let do_ocall: TrustedFn = Arc::new(|cx, args| cx.ocall("sink", args));
    let do_nocall: TrustedFn = Arc::new(|cx, args| cx.n_ocall("lib_work", args));
    let do_memory: TrustedFn = Arc::new(|cx, args| {
        let hb = cx.heap_base_of("app")?;
        cx.write(hb, args)?;
        cx.read(hb, args.len())
    });
    app.load(
        inner,
        [
            ("compute".to_string(), compute),
            ("do_ocall".to_string(), do_ocall),
            ("do_nocall".to_string(), do_nocall),
            ("do_memory".to_string(), do_memory),
        ],
    )
    .expect("load app");
    app.associate("app", "lib").expect("NASSO");
    app
}

fn issue(app: &mut NestedApp, call: &Call) {
    match call {
        Call::Compute { cycles } => {
            app.ecall(0, "app", "compute", &cycles.to_le_bytes())
                .expect("compute ecall");
        }
        Call::Ocall { len } => {
            app.ecall(0, "app", "do_ocall", &vec![0x11; *len as usize])
                .expect("ocall ecall");
        }
        Call::NOcall { len } => {
            app.ecall(0, "app", "do_nocall", &vec![0x22; *len as usize])
                .expect("n_ocall ecall");
        }
        Call::Memory { len } => {
            app.ecall(0, "app", "do_memory", &vec![0x33; *len as usize])
                .expect("memory ecall");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every random runtime-driven workload keeps all counter identities.
    #[test]
    fn checker_accepts_every_valid_run(calls in prop::collection::vec(call_strategy(), 1..24)) {
        let mut app = build_app();
        for (i, call) in calls.iter().enumerate() {
            issue(&mut app, call);
            let m = app.machine.metrics();
            if let Err(e) = m.check() {
                panic!("after call {i} ({call:?}): {e}");
            }
        }
        // The final snapshot is at rest: transitions must pair up exactly.
        let m = app.machine.metrics();
        prop_assert_eq!(m.cores_in_enclave_mode, 0);
        prop_assert_eq!(m.stats.ecalls + m.stats.eresumes, m.stats.ocalls + m.stats.aexes);
        prop_assert_eq!(m.stats.n_ecalls, m.stats.n_ocalls);
    }

    /// `reset_metrics` at rest re-arms the identities rather than breaking
    /// them: a second measured phase checks clean on its own.
    #[test]
    fn checker_survives_mid_run_reset(
        first in prop::collection::vec(call_strategy(), 1..8),
        second in prop::collection::vec(call_strategy(), 1..8),
    ) {
        let mut app = build_app();
        for call in &first {
            issue(&mut app, call);
        }
        app.machine.reset_metrics();
        prop_assert_eq!(app.machine.total_cycles(), 0);
        for call in &second {
            issue(&mut app, call);
        }
        let m = app.machine.metrics();
        prop_assert!(m.check().is_ok(), "post-reset phase: {:?}", m.check());
    }
}

/// Builds a histogram from a sample population.
fn hist_of(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Count identity: for any population, `count == len == Σ buckets`,
    /// and the summary reproduces the exact count/sum/min/max.
    #[test]
    fn histogram_count_identity(samples in prop::collection::vec(any::<u64>(), 0..256)) {
        let h = hist_of(&samples);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.bucket_total(), h.count());
        let s = h.summary();
        prop_assert_eq!(s.count, h.count());
        let exact_sum = samples.iter().fold(0u64, |a, &v| a.saturating_add(v));
        prop_assert_eq!(s.sum, exact_sum);
        prop_assert_eq!(s.min, samples.iter().min().copied().unwrap_or(0));
        prop_assert_eq!(s.max, samples.iter().max().copied().unwrap_or(0));
    }

    /// Percentile monotonicity: `min ≤ p50 ≤ p90 ≤ p99 ≤ max` for any
    /// non-empty population, and every quantile stays inside `[min, max]`.
    #[test]
    fn histogram_percentiles_monotone(samples in prop::collection::vec(any::<u64>(), 1..256)) {
        let h = hist_of(&samples);
        let s = h.summary();
        prop_assert!(s.min <= s.p50, "min {} > p50 {}", s.min, s.p50);
        prop_assert!(s.p50 <= s.p90, "p50 {} > p90 {}", s.p50, s.p90);
        prop_assert!(s.p90 <= s.p99, "p90 {} > p99 {}", s.p90, s.p99);
        prop_assert!(s.p99 <= s.max, "p99 {} > max {}", s.p99, s.max);
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = h.percentile(q);
            prop_assert!(s.min <= p && p <= s.max, "p{q} = {p} outside [{}, {}]", s.min, s.max);
        }
    }

    /// Merge is associative and commutative, the empty histogram is its
    /// identity, and merging never loses samples.
    #[test]
    fn histogram_merge_associative(
        a in prop::collection::vec(any::<u64>(), 0..64),
        b in prop::collection::vec(any::<u64>(), 0..64),
        c in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        // (a ⊕ b) ⊕ c
        let mut ab_c = ha.clone();
        ab_c.merge(&hb);
        ab_c.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Commutativity.
        let mut ba = hb.clone();
        ba.merge(&ha);
        let mut ab = ha.clone();
        ab.merge(&hb);
        prop_assert_eq!(&ab, &ba);
        // Identity and sample conservation.
        let mut with_empty = ha.clone();
        with_empty.merge(&Histogram::new());
        prop_assert_eq!(&with_empty, &ha);
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
        // A merge result is itself a valid population for the percentile
        // invariant — merged summaries stay monotone.
        let s = ab_c.summary();
        prop_assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    /// The boundary histograms agree with the span counters for any
    /// runtime-driven workload: their combined sample count equals
    /// `Stats::span_closes`, and the per-event counts match the
    /// transition counters ([`MachineMetrics::check`] asserts the same
    /// identities; here they are exercised against random call mixes).
    #[test]
    fn boundary_histograms_match_stats(calls in prop::collection::vec(call_strategy(), 1..16)) {
        let mut app = build_app();
        for call in &calls {
            issue(&mut app, call);
        }
        let m = app.machine.metrics();
        let count_of = |event| {
            m.profile
                .iter()
                .filter(|e| e.event == event)
                .map(|e| e.hist.count())
                .sum::<u64>()
        };
        let boundary: u64 = ProfileEvent::BOUNDARY.into_iter().map(count_of).sum();
        prop_assert_eq!(boundary, m.stats.span_closes);
        // Per-event counters must match the microarchitectural histograms.
        // (No such identity holds for stats.ecalls vs the ecall histogram:
        // returning from an ocall is an EENTER too, so the transition
        // counter can exceed the span count.)
        prop_assert_eq!(count_of(ProfileEvent::TlbMiss), m.stats.tlb_misses);
        prop_assert_eq!(count_of(ProfileEvent::Aex), m.stats.aexes);
        prop_assert_eq!(count_of(ProfileEvent::Eresume), m.stats.eresumes);
        prop_assert_eq!(
            count_of(ProfileEvent::Paging),
            m.stats.ewb_pages + m.stats.eldu_pages
        );
    }
}
