//! Property test: the metrics checker accepts every run the runtime can
//! produce.
//!
//! [`MachineMetrics::check`] encodes identities that must hold for *any*
//! workload driven through the SDK runtime — per-core category breakdowns
//! summing to the core clocks, per-enclave attribution summing to the
//! machine total, and (at rest) enclave entries pairing with exits. Here
//! we generate random call mixes over a nested outer/inner application —
//! computation, ocalls, n_ocalls, enclave memory traffic — and assert the
//! checker stays green after every completed top-level ecall.
//!
//! [`MachineMetrics::check`]: ne_sgx::metrics::MachineMetrics::check

use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedFn};
use ne_sgx::config::HwConfig;
use proptest::prelude::*;
use std::sync::Arc;

/// One top-level ecall of the generated workload.
#[derive(Debug, Clone)]
enum Call {
    /// Pure in-enclave computation of the given cost.
    Compute { cycles: u64 },
    /// An ocall to the untrusted sink with a payload of the given size.
    Ocall { len: u16 },
    /// An n_ocall from the inner enclave down into the outer library.
    NOcall { len: u16 },
    /// Enclave heap traffic (write + read back) of the given size.
    Memory { len: u16 },
}

fn call_strategy() -> impl Strategy<Value = Call> {
    prop_oneof![
        (1..50_000u64).prop_map(|cycles| Call::Compute { cycles }),
        (0..1024u16).prop_map(|len| Call::Ocall { len }),
        (0..1024u16).prop_map(|len| Call::NOcall { len }),
        (1..2048u16).prop_map(|len| Call::Memory { len }),
    ]
}

/// Outer "lib" + inner "app" with one trusted function per [`Call`] kind.
fn build_app() -> NestedApp {
    let mut app = NestedApp::new(HwConfig::small());
    app.register_untrusted(
        "sink",
        Arc::new(|_cx: &mut ne_core::runtime::UntrustedCtx<'_>, args: &[u8]| Ok(args.to_vec()))
            as UntrustedFn,
    );
    let lib = EnclaveImage::new("lib", b"provider")
        .heap_pages(4)
        .edl(Edl::new());
    let lib_work: TrustedFn = Arc::new(|cx, args| {
        cx.charge(100 + args.len() as u64);
        Ok(args.to_vec())
    });
    app.load(lib, [("lib_work".to_string(), lib_work)])
        .expect("load lib");
    let inner = EnclaveImage::new("app", b"tenant").heap_pages(8).edl(
        Edl::new()
            .ecall("compute")
            .ecall("do_ocall")
            .ecall("do_nocall")
            .ecall("do_memory")
            .ocall("sink")
            .n_ocall("lib_work"),
    );
    let compute: TrustedFn = Arc::new(|cx, args| {
        let cycles = u64::from_le_bytes(args[..8].try_into().expect("8 bytes"));
        cx.charge(cycles);
        Ok(vec![])
    });
    let do_ocall: TrustedFn = Arc::new(|cx, args| cx.ocall("sink", args));
    let do_nocall: TrustedFn = Arc::new(|cx, args| cx.n_ocall("lib_work", args));
    let do_memory: TrustedFn = Arc::new(|cx, args| {
        let hb = cx.heap_base_of("app")?;
        cx.write(hb, args)?;
        cx.read(hb, args.len())
    });
    app.load(
        inner,
        [
            ("compute".to_string(), compute),
            ("do_ocall".to_string(), do_ocall),
            ("do_nocall".to_string(), do_nocall),
            ("do_memory".to_string(), do_memory),
        ],
    )
    .expect("load app");
    app.associate("app", "lib").expect("NASSO");
    app
}

fn issue(app: &mut NestedApp, call: &Call) {
    match call {
        Call::Compute { cycles } => {
            app.ecall(0, "app", "compute", &cycles.to_le_bytes())
                .expect("compute ecall");
        }
        Call::Ocall { len } => {
            app.ecall(0, "app", "do_ocall", &vec![0x11; *len as usize])
                .expect("ocall ecall");
        }
        Call::NOcall { len } => {
            app.ecall(0, "app", "do_nocall", &vec![0x22; *len as usize])
                .expect("n_ocall ecall");
        }
        Call::Memory { len } => {
            app.ecall(0, "app", "do_memory", &vec![0x33; *len as usize])
                .expect("memory ecall");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every random runtime-driven workload keeps all counter identities.
    #[test]
    fn checker_accepts_every_valid_run(calls in prop::collection::vec(call_strategy(), 1..24)) {
        let mut app = build_app();
        for (i, call) in calls.iter().enumerate() {
            issue(&mut app, call);
            let m = app.machine.metrics();
            if let Err(e) = m.check() {
                panic!("after call {i} ({call:?}): {e}");
            }
        }
        // The final snapshot is at rest: transitions must pair up exactly.
        let m = app.machine.metrics();
        prop_assert_eq!(m.cores_in_enclave_mode, 0);
        prop_assert_eq!(m.stats.ecalls + m.stats.eresumes, m.stats.ocalls + m.stats.aexes);
        prop_assert_eq!(m.stats.n_ecalls, m.stats.n_ocalls);
    }

    /// `reset_metrics` at rest re-arms the identities rather than breaking
    /// them: a second measured phase checks clean on its own.
    #[test]
    fn checker_survives_mid_run_reset(
        first in prop::collection::vec(call_strategy(), 1..8),
        second in prop::collection::vec(call_strategy(), 1..8),
    ) {
        let mut app = build_app();
        for call in &first {
            issue(&mut app, call);
        }
        app.machine.reset_metrics();
        prop_assert_eq!(app.machine.total_cycles(), 0);
        for call in &second {
            issue(&mut app, call);
        }
        let m = app.machine.metrics();
        prop_assert!(m.check().is_ok(), "post-reset phase: {:?}", m.check());
    }
}
