//! Security test matrix: every attack the paper's Table VII and § VII
//! discuss, executed against the simulated hardware.
//!
//! | attack | expected outcome |
//! |---|---|
//! | OpenSSL bug leaks app memory (§ VI-A) | blocked by inner/outer isolation |
//! | Library reads privacy-sensitive data (§ VI-B) | blocked |
//! | OS eavesdrops/controls inter-enclave channel (§ VI-C) | blocked by outer channel |
//! | Unauthorized inner joins an outer (§ VII-B) | rejected by NASSO |
//! | OS page-remap attacks | defeated by EPCM VA check |
//! | Physical DRAM probing/tampering | ciphertext only / integrity fault |

use ne_core::channel::OuterChannel;
use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::nasso::{nasso, AssocPolicy, ExpectedIdentity};
use ne_core::runtime::NestedApp;
use ne_sgx::config::HwConfig;
use ne_sgx::epcm::PagePerms;
use ne_sgx::error::{FaultKind, SgxError};
use ne_sgx::ProcessId;

/// Builds the standard topology: outer "hub" with inner enclaves "a", "b".
fn topology() -> NestedApp {
    let mut app = NestedApp::new(HwConfig::testbed());
    app.load(
        EnclaveImage::new("hub", b"provider")
            .heap_pages(8)
            .edl(Edl::new()),
        [],
    )
    .unwrap();
    for n in ["a", "b"] {
        app.load(
            EnclaveImage::new(n, b"tenant")
                .heap_pages(2)
                .edl(Edl::new()),
            [],
        )
        .unwrap();
        app.associate(n, "hub").unwrap();
    }
    app
}

#[test]
fn outer_cannot_read_or_write_inner() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let hub = app.layout("hub").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine.write(0, a.heap_base, b"tenant secret").unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.eenter(0, hub.eid, hub.base).unwrap();
    let err = app.machine.read(0, a.heap_base, 13).unwrap_err();
    assert!(err.is_fault(FaultKind::EpcmEnclaveMismatch));
    let err = app.machine.write(0, a.heap_base, b"overwrite").unwrap_err();
    assert!(err.is_fault(FaultKind::EpcmEnclaveMismatch));
    app.machine.eexit(0).unwrap();
    // And the secret is intact.
    app.machine.eenter(0, a.eid, a.base).unwrap();
    assert_eq!(
        app.machine.read(0, a.heap_base, 13).unwrap(),
        b"tenant secret"
    );
}

#[test]
fn peer_inners_cannot_read_each_other() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let b = app.layout("b").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine.write(0, a.heap_base, b"alice-only").unwrap();
    app.machine.eexit(0).unwrap();
    app.machine.eenter(0, b.eid, b.base).unwrap();
    let err = app.machine.read(0, a.heap_base, 10).unwrap_err();
    assert!(err.is_fault(FaultKind::EpcmEnclaveMismatch));
}

#[test]
fn untrusted_world_sees_abort_page_everywhere() {
    let mut app = topology();
    for name in ["hub", "a", "b"] {
        let l = app.layout(name).unwrap();
        let data = app.untrusted(0, |cx| cx.read(l.heap_base, 8)).unwrap();
        assert_eq!(data, vec![0xFF; 8], "{name} leaked to untrusted code");
        // Writes are dropped silently.
        app.untrusted(0, |cx| cx.write(l.heap_base, b"inject"))
            .unwrap();
    }
    app.machine.audit_tlbs().unwrap();
}

#[test]
fn os_remap_cannot_graft_inner_page_into_outer_range() {
    // The OS remaps a VA inside the *outer's* ELRANGE onto an *inner* EPC
    // frame, hoping the outer gains access: the EPCM VA check kills it.
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let hub = app.layout("hub").unwrap();
    let inner_frame = app
        .machine
        .os_lookup(ProcessId(0), a.heap_base.vpn())
        .unwrap()
        .ppn;
    app.machine.os_map(
        ProcessId(0),
        hub.heap_base.vpn(),
        inner_frame,
        PagePerms::RW,
    );
    app.machine.flush_all_tlbs();
    app.machine.eenter(0, hub.eid, hub.base).unwrap();
    let err = app.machine.read(0, hub.heap_base, 8).unwrap_err();
    assert!(matches!(err, SgxError::Fault { .. }));
    app.machine.audit_tlbs().unwrap();
}

#[test]
fn os_remap_cannot_alias_two_outer_vas() {
    // Aliasing one outer EPC frame at a second VA inside the outer range
    // must fail the EPCM virtual-address check even for the *inner*
    // enclave's accesses (invariant 4).
    let mut app = topology();
    let hub = app.layout("hub").unwrap();
    let a = app.layout("a").unwrap();
    let frame = app
        .machine
        .os_lookup(ProcessId(0), hub.heap_base.vpn())
        .unwrap()
        .ppn;
    let alias = hub.heap_base.add(4096);
    app.machine
        .os_map(ProcessId(0), alias.vpn(), frame, PagePerms::RW);
    app.machine.flush_all_tlbs();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    let err = app.machine.read(0, alias, 8).unwrap_err();
    assert!(
        err.is_fault(FaultKind::EpcmAddressMismatch)
            || err.is_fault(FaultKind::EpcmEnclaveMismatch),
        "aliased mapping must fault, got {err}"
    );
}

#[test]
fn nasso_rejects_unauthorized_join() {
    // § VII-B "Secure binding": a malicious inner, even one signed by a
    // legitimate-looking author, cannot join an outer whose file does not
    // list it.
    let mut app = NestedApp::new(HwConfig::testbed());
    let victim_inner_img = EnclaveImage::new("victim", b"tenant").edl(Edl::new());
    // The outer pins the victim inner's exact measurement.
    let victim_base = ne_sgx::VirtAddr(0x1000_0000 + 6 * 4096);
    let outer_img = EnclaveImage::new("hub", b"provider")
        .expect_inner(victim_inner_img.identity(victim_base))
        .edl(Edl::new());
    app.load(outer_img, []).unwrap();
    app.load(victim_inner_img, []).unwrap();
    app.load(EnclaveImage::new("mallory", b"tenant").edl(Edl::new()), [])
        .unwrap();
    // The victim (loaded exactly where the identity was computed) joins.
    assert_eq!(app.layout("victim").unwrap().base, victim_base);
    app.associate("victim", "hub").unwrap();
    // Mallory is rejected by the hardware.
    let mallory = app.eid("mallory").unwrap();
    let hub = app.eid("hub").unwrap();
    let hub_id = ExpectedIdentity::enclave(app.machine.enclaves().get(hub).unwrap().mrenclave);
    let victim_id = app
        .machine
        .enclaves()
        .get(app.eid("victim").unwrap())
        .unwrap()
        .mrenclave;
    let err = nasso(
        &mut app.machine,
        mallory,
        hub,
        &hub_id,
        &ExpectedIdentity::enclave(victim_id), // outer only authorizes the victim
        AssocPolicy::Lattice,
    )
    .unwrap_err();
    assert!(matches!(err, SgxError::InitVerification(_)));
    // And mallory gains no access.
    let hub_heap = app.layout("hub").unwrap().heap_base;
    let mallory_base = app.layout("mallory").unwrap().base;
    app.machine.eenter(0, mallory, mallory_base).unwrap();
    assert!(app.machine.read(0, hub_heap, 8).is_err());
}

#[test]
fn os_cannot_drop_or_see_outer_channel_messages() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    let ch = {
        let mut cx = app.enclave_ctx(0, "a");
        let ch = OuterChannel::create(&mut cx, "hub", 4096).unwrap();
        ch.send(&mut cx, b"certificate check request").unwrap();
        ch
    };
    app.machine.eexit(0).unwrap();
    // The OS scans all of untrusted-visible memory: the message is nowhere
    // (reads of the channel return abort-page ones), and there is no
    // transport hook to drop from.
    let snooped = app
        .untrusted(0, |cx| cx.read(ch.base().add(128), 64))
        .unwrap();
    assert_eq!(snooped, vec![0xFF; 64]);
    // The receiver still gets the message.
    let b = app.layout("b").unwrap();
    app.machine.eenter(0, b.eid, b.base).unwrap();
    let mut cx = app.enclave_ctx(0, "b");
    assert_eq!(
        cx_recv(&ch, &mut cx),
        Some(b"certificate check request".to_vec())
    );
}

fn cx_recv(ch: &OuterChannel, cx: &mut ne_core::runtime::EnclaveCtx<'_>) -> Option<Vec<u8>> {
    ch.recv(cx).unwrap()
}

#[test]
fn physical_attacks_on_epc_fail() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    app.machine
        .write(0, a.heap_base, b"COLD-BOOT-TARGET")
        .unwrap();
    app.machine.eexit(0).unwrap();
    let frame = app
        .machine
        .os_lookup(ProcessId(0), a.heap_base.vpn())
        .unwrap()
        .ppn;
    // Probing the DRAM bus yields ciphertext.
    let probe = app.machine.physical_probe(frame);
    assert!(!probe.windows(16).any(|w| w == b"COLD-BOOT-TARGET"));
    // Tampering is caught by the integrity tree on the next access.
    app.machine.physical_tamper(frame.base(), &[0xEE; 16]);
    app.machine.eenter(0, a.eid, a.base).unwrap();
    let err = app.machine.read(0, a.heap_base, 16).unwrap_err();
    assert!(err.is_fault(FaultKind::IntegrityViolation));
}

#[test]
fn exec_from_untrusted_memory_blocked_in_enclave_mode() {
    // Code-injection via untrusted pages: an enclave (inner or outer) can
    // read untrusted memory but never execute it.
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let evil = app.untrusted(0, |cx| cx.alloc_untrusted(1));
    app.untrusted(0, |cx| cx.write(evil, b"\xCC\xCC")).unwrap();
    app.machine.eenter(0, a.eid, a.base).unwrap();
    assert!(app.machine.read(0, evil, 2).is_ok(), "reads are allowed");
    let err = app.machine.fetch(0, evil).unwrap_err();
    assert!(err.is_fault(FaultKind::ExecFromNonExec));
}

#[test]
fn neexit_scrub_prevents_register_leak_to_outer() {
    let mut app = topology();
    let a = app.layout("a").unwrap();
    let hub = app.layout("hub").unwrap();
    app.machine.eenter(0, hub.eid, hub.base).unwrap();
    ne_core::neenter(&mut app.machine, 0, a.eid, a.base).unwrap();
    app.machine.set_reg(0, 5, 0x5EC4E7);
    ne_core::neexit(&mut app.machine, 0).unwrap();
    // Back in the outer: every register is zero.
    for r in 0..8 {
        assert_eq!(app.machine.reg(0, r), 0);
    }
}
