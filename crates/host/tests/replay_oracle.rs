//! Replay-cache differential oracle: two servers differing only in
//! [`HostConfig::replay_cache`] serve the same traffic and must finish
//! with byte-identical machine metrics exports, identical completion
//! records (including every reply byte), and the same serving clock —
//! while the cache-on run demonstrably replays (hits > 0), so the test
//! cannot pass vacuously. Chaos, forced epoch invalidation, and multiple
//! seeds ride the same harness.

use ne_host::{HostConfig, HostServer, ReplayCacheStats, RequestFactory, ServiceKind, TenantSpec};
use ne_sgx::fault::FaultPlan;

fn build_server(replay: bool, seed: u64, chaos: Option<&str>) -> HostServer {
    let specs: Vec<TenantSpec> = (0..3)
        .map(|i| {
            TenantSpec::new(
                &format!("tenant{i}"),
                (3 - i) as u8,
                ServiceKind::ALL.to_vec(),
            )
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = seed;
    cfg.replay_cache = replay;
    let mut server = HostServer::build(cfg).expect("host build");
    if let Some(spec) = chaos {
        server.install_chaos(FaultPlan::parse(spec, seed).unwrap());
    }
    server
}

/// Serves `requests` per (tenant, service) pair in a closed loop; the
/// optional `mid_bump` forces a machine epoch bump halfway through (a
/// no-op for machine-visible state, so both runs stay comparable, but it
/// must flush the cache-on run's entries).
fn serve(
    replay: bool,
    seed: u64,
    chaos: Option<&str>,
    requests: usize,
    mid_bump: bool,
) -> (String, String, String, Option<ReplayCacheStats>) {
    let mut server = build_server(replay, seed, chaos);
    let mut factories: Vec<Vec<RequestFactory>> = (0..3)
        .map(|t| {
            ServiceKind::ALL
                .iter()
                .map(|&k| RequestFactory::new(k, t, seed))
                .collect()
        })
        .collect();
    let mut sheds = 0u64;
    for round in 0..requests {
        if mid_bump && round == requests / 2 {
            server.app.machine.bump_replay_epoch();
        }
        for (t, tenant_factories) in factories.iter_mut().enumerate() {
            if server.tenants()[t].shed {
                continue;
            }
            for (s, factory) in tenant_factories.iter_mut().enumerate() {
                let payload = factory.next_request();
                if !server.submit(t, s, server.now(), payload).is_accepted() {
                    sheds += 1;
                    continue;
                }
                match server.step() {
                    Ok(Some(_)) => {}
                    Ok(None) => sheds += 1,
                    Err(e) => panic!("step failed in round {round}: {e:?}"),
                }
            }
        }
    }
    server.drain().expect("drain");
    let metrics = server.app.machine.metrics().to_json();
    let completions = format!("{:?}", server.completions());
    let hr = server.report();
    let summary = format!(
        "completed {} shed {} local-sheds {} now {} faults {} respawns {}",
        hr.completed(),
        hr.shed_requests(),
        sheds,
        server.now(),
        server.app.machine.stats().faults,
        hr.respawns(),
    );
    (metrics, completions, summary, server.replay_stats())
}

fn assert_invisible(
    seed: u64,
    chaos: Option<&str>,
    requests: usize,
    mid_bump: bool,
) -> ReplayCacheStats {
    let (m_off, c_off, s_off, r_off) = serve(false, seed, chaos, requests, mid_bump);
    let (m_on, c_on, s_on, r_on) = serve(true, seed, chaos, requests, mid_bump);
    assert!(r_off.is_none(), "cache-off server must not have a cache");
    let ctx = format!("seed {seed:#x} chaos {chaos:?} mid_bump {mid_bump}");
    assert_eq!(s_off, s_on, "summary diverged ({ctx})");
    assert_eq!(c_off, c_on, "completions (reply bytes) diverged ({ctx})");
    assert_eq!(m_off, m_on, "metrics export diverged ({ctx})");
    r_on.expect("cache-on server reports stats")
}

#[test]
fn replay_is_invisible_and_actually_replays() {
    // Seed-loop property: the byte-identity must hold for arbitrary
    // seeds, and the steady-state workload must produce real hits so the
    // oracle is not vacuous.
    for seed in [0xD1FFu64, 1, 0xBEEF_CAFE, 42] {
        let stats = assert_invisible(seed, None, 6, false);
        assert!(
            stats.hits > 0,
            "seed {seed:#x}: no replay hits — the cache never engaged ({stats:?})"
        );
        assert!(stats.captures > 0, "seed {seed:#x}: nothing captured");
    }
}

#[test]
fn replay_is_invisible_under_chaos() {
    // Chaos plans install mid-lifecycle machine mutations (epoch bumps,
    // faults, respawns); the cache must stay invisible and must never
    // cache a faulted execution.
    for spec in ["mac:3", "aex+evict", "mac:2+stall:3", "crash:40"] {
        let stats = assert_invisible(0xD1FF, Some(spec), 6, false);
        // Hits are not guaranteed under every plan (stall plans make
        // chaos replay unsafe by design), but the books must balance:
        // every capture came from a miss, and a hit implies something
        // was captured first.
        assert!(
            stats.captures <= stats.misses,
            "more captures than misses under {spec}: {stats:?}"
        );
        assert!(
            stats.hits == 0 || stats.captures > 0,
            "hit with nothing captured under {spec}: {stats:?}"
        );
    }
}

#[test]
fn epoch_bump_flushes_but_stays_invisible() {
    // Capture admission defers to a shape's second miss, so re-warming
    // after the flush takes three occurrences per (shape, core); give the
    // loop enough rounds for both warm-ups.
    let stats = assert_invisible(0xD1FF, None, 16, true);
    assert!(
        stats.stale_flushes > 0,
        "forced epoch bump must flush the cache ({stats:?})"
    );
    assert!(
        stats.hits > 0,
        "cache must re-warm and hit again after the flush ({stats:?})"
    );
}
