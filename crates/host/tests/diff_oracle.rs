//! Host-level differential oracle: two multi-tenant servers differing only
//! in [`HwConfig::reference_path`] serve the same closed-loop traffic —
//! with and without a chaos plan — and must finish with byte-identical
//! machine metrics exports, identical completion/shed accounting, and the
//! same serving clock. This is the end-to-end leg of the oracle; the
//! structure-level legs live in `ne-sgx`'s `hot_path_props`/`diff_oracle`
//! suites.

use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_sgx::fault::FaultPlan;

const SEED: u64 = 0xD1FF;

fn build_server(reference: bool, chaos: Option<&str>) -> HostServer {
    let specs: Vec<TenantSpec> = (0..3)
        .map(|i| {
            TenantSpec::new(
                &format!("tenant{i}"),
                (3 - i) as u8,
                ServiceKind::ALL.to_vec(),
            )
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = SEED;
    cfg.hw.reference_path = reference;
    let mut server = HostServer::build(cfg).expect("host build");
    if let Some(spec) = chaos {
        server.install_chaos(FaultPlan::parse(spec, SEED).unwrap());
    }
    server
}

/// Serves `requests` per (tenant, service) pair in a closed loop and
/// returns (metrics JSON, summary line).
fn serve(reference: bool, chaos: Option<&str>, requests: usize) -> (String, String) {
    let mut server = build_server(reference, chaos);
    let mut factories: Vec<Vec<RequestFactory>> = (0..3)
        .map(|t| {
            ServiceKind::ALL
                .iter()
                .map(|&k| RequestFactory::new(k, t, SEED))
                .collect()
        })
        .collect();
    let mut sheds = 0u64;
    for round in 0..requests {
        for (t, tenant_factories) in factories.iter_mut().enumerate() {
            if server.tenants()[t].shed {
                continue;
            }
            for (s, factory) in tenant_factories.iter_mut().enumerate() {
                let payload = factory.next_request();
                if !server.submit(t, s, server.now(), payload).is_accepted() {
                    sheds += 1;
                    continue;
                }
                // Serve to completion; a `None` completion under chaos is a
                // counted shed, not a protocol error.
                match server.step() {
                    Ok(Some(_)) => {}
                    Ok(None) => sheds += 1,
                    Err(e) => panic!("step failed in round {round}: {e:?}"),
                }
            }
        }
    }
    server.drain().expect("drain");
    let metrics = server.app.machine.metrics().to_json();
    let hr = server.report();
    let summary = format!(
        "completed {} shed {} local-sheds {} now {} faults {} respawns {}",
        hr.completed(),
        hr.shed_requests(),
        sheds,
        server.now(),
        server.app.machine.stats().faults,
        hr.respawns(),
    );
    (metrics, summary)
}

#[test]
fn host_metrics_identical_across_paths() {
    let (metrics_o, summary_o) = serve(false, None, 6);
    let (metrics_r, summary_r) = serve(true, None, 6);
    assert_eq!(summary_o, summary_r);
    assert_eq!(metrics_o, metrics_r, "metrics exports diverged");
}

#[test]
fn host_metrics_identical_across_paths_under_chaos() {
    for spec in ["mac:3", "aex+evict", "mac:2+stall:3"] {
        let (metrics_o, summary_o) = serve(false, Some(spec), 6);
        let (metrics_r, summary_r) = serve(true, Some(spec), 6);
        assert_eq!(summary_o, summary_r, "summary diverged under {spec}");
        assert_eq!(metrics_o, metrics_r, "metrics diverged under {spec}");
    }
}
