//! Property-based tests of the hosting server's scheduling invariants.
//!
//! Random tenant counts, priorities, queue bounds, and submit/step
//! interleavings must never be able to break:
//!
//! 1. **TCS exclusivity** — no simulated core ever runs two contexts at
//!    once, and no enclave's TCS is entered while busy
//!    ([`SchedulerStats::invariant_violations`] stays zero; the
//!    scheduler's debug asserts would also abort a debug run);
//! 2. **per-tenant FIFO** — completion sequence numbers are strictly
//!    increasing within a tenant, whichever cores served them;
//! 3. **no lost work** — every accepted request completes; rejections
//!    happen only at admission, never after.
//!
//! Every case also passes [`MachineMetrics::check`], so the cycle
//! attribution identities hold under arbitrary interleavings too.

use ne_host::tenant::{Request, TenantState};
use ne_host::{HostConfig, HostServer, RequestFactory, Scheduler, ServiceKind, TenantSpec};
use proptest::prelude::*;

fn build_server(
    num_tenants: usize,
    prios: &[u8],
    caps: &[usize],
    switchless: bool,
) -> (HostServer, Vec<Vec<RequestFactory>>) {
    let kinds = [ServiceKind::TlsEcho, ServiceKind::SvmInfer];
    let specs: Vec<TenantSpec> = (0..num_tenants)
        .map(|i| {
            TenantSpec::new(&format!("t{i}"), prios[i], kinds.to_vec()).queue_capacity(caps[i])
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.switchless = switchless;
    let server = HostServer::build(cfg).expect("build");
    let factories = (0..num_tenants)
        .map(|t| {
            kinds
                .iter()
                .map(|&k| RequestFactory::new(k, t, 99))
                .collect()
        })
        .collect();
    (server, factories)
}

proptest! {
    /// The full server under random traffic: random (tenant, service)
    /// submissions with interleaved serving steps, then a drain. All
    /// three invariants plus the machine's cycle accounting must hold.
    #[test]
    fn random_traffic_preserves_all_invariants(
        num_tenants in 1..5usize,
        prios in prop::collection::vec(0..4u8, 4..5),
        caps in prop::collection::vec(1..6usize, 4..5),
        switchless in any::<bool>(),
        submits in prop::collection::vec(
            (0..4usize, 0..2usize, any::<bool>()),
            1..60,
        ),
    ) {
        let (mut server, mut factories) =
            build_server(num_tenants, &prios, &caps, switchless);
        let mut accepted = 0u64;
        for (t_raw, s, step_now) in submits {
            let t = t_raw % num_tenants;
            let payload = factories[t][s].next_request();
            if server.submit(t, s, server.now(), payload).is_accepted() {
                accepted += 1;
            }
            if step_now {
                server.step().expect("step");
            }
        }
        server.drain().expect("drain");

        // (1) TCS exclusivity / core-mode invariants.
        prop_assert_eq!(server.invariant_violations(), 0);
        // (3) nothing accepted was dropped, nothing rejected completed.
        let report = server.report();
        prop_assert_eq!(report.completed(), accepted);
        prop_assert_eq!(server.pending(), 0);
        for t in server.tenants() {
            prop_assert!(t.drained());
        }
        // (2) per-tenant FIFO: strictly increasing completion seqs.
        let mut last: Vec<Option<u64>> = vec![None; num_tenants];
        for c in server.completions() {
            if let Some(prev) = last[c.tenant] {
                prop_assert!(
                    c.seq > prev,
                    "tenant {} completed {} after {}", c.tenant, c.seq, prev
                );
            }
            last[c.tenant] = Some(c.seq);
        }
        // Cycle attribution identities survive arbitrary interleavings.
        server.app.machine.metrics().check().expect("metrics check");
    }

    /// The dispatcher alone, against plain queues: whatever mix of home
    /// dispatch and stealing happens, each tenant's requests come out in
    /// admission order, and exactly once.
    #[test]
    fn pick_request_emits_each_tenant_in_fifo_order(
        num_cores in 1..5usize,
        depths in prop::collection::vec(0..12usize, 1..6),
        slots in prop::collection::vec(0..5usize, 0..80),
    ) {
        let mut sched = Scheduler::new((0..num_cores).collect(), depths.len());
        let mut tenants: Vec<TenantState> = depths
            .iter()
            .enumerate()
            .map(|(t, &depth)| {
                let spec = TenantSpec::new(
                    &format!("t{t}"),
                    1,
                    vec![ServiceKind::TlsEcho],
                ).queue_capacity(depth.max(1));
                let mut state = TenantState::new(spec, true);
                for seq in 0..depth as u64 {
                    state.queue.push_back(Request {
                        tenant: t,
                        service: 0,
                        seq,
                        arrival: 0,
                        payload: vec![],
                        attempts: 0,
                    });
                }
                state
            })
            .collect();
        let total: usize = depths.iter().sum();
        let mut next_expected: Vec<u64> = vec![0; depths.len()];
        let mut served = 0usize;
        // Random slot choices first, then round-robin until dry: every
        // pop must be its tenant's next sequence number.
        let drive: Vec<usize> = slots
            .into_iter()
            .chain(0..total)
            .map(|s| s % num_cores)
            .collect();
        for slot in drive {
            if let Some(req) = sched.pick_request(slot, &mut tenants) {
                prop_assert_eq!(req.seq, next_expected[req.tenant]);
                next_expected[req.tenant] += 1;
                served += 1;
            }
        }
        prop_assert_eq!(served, total);
        prop_assert_eq!(sched.stats.dispatched, total as u64);
        prop_assert_eq!(
            sched.stats.home_dispatches + sched.stats.steals,
            total as u64
        );
        prop_assert_eq!(sched.stats.invariant_violations, 0);
    }
}
