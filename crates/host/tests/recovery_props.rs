//! Property-based tests of the recovery layer under injected chaos.
//!
//! With a deterministic fault plan installed ([`ne_sgx::fault`]), random
//! traffic must never be able to break:
//!
//! 1. **reply-or-shed** — every accepted request terminates, either with
//!    a verified reply or as an explicit counted shed
//!    (`accepted == completed + shed_requests`, queues empty);
//! 2. **containment** — chaos targeted at one tenant's enclaves never
//!    perturbs a sibling tenant's outcomes (no sheds, no respawns, all
//!    accepted work completed with valid replies);
//! 3. **determinism** — the same seed produces the same completions,
//!    the same chaos decisions, and the same architectural counters,
//!    byte for byte;
//!
//! and in every case the scheduler's TCS invariants and the machine's
//! cycle-attribution identities ([`MachineMetrics::check`]) still hold —
//! injected faults are built from real AEX/EWB/tamper events, so the
//! books must keep balancing.

use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_sgx::fault::FaultPlan;
use proptest::prelude::*;

const KINDS: [ServiceKind; 2] = [ServiceKind::TlsEcho, ServiceKind::SvmInfer];

/// Chaos specs exercised by the properties, mild to vicious.
const SPECS: [&str; 7] = [
    "aex",
    "evict",
    "stall",
    "mac",
    "crash",
    "aex+evict+stall",
    "aex:2+evict:3+mac:7+crash:11+stall:5",
];

fn build_server(num_tenants: usize, seed: u64) -> (HostServer, Vec<Vec<RequestFactory>>) {
    let specs: Vec<TenantSpec> = (0..num_tenants)
        .map(|i| TenantSpec::new(&format!("t{i}"), (num_tenants - i) as u8, KINDS.to_vec()))
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = seed;
    let server = HostServer::build(cfg).expect("build");
    let factories = (0..num_tenants)
        .map(|t| {
            KINDS
                .iter()
                .map(|&k| RequestFactory::new(k, t, seed))
                .collect()
        })
        .collect();
    (server, factories)
}

/// Submits `rounds` requests per (tenant, service) with a serving step
/// after each submission burst, then drains; returns accepted count.
fn drive(server: &mut HostServer, factories: &mut [Vec<RequestFactory>], rounds: usize) -> u64 {
    let mut accepted = 0u64;
    for _ in 0..rounds {
        for (t, tenant_factories) in factories.iter_mut().enumerate() {
            for (s, factory) in tenant_factories.iter_mut().enumerate() {
                let payload = factory.next_request();
                if server.submit(t, s, server.now(), payload).is_accepted() {
                    accepted += 1;
                }
            }
        }
        server.step().expect("step");
    }
    server.drain().expect("drain");
    accepted
}

fn assert_replies_valid(server: &HostServer, seed: u64, tenants: impl Iterator<Item = usize>) {
    let check: Vec<usize> = tenants.collect();
    for c in server.completions() {
        if !check.contains(&c.tenant) {
            continue;
        }
        let spec = &server.tenants()[c.tenant].spec;
        let f = RequestFactory::new(spec.services[c.service], c.tenant, seed);
        assert!(f.check_reply(&c.reply), "bad reply for {}", spec.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reply-or-shed under every chaos spec: accepted work always
    /// terminates, the server loop never panics, and the cycle books
    /// balance.
    #[test]
    fn chaos_preserves_reply_or_shed(
        spec_idx in 0..SPECS.len(),
        seed in 0..1_000u64,
        num_tenants in 1..4usize,
        rounds in 1..5usize,
    ) {
        let (mut server, mut factories) = build_server(num_tenants, seed);
        server.install_chaos(FaultPlan::parse(SPECS[spec_idx], seed).expect("spec"));
        let accepted = drive(&mut server, &mut factories, rounds);

        let report = server.report();
        prop_assert_eq!(
            report.completed() + report.shed_requests(),
            accepted,
            "accepted request neither completed nor shed"
        );
        prop_assert_eq!(server.pending(), 0);
        prop_assert_eq!(server.invariant_violations(), 0);
        for t in server.tenants() {
            prop_assert!(t.drained());
        }
        assert_replies_valid(&server, seed, 0..num_tenants);
        // Injected faults are real AEX/EWB/tamper events: attribution
        // identities must keep holding.
        server.app.machine.metrics().check().expect("metrics check");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Chaos confined to tenant 0's enclaves: siblings see no sheds, no
    /// respawns, and complete every accepted request with a valid reply.
    #[test]
    fn faulting_one_tenant_leaves_siblings_clean(
        spec_idx in 0..SPECS.len(),
        seed in 0..1_000u64,
        rounds in 2..5usize,
    ) {
        let num_tenants = 3;
        let (mut server, mut factories) = build_server(num_tenants, seed);
        let plan = FaultPlan::parse(SPECS[spec_idx], seed).expect("spec");
        server.install_chaos_for_tenant(plan, 0).expect("target tenant 0");
        drive(&mut server, &mut factories, rounds);

        let report = server.report();
        for (i, t) in report.tenants.iter().enumerate().skip(1) {
            prop_assert_eq!(t.shed_requests, 0, "sibling {} shed under foreign chaos", i);
            prop_assert_eq!(t.respawns, 0, "sibling {} respawned under foreign chaos", i);
            prop_assert!(!t.breaker_open);
            prop_assert_eq!(t.completed, t.accepted, "sibling {} lost work", i);
        }
        // Tenant 0 still satisfies reply-or-shed.
        let t0 = &report.tenants[0];
        prop_assert_eq!(t0.completed + t0.shed_requests, t0.accepted);
        prop_assert_eq!(server.invariant_violations(), 0);
        assert_replies_valid(&server, seed, 1..num_tenants);
        server.app.machine.metrics().check().expect("metrics check");
    }
}

/// Same seed, same everything: completions, chaos decisions, respawn
/// counts, and architectural counters are identical across two runs.
#[test]
fn chaos_runs_are_deterministic() {
    let run = |seed: u64| {
        let (mut server, mut factories) = build_server(3, seed);
        server.install_chaos(FaultPlan::parse(SPECS[6], seed).expect("spec"));
        let accepted = drive(&mut server, &mut factories, 4);
        let completions: Vec<_> = server
            .completions()
            .iter()
            .map(|c| {
                (
                    c.tenant,
                    c.service,
                    c.seq,
                    c.core,
                    c.arrival,
                    c.start,
                    c.end,
                    c.latency,
                    c.reply.clone(),
                )
            })
            .collect();
        let report = server.report();
        let tenants: Vec<_> = report
            .tenants
            .iter()
            .map(|t| {
                (
                    t.accepted,
                    t.completed,
                    t.shed_requests,
                    t.respawns,
                    t.breaker_open,
                )
            })
            .collect();
        (
            accepted,
            completions,
            tenants,
            server.chaos_stats().expect("chaos"),
            server.app.machine.stats(),
            server.app.machine.total_cycles(),
        )
    };
    let a = run(424_242);
    let b = run(424_242);
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    let c = run(424_243);
    assert_ne!(
        (&a.4, a.5),
        (&c.4, c.5),
        "a different seed must actually change the run"
    );
}
