//! Live tenant migration: the five-phase sealed-state machine.
//!
//! A tenant moves between hosts as `Quiesce → Seal → Remove` on the
//! source ([`HostServer::extract_tenant`]) and `Rebuild → Resume` on the
//! target ([`HostServer::adopt_tenant`]):
//!
//! 1. **Quiesce** — admission for the tenant is already closed by the
//!    caller; queued requests are parked into the snapshot's bounded
//!    buffer ([`crate::recovery::RecoveryPolicy::migrate_park_capacity`]).
//!    Overflow beyond the buffer is shed *explicitly* with
//!    [`ShedReason::Migrating`] — counted in `shed_requests` like every
//!    other loss path, never dropped silently.
//! 2. **Seal** — each service enclave seals its session state into a
//!    versioned, MACed, counter-stamped blob (`ne-core` lifecycle
//!    format) via its `seal` ecall. The seal key is derived inside the
//!    enclave (EGETKEY, seal-to-enclave policy), so the host carries the
//!    blob but cannot read or forge it.
//! 3. **Remove** — the tenant's enclaves are torn down (EREMOVE), their
//!    EPC pages freed. The source slot becomes a dead stub: admission
//!    closed, counters zeroed (they travel inside the snapshot — leaving
//!    them behind would double-count on a same-host round trip).
//! 4. **Rebuild** — the target rebuilds the gate and service enclaves
//!    from the same images and re-associates them (NASSO), retrying with
//!    deterministic backoff on transient faults, then re-proves the full
//!    NEREPORT chain before any state or traffic lands: no verified
//!    chain, no adoption.
//! 5. **Resume** — each sealed blob is handed back through the service's
//!    `restore` ecall with the snapshot's counter as the freshness
//!    floor. A replayed stale blob is refused as the typed
//!    [`HostError::StateRollback`] (the same stance `ne-tls` takes on
//!    version/cipher rollback offers); any other refusal is
//!    [`HostError::SealedState`]. On success the parked requests are
//!    re-queued and admission reopens.
//!
//! Every phase runs against a cycle deadline
//! ([`crate::recovery::RecoveryPolicy::migrate_phase_deadline`]); a
//! phase that overruns fails the migration with a typed stall. A failed
//! extraction leaves the source tenant serving (its parked queue is
//! restored); a failed adoption tears the half-built enclaves down and
//! leaves the target clean, so the caller can roll the snapshot back to
//! the source with [`HostServer::rollback_tenant`].
//!
//! The invariant the whole machine exists for: **zero accepted requests
//! dropped**. Requests either complete (possibly on the new host), or
//! terminate as explicit sheds — `accepted == completed + shed_requests`
//! holds through any interleaving of migration and chaos.

use std::collections::BTreeMap;

use ne_core::lifecycle::{attest_chain, AttestError};
use ne_sgx::error::SgxError;

use crate::error::{HostError, HostResult};
use crate::recovery::{backoff_cycles, MigratePhase, RecoveryEventKind, RecoveryState, ShedReason};
use crate::server::{gate_dispatch, gate_image, tenant_epc_pages, HostServer};
use crate::service::{
    decode_restore_reply, encode_restore_args, encode_seal_args, install_service,
    service_enclave_name, RestoreOutcome, ServiceKind,
};
use crate::tenant::{Completion, Request, TenantSpec, TenantState};

/// Everything one tenant is, portable across hosts: spec, traffic
/// counters, parked requests, sealed per-service state, and recovery
/// history. Produced by [`HostServer::extract_tenant`], consumed by
/// [`HostServer::adopt_tenant`] / [`HostServer::rollback_tenant`].
///
/// The snapshot is plain data — the sealed blobs inside it are opaque to
/// the host (MACed under keys derived inside the enclaves), so carrying
/// a snapshot across the wire leaks nothing and forging one is caught at
/// restore.
#[derive(Debug, Clone)]
pub struct TenantSnapshot {
    /// The tenant's spec, including its pinned seeding identity
    /// ([`TenantSpec::seed_index`]) — which is what lets the rebuilt
    /// enclaves on the target derive the same seal key and accept the
    /// blobs.
    pub spec: TenantSpec,
    /// Whether the tenant was shed at extraction time (carried, so a
    /// pressure-shed tenant does not silently un-shed by migrating).
    pub shed: bool,
    /// Requests accepted by admission control so far.
    pub accepted: u64,
    /// Rejections due to a full queue.
    pub rejected_full: u64,
    /// Rejections due to shedding.
    pub rejected_shed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Accepted requests explicitly shed (including any quiesce
    /// overflow shed by the extraction itself).
    pub shed_requests: u64,
    /// Next per-tenant sequence number to assign.
    pub next_seq: u64,
    /// Highest completed sequence number, if any.
    pub last_completed_seq: Option<u64>,
    /// Requests that were queued at quiesce, parked for the target to
    /// re-queue at resume. Bounded by
    /// [`crate::recovery::RecoveryPolicy::migrate_park_capacity`].
    pub parked: Vec<Request>,
    /// One sealed blob per service, in spec order.
    pub sealed: Vec<(ServiceKind, Vec<u8>)>,
    /// The monotonic counter the blobs were stamped with — the freshness
    /// floor the restore enforces.
    pub seal_counter: u64,
    /// The tenant's completion records (copied, with source-local tenant
    /// indices), so per-tenant reply digests stay whole across the move.
    pub completions: Vec<Completion>,
    /// Cumulative respawns (carried into the target's recovery state).
    pub respawns: u64,
    /// Typed attestation-refusal history, keyed by
    /// [`AttestError::name`].
    pub attest_failures: BTreeMap<&'static str, u64>,
}

impl HostServer {
    /// Fails the migration when `phase` has overrun its cycle budget.
    fn phase_guard(&self, tenant: &str, phase: MigratePhase, start: u64) -> HostResult<()> {
        let budget = self.policy.migrate_phase_deadline;
        let elapsed = self.now().saturating_sub(start);
        if budget > 0 && elapsed > budget {
            return Err(HostError::Sgx(SgxError::Stalled(format!(
                "migration {} phase for tenant {tenant} overran its deadline: \
                 {elapsed} > {budget} cycles",
                phase.name()
            ))));
        }
        Ok(())
    }

    /// Seals every service enclave's state at `counter`, in spec order.
    fn seal_services(
        &mut self,
        spec: &TenantSpec,
        tenant: usize,
        counter: u64,
    ) -> HostResult<Vec<(ServiceKind, Vec<u8>)>> {
        let Some(core) = self.idle_core() else {
            return Err(HostError::Sgx(SgxError::GeneralProtection(
                "no serving core out of enclave mode for seal".into(),
            )));
        };
        let identity = spec.seed_index.unwrap_or(tenant) as u64;
        let args = encode_seal_args(identity, counter);
        spec.services
            .iter()
            .map(|&kind| {
                let name = service_enclave_name(&spec.name, kind);
                let blob = self.app.ecall(core, &name, "seal", &args)?;
                Ok((kind, blob))
            })
            .collect()
    }

    /// Extracts `tenant` for migration: quiesces its queue into the
    /// snapshot's bounded park buffer (overflow shed explicitly with
    /// [`ShedReason::Migrating`]), seals every service's state, tears the
    /// enclaves down (EREMOVE), and freezes the slot as a dead stub.
    ///
    /// On error the tenant is left serving at the source with its queue
    /// restored — a failed extraction never half-kills a tenant.
    ///
    /// # Errors
    ///
    /// [`HostError::BadRequest`] for an unknown, unloaded, or
    /// breaker-open tenant; a seal fault or phase-deadline overrun as
    /// [`HostError::Sgx`].
    pub fn extract_tenant(&mut self, tenant: usize) -> HostResult<TenantSnapshot> {
        if tenant >= self.tenants.len() || !self.tenants[tenant].loaded {
            return Err(HostError::BadRequest(format!(
                "no loaded tenant at index {tenant}"
            )));
        }
        if self.recovery[tenant].breaker_open {
            return Err(HostError::BadRequest(format!(
                "tenant {tenant} has an open breaker; migration needs healthy enclaves"
            )));
        }
        let mut spec = self.tenants[tenant].spec.clone();
        // Pin the seeding identity into the snapshot: the adopting host
        // assigns a fresh local index, and the rebuilt enclaves must
        // derive the *original* identity's seal key or the blobs will
        // never authenticate.
        spec.seed_index = Some(spec.seed_index.unwrap_or(tenant));

        // Quiesce: park the queue, bounded; overflow terminates as
        // explicit sheds (the requests were accepted — they must be
        // accounted, never dropped).
        let quiesce_start = self.now();
        self.log_event_at(
            quiesce_start,
            tenant,
            RecoveryEventKind::Migrate(MigratePhase::Quiesce),
        );
        let cap = self.policy.migrate_park_capacity;
        let mut parked: Vec<Request> = self.tenants[tenant].queue.drain(..).collect();
        let overflow = parked.split_off(parked.len().min(cap));
        if !overflow.is_empty() {
            self.tenants[tenant].shed_requests += overflow.len() as u64;
            let now = self.now();
            self.log_event_at(now, tenant, RecoveryEventKind::Shed(ShedReason::Migrating));
        }
        if let Err(e) = self.phase_guard(&spec.name, MigratePhase::Quiesce, quiesce_start) {
            self.tenants[tenant].queue = parked.into_iter().collect();
            return Err(e);
        }

        // Seal: counter-stamp this migration's blobs one past the last
        // seal, so a replay of any earlier extraction is refused at
        // restore.
        let seal_start = self.now();
        self.log_event_at(
            seal_start,
            tenant,
            RecoveryEventKind::Migrate(MigratePhase::Seal),
        );
        let counter = self.seal_counters[tenant] + 1;
        let sealed = match self.seal_services(&spec, tenant, counter) {
            Ok(sealed) => sealed,
            Err(e) => {
                // Un-quiesce: the tenant keeps serving at the source.
                self.tenants[tenant].queue = parked.into_iter().collect();
                return Err(e);
            }
        };
        if let Err(e) = self.phase_guard(&spec.name, MigratePhase::Seal, seal_start) {
            self.tenants[tenant].queue = parked.into_iter().collect();
            return Err(e);
        }
        self.seal_counters[tenant] = counter;

        // Remove: EREMOVE services first, gate last; EPC pages free here.
        let remove_start = self.now();
        self.log_event_at(
            remove_start,
            tenant,
            RecoveryEventKind::Migrate(MigratePhase::Remove),
        );
        let mut names = self.tenant_enclave_names(tenant);
        names.reverse();
        for name in names {
            self.app.unload(&name)?;
        }

        let completions: Vec<Completion> = self
            .completions
            .iter()
            .filter(|c| c.tenant == tenant)
            .cloned()
            .collect();
        let respawns = self.recovery[tenant].respawns;
        let attest_failures = std::mem::take(&mut self.attest_failures[tenant]);
        let snap = {
            let ts = &self.tenants[tenant];
            TenantSnapshot {
                spec,
                shed: ts.shed,
                accepted: ts.accepted,
                rejected_full: ts.rejected_full,
                rejected_shed: ts.rejected_shed,
                completed: ts.completed,
                shed_requests: ts.shed_requests,
                next_seq: ts.next_seq,
                last_completed_seq: ts.last_completed_seq,
                parked,
                sealed,
                seal_counter: counter,
                completions,
                respawns,
                attest_failures,
            }
        };
        // Freeze the slot: a dead stub that rejects at the front door and
        // contributes nothing to reports (its counters travel inside the
        // snapshot; leaving them here would double-count after a
        // same-host round trip).
        let ts = &mut self.tenants[tenant];
        ts.loaded = false;
        ts.shed = true;
        ts.accepted = 0;
        ts.rejected_full = 0;
        ts.rejected_shed = 0;
        ts.completed = 0;
        ts.shed_requests = 0;
        ts.next_seq = 0;
        ts.last_completed_seq = None;
        self.attested[tenant] = false;
        Ok(snap)
    }

    /// Adopts an extracted tenant on this host: rebuilds its enclaves
    /// (with retry/backoff), re-proves the NEREPORT chain, restores the
    /// sealed state, re-queues the parked requests, and reopens
    /// admission. Returns the tenant's **local index** on this host.
    ///
    /// `floor` is the caller's authoritative freshness floor — the
    /// highest seal counter it has ever seen for this tenant (the
    /// cluster's migration coordinator keeps one per global tenant). A
    /// replayed old snapshot is internally consistent (its blobs match
    /// its own counter), so only an external floor can catch it: the
    /// restore enforces `max(floor, snapshot counter)`. Pass 0 when no
    /// history exists.
    ///
    /// Adoption requires EPC headroom above the admission low-water mark
    /// — a migration must not immediately push the target into pressure
    /// shedding.
    ///
    /// # Errors
    ///
    /// On any error the target is left clean (half-built enclaves torn
    /// down) and the snapshot is untouched, so the caller can
    /// [`HostServer::rollback_tenant`] it to the source. Stale blobs are
    /// refused as [`HostError::StateRollback`]; other blob refusals as
    /// [`HostError::SealedState`].
    pub fn adopt_tenant(&mut self, snap: &TenantSnapshot, floor: u64) -> HostResult<usize> {
        self.adopt_inner(snap, floor, false)
    }

    /// Re-adopts a snapshot on the host that extracted it, after a failed
    /// adoption elsewhere — the `Rollback` arm of the migration machine.
    /// Identical to [`HostServer::adopt_tenant`] except the phase is
    /// logged as [`MigratePhase::Rollback`] and the EPC check skips the
    /// low-water headroom (the pages were this tenant's to begin with).
    ///
    /// # Errors
    ///
    /// As [`HostServer::adopt_tenant`].
    pub fn rollback_tenant(&mut self, snap: &TenantSnapshot, floor: u64) -> HostResult<usize> {
        self.adopt_inner(snap, floor, true)
    }

    fn adopt_inner(
        &mut self,
        snap: &TenantSnapshot,
        floor: u64,
        rollback: bool,
    ) -> HostResult<usize> {
        let spec = snap.spec.clone();
        if self.app.eid(&spec.gate_name()).is_ok() {
            return Err(HostError::BadRequest(format!(
                "enclaves named for tenant {} already exist on this host",
                spec.name
            )));
        }
        let need = tenant_epc_pages(&spec);
        let headroom = if rollback {
            0
        } else {
            self.admission.epc_low_water
        };
        if (self.app.machine.free_epc_pages() as u64) < need + headroom {
            return Err(HostError::Sgx(SgxError::EpcFull));
        }

        let local = self.tenants.len();
        let phase = if rollback {
            MigratePhase::Rollback
        } else {
            MigratePhase::Rebuild
        };
        let rebuild_start = self.now();
        self.log_event_at(rebuild_start, local, RecoveryEventKind::Migrate(phase));

        // Rebuild + NASSO, retried with deterministic backoff on
        // transient faults (chaos can land on the very loads that are
        // supposed to receive the migrated state).
        let identity = spec.seed_index.unwrap_or(local);
        let mut attempt: u32 = 0;
        loop {
            match self.build_tenant_enclaves(&spec, identity, local) {
                Ok(()) => break,
                Err(source) => {
                    attempt += 1;
                    if attempt >= self.policy.max_attempts {
                        return Err(HostError::Respawn {
                            tenant: spec.name.clone(),
                            source,
                        });
                    }
                    let wait =
                        backoff_cycles(&self.policy, self.seed, local, snap.seal_counter, attempt);
                    let now = self.now();
                    self.log_event_at(now, local, RecoveryEventKind::Backoff { wait });
                    if let Some(core) = self.idle_core() {
                        self.app.untrusted(core, |cx| cx.charge(wait));
                    }
                }
            }
        }

        // Attest + restore; any failure from here tears the rebuilt
        // enclaves down so the target stays clean for a rollback.
        let min_counter = floor.max(snap.seal_counter);
        if let Err(e) = self.finish_adoption(
            &spec,
            identity as u64,
            snap,
            min_counter,
            phase,
            rebuild_start,
            local,
        ) {
            self.teardown_enclaves(&spec);
            return Err(e);
        }

        // Commit: the tenant exists on this host from here on.
        let mut ts = TenantState::new(spec.clone(), true);
        ts.shed = snap.shed;
        ts.accepted = snap.accepted;
        ts.rejected_full = snap.rejected_full;
        ts.rejected_shed = snap.rejected_shed;
        ts.completed = snap.completed;
        ts.shed_requests = snap.shed_requests;
        ts.next_seq = snap.next_seq;
        ts.last_completed_seq = snap.last_completed_seq;
        for r in &snap.parked {
            let mut r = r.clone();
            r.tenant = local;
            ts.queue.push_back(r);
        }
        self.tenants.push(ts);
        self.sched.add_tenant(local);
        self.recovery.push(RecoveryState {
            respawns: snap.respawns,
            ..RecoveryState::default()
        });
        self.breaker_logged.push(false);
        self.attested.push(true);
        self.attest_failures.push(snap.attest_failures.clone());
        self.attest_epoch.push(1);
        self.seal_counters.push(snap.seal_counter);
        for c in &snap.completions {
            let mut c = c.clone();
            c.tenant = local;
            self.completions.push(c);
        }
        Ok(local)
    }

    /// Loads the gate and service enclaves for an adoption, registering
    /// their eids under `local`. On failure everything partially built is
    /// torn down before the error returns.
    fn build_tenant_enclaves(
        &mut self,
        spec: &TenantSpec,
        identity: usize,
        local: usize,
    ) -> Result<(), SgxError> {
        let gate_name = spec.gate_name();
        let names: Vec<String> = spec
            .services
            .iter()
            .map(|&k| service_enclave_name(&spec.name, k))
            .collect();
        let mut result = self
            .app
            .load(
                gate_image(&gate_name),
                [(
                    "dispatch".to_string(),
                    gate_dispatch(
                        names,
                        self.switchless_handle.clone(),
                        self.degraded_replies.clone(),
                    ),
                )],
            )
            .map(|_| ());
        if result.is_ok() {
            for (s, &kind) in spec.services.iter().enumerate() {
                match install_service(
                    &mut self.app,
                    &spec.name,
                    &gate_name,
                    identity,
                    kind,
                    self.seed,
                ) {
                    Ok(twin) => {
                        self.computes.insert((local, s), twin);
                    }
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
        }
        if let Err(e) = result {
            self.teardown_enclaves(spec);
            return Err(e);
        }
        for name in self.tenant_names_of(spec) {
            if let Ok(eid) = self.app.eid(&name) {
                self.eid_owner.insert(eid.0, local);
            }
        }
        Ok(())
    }

    /// Gate-first enclave names of a spec (the adoption path cannot use
    /// [`HostServer::tenant_enclave_names`] — the slot does not exist
    /// yet).
    fn tenant_names_of(&self, spec: &TenantSpec) -> Vec<String> {
        let mut names = vec![spec.gate_name()];
        names.extend(
            spec.services
                .iter()
                .map(|&k| service_enclave_name(&spec.name, k)),
        );
        names
    }

    /// Unloads whatever subset of the spec's enclaves exists, ignoring
    /// errors (cleanup of a partial build).
    fn teardown_enclaves(&mut self, spec: &TenantSpec) {
        let mut names = self.tenant_names_of(spec);
        names.reverse();
        for name in names {
            if self.app.eid(&name).is_ok() {
                let _ = self.app.unload(&name);
            }
        }
    }

    /// The attest-and-restore tail of an adoption, separated so every
    /// error path funnels through one teardown in the caller.
    #[allow(clippy::too_many_arguments)]
    fn finish_adoption(
        &mut self,
        spec: &TenantSpec,
        identity: u64,
        snap: &TenantSnapshot,
        min_counter: u64,
        phase: MigratePhase,
        rebuild_start: u64,
        local: usize,
    ) -> HostResult<()> {
        self.phase_guard(&spec.name, phase, rebuild_start)?;

        // NEREPORT-gated adoption: the rebuilt chain must prove itself
        // before any sealed state (or later, traffic) lands. The epoch's
        // top bit keeps adoption nonces disjoint from the per-slot
        // attestation epochs.
        let Some(core) = self.idle_core() else {
            return Err(HostError::Sgx(SgxError::GeneralProtection(
                "no serving core out of enclave mode for attestation".into(),
            )));
        };
        let gate = spec.gate_name();
        for &kind in &spec.services {
            let svc = service_enclave_name(&spec.name, kind);
            let nonce = HostServer::attest_nonce(
                self.seed,
                identity,
                kind as u64,
                (1 << 63) | snap.seal_counter,
            );
            if let Err(e) = attest_chain(&mut self.app, core, &gate, &svc, &nonce) {
                return Err(match e {
                    AttestError::Sgx(source) => HostError::Sgx(source),
                    refusal => HostError::SealedState {
                        tenant: spec.name.clone(),
                        reason: format!("attestation refused: {refusal}"),
                    },
                });
            }
        }

        // Resume: hand each blob back through the service's restore
        // ecall. Refusals come back as typed reply bytes (the enclave
        // rejecting input, not faulting), so the host can distinguish a
        // replay from a forgery without string-matching.
        let resume_start = self.now();
        self.log_event_at(
            resume_start,
            local,
            RecoveryEventKind::Migrate(MigratePhase::Resume),
        );
        for (kind, blob) in &snap.sealed {
            let name = service_enclave_name(&spec.name, *kind);
            let args = encode_restore_args(identity, min_counter, blob);
            let Some(core) = self.idle_core() else {
                return Err(HostError::Sgx(SgxError::GeneralProtection(
                    "no serving core out of enclave mode for restore".into(),
                )));
            };
            let reply = self.app.ecall(core, &name, "restore", &args)?;
            match decode_restore_reply(&reply) {
                Some(RestoreOutcome::Ok { .. }) => {}
                Some(RestoreOutcome::Rollback {
                    presented,
                    expected,
                }) => {
                    return Err(HostError::StateRollback {
                        tenant: spec.name.clone(),
                        presented,
                        expected,
                    });
                }
                Some(RestoreOutcome::BadMac) => {
                    return Err(HostError::SealedState {
                        tenant: spec.name.clone(),
                        reason: "sealed blob failed authentication".into(),
                    });
                }
                Some(RestoreOutcome::Malformed) => {
                    return Err(HostError::SealedState {
                        tenant: spec.name.clone(),
                        reason: "sealed blob malformed".into(),
                    });
                }
                Some(RestoreOutcome::BadPayload) => {
                    return Err(HostError::SealedState {
                        tenant: spec.name.clone(),
                        reason: "authenticated payload rejected by the service".into(),
                    });
                }
                None => {
                    return Err(HostError::Internal(format!(
                        "unintelligible restore reply from {name}"
                    )));
                }
            }
        }
        self.phase_guard(&spec.name, MigratePhase::Resume, resume_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::Admission;
    use crate::server::HostConfig;
    use crate::service::RequestFactory;

    fn specs(n: usize, services: &[ServiceKind]) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::new(&format!("t{i}"), (n - i) as u8, services.to_vec()))
            .collect()
    }

    /// Submits `per_tenant` requests to each (tenant slot, factory) pair
    /// and drains; the factories persist across calls (and migrations),
    /// like the cluster's do.
    fn run_segment(
        server: &mut HostServer,
        slots: &[usize],
        factories: &mut [RequestFactory],
        per_tenant: usize,
    ) -> u64 {
        let mut accepted = 0;
        for _ in 0..per_tenant {
            for (&slot, f) in slots.iter().zip(factories.iter_mut()) {
                if server.submit(slot, 0, 0, f.next_request()).is_accepted() {
                    accepted += 1;
                }
            }
        }
        server.drain().unwrap();
        accepted
    }

    fn replies_for(server: &HostServer, slot: usize) -> Vec<(usize, u64, Vec<u8>)> {
        let mut rows: Vec<(usize, u64, Vec<u8>)> = server
            .completions()
            .iter()
            .filter(|c| c.tenant == slot)
            .map(|c| (c.service, c.seq, c.reply.clone()))
            .collect();
        rows.sort();
        rows
    }

    #[test]
    fn round_trip_preserves_state_and_reply_bytes() {
        // Migrated run: serve, extract tenant 0, adopt it back (new local
        // slot), serve more through the rebuilt+restored enclaves.
        let mut server = HostServer::build(HostConfig::new(specs(2, &[ServiceKind::Db]))).unwrap();
        let mut factories = vec![
            RequestFactory::new(ServiceKind::Db, 0, 42),
            RequestFactory::new(ServiceKind::Db, 1, 42),
        ];
        let a1 = run_segment(&mut server, &[0, 1], &mut factories, 4);
        assert_eq!(a1, 8);

        let snap = server.extract_tenant(0).unwrap();
        assert_eq!(snap.seal_counter, 1);
        assert_eq!(snap.completed, 4);
        assert!(!server.tenants()[0].loaded, "source slot is a dead stub");
        assert_eq!(server.tenants()[0].accepted, 0, "counters travel, not stay");

        let local = server.adopt_tenant(&snap, snap.seal_counter).unwrap();
        assert_eq!(local, 2);
        assert!(server.attested(local), "adoption re-proved the chain");
        let a2 = run_segment(&mut server, &[local, 1], &mut factories, 4);
        assert_eq!(a2, 8);
        let migrated = replies_for(&server, local);
        assert_eq!(migrated.len(), 8, "old completions carried + new ones");

        // Control run: identical workload, no migration.
        let mut control = HostServer::build(HostConfig::new(specs(2, &[ServiceKind::Db]))).unwrap();
        let mut cf = vec![
            RequestFactory::new(ServiceKind::Db, 0, 42),
            RequestFactory::new(ServiceKind::Db, 1, 42),
        ];
        run_segment(&mut control, &[0, 1], &mut cf, 4);
        run_segment(&mut control, &[0, 1], &mut cf, 4);
        assert_eq!(
            migrated,
            replies_for(&control, 0),
            "per-request reply bytes are migration-invariant"
        );

        // The five phases all hit the event log, in order.
        let phases: Vec<&str> = server
            .recovery_events()
            .iter()
            .filter_map(|e| match e.kind {
                RecoveryEventKind::Migrate(p) => Some(p.name()),
                _ => None,
            })
            .collect();
        assert_eq!(phases, ["quiesce", "seal", "remove", "rebuild", "resume"]);
    }

    #[test]
    fn parked_requests_drain_after_adoption_with_zero_drops() {
        let mut server =
            HostServer::build(HostConfig::new(specs(1, &[ServiceKind::TlsEcho]))).unwrap();
        let mut f = RequestFactory::new(ServiceKind::TlsEcho, 0, 7);
        for _ in 0..5 {
            assert!(server.submit(0, 0, 0, f.next_request()).is_accepted());
        }
        // Mid-migration: the queue is parked into the snapshot, not lost.
        let snap = server.extract_tenant(0).unwrap();
        assert_eq!(snap.parked.len(), 5);
        assert_eq!(snap.accepted, 5);
        assert_eq!(snap.completed, 0);
        let local = server.adopt_tenant(&snap, snap.seal_counter).unwrap();
        assert_eq!(server.pending(), 5, "parked requests re-queued at resume");
        server.drain().unwrap();
        let t = &server.tenants()[local];
        assert_eq!(t.accepted, t.completed + t.shed_requests, "reply-or-shed");
        assert_eq!((t.completed, t.shed_requests), (5, 0), "zero drops");
    }

    #[test]
    fn park_overflow_is_shed_explicitly_never_dropped() {
        let mut cfg = HostConfig::new(specs(1, &[ServiceKind::TlsEcho]));
        cfg.recovery.migrate_park_capacity = 2;
        let mut server = HostServer::build(cfg).unwrap();
        let mut f = RequestFactory::new(ServiceKind::TlsEcho, 0, 7);
        for _ in 0..5 {
            assert!(server.submit(0, 0, 0, f.next_request()).is_accepted());
        }
        let snap = server.extract_tenant(0).unwrap();
        assert_eq!(snap.parked.len(), 2, "bounded park buffer");
        assert_eq!(snap.shed_requests, 3, "overflow shed, counted");
        assert!(
            server
                .recovery_events()
                .iter()
                .any(|e| e.kind == RecoveryEventKind::Shed(ShedReason::Migrating)),
            "overflow shed carries the Migrating reason"
        );
        let local = server.adopt_tenant(&snap, snap.seal_counter).unwrap();
        server.drain().unwrap();
        let t = &server.tenants()[local];
        assert_eq!(t.accepted, t.completed + t.shed_requests, "reply-or-shed");
        assert_eq!((t.completed, t.shed_requests), (2, 3));
    }

    #[test]
    fn stale_snapshot_replay_is_refused_with_typed_rollback() {
        let mut server = HostServer::build(HostConfig::new(specs(1, &[ServiceKind::Db]))).unwrap();
        let mut factories = vec![RequestFactory::new(ServiceKind::Db, 0, 42)];
        run_segment(&mut server, &[0], &mut factories, 2);
        let stale = server.extract_tenant(0).unwrap();
        let local = server.adopt_tenant(&stale, stale.seal_counter).unwrap();
        run_segment(&mut server, &[local], &mut factories, 2);
        let fresh = server.extract_tenant(local).unwrap();
        assert_eq!((stale.seal_counter, fresh.seal_counter), (1, 2));

        // Replaying the internally-consistent stale snapshot against the
        // coordinator's floor is refused with the typed rollback error —
        // the ne-tls stance: refuse, never downgrade.
        let err = server.adopt_tenant(&stale, fresh.seal_counter).unwrap_err();
        assert_eq!(
            err,
            HostError::StateRollback {
                tenant: "t0".into(),
                presented: 1,
                expected: 2,
            }
        );
        // The refusal left the host clean: the fresh snapshot still lands.
        let local = server.adopt_tenant(&fresh, fresh.seal_counter).unwrap();
        run_segment(&mut server, &[local], &mut factories, 2);
        let t = &server.tenants()[local];
        assert_eq!(t.accepted, t.completed + t.shed_requests, "reply-or-shed");
    }

    #[test]
    fn failed_adoption_rolls_back_to_source() {
        // Target with no EPC headroom refuses the adoption; the snapshot
        // then rolls back onto the source, which skips the low-water
        // headroom (the pages were the tenant's to begin with).
        let mut server =
            HostServer::build(HostConfig::new(specs(1, &[ServiceKind::TlsEcho]))).unwrap();
        let mut f = RequestFactory::new(ServiceKind::TlsEcho, 0, 7);
        for _ in 0..3 {
            assert!(server.submit(0, 0, 0, f.next_request()).is_accepted());
        }
        let snap = server.extract_tenant(0).unwrap();
        let free = server.app.machine.free_epc_pages() as u64;
        server.admission.epc_low_water = free; // adoption headroom now unmeetable
        assert_eq!(
            server.adopt_tenant(&snap, snap.seal_counter).unwrap_err(),
            HostError::Sgx(SgxError::EpcFull)
        );
        let local = server.rollback_tenant(&snap, snap.seal_counter).unwrap();
        let phases: Vec<&str> = server
            .recovery_events()
            .iter()
            .filter_map(|e| match e.kind {
                RecoveryEventKind::Migrate(p) => Some(p.name()),
                _ => None,
            })
            .collect();
        assert!(phases.contains(&"rollback"), "rollback phase logged");
        server.drain().unwrap();
        let t = &server.tenants()[local];
        assert_eq!((t.completed, t.shed_requests), (3, 0), "zero drops");
    }

    #[test]
    fn unattested_tenant_is_refused_admission() {
        let mut server =
            HostServer::build(HostConfig::new(specs(1, &[ServiceKind::TlsEcho]))).unwrap();
        assert!(server.attested(0), "build attests loaded tenants");
        // Break the chain: tear the inner service down behind the host's
        // back and invalidate the verdict, as a respawn would.
        let svc = service_enclave_name("t0", ServiceKind::TlsEcho);
        server.app.unload(&svc).unwrap();
        server.attested[0] = false;
        let mut f = RequestFactory::new(ServiceKind::TlsEcho, 0, 7);
        assert_eq!(
            server.submit(0, 0, 0, f.next_request()),
            Admission::RejectedUnattested,
            "no verified chain, no traffic"
        );
        assert_eq!(
            server.attest_failures(0).values().sum::<u64>(),
            1,
            "the refusal reason was counted"
        );
    }
}
