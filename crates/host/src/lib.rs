#![deny(missing_docs)]

//! # ne-host — a multi-tenant nested-enclave hosting server
//!
//! The figure/table benchmarks exercise single-shot calls; this crate
//! serves **sustained concurrent traffic**, the shape the paper's nested
//! enclaves were designed for: one outer *gate* enclave per tenant, one
//! inner enclave per service, so a tenant's services are mutually isolated
//! yet a request crosses only cheap NEENTER/NEEXIT boundaries once it is
//! inside the tenant's trust domain.
//!
//! The moving parts:
//!
//! * [`tenant`] — tenant specs, bounded request queues, traffic counters;
//! * [`service`] — the three inner-enclave service adapters (mini-TLS
//!   echo, SQL/YCSB, SVM inference) and the matching client-side
//!   [`service::RequestFactory`];
//! * [`admission`] — bounded-queue backpressure plus EPC-pressure
//!   shedding, lowest-priority tenants first;
//! * [`scheduler`] — the TCS-aware work-stealing dispatcher across the
//!   simulated cores, with invariant counters that must read zero;
//! * [`recovery`] — fault classification, retry/backoff policy, enclave
//!   respawn bookkeeping, and the per-tenant circuit breaker that turns
//!   injected chaos ([`ne_sgx::fault`]) into reply-or-shed outcomes;
//! * [`error`] — the typed [`error::HostError`] every serving-path
//!   failure flows through (no `unwrap` on the request path);
//! * [`server`] — [`server::HostServer`], which wires it all to a
//!   [`ne_core::runtime::NestedApp`] and records end-to-end request
//!   latency into the machine's always-on histograms
//!   ([`ne_sgx::profile::ProfileEvent::Request`]).
//!
//! The `ne-load` bin in `ne-bench` drives a [`server::HostServer`] with
//! deterministic seeded open- and closed-loop arrival processes and emits
//! the standard `ne-bench/v1` / metrics / profile / trace exports.

pub mod admission;
pub mod error;
pub mod migrate;
pub mod recovery;
pub mod replay;
pub mod scheduler;
pub mod server;
pub mod service;
pub mod tenant;

pub use admission::{Admission, AdmissionControl};
pub use error::{HostError, HostResult};
pub use migrate::TenantSnapshot;
pub use recovery::{
    MigratePhase, RecoveryAction, RecoveryEvent, RecoveryEventKind, RecoveryPolicy, RecoveryState,
    ShedReason,
};
pub use replay::{ReplayCache, ReplayCacheStats, ReplayKey};
pub use scheduler::{Scheduler, SchedulerStats};
pub use server::{HostConfig, HostReport, HostServer, TenantReport};
pub use service::{ComputeMode, HostCompute, RequestFactory, ServiceKind};
pub use tenant::{Completion, Request, TenantSpec};
