//! Fault recovery: retry policy, fault classification, and the per-tenant
//! circuit breaker.
//!
//! The chaos layer ([`ne_sgx::fault`]) injects architectural faults at
//! EENTER boundaries; this module is the host's answer. Every fault a
//! dispatch can surface maps to exactly one [`RecoveryAction`]; the
//! server's dispatch loop applies the action (reload evicted pages,
//! respawn a poisoned enclave, respawn the whole tenant), charges a
//! deterministic exponential backoff with jitter, and retries — until the
//! request completes, its attempt budget is exhausted, or its deadline
//! passes, at which point the request is **explicitly shed and counted**,
//! never silently dropped. The reply-or-shed invariant the property tests
//! assert is `accepted == completed + shed_requests` for every tenant.
//!
//! Respawns are the expensive path (EREMOVE, then a full
//! ECREATE/EADD/EINIT rebuild plus NASSO re-association). A tenant whose
//! enclaves churn through respawns faster than
//! [`RecoveryPolicy::breaker_threshold`] per
//! [`RecoveryPolicy::breaker_window`] cycles trips its **circuit
//! breaker**: the tenant is shed at admission and its queued requests are
//! shed explicitly, converting a grey failure (every request limping
//! through rebuild after rebuild) into a fast, attributable one — without
//! touching sibling tenants.

use ne_sgx::error::{FaultKind, SgxError};
use ne_sgx::EnclaveId;
use std::collections::VecDeque;

/// Knobs of the retry/respawn/breaker machinery.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryPolicy {
    /// Dispatch attempts per request before it is shed (first try
    /// included).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_base << min(n, 6)` plus
    /// jitter, charged to the serving core as untrusted cycles.
    pub backoff_base: u64,
    /// Upper bound (inclusive) on the deterministic per-retry jitter.
    pub backoff_jitter: u64,
    /// A request older than this (cycles since arrival, checked between
    /// attempts) is shed instead of retried. Zero disables the deadline.
    pub deadline: u64,
    /// Respawns within [`RecoveryPolicy::breaker_window`] that trip the
    /// tenant's circuit breaker.
    pub breaker_threshold: u32,
    /// Sliding window (cycles) over which respawns are counted.
    pub breaker_window: u64,
    /// Bound on the number of already-admitted requests a live migration
    /// parks while the tenant's enclaves are torn down and rebuilt.
    /// Parked requests drain after resume; overflow is shed explicitly
    /// with [`ShedReason::Migrating`] — never dropped silently.
    pub migrate_park_capacity: usize,
    /// Budget (cycles on the migrating core) for each phase of the
    /// five-phase migration machine. A phase that overruns fails the
    /// migration, which rolls back to the source. Zero disables the
    /// check.
    pub migrate_phase_deadline: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 4,
            backoff_base: 20_000,
            backoff_jitter: 8_000,
            deadline: 400_000_000,
            breaker_threshold: 8,
            breaker_window: 50_000_000,
            migrate_park_capacity: 64,
            migrate_phase_deadline: 800_000_000,
        }
    }
}

/// What the dispatch loop should do about one failed attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Transient condition (e.g. a stalled switchless window): retry
    /// after backoff, nothing to repair.
    Retry,
    /// Chaos evicted the enclave's hot pages: reload the parked blobs
    /// (ELDU) and retry.
    ReloadAndRetry,
    /// This enclave is poisoned: tear it down (EREMOVE) and rebuild it,
    /// then retry.
    RespawnEnclave(EnclaveId),
    /// Integrity is gone at an unknown blast radius: rebuild the whole
    /// tenant (gate and services), then retry.
    RespawnTenant,
    /// The request itself failed deterministically (application-level
    /// error): shed it now, retrying cannot help.
    Shed,
    /// Not a fault the host can absorb — propagate; something is wrong
    /// with the host itself.
    Fatal,
}

/// Maps one dispatch fault to the action that repairs it.
///
/// The table is total over [`SgxError`]: anything not explicitly
/// recoverable is [`RecoveryAction::Fatal`], so a new error variant fails
/// loud instead of being retried blindly.
pub fn classify(err: &SgxError) -> RecoveryAction {
    match err {
        SgxError::EnclavePoisoned(eid) => RecoveryAction::RespawnEnclave(*eid),
        SgxError::Stalled(_) => RecoveryAction::Retry,
        SgxError::Fault { kind, .. } => match kind {
            // Physical tamper: the MEE refuses the line until the page is
            // rebuilt. EADD on the respawn clears the tamper marks.
            FaultKind::IntegrityViolation => RecoveryAction::RespawnTenant,
            // Chaos-forced EWB left ELRANGE pages swapped out; the blobs
            // are parked machine-side and reloadable.
            FaultKind::EnclavePageSwappedOut | FaultKind::NotMapped => {
                RecoveryAction::ReloadAndRetry
            }
            _ => RecoveryAction::Fatal,
        },
        // Sealing/replay rejection on reload: the blob is unusable, the
        // enclave's evicted state is lost — rebuild from the image.
        SgxError::Paging(_) => RecoveryAction::RespawnTenant,
        // Application-level failure (bad SQL against a rebuilt-and-empty
        // database, oversized payload, ...): deterministic, shed it.
        SgxError::GeneralProtection(_) => RecoveryAction::Shed,
        _ => RecoveryAction::Fatal,
    }
}

/// Backoff (cycles) to charge before retry number `attempt` of request
/// (`tenant`, `seq`): exponential in the attempt with a deterministic
/// jitter hashed from the identifiers, so two runs of the same seeded
/// workload back off identically while concurrent retries of different
/// requests still de-synchronize.
pub fn backoff_cycles(
    policy: &RecoveryPolicy,
    seed: u64,
    tenant: usize,
    seq: u64,
    attempt: u32,
) -> u64 {
    let base = policy.backoff_base << attempt.min(6);
    if policy.backoff_jitter == 0 {
        return base;
    }
    // SplitMix64 finalizer over the request identity.
    let mut x = seed
        ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ seq.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ u64::from(attempt).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    base + x % (policy.backoff_jitter + 1)
}

/// Why a request was explicitly shed (the label on a
/// [`RecoveryEventKind::Shed`] event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's circuit breaker was open at dispatch time.
    BreakerOpen,
    /// A deterministic application-level failure; retrying cannot help.
    AppError,
    /// The request's attempt budget ran out.
    Attempts,
    /// The request's deadline passed between attempts.
    Deadline,
    /// The request was queued when the breaker tripped and the queue was
    /// drained to explicit sheds.
    QueueDrained,
    /// The request was queued when its client stopped producing the
    /// traffic it promised (a wire front-door read deadline expired) and
    /// the tenant was shed at admission.
    ClientStalled,
    /// The request was queued when a live migration started and the
    /// bounded park buffer ([`RecoveryPolicy::migrate_park_capacity`])
    /// was already full.
    Migrating,
}

impl ShedReason {
    /// Stable snake_case name (export key).
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::BreakerOpen => "breaker_open",
            ShedReason::AppError => "app_error",
            ShedReason::Attempts => "attempts",
            ShedReason::Deadline => "deadline",
            ShedReason::QueueDrained => "queue_drained",
            ShedReason::ClientStalled => "client_stalled",
            ShedReason::Migrating => "migrating",
        }
    }
}

/// The phases of the live-migration state machine, in execution order:
/// `Quiesce → Seal → Remove → Rebuild → Resume`, with `Rollback` taken
/// from any failed phase back to the source host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigratePhase {
    /// Admission closed; queued requests parked (bounded) or shed.
    Quiesce,
    /// Every service enclave sealed its session state into a
    /// counter-stamped blob (`ne-core` lifecycle format).
    Seal,
    /// Source enclaves torn down (EREMOVE), EPC pages freed.
    Remove,
    /// Gate and service enclaves rebuilt on the target and re-associated
    /// (NASSO), admission re-gated on a verified NEREPORT chain.
    Rebuild,
    /// Sealed state restored into the rebuilt enclaves, parked requests
    /// re-queued, admission reopened.
    Resume,
    /// The target failed; the tenant was rebuilt on the source from the
    /// same sealed blobs.
    Rollback,
}

impl MigratePhase {
    /// Stable snake_case name (export key).
    pub fn name(self) -> &'static str {
        match self {
            MigratePhase::Quiesce => "quiesce",
            MigratePhase::Seal => "seal",
            MigratePhase::Remove => "remove",
            MigratePhase::Rebuild => "rebuild",
            MigratePhase::Resume => "resume",
            MigratePhase::Rollback => "rollback",
        }
    }
}

/// What one recovery event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEventKind {
    /// A retry backoff of `wait` cycles was charged.
    Backoff {
        /// Cycles charged to the serving core before the retry.
        wait: u64,
    },
    /// Chaos-evicted pages were reloaded (ELDU) for the tenant.
    Reload,
    /// The tenant's gate enclave was torn down and rebuilt.
    RespawnGate,
    /// One of the tenant's service enclaves was torn down and rebuilt.
    RespawnService,
    /// The whole tenant (every service, then the gate) was rebuilt.
    RespawnTenant,
    /// The tenant's circuit breaker tripped open (logged once; the
    /// breaker latches).
    BreakerOpen,
    /// A request was shed explicitly.
    Shed(ShedReason),
    /// A live-migration phase completed (or, for
    /// [`MigratePhase::Rollback`], was taken).
    Migrate(MigratePhase),
}

impl RecoveryEventKind {
    /// Stable snake_case name (export key).
    pub fn name(self) -> &'static str {
        match self {
            RecoveryEventKind::Backoff { .. } => "backoff",
            RecoveryEventKind::Reload => "reload",
            RecoveryEventKind::RespawnGate => "respawn_gate",
            RecoveryEventKind::RespawnService => "respawn_service",
            RecoveryEventKind::RespawnTenant => "respawn_tenant",
            RecoveryEventKind::BreakerOpen => "breaker_open",
            RecoveryEventKind::Shed(_) => "shed",
            RecoveryEventKind::Migrate(MigratePhase::Quiesce) => "migrate_quiesce",
            RecoveryEventKind::Migrate(MigratePhase::Seal) => "migrate_seal",
            RecoveryEventKind::Migrate(MigratePhase::Remove) => "migrate_remove",
            RecoveryEventKind::Migrate(MigratePhase::Rebuild) => "migrate_rebuild",
            RecoveryEventKind::Migrate(MigratePhase::Resume) => "migrate_resume",
            RecoveryEventKind::Migrate(MigratePhase::Rollback) => "migrate_rollback",
        }
    }
}

/// One cycle-stamped recovery action the server took, in the order it was
/// taken. The server keeps a log of these (cleared with the measurement
/// window) so an observability layer can correlate chaos injections
/// ([`ne_sgx::fault::ChaosInjection`]) with the host's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// Serving-clock cycle stamp at the time the action was taken.
    pub cycle: u64,
    /// The tenant the action was for (spec-order index).
    pub tenant: usize,
    /// What happened.
    pub kind: RecoveryEventKind,
}

/// Per-tenant recovery bookkeeping: respawn history and breaker state.
#[derive(Debug, Default)]
pub struct RecoveryState {
    /// Cycle timestamps of recent respawns, oldest first, pruned to the
    /// breaker window.
    pub respawn_times: VecDeque<u64>,
    /// Cumulative respawns (reporting; never pruned).
    pub respawns: u64,
    /// True once the breaker tripped: the tenant is shed, its queue
    /// drained to explicit sheds, and no further respawns are attempted.
    pub breaker_open: bool,
}

impl RecoveryState {
    /// Records a respawn at cycle `now`; returns true when this respawn
    /// trips (or finds already tripped) the circuit breaker.
    pub fn note_respawn(&mut self, now: u64, policy: &RecoveryPolicy) -> bool {
        self.respawns += 1;
        self.respawn_times.push_back(now);
        while let Some(&t0) = self.respawn_times.front() {
            if now.saturating_sub(t0) > policy.breaker_window {
                self.respawn_times.pop_front();
            } else {
                break;
            }
        }
        if self.respawn_times.len() as u32 >= policy.breaker_threshold {
            self.breaker_open = true;
        }
        self.breaker_open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_sgx::addr::VirtAddr;

    #[test]
    fn classification_table() {
        let eid = EnclaveId(7);
        assert_eq!(
            classify(&SgxError::EnclavePoisoned(eid)),
            RecoveryAction::RespawnEnclave(eid)
        );
        assert_eq!(
            classify(&SgxError::Stalled("x".into())),
            RecoveryAction::Retry
        );
        assert_eq!(
            classify(&SgxError::Fault {
                kind: FaultKind::IntegrityViolation,
                addr: VirtAddr(0)
            }),
            RecoveryAction::RespawnTenant
        );
        assert_eq!(
            classify(&SgxError::Fault {
                kind: FaultKind::EnclavePageSwappedOut,
                addr: VirtAddr(0)
            }),
            RecoveryAction::ReloadAndRetry
        );
        assert_eq!(
            classify(&SgxError::Paging("replay".into())),
            RecoveryAction::RespawnTenant
        );
        assert_eq!(
            classify(&SgxError::GeneralProtection("app error".into())),
            RecoveryAction::Shed
        );
        assert_eq!(classify(&SgxError::EpcFull), RecoveryAction::Fatal);
        assert_eq!(
            classify(&SgxError::Fault {
                kind: FaultKind::WriteToReadOnly,
                addr: VirtAddr(0)
            }),
            RecoveryAction::Fatal
        );
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let p = RecoveryPolicy::default();
        let a = backoff_cycles(&p, 1, 0, 5, 1);
        assert_eq!(
            a,
            backoff_cycles(&p, 1, 0, 5, 1),
            "same identity, same wait"
        );
        // Exponential floor, bounded jitter.
        for attempt in 0..8 {
            let w = backoff_cycles(&p, 1, 0, 5, attempt);
            let floor = p.backoff_base << attempt.min(6);
            assert!(
                w >= floor && w <= floor + p.backoff_jitter,
                "{attempt}: {w}"
            );
        }
        // Different requests de-synchronize.
        assert_ne!(
            backoff_cycles(&p, 1, 0, 5, 1) - (p.backoff_base << 1),
            backoff_cycles(&p, 1, 0, 6, 1) - (p.backoff_base << 1),
        );
        let no_jitter = RecoveryPolicy {
            backoff_jitter: 0,
            ..p
        };
        assert_eq!(
            backoff_cycles(&no_jitter, 9, 3, 3, 2),
            no_jitter.backoff_base << 2
        );
    }

    #[test]
    fn breaker_trips_on_churn_within_window_only() {
        let p = RecoveryPolicy {
            breaker_threshold: 3,
            breaker_window: 1_000,
            ..RecoveryPolicy::default()
        };
        // Spread out: never trips.
        let mut calm = RecoveryState::default();
        for i in 0..10u64 {
            assert!(!calm.note_respawn(i * 10_000, &p));
        }
        assert_eq!(calm.respawns, 10);
        // Churn: third respawn within the window trips it, and it latches.
        let mut churn = RecoveryState::default();
        assert!(!churn.note_respawn(100, &p));
        assert!(!churn.note_respawn(200, &p));
        assert!(churn.note_respawn(300, &p));
        assert!(churn.breaker_open);
        assert!(churn.note_respawn(999_999, &p), "breaker latches open");
    }
}
