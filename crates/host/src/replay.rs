//! The macro-op replay cache: memoized request-level machine effects.
//!
//! Once a serving workload reaches steady state, most requests are
//! *shape repeats*: the same tenant, the same service, the same payload
//! and reply lengths, on the same core. The simulated-machine work such
//! a request performs — transitions, TLB flushes, LLC traffic, cycle
//! charges — is a deterministic function of that shape (handlers compute
//! natively on the host; the machine only sees length-dependent charges
//! and fixed-address buffer traffic). [`ReplayCache`] stores the
//! captured [`MacroEffect`] of the first occurrence of each shape and
//! lets [`crate::server::HostServer::step`] replay it instead of
//! re-stepping every access.
//!
//! Lookup is two-phase so the miss path stays cheap: requests are first
//! matched by [`ReplayKey`] — everything known *before* any compute —
//! and only when candidates exist does the host probe its compute twin
//! ([`crate::service::HostCompute`]) for the reply length that selects
//! among them. A cold shape therefore costs one `HashMap` miss, not a
//! dry-run of the service; a warm shape's probe doubles as the replay's
//! reply computation, so no twin work is ever wasted on the hit path.
//!
//! Correctness rests on three gates, all enforced machine-side in
//! [`ne_sgx::replay`]:
//!
//! 1. **Capture cleanliness** — only fault-free, chaos-quiet, trace-off
//!    executions confined to the serving core (plus the switchless
//!    worker) are ever cached.
//! 2. **Replay preconditions** — a cached effect is re-applied only when
//!    the machine would demonstrably reproduce it: epoch match, TLB
//!    fingerprints match, every recorded LLC line still resident, and no
//!    chaos term due to fire across the replayed EENTER sequence.
//! 3. **Epoch invalidation** — any machine mutation that could change a
//!    future execution (enclave lifecycle, paging, chaos installation,
//!    tampering, migration teardown) bumps
//!    [`ne_sgx::machine::Machine::replay_epoch`]; the cache flushes
//!    itself whenever the epoch moves.
//!
//! Application-level state effects (database writes) are **not** part of
//! the memoized effect: on a replay hit the host runs the twin natively
//! (probe for the reply, commit-once for state), so replies and service
//! state stay byte-identical to a cache-off run.

use crate::service::ServiceKind;
use ne_sgx::replay::MacroEffect;
use std::collections::{HashMap, HashSet, VecDeque};

/// Identity of a request shape, built from what the host knows *before*
/// running any compute. Together with the probed reply length it fully
/// determines the simulated-machine work: every handler charge is a
/// function of payload/reply length, service payloads are never
/// marshalled through simulated memory, and the switchless reply slot is
/// a fixed address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplayKey {
    /// Owning tenant index.
    pub tenant: usize,
    /// Index into the tenant's service list.
    pub service: usize,
    /// The serving core. A [`MacroEffect`] advances the specific core it
    /// was captured on, so an effect recorded on core A must never be
    /// replayed for a request being served on core B — that would
    /// misattribute every cycle. Keying by core makes the mismatch
    /// structurally impossible.
    pub core: usize,
    /// The service kind (guards against two tenants' service lists
    /// aliasing the same index to different kinds after a migration).
    pub kind: ServiceKind,
    /// Request payload length in bytes.
    pub payload_len: usize,
}

/// Counters of one [`ReplayCache`], reset with the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCacheStats {
    /// Lookups that found an entry *and* replayed it successfully.
    pub hits: u64,
    /// Lookups that found no entry (cold shape or unseen reply length).
    pub misses: u64,
    /// Effects captured and inserted.
    pub captures: u64,
    /// Lookups that found an entry but were refused by the machine's
    /// replay preconditions (stale TLB fingerprint, evicted LLC line,
    /// chaos term due to fire); the request then ran natively.
    pub rejects: u64,
    /// Entries dropped by the FIFO capacity bound.
    pub evictions: u64,
    /// Whole-cache flushes triggered by a machine epoch bump.
    pub stale_flushes: u64,
}

/// FIFO-bounded two-level map from request shape (then probed reply
/// length) to captured machine effect, with whole-cache invalidation on
/// machine epoch changes.
#[derive(Debug)]
pub struct ReplayCache {
    /// The machine epoch the cached effects were captured under.
    epoch: u64,
    /// Few reply lengths exist per shape, so a small vec beats a second
    /// hash level.
    map: HashMap<ReplayKey, Vec<(usize, MacroEffect)>>,
    order: VecDeque<(ReplayKey, usize)>,
    /// Shapes that have missed at least once. Capturing makes the
    /// *native* execution it brackets roughly twice as expensive
    /// (recording hooks on every charge and access), so paying it for a
    /// shape that never repeats is pure loss; [`ReplayCache::admit`]
    /// defers capture to a shape's second miss, trading one extra warm
    /// round for a cheap long tail.
    seen: HashSet<ReplayKey>,
    len: usize,
    capacity: usize,
    stats: ReplayCacheStats,
}

impl ReplayCache {
    /// An empty cache bounded to `capacity` effects (at least 1).
    pub fn new(capacity: usize) -> ReplayCache {
        ReplayCache {
            epoch: 0,
            map: HashMap::new(),
            order: VecDeque::new(),
            seen: HashSet::new(),
            len: 0,
            capacity: capacity.max(1),
            stats: ReplayCacheStats::default(),
        }
    }

    /// Reconciles the cache with the machine's current replay epoch:
    /// every cached effect was captured under the old epoch, so an epoch
    /// move invalidates all of them at once.
    pub fn sync_epoch(&mut self, epoch: u64) {
        if epoch == self.epoch {
            return;
        }
        if self.len > 0 {
            self.stats.stale_flushes += 1;
            self.map.clear();
            self.order.clear();
            self.len = 0;
        }
        self.seen.clear();
        self.epoch = epoch;
    }

    /// Whether any effect is cached under this shape. The host checks
    /// this *before* probing its compute twin, so cold shapes never pay
    /// for a dry run.
    pub fn has_candidates(&self, key: &ReplayKey) -> bool {
        self.map.contains_key(key)
    }

    /// The cached effect for this shape and probed reply length, if any.
    /// Call [`ReplayCache::sync_epoch`] first; counting (hit/miss/
    /// reject) is the caller's, since only the machine can tell a usable
    /// entry from a refused one.
    pub fn lookup(&self, key: &ReplayKey, reply_len: usize) -> Option<&MacroEffect> {
        self.map
            .get(key)?
            .iter()
            .find(|(len, _)| *len == reply_len)
            .map(|(_, effect)| effect)
    }

    /// Inserts a freshly captured effect, evicting the oldest when full.
    /// A re-insert under an existing (shape, reply length) replaces it
    /// in place.
    pub fn insert(&mut self, key: ReplayKey, reply_len: usize, effect: MacroEffect) {
        self.stats.captures += 1;
        let bucket = self.map.entry(key).or_default();
        if let Some(slot) = bucket.iter_mut().find(|(len, _)| *len == reply_len) {
            slot.1 = effect;
            return;
        }
        bucket.push((reply_len, effect));
        self.order.push_back((key, reply_len));
        self.len += 1;
        if self.len > self.capacity {
            if let Some((victim, victim_len)) = self.order.pop_front() {
                if let Some(bucket) = self.map.get_mut(&victim) {
                    bucket.retain(|(len, _)| *len != victim_len);
                    if bucket.is_empty() {
                        self.map.remove(&victim);
                    }
                }
                self.len -= 1;
                self.stats.evictions += 1;
            }
        }
    }

    /// Whether a just-missed shape should be captured this time: `true`
    /// from the shape's second miss onward. The first miss only marks the
    /// shape as seen — see the `seen` field for why one-off shapes must
    /// not pay the capture tax. The set is bounded alongside the FIFO: if
    /// it somehow outgrows four times the cache capacity it is cleared,
    /// costing at worst one extra warm round per live shape.
    pub fn admit(&mut self, key: &ReplayKey) -> bool {
        if self.seen.contains(key) {
            return true;
        }
        if self.seen.len() >= self.capacity * 4 {
            self.seen.clear();
        }
        self.seen.insert(*key);
        false
    }

    /// Records a successful replay.
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records a lookup that found nothing.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Records a machine-refused replay (the entry stays: the refusal may
    /// be transient, e.g. an LLC line that gets re-fetched).
    pub fn note_reject(&mut self) {
        self.stats.rejects += 1;
    }

    /// Cached effects right now.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ReplayCacheStats {
        self.stats
    }

    /// Zeroes the counters (cached entries stay valid — captured deltas
    /// are relative, so they survive a metrics reset).
    pub fn reset_stats(&mut self) {
        self.stats = ReplayCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: usize) -> ReplayKey {
        ReplayKey {
            tenant: 0,
            service: 0,
            core: 0,
            kind: ServiceKind::TlsEcho,
            payload_len: n,
        }
    }

    #[test]
    fn epoch_move_flushes_everything() {
        let mut c = ReplayCache::new(8);
        c.sync_epoch(3);
        assert_eq!(c.stats().stale_flushes, 0, "empty flushes are free");
        c.insert(key(1), 64, MacroEffect::default());
        c.sync_epoch(3);
        assert_eq!(c.len(), 1, "same epoch keeps entries");
        assert!(c.has_candidates(&key(1)));
        c.sync_epoch(4);
        assert!(c.is_empty());
        assert!(!c.has_candidates(&key(1)));
        assert_eq!(c.stats().stale_flushes, 1);
    }

    #[test]
    fn fifo_capacity_evicts_oldest() {
        let mut c = ReplayCache::new(2);
        c.insert(key(1), 64, MacroEffect::default());
        c.insert(key(2), 64, MacroEffect::default());
        c.insert(key(3), 64, MacroEffect::default());
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(1), 64).is_none(), "oldest evicted");
        assert!(!c.has_candidates(&key(1)), "empty bucket pruned");
        assert!(c.lookup(&key(3), 64).is_some());
        assert_eq!(c.stats().evictions, 1);
        // Replacing an existing (shape, reply length) neither grows nor
        // evicts.
        c.insert(key(2), 64, MacroEffect::default());
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reply_lengths_disambiguate_within_a_shape() {
        let mut c = ReplayCache::new(8);
        c.insert(key(9), 16, MacroEffect::default());
        c.insert(key(9), 32, MacroEffect::default());
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&key(9), 16).is_some());
        assert!(c.lookup(&key(9), 32).is_some());
        assert!(c.lookup(&key(9), 48).is_none(), "unseen reply length");
    }
}
