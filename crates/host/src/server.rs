//! The hosting server: tenants, gates, and the serving loop.
//!
//! [`HostServer::build`] loads one outer **gate** enclave per tenant and
//! one inner enclave per service, highest-priority tenants first; a tenant
//! whose enclaves would push free EPC below the admission controller's
//! low-water mark is *shed at birth* — its enclaves are never loaded and
//! its submissions are rejected — rather than loaded into a working set
//! that would thrash through EWB/ELDU for everyone.
//!
//! A request's life: [`HostServer::submit`] runs admission control
//! ([`crate::admission`]); [`HostServer::step`] lets the scheduler
//! ([`crate::scheduler`]) pick a core and a request, idle-advances the
//! core's clock to the arrival time if the core was ahead of it, and
//! drives the full nested call chain:
//!
//! ```text
//! untrusted ── ecall ──► tenant gate (outer) ── n_ecall ──► service (inner)
//!      ▲                   │   ▲                                 │
//!      └── reply ocall ────┘   └───────────── reply ◄────────────┘
//!       (switchless when a worker core is reserved)
//! ```
//!
//! End-to-end latency (`completion − arrival`) is recorded into the
//! machine's always-on profile under [`ProfileEvent::Request`], so the
//! standard metrics/bench exports pick up request p50/p99 with no extra
//! plumbing.
//!
//! **Self-healing**: when a chaos plan ([`ne_sgx::fault::FaultPlan`]) is
//! installed, dispatches can fault. [`HostServer::step`] classifies every
//! fault ([`crate::recovery::classify`]), repairs what is repairable —
//! reload chaos-evicted pages, respawn a poisoned enclave
//! (EREMOVE → rebuild → NASSO re-association), respawn a whole tenant
//! after an integrity violation — charges a deterministic backoff, and
//! retries, all without touching sibling tenants. A request whose attempt
//! budget or deadline runs out is shed **explicitly and counted**
//! ([`crate::tenant::TenantState::shed_requests`]); a tenant whose
//! respawns churn trips a circuit breaker and fails fast. The server loop
//! itself never panics on an injected fault.

use crate::admission::{Admission, AdmissionControl};
use crate::error::{HostError, HostResult};
use crate::recovery::{
    backoff_cycles, classify, RecoveryAction, RecoveryEvent, RecoveryEventKind, RecoveryPolicy,
    RecoveryState, ShedReason,
};
use crate::replay::{ReplayCache, ReplayCacheStats, ReplayKey};
use crate::scheduler::{Scheduler, SchedulerStats};
use crate::service::{
    install_service, service_enclave_name, ComputeMode, HostCompute, ServiceKind,
};
use crate::tenant::{Completion, Request, TenantSpec, TenantState};
use ne_core::edl::Edl;
use ne_core::lifecycle::{attest_chain, AttestError};
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedFn};
use ne_core::switchless::SwitchlessQueue;
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_sgx::fault::{ChaosStats, FaultPlan};
use ne_sgx::profile::{HierLevel, ProfileEvent};
use ne_sgx::EnclaveId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Cycles the gate charges per request for header parse + routing.
pub const GATE_DISPATCH_CYCLES: u64 = 1_200;
/// Cycles one reply transmission costs (syscall + TCP/IP stack + NIC
/// handoff), charged to whichever core runs the untrusted `net_reply`.
pub const NET_REPLY_CYCLES: u64 = 45_000;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Hardware model; [`HwConfig::testbed`] unless an experiment narrows
    /// it (e.g. a small `prm_pages` to provoke shedding).
    pub hw: HwConfig,
    /// The tenants to host.
    pub tenants: Vec<TenantSpec>,
    /// Reserve the last core as an untrusted switchless worker (needs at
    /// least 2 cores; silently disabled otherwise). Gates then send
    /// replies through a [`SwitchlessQueue`] instead of a classic ocall.
    pub switchless: bool,
    /// Seed for per-tenant models and datasets.
    pub seed: u64,
    /// Admission policy (queue bounds live in each [`TenantSpec`]).
    pub admission: AdmissionControl,
    /// Payload bound of the switchless reply queue.
    pub switchless_capacity: usize,
    /// Retry/respawn/circuit-breaker policy for faulted dispatches.
    pub recovery: RecoveryPolicy,
    /// Enable the macro-op replay cache ([`crate::replay`]): memoize each
    /// request shape's machine effect and replay it on repeats instead of
    /// re-stepping every access. Off by default; the differential oracle
    /// proves every export is byte-identical either way.
    pub replay_cache: bool,
    /// Entry bound of the replay cache (FIFO eviction), when enabled.
    pub replay_cache_capacity: usize,
}

impl HostConfig {
    /// Testbed hardware, switchless on, default admission policy.
    pub fn new(tenants: Vec<TenantSpec>) -> HostConfig {
        HostConfig {
            hw: HwConfig::testbed(),
            tenants,
            switchless: true,
            seed: 0xC0FFEE,
            admission: AdmissionControl::default(),
            switchless_capacity: 4096,
            recovery: RecoveryPolicy::default(),
            replay_cache: false,
            replay_cache_capacity: 4096,
        }
    }
}

/// Per-tenant slice of a [`HostReport`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name.
    pub name: String,
    /// Priority (higher = more important).
    pub priority: u8,
    /// Whether the tenant's enclaves were loaded at all.
    pub loaded: bool,
    /// Whether the tenant ended the run shed.
    pub shed: bool,
    /// Requests accepted by admission control.
    pub accepted: u64,
    /// Rejections due to a full queue (backpressure).
    pub rejected_full: u64,
    /// Rejections due to shedding (EPC pressure).
    pub rejected_shed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Accepted requests the recovery layer shed explicitly.
    pub shed_requests: u64,
    /// Enclave respawns performed for this tenant.
    pub respawns: u64,
    /// Whether the tenant's circuit breaker ended the run open.
    pub breaker_open: bool,
}

/// End-of-run summary.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// One row per tenant, in spec order.
    pub tenants: Vec<TenantReport>,
    /// Scheduler counters (dispatches, steals, invariant violations).
    pub sched: SchedulerStats,
    /// Whether a switchless worker core was active.
    pub switchless: bool,
    /// Replies that degraded from switchless to a classic exit-based
    /// ocall because the reply core was in an injected stall window.
    pub degraded_replies: u64,
}

impl HostReport {
    /// Total completions across tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total accepted across tenants.
    pub fn accepted(&self) -> u64 {
        self.tenants.iter().map(|t| t.accepted).sum()
    }

    /// Total explicit sheds across tenants. Reply-or-shed says
    /// `accepted() == completed() + shed_requests()` once drained.
    pub fn shed_requests(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed_requests).sum()
    }

    /// Total enclave respawns across tenants.
    pub fn respawns(&self) -> u64 {
        self.tenants.iter().map(|t| t.respawns).sum()
    }
}

/// The multi-tenant hosting server.
pub struct HostServer {
    /// The underlying runtime; public so harnesses can export metrics,
    /// profiles, and traces from `app.machine` directly.
    pub app: NestedApp,
    pub(crate) tenants: Vec<TenantState>,
    pub(crate) sched: Scheduler,
    pub(crate) admission: AdmissionControl,
    worker_core: Option<usize>,
    pub(crate) completions: Vec<Completion>,
    pub(crate) seed: u64,
    pub(crate) policy: RecoveryPolicy,
    pub(crate) recovery: Vec<RecoveryState>,
    /// Shared with every gate closure; respawned gates reuse it.
    pub(crate) switchless_handle: Arc<Mutex<Option<SwitchlessQueue>>>,
    /// Switchless→classic reply degradations, counted from inside the
    /// gate closures.
    pub(crate) degraded_replies: Arc<AtomicU64>,
    /// Cycle-stamped recovery actions since the last measurement reset,
    /// in the order they were taken.
    pub(crate) events: Vec<RecoveryEvent>,
    /// Raw enclave id → owning tenant, covering every enclave ever built
    /// for a tenant (respawned-away ids stay mapped so late-arriving
    /// chaos events still attribute). Never cleared.
    pub(crate) eid_owner: BTreeMap<u64, usize>,
    /// Per-tenant "breaker-open already logged" latch, so the event log
    /// carries exactly one [`RecoveryEventKind::BreakerOpen`] per trip.
    pub(crate) breaker_logged: Vec<bool>,
    /// Per-tenant NEREPORT admission verdict: true once every (gate,
    /// service) pair has a verified attestation chain. Cleared whenever a
    /// tenant enclave is respawned — a rebuilt enclave is a new instance
    /// and must re-prove its chain before new traffic is admitted.
    pub(crate) attested: Vec<bool>,
    /// Per-tenant typed attestation refusal counts, keyed by
    /// [`AttestError::name`].
    pub(crate) attest_failures: Vec<BTreeMap<&'static str, u64>>,
    /// Per-tenant attestation epochs (bumped per chain attempt, so every
    /// challenge nonce is fresh).
    pub(crate) attest_epoch: Vec<u64>,
    /// Per-tenant monotonic sealed-state counters: the counter the last
    /// seal was stamped with, and the floor a restore must meet.
    pub(crate) seal_counters: Vec<u64>,
    /// Host-side compute twins of every loaded service's `handle` body,
    /// keyed by `(tenant index, service index)`. Refreshed whenever a
    /// service is (re)installed, so the twin always shares the live
    /// instance's state.
    pub(crate) computes: BTreeMap<(usize, usize), HostCompute>,
    /// The macro-op replay cache, when [`HostConfig::replay_cache`] is on.
    pub(crate) replay: Option<ReplayCache>,
}

pub(crate) fn gate_image(name: &str) -> EnclaveImage {
    EnclaveImage::new(name, b"host-gateway")
        .code_pages(8)
        .heap_pages(4)
        .edl(Edl::new().ecall("dispatch").ocall("net_reply"))
}

/// The gate's `dispatch` body: route by the one-byte service index, call
/// the inner service, push the reply out (switchless when available,
/// degrading to a classic exit-based ocall when the reply core is inside
/// an injected stall window).
pub(crate) fn gate_dispatch(
    services: Vec<String>,
    switchless: Arc<Mutex<Option<SwitchlessQueue>>>,
    degraded: Arc<AtomicU64>,
) -> TrustedFn {
    Arc::new(move |cx, msg| {
        let (&svc, payload) = msg
            .split_first()
            .ok_or_else(|| SgxError::GeneralProtection("empty request".into()))?;
        let name = services
            .get(svc as usize)
            .ok_or_else(|| SgxError::GeneralProtection(format!("unknown service index {svc}")))?;
        cx.charge(GATE_DISPATCH_CYCLES);
        let reply = cx.n_ecall(name, "handle", payload)?;
        let queue = *switchless.lock().unwrap_or_else(PoisonError::into_inner);
        match queue {
            Some(q) => match q.ocall(cx, "net_reply", &reply) {
                Ok(_) => {}
                // The worker core stopped polling: pay the transition and
                // push the reply out the classic way instead of failing
                // the whole dispatch.
                Err(SgxError::Stalled(_)) => {
                    degraded.fetch_add(1, Ordering::Relaxed);
                    cx.ocall("net_reply", &reply)?;
                }
                Err(e) => return Err(e),
            },
            None => {
                cx.ocall("net_reply", &reply)?;
            }
        }
        Ok(reply)
    })
}

/// EPC pages one tenant needs: gate + services, each `total_pages` of the
/// image plus its SECS page.
pub(crate) fn tenant_epc_pages(spec: &TenantSpec) -> u64 {
    let gate = gate_image(&spec.gate_name()).total_pages() + 1;
    let services: u64 = spec
        .services
        .iter()
        .map(|&k| {
            crate::service::service_image(&service_enclave_name(&spec.name, k), k).total_pages() + 1
        })
        .sum();
    gate + services
}

impl HostServer {
    /// Builds the server: loads tenants highest-priority first, shedding
    /// (not loading) any tenant that would push free EPC below the
    /// low-water mark, then sets up the switchless worker if configured.
    ///
    /// # Errors
    ///
    /// Loader failures other than the anticipated EPC exhaustion.
    pub fn build(cfg: HostConfig) -> HostResult<HostServer> {
        let mut app = NestedApp::new(cfg.hw.clone());
        let degraded_replies = Arc::new(AtomicU64::new(0));
        let net_reply: UntrustedFn = Arc::new(|cx, _args| {
            cx.charge(NET_REPLY_CYCLES);
            Ok(Vec::new())
        });
        app.register_untrusted("net_reply", net_reply);

        let switchless_handle: Arc<Mutex<Option<SwitchlessQueue>>> = Arc::new(Mutex::new(None));
        let mut computes: BTreeMap<(usize, usize), HostCompute> = BTreeMap::new();
        let mut order: Vec<usize> = (0..cfg.tenants.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(cfg.tenants[i].priority));
        let mut loaded = vec![false; cfg.tenants.len()];
        for &i in &order {
            let spec = &cfg.tenants[i];
            let need = tenant_epc_pages(spec);
            if (app.machine.free_epc_pages() as u64) < need + cfg.admission.epc_low_water {
                // Shed at birth: graceful degradation instead of loading a
                // working set that would thrash EWB/ELDU.
                continue;
            }
            let names: Vec<String> = spec
                .services
                .iter()
                .map(|&k| service_enclave_name(&spec.name, k))
                .collect();
            app.load(
                gate_image(&spec.gate_name()),
                [(
                    "dispatch".to_string(),
                    gate_dispatch(names, switchless_handle.clone(), degraded_replies.clone()),
                )],
            )?;
            let gate_name = spec.gate_name();
            // Seed per-service state by the spec's pinned identity when it
            // has one (the sharded cluster pins the global tenant id), by
            // list position otherwise — the historic unsharded behavior.
            let seed_index = spec.seed_index.unwrap_or(i);
            for (s, &kind) in spec.services.iter().enumerate() {
                let twin =
                    install_service(&mut app, &spec.name, &gate_name, seed_index, kind, cfg.seed)?;
                computes.insert((i, s), twin);
            }
            loaded[i] = true;
        }

        let num_cores = app.machine.num_cores();
        let worker_core = (cfg.switchless && num_cores >= 2).then(|| num_cores - 1);
        if let Some(w) = worker_core {
            let q = app.untrusted(0, |cx| {
                SwitchlessQueue::create(cx, cfg.switchless_capacity, w)
            });
            *switchless_handle
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(q);
        }
        let serving: Vec<usize> = (0..num_cores).filter(|c| Some(*c) != worker_core).collect();

        let tenants: Vec<TenantState> = cfg
            .tenants
            .into_iter()
            .zip(loaded)
            .map(|(spec, ok)| TenantState::new(spec, ok))
            .collect();
        let sched = Scheduler::new(serving, tenants.len());
        let recovery = tenants.iter().map(|_| RecoveryState::default()).collect();
        // Map every built enclave (gate and services) to its owner, so
        // machine-side chaos events can be attributed to tenants.
        let mut eid_owner = BTreeMap::new();
        for (i, t) in tenants.iter().enumerate() {
            if !t.loaded {
                continue;
            }
            let mut names = vec![t.spec.gate_name()];
            names.extend(
                t.spec
                    .services
                    .iter()
                    .map(|&k| service_enclave_name(&t.spec.name, k)),
            );
            for name in names {
                if let Ok(eid) = app.eid(&name) {
                    eid_owner.insert(eid.0, i);
                }
            }
        }
        let breaker_logged = vec![false; tenants.len()];
        let n = tenants.len();
        let mut server = HostServer {
            app,
            tenants,
            sched,
            admission: cfg.admission,
            worker_core,
            completions: Vec::new(),
            seed: cfg.seed,
            policy: cfg.recovery,
            recovery,
            switchless_handle,
            degraded_replies,
            events: Vec::new(),
            eid_owner,
            breaker_logged,
            attested: vec![false; n],
            attest_failures: vec![BTreeMap::new(); n],
            attest_epoch: vec![0; n],
            seal_counters: vec![0; n],
            computes,
            replay: cfg
                .replay_cache
                .then(|| ReplayCache::new(cfg.replay_cache_capacity)),
        };
        // NEREPORT-gated admission: every loaded tenant must prove its
        // attestation chain before the front door opens for it. A clean
        // build attests everything; a refusal leaves the tenant
        // unattested (traffic rejected, reason counted) without failing
        // the build — siblings are unaffected.
        for t in 0..n {
            if server.tenants[t].loaded {
                let _ = server.attest_tenant(t);
            }
        }
        Ok(server)
    }

    /// Deterministic 32-byte attestation challenge for one chain attempt.
    pub(crate) fn attest_nonce(seed: u64, identity: u64, kind: u64, epoch: u64) -> [u8; 32] {
        let mut n = [0u8; 32];
        n[..8]
            .copy_from_slice(&(seed ^ identity.wrapping_mul(0x9E37_79B9_7F4A_7C15)).to_le_bytes());
        n[8..16].copy_from_slice(&identity.to_le_bytes());
        n[16..24].copy_from_slice(&kind.to_le_bytes());
        n[24..32].copy_from_slice(&epoch.to_le_bytes());
        n
    }

    /// A serving core currently out of enclave mode (attestation and
    /// lifecycle ecalls must start from untrusted context).
    pub(crate) fn idle_core(&self) -> Option<usize> {
        self.sched
            .cores()
            .iter()
            .copied()
            .find(|&c| self.app.machine.current_enclave(c).is_none())
    }

    /// Drives the § IV-E NEREPORT admission chain for every (gate,
    /// service) pair of `tenant`: the inner enclave reports, the gate
    /// verifies MAC, nonce echo, live measurement, and the NASSO
    /// outer-relation. Success marks the tenant attested; the first broken
    /// link leaves it unattested with the typed refusal reason counted
    /// (see [`HostServer::attest_failures`]).
    ///
    /// # Errors
    ///
    /// The first [`AttestError`] in chain order.
    pub fn attest_tenant(&mut self, tenant: usize) -> Result<(), AttestError> {
        if tenant >= self.tenants.len() || !self.tenants[tenant].loaded {
            return Err(AttestError::Sgx(SgxError::GeneralProtection(format!(
                "no loaded tenant at index {tenant}"
            ))));
        }
        let Some(core) = self.idle_core() else {
            return Err(AttestError::Sgx(SgxError::GeneralProtection(
                "no serving core out of enclave mode for attestation".into(),
            )));
        };
        self.attest_epoch[tenant] += 1;
        let epoch = self.attest_epoch[tenant];
        let spec = self.tenants[tenant].spec.clone();
        let identity = spec.seed_index.unwrap_or(tenant) as u64;
        let gate = spec.gate_name();
        let result = spec.services.iter().try_for_each(|&kind| {
            let svc = service_enclave_name(&spec.name, kind);
            let nonce = Self::attest_nonce(self.seed, identity, kind as u64, epoch);
            attest_chain(&mut self.app, core, &gate, &svc, &nonce).map(|_| ())
        });
        match result {
            Ok(()) => {
                self.attested[tenant] = true;
                Ok(())
            }
            Err(e) => {
                self.attested[tenant] = false;
                *self.attest_failures[tenant].entry(e.name()).or_insert(0) += 1;
                Err(e)
            }
        }
    }

    /// Whether `tenant` currently holds a verified attestation chain.
    pub fn attested(&self, tenant: usize) -> bool {
        self.attested.get(tenant).copied().unwrap_or(false)
    }

    /// Typed attestation refusal counts for `tenant`, keyed by
    /// [`AttestError::name`]. Empty for a tenant that never failed.
    pub fn attest_failures(&self, tenant: usize) -> &BTreeMap<&'static str, u64> {
        static EMPTY: BTreeMap<&'static str, u64> = BTreeMap::new();
        self.attest_failures.get(tenant).unwrap_or(&EMPTY)
    }

    /// The reserved switchless worker core, when one is active.
    pub fn worker_core(&self) -> Option<usize> {
        self.worker_core
    }

    /// Tenant states (read-only).
    pub fn tenants(&self) -> &[TenantState] {
        &self.tenants
    }

    /// Completions recorded since the last reset, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Scheduler counters.
    pub fn sched_stats(&self) -> SchedulerStats {
        self.sched.stats
    }

    /// Invariant violations observed so far (must stay zero).
    pub fn invariant_violations(&self) -> u64 {
        self.sched.stats.invariant_violations
    }

    /// Queued requests across all tenants.
    pub fn pending(&self) -> usize {
        self.tenants.iter().map(|t| t.backlog()).sum()
    }

    /// The serving clock: the furthest-behind serving core's cycle count
    /// (where the next dispatch will happen).
    pub fn now(&self) -> u64 {
        self.sched
            .cores()
            .iter()
            .map(|&c| self.app.machine.cycles(c))
            .min()
            .unwrap_or(0)
    }

    /// Offers one request. Re-evaluates EPC pressure first and sheds the
    /// lowest-priority tenant when free EPC is under the low-water mark.
    /// A `tenant`/`service` out of range is rejected as
    /// [`Admission::RejectedInvalid`] rather than panicking the server.
    pub fn submit(
        &mut self,
        tenant: usize,
        service: usize,
        arrival: u64,
        payload: Vec<u8>,
    ) -> Admission {
        let valid = self
            .tenants
            .get(tenant)
            .is_some_and(|t| service < t.spec.services.len());
        if !valid {
            return Admission::RejectedInvalid;
        }
        let free = self.app.machine.free_epc_pages() as u64;
        if self.admission.under_pressure(free) {
            if let Some(victim) = self.admission.shed_victim(&self.tenants) {
                self.tenants[victim].shed = true;
            }
        }
        // NEREPORT gate: a loaded, serving tenant whose chain lapsed (a
        // respawn invalidated it) gets one re-attestation attempt here;
        // still unproven means no admission. Shed tenants skip the gate —
        // their front door is already closed.
        if self.tenants[tenant].loaded
            && !self.tenants[tenant].shed
            && !self.attested[tenant]
            && self.attest_tenant(tenant).is_err()
        {
            return Admission::RejectedUnattested;
        }
        self.admission
            .offer(&mut self.tenants[tenant], tenant, service, arrival, payload)
    }

    /// Serves one queued request, if any: the scheduler picks the
    /// furthest-behind core and a request (home tenants first, stealing
    /// otherwise), the invariants are checked, the core idle-advances to
    /// the arrival time if needed, and the full
    /// ecall → n_ecall → reply-ocall chain runs.
    ///
    /// Faulted dispatches go through the recovery layer: classify, repair
    /// (reload / respawn), back off, retry — up to the policy's attempt
    /// budget and deadline, after which the request is shed explicitly.
    /// `Ok(None)` therefore means "no request completed this step": the
    /// queues were empty, or a request was shed.
    ///
    /// # Errors
    ///
    /// Unrecoverable faults only ([`crate::recovery::RecoveryAction::Fatal`]
    /// — host bugs, not injected chaos); the request is put back at the
    /// head of its queue so no accepted work is lost.
    pub fn step(&mut self) -> HostResult<Option<Completion>> {
        let slot = self.sched.pick_core(&self.app.machine);
        let Some(mut req) = self.sched.pick_request(slot, &mut self.tenants) else {
            return Ok(None);
        };
        let core = self.sched.cores()[slot];
        // Fail fast once the tenant's breaker is open: queued work is
        // shed explicitly instead of limping through rebuilds.
        if self.recovery[req.tenant].breaker_open {
            self.tenants[req.tenant].shed_requests += 1;
            self.log_event(
                core,
                req.tenant,
                RecoveryEventKind::Shed(ShedReason::BreakerOpen),
            );
            return Ok(None);
        }
        let (gate_name, svc_name) = {
            let spec = &self.tenants[req.tenant].spec;
            (
                spec.gate_name(),
                service_enclave_name(&spec.name, spec.services[req.service]),
            )
        };
        let gate_eid = self.app.eid(&gate_name)?;
        let svc_eid = self.app.eid(&svc_name)?;
        if !self
            .sched
            .precheck(&self.app.machine, slot, gate_eid, svc_eid)
        {
            self.tenants[req.tenant].queue.push_front(req);
            return Err(HostError::Sgx(SgxError::GeneralProtection(
                "scheduler invariant violated".into(),
            )));
        }
        // The core idles until the request arrives, if it was ahead of the
        // arrival clock; the wait is charged as untrusted time so the
        // cycle-attribution identities keep holding.
        let now = self.app.machine.cycles(core);
        if req.arrival > now {
            let gap = req.arrival - now;
            self.app.untrusted(core, |cx| cx.charge(gap));
        }
        let start = self.app.machine.cycles(core);
        // Replay seam: shapes are keyed by what is known before any
        // compute runs, so a cold shape costs one map probe and nothing
        // else. Only when candidates exist does the host dry-run its
        // compute twin (no machine work, no state effects) for the reply
        // length that selects among them — and on a hit, that probe
        // doubles as the reply computation. The twin then commits the
        // service's state effect natively, exactly once — the same
        // single mutation the in-enclave handler would have made.
        // Anything short of a clean hit (missing twin, probe failure,
        // unseen reply length, machine refusal) falls through to the
        // native path below, which is byte-for-byte the cache-off path.
        let mut replay_key = None;
        if self.replay.is_some() {
            let key = ReplayKey {
                tenant: req.tenant,
                service: req.service,
                core,
                kind: self.tenants[req.tenant].spec.services[req.service],
                payload_len: req.payload.len(),
            };
            let epoch = self.app.machine.replay_epoch();
            let cache = self.replay.as_mut().expect("checked is_some above");
            cache.sync_epoch(epoch);
            let mut found = None;
            if cache.has_candidates(&key) {
                if let Some(twin) = self.computes.get(&(req.tenant, req.service)) {
                    if let Ok(probe) = twin.run(&req.payload, ComputeMode::Probe) {
                        found = Some((twin, probe));
                    }
                }
            }
            if let Some((twin, probe)) = found {
                if let Some(effect) = cache.lookup(&key, probe.len()) {
                    match self.app.machine.macro_replay(effect) {
                        Ok(()) => {
                            cache.note_hit();
                            // Stateful services must still apply the
                            // request's live state effect (the one
                            // mutation the handler would have made);
                            // pure services reuse the probe's reply.
                            let reply = if twin.is_stateful() {
                                let reply = twin.run(&req.payload, ComputeMode::Commit)?;
                                debug_assert_eq!(reply, probe, "probe/commit twin diverged");
                                reply
                            } else {
                                probe
                            };
                            return Ok(Some(self.finish_request(req, core, start, reply)));
                        }
                        Err(_refusal) => cache.note_reject(),
                    }
                } else {
                    cache.note_miss();
                }
            } else {
                cache.note_miss();
            }
            // Capture from the second miss of a shape onward: recording
            // roughly doubles the bracketed execution's cost, so one-off
            // shapes are cheaper to just run (see ReplayCache::admit).
            if self
                .replay
                .as_mut()
                .expect("checked is_some above")
                .admit(&key)
            {
                replay_key = Some(key);
            }
        }
        let mut capturing =
            replay_key.is_some() && self.app.machine.macro_capture_begin(core, self.worker_core);
        let mut msg = Vec::with_capacity(1 + req.payload.len());
        msg.push(req.service as u8);
        msg.extend_from_slice(&req.payload);
        let reply = loop {
            match self.app.ecall(core, &gate_name, "dispatch", &msg) {
                Ok(reply) => break reply,
                Err(e) => {
                    // A faulted attempt dirties the execution: whatever
                    // happens next (retry, shed, fatal), this request's
                    // effect is not cacheable.
                    if capturing {
                        self.app.machine.macro_capture_abort();
                        capturing = false;
                    }
                    req.attempts += 1;
                    match classify(&e) {
                        RecoveryAction::Fatal => {
                            self.tenants[req.tenant].queue.push_front(req);
                            return Err(e.into());
                        }
                        RecoveryAction::Shed => {
                            // Deterministic application-level failure:
                            // retrying cannot change the outcome.
                            self.tenants[req.tenant].shed_requests += 1;
                            self.log_event(
                                core,
                                req.tenant,
                                RecoveryEventKind::Shed(ShedReason::AppError),
                            );
                            return Ok(None);
                        }
                        action => {
                            if req.attempts >= self.policy.max_attempts {
                                self.tenants[req.tenant].shed_requests += 1;
                                self.log_event(
                                    core,
                                    req.tenant,
                                    RecoveryEventKind::Shed(ShedReason::Attempts),
                                );
                                return Ok(None);
                            }
                            if self.repair(req.tenant, action).is_err() {
                                // The tenant could not be healed; fail it
                                // fast and keep its siblings running.
                                self.trip_breaker(req.tenant);
                            }
                            if self.recovery[req.tenant].breaker_open {
                                self.trip_breaker(req.tenant);
                                self.tenants[req.tenant].shed_requests += 1;
                                self.log_event(
                                    core,
                                    req.tenant,
                                    RecoveryEventKind::Shed(ShedReason::BreakerOpen),
                                );
                                return Ok(None);
                            }
                            let wait = backoff_cycles(
                                &self.policy,
                                self.seed,
                                req.tenant,
                                req.seq,
                                req.attempts,
                            );
                            self.log_event(core, req.tenant, RecoveryEventKind::Backoff { wait });
                            self.app.untrusted(core, |cx| cx.charge(wait));
                            let age = self.app.machine.cycles(core).saturating_sub(req.arrival);
                            if self.policy.deadline > 0 && age > self.policy.deadline {
                                self.tenants[req.tenant].shed_requests += 1;
                                self.log_event(
                                    core,
                                    req.tenant,
                                    RecoveryEventKind::Shed(ShedReason::Deadline),
                                );
                                return Ok(None);
                            }
                        }
                    }
                }
            }
        };
        if capturing {
            if let (Some(effect), Some(key)) = (self.app.machine.macro_capture_end(), replay_key) {
                if let Some(cache) = self.replay.as_mut() {
                    cache.insert(key, reply.len(), effect);
                }
            }
        }
        Ok(Some(self.finish_request(req, core, start, reply)))
    }

    /// Books a served request: latency accounting, the request-level
    /// profile sample, the per-tenant FIFO invariant, and the completion
    /// record. Shared verbatim by the native path and the replay-hit path
    /// so both produce identical observable records.
    fn finish_request(
        &mut self,
        req: Request,
        core: usize,
        start: u64,
        reply: Vec<u8>,
    ) -> Completion {
        let end = self.app.machine.cycles(core);
        let latency = end.saturating_sub(req.arrival);
        self.app
            .machine
            .profile_record(ProfileEvent::Request, HierLevel::Untrusted, latency);

        let ts = &mut self.tenants[req.tenant];
        if ts.last_completed_seq.is_some_and(|prev| req.seq <= prev) {
            self.sched.stats.invariant_violations += 1;
            debug_assert!(
                false,
                "per-tenant FIFO violated: tenant {} completed seq {} after {:?}",
                req.tenant, req.seq, ts.last_completed_seq
            );
        }
        ts.last_completed_seq = Some(ts.last_completed_seq.map_or(req.seq, |p| p.max(req.seq)));
        ts.completed += 1;
        let completion = Completion {
            tenant: req.tenant,
            service: req.service,
            seq: req.seq,
            core,
            arrival: req.arrival,
            start,
            end,
            latency,
            reply,
        };
        self.completions.push(completion.clone());
        completion
    }

    /// Applies one repair action for `tenant`. Errors mean the repair
    /// itself failed (e.g. EPC exhausted during a rebuild) — the caller
    /// trips the breaker.
    fn repair(&mut self, tenant: usize, action: RecoveryAction) -> HostResult<()> {
        match action {
            RecoveryAction::Retry => Ok(()),
            RecoveryAction::ReloadAndRetry => {
                // Reload failures (sealing/replay rejection) escalate to a
                // full tenant rebuild: the evicted state is unusable.
                if self.reload_evicted(tenant).is_err() {
                    self.respawn_tenant(tenant)
                } else {
                    let now = self.now();
                    self.log_event_at(now, tenant, RecoveryEventKind::Reload);
                    Ok(())
                }
            }
            RecoveryAction::RespawnEnclave(eid) => self.respawn_enclave(tenant, eid),
            RecoveryAction::RespawnTenant => self.respawn_tenant(tenant),
            // Shed/Fatal never reach repair (handled by the caller).
            RecoveryAction::Shed | RecoveryAction::Fatal => Ok(()),
        }
    }

    /// Reloads (ELDU) every chaos-evicted page parked for the tenant's
    /// enclaves.
    fn reload_evicted(&mut self, tenant: usize) -> HostResult<usize> {
        let mut reloaded = 0;
        for name in self.tenant_enclave_names(tenant) {
            let eid = self.app.eid(&name)?;
            reloaded += self.app.machine.reload_chaos_evicted(eid)?;
        }
        Ok(reloaded)
    }

    /// Gate-first list of the tenant's enclave names.
    pub(crate) fn tenant_enclave_names(&self, tenant: usize) -> Vec<String> {
        let spec = &self.tenants[tenant].spec;
        let mut names = vec![spec.gate_name()];
        names.extend(
            spec.services
                .iter()
                .map(|&k| service_enclave_name(&spec.name, k)),
        );
        names
    }

    /// Respawns whichever of the tenant's enclaves `eid` names (the gate,
    /// or one inner service); an `eid` that matches none of them (already
    /// torn down) falls back to a whole-tenant rebuild.
    fn respawn_enclave(&mut self, tenant: usize, eid: EnclaveId) -> HostResult<()> {
        let spec = self.tenants[tenant].spec.clone();
        if self.app.eid(&spec.gate_name()) == Ok(eid) {
            return self.respawn_gate(tenant);
        }
        for &kind in &spec.services {
            if self.app.eid(&service_enclave_name(&spec.name, kind)) == Ok(eid) {
                return self.respawn_service(tenant, kind);
            }
        }
        self.respawn_tenant(tenant)
    }

    /// Tears down and rebuilds the tenant's gate (EREMOVE, fresh
    /// ECREATE/EADD/EINIT), then re-associates every service enclave with
    /// the new gate (NASSO). Counts as one respawn toward the breaker.
    fn respawn_gate(&mut self, tenant: usize) -> HostResult<()> {
        self.note_respawn(tenant);
        let now = self.now();
        self.log_event_at(now, tenant, RecoveryEventKind::RespawnGate);
        self.rebuild_gate(tenant)
            .map_err(|source| self.respawn_failed(tenant, source))
    }

    /// Tears down and rebuilds one inner service enclave and re-associates
    /// it with the gate. Counts as one respawn toward the breaker.
    fn respawn_service(&mut self, tenant: usize, kind: ServiceKind) -> HostResult<()> {
        self.note_respawn(tenant);
        let now = self.now();
        self.log_event_at(now, tenant, RecoveryEventKind::RespawnService);
        self.rebuild_service(tenant, kind)
            .map_err(|source| self.respawn_failed(tenant, source))
    }

    /// Rebuilds the whole tenant — every service, then the gate. Counts as
    /// one respawn event toward the breaker (one recovery, many EREMOVEs).
    fn respawn_tenant(&mut self, tenant: usize) -> HostResult<()> {
        self.note_respawn(tenant);
        let now = self.now();
        self.log_event_at(now, tenant, RecoveryEventKind::RespawnTenant);
        let kinds = self.tenants[tenant].spec.services.clone();
        for kind in kinds {
            self.rebuild_service(tenant, kind)
                .map_err(|source| self.respawn_failed(tenant, source))?;
        }
        self.rebuild_gate(tenant)
            .map_err(|source| self.respawn_failed(tenant, source))
    }

    fn rebuild_gate(&mut self, tenant: usize) -> Result<(), SgxError> {
        let spec = self.tenants[tenant].spec.clone();
        let gate_name = spec.gate_name();
        let names: Vec<String> = spec
            .services
            .iter()
            .map(|&k| service_enclave_name(&spec.name, k))
            .collect();
        let old = self.app.unload(&gate_name)?;
        self.app.load(
            gate_image(&gate_name),
            [(
                "dispatch".to_string(),
                gate_dispatch(
                    names.clone(),
                    self.switchless_handle.clone(),
                    self.degraded_replies.clone(),
                ),
            )],
        )?;
        let new = self.app.eid(&gate_name)?;
        self.eid_owner.insert(new.0, tenant);
        self.app.machine.chaos_retarget(old, new);
        for name in &names {
            self.app.associate(name, &gate_name)?;
        }
        Ok(())
    }

    fn rebuild_service(&mut self, tenant: usize, kind: ServiceKind) -> Result<(), SgxError> {
        let spec = self.tenants[tenant].spec.clone();
        let name = service_enclave_name(&spec.name, kind);
        let old = self.app.unload(&name)?;
        // Same seeding identity as the original install, so a respawned
        // service regenerates exactly the state that was lost.
        let twin = install_service(
            &mut self.app,
            &spec.name,
            &spec.gate_name(),
            spec.seed_index.unwrap_or(tenant),
            kind,
            self.seed,
        )?;
        // The twin shares the rebuilt instance's state; the stale one
        // would probe the torn-down service's world.
        if let Some(s) = spec.services.iter().position(|&k| k == kind) {
            self.computes.insert((tenant, s), twin);
        }
        let new = self.app.eid(&name)?;
        self.eid_owner.insert(new.0, tenant);
        self.app.machine.chaos_retarget(old, new);
        Ok(())
    }

    /// Records one respawn; the breaker check happens in the step loop.
    /// A respawn also invalidates the tenant's attestation chain — the
    /// rebuilt enclave is a new instance and must re-prove it (lazily, at
    /// the next submission) before new traffic is admitted.
    fn note_respawn(&mut self, tenant: usize) {
        let now = self.now();
        self.recovery[tenant].note_respawn(now, &self.policy);
        self.attested[tenant] = false;
    }

    fn respawn_failed(&self, tenant: usize, source: SgxError) -> HostError {
        HostError::Respawn {
            tenant: self.tenants[tenant].spec.name.clone(),
            source,
        }
    }

    /// Opens the tenant's breaker: sheds the tenant at admission and
    /// converts its queued requests into explicit sheds. Idempotent.
    fn trip_breaker(&mut self, tenant: usize) {
        self.recovery[tenant].breaker_open = true;
        let now = self.now();
        if !self.breaker_logged[tenant] {
            self.breaker_logged[tenant] = true;
            self.log_event_at(now, tenant, RecoveryEventKind::BreakerOpen);
        }
        let drained = {
            let ts = &mut self.tenants[tenant];
            ts.shed = true;
            let n = ts.queue.len() as u64;
            ts.shed_requests += n;
            ts.queue.clear();
            n
        };
        if drained > 0 {
            self.log_event_at(
                now,
                tenant,
                RecoveryEventKind::Shed(ShedReason::QueueDrained),
            );
        }
    }

    /// Sheds `tenant` at the front door: marks it shed at admission and
    /// converts its queued requests into explicit sheds, counted through
    /// the existing `shed_requests` counter, with one
    /// [`RecoveryEventKind::Shed`]`(`[`ShedReason::ClientStalled`]`)`
    /// event when anything was queued. External drivers (the `ne-serve`
    /// wire front door) call this when a client stops producing the
    /// requests it promised — a read deadline expired mid-stream — so
    /// slow clients degrade into the same reply-or-shed accounting as
    /// every other loss path, never a hang. Idempotent; does **not**
    /// open the circuit breaker (the tenant's enclaves are healthy — it
    /// is the client that went away). Returns how many queued requests
    /// were shed.
    pub fn shed_tenant(&mut self, tenant: usize) -> u64 {
        if tenant >= self.tenants.len() {
            return 0;
        }
        let now = self.now();
        let drained = {
            let ts = &mut self.tenants[tenant];
            ts.shed = true;
            let n = ts.queue.len() as u64;
            ts.shed_requests += n;
            ts.queue.clear();
            n
        };
        if drained > 0 {
            self.log_event_at(
                now,
                tenant,
                RecoveryEventKind::Shed(ShedReason::ClientStalled),
            );
        }
        drained
    }

    /// Appends one recovery event stamped with `core`'s current cycle.
    fn log_event(&mut self, core: usize, tenant: usize, kind: RecoveryEventKind) {
        let cycle = self.app.machine.cycles(core);
        self.log_event_at(cycle, tenant, kind);
    }

    /// Appends one recovery event with an explicit cycle stamp.
    pub(crate) fn log_event_at(&mut self, cycle: u64, tenant: usize, kind: RecoveryEventKind) {
        self.events.push(RecoveryEvent {
            cycle,
            tenant,
            kind,
        });
    }

    /// Serves queued requests until every accepted request has terminated
    /// (reply or explicit shed); returns how many completed.
    ///
    /// The loop is **bounded**: a server bug that stops making progress
    /// (e.g. a service enclave wedged in a way the recovery layer cannot
    /// see) surfaces as [`SgxError::Stalled`] instead of a hang.
    ///
    /// # Errors
    ///
    /// As [`HostServer::step`], plus the stall guard.
    pub fn drain(&mut self) -> HostResult<usize> {
        // Every step terminates one request (completion or shed), so the
        // budget only bites when progress genuinely stops.
        let mut budget = 4 * (self.pending() as u64 + 1) + 16;
        let mut served = 0;
        while self.pending() > 0 {
            if budget == 0 {
                return Err(HostError::Sgx(SgxError::Stalled(format!(
                    "drain exceeded its step budget with {} requests still queued",
                    self.pending()
                ))));
            }
            budget -= 1;
            if self.step()?.is_some() {
                served += 1;
            }
        }
        Ok(served)
    }

    /// Resets the measurement window: machine metrics (clocks, stats,
    /// histograms, trace), recorded completions, and per-tenant traffic
    /// counters. Call only with no queued work (e.g. after a warmup
    /// drain); sequence numbers and shed state carry over.
    ///
    /// # Panics
    ///
    /// Panics if requests are still queued.
    pub fn reset_measurement(&mut self) {
        assert_eq!(self.pending(), 0, "reset with queued work");
        self.app.machine.reset_metrics();
        self.completions.clear();
        self.sched.stats = SchedulerStats::default();
        for t in &mut self.tenants {
            t.accepted = 0;
            t.rejected_full = 0;
            t.rejected_shed = 0;
            t.completed = 0;
            t.shed_requests = 0;
        }
        // The cycle clocks just reset, so respawn timestamps from before
        // the window are meaningless; breaker latch state carries over
        // (like shed state).
        for r in &mut self.recovery {
            r.respawn_times.clear();
            r.respawns = 0;
        }
        self.degraded_replies.store(0, Ordering::Relaxed);
        self.events.clear();
        // Cached effects stay valid — they are deltas, not absolutes —
        // but the hit/miss counters belong to the measurement window.
        if let Some(cache) = self.replay.as_mut() {
            cache.reset_stats();
        }
    }

    /// Counters of the macro-op replay cache, when enabled
    /// ([`HostConfig::replay_cache`]); `None` on a cache-off server.
    pub fn replay_stats(&self) -> Option<ReplayCacheStats> {
        self.replay.as_ref().map(ReplayCache::stats)
    }

    /// Installs a chaos plan on the machine (see [`ne_sgx::fault`]).
    /// Typically called after warmup/[`HostServer::reset_measurement`] so
    /// the fault clock starts with the measured window.
    pub fn install_chaos(&mut self, plan: FaultPlan) {
        self.app.machine.install_chaos(plan);
    }

    /// Installs a chaos plan confined to one tenant's enclaves (gate and
    /// services): siblings share the machine but never see an injected
    /// fault.
    ///
    /// # Errors
    ///
    /// [`HostError::BadRequest`] for an unknown or unloaded tenant.
    pub fn install_chaos_for_tenant(&mut self, plan: FaultPlan, tenant: usize) -> HostResult<()> {
        let eids = self.tenant_eids(tenant)?;
        self.app.machine.install_chaos(plan.target_eids(eids));
        Ok(())
    }

    /// Raw enclave ids (gate first, then services) of one tenant.
    ///
    /// # Errors
    ///
    /// [`HostError::BadRequest`] for an unknown or unloaded tenant.
    pub fn tenant_eids(&self, tenant: usize) -> HostResult<Vec<u64>> {
        if tenant >= self.tenants.len() || !self.tenants[tenant].loaded {
            return Err(HostError::BadRequest(format!(
                "no loaded tenant at index {tenant}"
            )));
        }
        self.tenant_enclave_names(tenant)
            .iter()
            .map(|n| Ok(self.app.eid(n)?.0))
            .collect()
    }

    /// Decision counters of the installed chaos plan, if any.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.app.machine.chaos_stats()
    }

    /// Per-tenant recovery state (respawn history, breaker), in spec
    /// order.
    pub fn recovery_states(&self) -> &[RecoveryState] {
        &self.recovery
    }

    /// Cycle-stamped recovery actions taken since the last measurement
    /// reset, in the order they were taken.
    pub fn recovery_events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// The tenant owning the enclave with raw id `eid`, if the server
    /// ever built one with that id. Covers respawned-away ids, so a
    /// machine-side chaos event can always be attributed.
    pub fn eid_owner(&self, eid: u64) -> Option<usize> {
        self.eid_owner.get(&eid).copied()
    }

    /// EPC pages tenant `tenant`'s enclaves occupy when loaded (gate +
    /// services, each with its SECS page) — the footprint a migration
    /// placement policy weighs shards by.
    pub fn tenant_epc_pages(&self, tenant: usize) -> u64 {
        tenant_epc_pages(&self.tenants[tenant].spec)
    }

    /// Replies that degraded from switchless to classic ocalls so far.
    pub fn degraded_replies(&self) -> u64 {
        self.degraded_replies.load(Ordering::Relaxed)
    }

    /// The end-of-run summary.
    pub fn report(&self) -> HostReport {
        HostReport {
            tenants: self
                .tenants
                .iter()
                .zip(&self.recovery)
                .map(|(t, r)| TenantReport {
                    name: t.spec.name.clone(),
                    priority: t.spec.priority,
                    loaded: t.loaded,
                    shed: t.shed,
                    accepted: t.accepted,
                    rejected_full: t.rejected_full,
                    rejected_shed: t.rejected_shed,
                    completed: t.completed,
                    shed_requests: t.shed_requests,
                    respawns: r.respawns,
                    breaker_open: r.breaker_open,
                })
                .collect(),
            sched: self.sched.stats,
            switchless: self.worker_core.is_some(),
            degraded_replies: self.degraded_replies(),
        }
    }
}

// The sharded cluster runs one `HostServer` (and its `Machine`) per OS
// thread. This compile-time assertion is the Send audit's lock-in: if a
// future change adds `Rc`, a non-`Send` trait object, or thread-bound
// interior mutability anywhere inside the server, the crate stops
// compiling here instead of failing at the `thread::scope` call site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<HostServer>();
    assert_send::<HostConfig>();
    assert_send::<ne_sgx::machine::Machine>();
    assert_send::<NestedApp>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{RequestFactory, ServiceKind};

    fn specs(n: usize, services: &[ServiceKind]) -> Vec<TenantSpec> {
        (0..n)
            .map(|i| TenantSpec::new(&format!("t{i}"), (n - i) as u8, services.to_vec()))
            .collect()
    }

    fn run_load(server: &mut HostServer, per_tenant: usize) -> u64 {
        let n = server.tenants().len();
        let mut factories: Vec<Vec<RequestFactory>> = (0..n)
            .map(|t| {
                server.tenants()[t]
                    .spec
                    .services
                    .iter()
                    .map(|&k| RequestFactory::new(k, t, 42))
                    .collect()
            })
            .collect();
        let mut accepted = 0;
        for r in 0..per_tenant {
            for (t, tenant_factories) in factories.iter_mut().enumerate() {
                let s = r % tenant_factories.len();
                let payload = tenant_factories[s].next_request();
                if server.submit(t, s, 0, payload).is_accepted() {
                    accepted += 1;
                }
            }
            // Interleave some service so queues breathe.
            let _ = server.step().unwrap();
        }
        server.drain().unwrap();
        accepted
    }

    #[test]
    fn four_tenants_two_services_complete_cleanly() {
        let cfg = HostConfig::new(specs(4, &[ServiceKind::TlsEcho, ServiceKind::Db]));
        let mut server = HostServer::build(cfg).unwrap();
        let accepted = run_load(&mut server, 6);
        let report = server.report();
        assert_eq!(report.completed(), accepted, "no accepted request lost");
        assert_eq!(report.sched.invariant_violations, 0);
        // Latency histograms flowed into the machine profile.
        let m = server.app.machine.metrics();
        m.check().unwrap();
        let req_hist = server.app.machine.profile().merged(ProfileEvent::Request);
        assert_eq!(req_hist.count(), accepted);
        assert!(req_hist.percentile(0.5) > 0);
        // Replies were valid for every completion.
        for c in server.completions() {
            let spec = &server.tenants()[c.tenant].spec;
            let f = RequestFactory::new(spec.services[c.service], c.tenant, 42);
            assert!(f.check_reply(&c.reply), "bad reply for {:?}", spec.name);
        }
    }

    #[test]
    fn switchless_worker_serves_replies() {
        let mut cfg = HostConfig::new(specs(2, &[ServiceKind::SvmInfer]));
        cfg.switchless = true;
        let mut server = HostServer::build(cfg).unwrap();
        assert!(server.worker_core().is_some());
        // Build-time NEREPORT attestation takes transitions of its own;
        // start the measured window after it, like every harness does.
        server.reset_measurement();
        let done = run_load(&mut server, 4);
        let stats = server.app.machine.stats();
        assert_eq!(stats.switchless_ocalls, done, "one switchless reply each");
        // Only the dispatch ecall's own EENTER/EEXIT pair remains: the
        // reply never takes a transition.
        assert_eq!(stats.ecalls, done);
        assert_eq!(stats.ocalls, done);
        server.app.machine.metrics().check().unwrap();

        let mut cfg = HostConfig::new(specs(2, &[ServiceKind::SvmInfer]));
        cfg.switchless = false;
        let mut server = HostServer::build(cfg).unwrap();
        assert!(server.worker_core().is_none());
        server.reset_measurement();
        let done = run_load(&mut server, 4);
        let stats = server.app.machine.stats();
        assert_eq!(stats.switchless_ocalls, 0);
        // Classic replies: the dispatch pair plus one EEXIT/EENTER round
        // trip per reply ocall.
        assert_eq!(stats.ecalls, 2 * done);
        assert_eq!(stats.ocalls, 2 * done);
    }

    #[test]
    fn backpressure_rejects_beyond_queue_bound() {
        let tenants = vec![TenantSpec::new("t0", 1, vec![ServiceKind::SvmInfer]).queue_capacity(2)];
        let mut server = HostServer::build(HostConfig::new(tenants)).unwrap();
        let mut f = RequestFactory::new(ServiceKind::SvmInfer, 0, 1);
        let verdicts: Vec<bool> = (0..5)
            .map(|_| server.submit(0, 0, 0, f.next_request()).is_accepted())
            .collect();
        assert_eq!(verdicts, vec![true, true, false, false, false]);
        assert_eq!(server.tenants()[0].rejected_full, 3);
        server.drain().unwrap();
        assert_eq!(server.report().completed(), 2);
    }

    #[test]
    fn epc_pressure_sheds_lowest_priority_at_birth() {
        // A PRM too small for all tenants: priorities 4,3,2,1 → the tail
        // tenants never load, and their traffic is rejected as shed.
        let mut hw = HwConfig::small();
        hw.prm_pages = 220;
        let mut cfg = HostConfig::new(specs(4, &[ServiceKind::SvmInfer, ServiceKind::TlsEcho]));
        cfg.hw = hw;
        cfg.switchless = false;
        let mut server = HostServer::build(cfg).unwrap();
        let loaded: Vec<bool> = server.tenants().iter().map(|t| t.loaded).collect();
        assert!(loaded[0], "highest priority tenant must load");
        assert!(!loaded[3], "lowest priority tenant must be shed");
        // Priorities are descending in spec order: loaded must be a
        // prefix.
        let first_shed = loaded.iter().position(|l| !l).unwrap();
        assert!(loaded[..first_shed].iter().all(|&l| l));
        assert!(loaded[first_shed..].iter().all(|&l| !l));

        let mut f = RequestFactory::new(ServiceKind::SvmInfer, 3, 1);
        assert_eq!(
            server.submit(3, 0, 0, f.next_request()),
            Admission::RejectedShed
        );
        let mut f0 = RequestFactory::new(ServiceKind::SvmInfer, 0, 1);
        assert!(server.submit(0, 0, 0, f0.next_request()).is_accepted());
        server.drain().unwrap();
        // Graceful degradation: the loaded tenants ran without paging.
        assert_eq!(server.app.machine.stats().ewb_pages, 0, "no EWB thrash");
        server.app.machine.metrics().check().unwrap();
    }

    #[test]
    fn reset_measurement_gives_a_clean_window() {
        let mut server =
            HostServer::build(HostConfig::new(specs(2, &[ServiceKind::SvmInfer]))).unwrap();
        run_load(&mut server, 3);
        server.reset_measurement();
        assert_eq!(server.report().completed(), 0);
        assert_eq!(server.app.machine.total_cycles(), 0);
        // Sequence numbers carry across the reset (FIFO continuity).
        let mut f = RequestFactory::new(ServiceKind::SvmInfer, 0, 1);
        let Admission::Accepted(seq) = server.submit(0, 0, 0, f.next_request()) else {
            panic!("accept");
        };
        assert!(seq > 0, "seq continues after reset");
        server.drain().unwrap();
        server.app.machine.metrics().check().unwrap();
    }
}
