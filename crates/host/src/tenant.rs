//! Tenants: who the host serves, and the bookkeeping of their traffic.
//!
//! A tenant owns one outer "gate" enclave and one inner enclave per
//! service (see [`crate::service`]). Requests wait in a bounded per-tenant
//! FIFO between admission and dispatch; everything the admission
//! controller and scheduler need to know about a tenant — priority, queue
//! depth, shed state, acceptance counters — lives here.

use crate::service::ServiceKind;
use std::collections::VecDeque;

/// Static description of one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Unique tenant name; enclave names are derived from it.
    pub name: String,
    /// Scheduling/shedding priority: higher is more important. Under EPC
    /// pressure, the lowest-priority tenants are shed first.
    pub priority: u8,
    /// Services this tenant runs, one inner enclave each.
    pub services: Vec<ServiceKind>,
    /// Bound on the tenant's request queue; submissions beyond it are
    /// rejected (backpressure) rather than buffered without limit.
    pub queue_capacity: usize,
    /// Identity used to seed the tenant's per-service state (models,
    /// datasets, keys, request streams). `None` — the default — means
    /// "my position in the server's tenant list", which is the historic
    /// behavior. The sharded cluster sets it to the tenant's **global**
    /// id so a tenant's streams are identical no matter which shard (and
    /// local slot) it lands on — the property the shard-count-invariance
    /// oracle checks.
    pub seed_index: Option<usize>,
}

impl TenantSpec {
    /// A spec with the default queue capacity (32).
    pub fn new(name: &str, priority: u8, services: Vec<ServiceKind>) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            priority,
            services,
            queue_capacity: 32,
            seed_index: None,
        }
    }

    /// Overrides the queue bound.
    pub fn queue_capacity(mut self, capacity: usize) -> TenantSpec {
        self.queue_capacity = capacity;
        self
    }

    /// Pins the tenant's seeding identity (see [`TenantSpec::seed_index`]).
    pub fn seed_index(mut self, index: usize) -> TenantSpec {
        self.seed_index = Some(index);
        self
    }

    /// The tenant's gate (outer enclave) name.
    pub fn gate_name(&self) -> String {
        format!("{}::gate", self.name)
    }
}

/// One admitted request waiting for (or finished with) service.
#[derive(Debug, Clone)]
pub struct Request {
    /// Index of the owning tenant.
    pub tenant: usize,
    /// Index into the tenant's service list.
    pub service: usize,
    /// Per-tenant admission sequence number (FIFO order witness).
    pub seq: u64,
    /// Arrival time in simulated cycles (on the serving clock).
    pub arrival: u64,
    /// Opaque request payload, built by a
    /// [`crate::service::RequestFactory`].
    pub payload: Vec<u8>,
    /// Dispatch attempts so far (the recovery layer retries faulted
    /// dispatches up to [`crate::recovery::RecoveryPolicy::max_attempts`]).
    pub attempts: u32,
}

/// The record of one served request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Owning tenant.
    pub tenant: usize,
    /// Index into the tenant's service list.
    pub service: usize,
    /// The request's per-tenant sequence number.
    pub seq: u64,
    /// Core the request was served on.
    pub core: usize,
    /// Arrival time (cycles).
    pub arrival: u64,
    /// Cycle the serving core started on it.
    pub start: u64,
    /// Cycle the serving core finished.
    pub end: u64,
    /// End-to-end latency: `end - arrival` (queueing + service).
    pub latency: u64,
    /// The service's reply.
    pub reply: Vec<u8>,
}

/// Runtime state of one tenant.
#[derive(Debug)]
pub struct TenantState {
    /// The static spec.
    pub spec: TenantSpec,
    /// False when the tenant's enclaves were never loaded because EPC
    /// pressure at build time shed it (lowest priorities first).
    pub loaded: bool,
    /// True while the tenant is shed: new submissions are rejected.
    /// Already-accepted requests still terminate — with a reply, or with
    /// an **explicit, counted** shed ([`TenantState::shed_requests`]);
    /// accepted work is never silently dropped.
    pub shed: bool,
    /// Admitted-but-not-yet-served requests, FIFO.
    pub queue: VecDeque<Request>,
    /// Next admission sequence number.
    pub next_seq: u64,
    /// Requests accepted by admission control.
    pub accepted: u64,
    /// Requests rejected because the queue was full (backpressure).
    pub rejected_full: u64,
    /// Requests rejected because the tenant was shed (EPC pressure).
    pub rejected_shed: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Accepted requests the recovery layer shed explicitly (attempt
    /// budget or deadline exhausted, unrecoverable application error, or
    /// the tenant's circuit breaker opened). The reply-or-shed invariant
    /// is `accepted == completed + shed_requests` once drained.
    pub shed_requests: u64,
    /// Highest completed sequence number, for FIFO auditing.
    pub last_completed_seq: Option<u64>,
}

impl TenantState {
    /// Fresh state for `spec`; `loaded` reflects whether the tenant's
    /// enclaves were actually built.
    pub fn new(spec: TenantSpec, loaded: bool) -> TenantState {
        TenantState {
            spec,
            loaded,
            shed: !loaded,
            queue: VecDeque::new(),
            next_seq: 0,
            accepted: 0,
            rejected_full: 0,
            rejected_shed: 0,
            completed: 0,
            shed_requests: 0,
            last_completed_seq: None,
        }
    }

    /// Requests currently waiting.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// True when every accepted request has terminated — served to
    /// completion or explicitly shed.
    pub fn drained(&self) -> bool {
        self.completed + self.shed_requests == self.accepted && self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_and_names() {
        let s = TenantSpec::new("t0", 3, vec![ServiceKind::Db]).queue_capacity(7);
        assert_eq!(s.queue_capacity, 7);
        assert_eq!(s.gate_name(), "t0::gate");
    }

    #[test]
    fn unloaded_tenants_start_shed() {
        let s = TenantSpec::new("t", 0, vec![]);
        assert!(!TenantState::new(s.clone(), true).shed);
        assert!(TenantState::new(s, false).shed);
    }
}
