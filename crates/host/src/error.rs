//! Host-level error type.
//!
//! The serving path used to `unwrap()` its way across the host/simulator
//! boundary, which meant an injected architectural fault could panic the
//! server loop instead of reaching the recovery layer. Everything the
//! host can fail on now flows through [`HostError`], so the dispatch loop
//! in [`crate::server`] sees every fault as a value it can classify
//! (see [`crate::recovery::classify`]) rather than as an unwound stack.

use ne_sgx::error::SgxError;
use std::fmt;

/// Everything the hosting server can fail with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// An architectural fault surfaced by the simulator and judged
    /// unrecoverable by the recovery layer (or raised outside a request,
    /// e.g. while building the server).
    Sgx(SgxError),
    /// A submission or API call named a tenant/service that does not
    /// exist. The request is rejected; the server keeps running.
    BadRequest(String),
    /// A respawn attempt itself failed. The tenant is left shed; sibling
    /// tenants are unaffected.
    Respawn {
        /// Name of the tenant whose enclaves could not be rebuilt.
        tenant: String,
        /// The fault that aborted the rebuild.
        source: SgxError,
    },
    /// A sealed-state blob offered at migration resume carried a
    /// monotonic counter below the freshness floor: someone replayed
    /// genuine old state. Refused with the same stance `ne-tls` takes on
    /// version/cipher rollback offers — a typed refusal, never a retry.
    StateRollback {
        /// Name of the tenant whose state was replayed.
        tenant: String,
        /// Counter the stale blob presented.
        presented: u64,
        /// Minimum counter the rebuilt enclave accepts.
        expected: u64,
    },
    /// A sealed-state blob was refused at migration resume for a
    /// non-rollback reason (failed MAC, malformed structure, or an
    /// authenticated payload the service could not decode).
    SealedState {
        /// Name of the tenant whose blob was refused.
        tenant: String,
        /// What the rebuilt enclave reported.
        reason: String,
    },
    /// A host-side invariant broke (a bug in the host, not a fault).
    Internal(String),
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::Sgx(e) => write!(f, "sgx: {e}"),
            HostError::BadRequest(s) => write!(f, "bad request: {s}"),
            HostError::Respawn { tenant, source } => {
                write!(f, "respawn of tenant {tenant} failed: {source}")
            }
            HostError::StateRollback {
                tenant,
                presented,
                expected,
            } => write!(
                f,
                "rollback refused for tenant {tenant}: sealed counter {presented} below expected {expected}"
            ),
            HostError::SealedState { tenant, reason } => {
                write!(f, "sealed state refused for tenant {tenant}: {reason}")
            }
            HostError::Internal(s) => write!(f, "host invariant broken: {s}"),
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::Sgx(e) | HostError::Respawn { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<SgxError> for HostError {
    fn from(e: SgxError) -> HostError {
        HostError::Sgx(e)
    }
}

/// Result alias for host operations.
pub type HostResult<T> = std::result::Result<T, HostError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgx_errors_convert_and_display() {
        let e: HostError = SgxError::EpcFull.into();
        assert_eq!(e, HostError::Sgx(SgxError::EpcFull));
        assert!(e.to_string().contains("exhausted"));
        let r = HostError::Respawn {
            tenant: "t0".into(),
            source: SgxError::EpcFull,
        };
        assert!(r.to_string().contains("t0"));
        assert!(std::error::Error::source(&r).is_some());
        assert!(std::error::Error::source(&HostError::BadRequest("x".into())).is_none());
    }
}
