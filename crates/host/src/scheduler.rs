//! The TCS-aware work-stealing scheduler.
//!
//! Serving cores each own a *home* set of tenants (round-robin at build
//! time). A core about to dispatch prefers the next backlogged home
//! tenant; with no home work it **steals** the head request of the most
//! backlogged tenant anywhere. Stealing moves whole head-of-line requests
//! only, so per-tenant FIFO order is preserved by construction — a later
//! request of a tenant can never be dispatched before an earlier one,
//! whichever core serves it.
//!
//! The simulator advances one core at a time, so "parallelism" is the
//! per-core cycle clocks: the next dispatch always goes to the core whose
//! clock is furthest behind ([`Scheduler::pick_core`]), which is exactly
//! the work-conserving choice a real dispatcher approximates.
//!
//! TCS-awareness: every enclave in this model has a single TCS, so two
//! contexts of one enclave must never be live at once, and a core must be
//! out of enclave mode between requests. [`Scheduler::precheck`] verifies
//! both before each dispatch and counts violations instead of panicking —
//! [`SchedulerStats::invariant_violations`] must be zero after any run,
//! and the property tests assert exactly that.

use crate::tenant::{Request, TenantState};
use ne_sgx::machine::Machine;
use ne_sgx::EnclaveId;

/// Counters the scheduler maintains across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Requests handed to a core.
    pub dispatched: u64,
    /// Dispatches that came from the core's own home tenants.
    pub home_dispatches: u64,
    /// Dispatches stolen from another core's home tenant.
    pub steals: u64,
    /// TCS/core-mode invariant failures observed by
    /// [`Scheduler::precheck`]. Must be zero; a nonzero value means the
    /// host tried to run two contexts on one core or re-enter a busy TCS.
    pub invariant_violations: u64,
    /// Largest total backlog (queued requests across all tenants) seen.
    pub max_backlog: usize,
}

/// Work-stealing dispatcher over the serving cores.
#[derive(Debug)]
pub struct Scheduler {
    cores: Vec<usize>,
    /// `home[slot]` = tenant indices owned by `cores[slot]`.
    home: Vec<Vec<usize>>,
    /// Round-robin cursor per core slot.
    cursor: Vec<usize>,
    /// Run counters.
    pub stats: SchedulerStats,
}

impl Scheduler {
    /// A scheduler over `cores`, with `num_tenants` tenants distributed
    /// round-robin as home assignments.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty.
    pub fn new(cores: Vec<usize>, num_tenants: usize) -> Scheduler {
        assert!(!cores.is_empty(), "scheduler needs at least one core");
        let mut home = vec![Vec::new(); cores.len()];
        for t in 0..num_tenants {
            home[t % cores.len()].push(t);
        }
        let cursor = vec![0; cores.len()];
        Scheduler {
            cores,
            home,
            cursor,
            stats: SchedulerStats::default(),
        }
    }

    /// The serving cores.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// Registers a late-arriving tenant slot (live-migration adoption):
    /// homed on the core slot that currently owns the fewest tenants,
    /// ties broken toward the lowest slot, so repeated adoptions stay
    /// balanced and deterministic.
    pub fn add_tenant(&mut self, tenant: usize) {
        let slot = (0..self.home.len())
            .min_by_key(|&s| (self.home[s].len(), s))
            .unwrap_or(0);
        self.home[slot].push(tenant);
    }

    /// The home tenants of the core at `slot`.
    pub fn home_of(&self, slot: usize) -> &[usize] {
        &self.home[slot]
    }

    /// The slot (index into [`Scheduler::cores`]) of the core whose clock
    /// is furthest behind — the next one to dispatch on. (The constructor
    /// guarantees at least one core, so the fold always has a winner; the
    /// `unwrap_or(0)` keeps the request path panic-free regardless.)
    pub fn pick_core(&self, machine: &Machine) -> usize {
        (0..self.cores.len())
            .min_by_key(|&s| machine.cycles(self.cores[s]))
            .unwrap_or(0)
    }

    /// Picks the next request for the core at `slot`: round-robin over its
    /// backlogged home tenants, else steal the head of the most backlogged
    /// tenant anywhere. Updates dispatch counters; returns `None` when
    /// every queue is empty.
    pub fn pick_request(&mut self, slot: usize, tenants: &mut [TenantState]) -> Option<Request> {
        let backlog: usize = tenants.iter().map(|t| t.backlog()).sum();
        self.stats.max_backlog = self.stats.max_backlog.max(backlog);
        let n = self.home[slot].len();
        for k in 0..n {
            let pos = (self.cursor[slot] + k) % n;
            let t = self.home[slot][pos];
            if let Some(req) = tenants[t].queue.pop_front() {
                self.cursor[slot] = (pos + 1) % n;
                self.stats.dispatched += 1;
                self.stats.home_dispatches += 1;
                return Some(req);
            }
        }
        // Steal: head request of the most backlogged tenant (ties toward
        // the lowest tenant index). Head-only stealing keeps per-tenant
        // FIFO intact.
        let victim = (0..tenants.len())
            .filter(|&t| !tenants[t].queue.is_empty())
            .max_by_key(|&t| (tenants[t].backlog(), std::cmp::Reverse(t)))?;
        let req = tenants[victim].queue.pop_front()?;
        self.stats.dispatched += 1;
        self.stats.steals += 1;
        Some(req)
    }

    /// Verifies the dispatch invariants for running `gate` (and its inner
    /// service enclave `service`) on the core at `slot`:
    ///
    /// 1. the core is not already inside an enclave — one context per
    ///    core at a time;
    /// 2. the gate has an idle TCS — never two live contexts of one
    ///    enclave;
    /// 3. the service enclave has an idle TCS, for the same reason.
    ///
    /// Returns true when all hold; otherwise records a violation.
    pub fn precheck(
        &mut self,
        machine: &Machine,
        slot: usize,
        gate: EnclaveId,
        service: EnclaveId,
    ) -> bool {
        let core = self.cores[slot];
        let ok = machine.current_enclave(core).is_none()
            && machine.find_idle_tcs(gate).is_some()
            && machine.find_idle_tcs(service).is_some();
        if !ok {
            self.stats.invariant_violations += 1;
            debug_assert!(
                false,
                "scheduler invariant violated on core {core}: mode={:?}",
                machine.current_enclave(core)
            );
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceKind;
    use crate::tenant::TenantSpec;

    fn tenants(n: usize) -> Vec<TenantState> {
        (0..n)
            .map(|i| {
                TenantState::new(
                    TenantSpec::new(&format!("t{i}"), 1, vec![ServiceKind::Db]),
                    true,
                )
            })
            .collect()
    }

    fn push(t: &mut TenantState, tenant: usize, seq: u64) {
        t.queue.push_back(Request {
            tenant,
            service: 0,
            seq,
            arrival: 0,
            payload: vec![],
            attempts: 0,
        });
    }

    #[test]
    fn home_assignment_is_round_robin() {
        let s = Scheduler::new(vec![0, 1], 5);
        assert_eq!(s.home_of(0), &[0, 2, 4]);
        assert_eq!(s.home_of(1), &[1, 3]);
    }

    #[test]
    fn home_work_preferred_then_steals() {
        let mut s = Scheduler::new(vec![0, 1], 2);
        let mut ts = tenants(2);
        push(&mut ts[0], 0, 0);
        push(&mut ts[1], 1, 0);
        // Core slot 0's home is tenant 0.
        let r = s.pick_request(0, &mut ts).unwrap();
        assert_eq!(r.tenant, 0);
        assert_eq!(s.stats.home_dispatches, 1);
        // Its home queue is now empty: it steals tenant 1's head.
        let r = s.pick_request(0, &mut ts).unwrap();
        assert_eq!(r.tenant, 1);
        assert_eq!(s.stats.steals, 1);
        assert!(s.pick_request(0, &mut ts).is_none());
    }

    #[test]
    fn stealing_takes_heads_in_fifo_order() {
        let mut s = Scheduler::new(vec![0, 1], 2);
        let mut ts = tenants(2);
        for seq in 0..3 {
            push(&mut ts[1], 1, seq);
        }
        // Slot 0 steals tenant 1's requests: must come out 0, 1, 2.
        for expect in 0..3u64 {
            let r = s.pick_request(0, &mut ts).unwrap();
            assert_eq!((r.tenant, r.seq), (1, expect));
        }
    }

    #[test]
    fn round_robin_rotates_between_home_tenants() {
        let mut s = Scheduler::new(vec![0], 2);
        let mut ts = tenants(2);
        for seq in 0..2 {
            push(&mut ts[0], 0, seq);
            push(&mut ts[1], 1, seq);
        }
        let order: Vec<usize> = (0..4)
            .map(|_| s.pick_request(0, &mut ts).unwrap().tenant)
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1], "fair interleave");
    }

    #[test]
    fn max_backlog_tracks_peak() {
        let mut s = Scheduler::new(vec![0], 1);
        let mut ts = tenants(1);
        for seq in 0..7 {
            push(&mut ts[0], 0, seq);
        }
        s.pick_request(0, &mut ts);
        assert_eq!(s.stats.max_backlog, 7);
    }
}
