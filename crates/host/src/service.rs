//! Service adapters: what runs inside each tenant's inner enclaves.
//!
//! Each tenant's outer "gate" enclave hosts one inner enclave per
//! [`ServiceKind`]. All three adapters expose the same interface — a
//! single `handle` n_ecall taking an opaque request payload and returning
//! an opaque reply — so the gate can dispatch without knowing service
//! internals. The adapters reuse the paper's case-study substrates:
//!
//! * [`ServiceKind::TlsEcho`] — the Fig. 7 echo server shape: open a
//!   mini-TLS record, echo the payload back sealed ([`ne_tls`]);
//! * [`ServiceKind::Db`] — the Table VI SQLite shape: parse and execute a
//!   SQL statement against a per-tenant in-enclave database ([`ne_db`]);
//! * [`ServiceKind::SvmInfer`] — the § VI-B MLaaS shape: classify a
//!   feature vector with a per-tenant pre-trained SVM ([`ne_svm`]).
//!
//! The matching client side lives in [`RequestFactory`], which produces
//! request payloads the adapters accept (sealed records, SQL text, encoded
//! samples) from a deterministic seeded stream.

use ne_core::edl::Edl;
use ne_core::lifecycle::{self, LifecycleError};
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn};
use ne_db::{Database, Workload, WorkloadMix};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_svm::{train, Dataset, SvmModel, TrainParams};
use ne_tls::record::{ContentType, RecordLayer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Cycles the record-framing path charges per echo request, mirroring the
/// SSL library cost of the Fig. 7 server.
pub const ECHO_FRAMING_CYCLES: u64 = 900;
/// Cycles of SQL-engine work charged per query (parse, plan, B-tree
/// traversal), as in the Table VI case study.
pub const DB_ENGINE_CYCLES_PER_QUERY: u64 = 360_000;
/// Extra engine cycles per request/result byte.
pub const DB_ENGINE_CYCLES_PER_BYTE: u64 = 2;
/// Prediction cycles per kernel-matrix cell (support vector × dimension).
pub const SVM_PREDICT_CYCLES_PER_CELL: u64 = 16;

/// Records pre-loaded into each tenant database before the measured mix.
const DB_RECORDS: usize = 16;
/// Steady-state operations in each tenant's generated YCSB mix.
const DB_OPS: usize = 64;

/// Feature dimension of the per-tenant SVM models.
pub const SVM_DIM: usize = 8;
/// Classes of the per-tenant SVM models.
pub const SVM_CLASSES: usize = 3;

/// The kinds of service a tenant can run in an inner enclave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// Mini-TLS echo (the Fig. 7 server shape).
    TlsEcho,
    /// SQL over a per-tenant database (the Table VI shape).
    Db,
    /// SVM inference (the § VI-B MLaaS shape).
    SvmInfer,
}

impl ServiceKind {
    /// Every kind, in load-generator rotation order.
    pub const ALL: [ServiceKind; 3] =
        [ServiceKind::TlsEcho, ServiceKind::Db, ServiceKind::SvmInfer];

    /// Stable name (used in enclave names, flags, and reports).
    pub fn name(self) -> &'static str {
        match self {
            ServiceKind::TlsEcho => "echo",
            ServiceKind::Db => "db",
            ServiceKind::SvmInfer => "svm",
        }
    }

    /// Parses a [`ServiceKind::name`] back.
    pub fn parse(s: &str) -> Option<ServiceKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// The per-tenant session key used by the echo adapter and its clients.
pub fn tenant_key(tenant: usize) -> [u8; 16] {
    let mut key = [0x42u8; 16];
    key[0] ^= tenant as u8;
    key[1] ^= (tenant >> 8) as u8;
    key
}

fn gcm_cost(cfg: &HwConfig, len: usize) -> u64 {
    cfg.cost.gcm_setup + cfg.cost.gcm_per_byte * len as u64
}

/// The enclave image for one service of one tenant. `name` must be the
/// name the service will be registered under (see
/// [`service_enclave_name`]).
pub fn service_image(name: &str, kind: ServiceKind) -> EnclaveImage {
    // `handle` is the gate-facing n_ecall; `seal`/`restore` are the
    // host-facing lifecycle ecalls driven at migration safe points.
    let edl = Edl::new().n_ecall("handle").ecall("seal").ecall("restore");
    match kind {
        ServiceKind::TlsEcho => EnclaveImage::new(name, b"tenant-echo")
            .code_pages(8)
            .heap_pages(4)
            .edl(edl),
        ServiceKind::Db => EnclaveImage::new(name, b"tenant-db")
            .code_pages(32)
            .heap_pages(8)
            .edl(edl),
        ServiceKind::SvmInfer => EnclaveImage::new(name, b"tenant-svm")
            .code_pages(16)
            .heap_pages(4)
            .edl(edl),
    }
}

/// Canonical enclave name for tenant `tenant`'s service of `kind`.
pub fn service_enclave_name(tenant_name: &str, kind: ServiceKind) -> String {
    format!("{}::{}", tenant_name, kind.name())
}

/// Reply status of a `restore` ecall: sealed state installed. Followed by
/// the blob's counter as 8 LE bytes.
pub const RESTORE_OK: u8 = 0;
/// Restore refused: the blob's counter is older than the freshness floor
/// (a replayed/stale blob). Followed by presented and expected counters,
/// 8 LE bytes each.
pub const RESTORE_ROLLBACK: u8 = 1;
/// Restore refused: seal MAC verification failed.
pub const RESTORE_BAD_MAC: u8 = 2;
/// Restore refused: the blob is malformed (truncated, wrong magic or
/// version, or sealed for a different tenant).
pub const RESTORE_MALFORMED: u8 = 3;
/// Restore refused: the blob authenticated but its payload is not a valid
/// state snapshot for this service.
pub const RESTORE_BAD_PAYLOAD: u8 = 4;

/// Host-side decode of a `restore` ecall reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreOutcome {
    /// State installed; the blob carried this counter.
    Ok {
        /// Counter stamped into the accepted blob.
        counter: u64,
    },
    /// Stale blob refused (counter below the freshness floor).
    Rollback {
        /// Counter the blob presented.
        presented: u64,
        /// Minimum counter the service would accept.
        expected: u64,
    },
    /// MAC verification failed.
    BadMac,
    /// Structurally invalid blob.
    Malformed,
    /// Authenticated blob with an unusable payload.
    BadPayload,
}

/// Encodes the argument buffer of a `seal` ecall.
pub fn encode_seal_args(tenant: u64, counter: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&counter.to_le_bytes());
    out
}

/// Encodes the argument buffer of a `restore` ecall.
pub fn encode_restore_args(tenant: u64, min_counter: u64, blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + blob.len());
    out.extend_from_slice(&tenant.to_le_bytes());
    out.extend_from_slice(&min_counter.to_le_bytes());
    out.extend_from_slice(blob);
    out
}

/// Decodes a `restore` ecall reply. `None` means the reply itself is
/// malformed (which would indicate a bug, not an untrusted input).
pub fn decode_restore_reply(reply: &[u8]) -> Option<RestoreOutcome> {
    let le_u64 = |b: &[u8]| b.try_into().ok().map(u64::from_le_bytes);
    match *reply.first()? {
        RESTORE_OK if reply.len() == 9 => Some(RestoreOutcome::Ok {
            counter: le_u64(&reply[1..9])?,
        }),
        RESTORE_ROLLBACK if reply.len() == 17 => Some(RestoreOutcome::Rollback {
            presented: le_u64(&reply[1..9])?,
            expected: le_u64(&reply[9..17])?,
        }),
        RESTORE_BAD_MAC if reply.len() == 1 => Some(RestoreOutcome::BadMac),
        RESTORE_MALFORMED if reply.len() == 1 => Some(RestoreOutcome::Malformed),
        RESTORE_BAD_PAYLOAD if reply.len() == 1 => Some(RestoreOutcome::BadPayload),
        _ => None,
    }
}

fn decode_seal_args(args: &[u8]) -> Result<(u64, u64), SgxError> {
    if args.len() != 16 {
        return Err(SgxError::GeneralProtection(format!(
            "seal args must be 16 bytes, got {}",
            args.len()
        )));
    }
    let word = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap_or([0u8; 8]));
    Ok((word(&args[..8]), word(&args[8..16])))
}

fn decode_restore_args(args: &[u8]) -> Result<(u64, u64, &[u8]), SgxError> {
    if args.len() < 16 {
        return Err(SgxError::GeneralProtection(format!(
            "restore args must be at least 16 bytes, got {}",
            args.len()
        )));
    }
    let word = |b: &[u8]| u64::from_le_bytes(b.try_into().unwrap_or([0u8; 8]));
    Ok((word(&args[..8]), word(&args[8..16]), &args[16..]))
}

/// Lifecycle failures that are SGX faults propagate as faults; everything
/// else is a caller error on the host-facing ecall surface.
fn seal_fault(e: LifecycleError) -> SgxError {
    match e {
        LifecycleError::Sgx(e) => e,
        other => SgxError::GeneralProtection(other.to_string()),
    }
}

/// Maps an unseal failure to a typed `restore` reply. Rollback and MAC
/// refusals are expected-input outcomes the host must distinguish, so they
/// travel as data, not as faults.
fn restore_refusal(e: LifecycleError) -> Result<Vec<u8>, SgxError> {
    match e {
        LifecycleError::Rollback {
            presented,
            expected,
        } => {
            let mut out = vec![RESTORE_ROLLBACK];
            out.extend_from_slice(&presented.to_le_bytes());
            out.extend_from_slice(&expected.to_le_bytes());
            Ok(out)
        }
        LifecycleError::BadMac => Ok(vec![RESTORE_BAD_MAC]),
        LifecycleError::Sgx(e) => Err(e),
        _ => Ok(vec![RESTORE_MALFORMED]),
    }
}

fn restore_ok(counter: u64) -> Vec<u8> {
    let mut out = vec![RESTORE_OK];
    out.extend_from_slice(&counter.to_le_bytes());
    out
}

/// `seal`/`restore` bodies for services whose serving state is derived,
/// not accumulated (echo keys, SVM models): the sealed payload is empty
/// and restore only validates freshness and provenance.
fn stateless_lifecycle() -> [(String, TrustedFn); 2] {
    let seal: TrustedFn = Arc::new(|cx, args| {
        let (tenant, counter) = decode_seal_args(args)?;
        lifecycle::seal_state(cx, tenant, counter, &[]).map_err(seal_fault)
    });
    let restore: TrustedFn = Arc::new(|cx, args| {
        let (tenant, min_counter, blob) = decode_restore_args(args)?;
        match lifecycle::unseal_state(cx, tenant, min_counter, blob) {
            Ok((counter, payload)) if payload.is_empty() => Ok(restore_ok(counter)),
            Ok(_) => Ok(vec![RESTORE_BAD_PAYLOAD]),
            Err(e) => restore_refusal(e),
        }
    });
    [("seal".to_string(), seal), ("restore".to_string(), restore)]
}

/// How a [`HostCompute`] invocation treats service state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeMode {
    /// Pure dry run: stateful services execute against a throwaway copy,
    /// so probing a request's reply (e.g. to build a replay-cache key)
    /// commits nothing.
    Probe,
    /// Commit: state effects (database writes) apply to the live service
    /// state — what the in-enclave `handle` body would have done.
    Commit,
}

/// Host-side twin of one service instance's in-enclave `handle` body.
///
/// The twin computes the same reply bytes from the same payload, sharing
/// the instance's state (the tenant database, model, session key), but
/// performs **no simulated-machine work** — no charges, no transitions,
/// no memory traffic. The macro-op replay cache uses it to learn a
/// request's reply shape ([`ComputeMode::Probe`]) and, on a replay hit,
/// to apply the request's application-level effect without re-entering
/// the enclave ([`ComputeMode::Commit`]).
#[derive(Clone)]
pub struct HostCompute {
    run: ComputeFn,
    stateful: bool,
}

/// The boxed body of a [`HostCompute`] twin.
type ComputeFn = Arc<dyn Fn(&[u8], ComputeMode) -> Result<Vec<u8>, SgxError> + Send + Sync>;

impl HostCompute {
    /// A twin for a pure service: the reply depends only on the payload
    /// and fixed captured state, so [`ComputeMode`] is irrelevant and a
    /// replay hit can reuse the probe's reply without a second run.
    pub fn stateless(
        run: impl Fn(&[u8], ComputeMode) -> Result<Vec<u8>, SgxError> + Send + Sync + 'static,
    ) -> HostCompute {
        HostCompute {
            run: Arc::new(run),
            stateful: false,
        }
    }

    /// A twin whose [`ComputeMode::Commit`] applies live state effects.
    pub fn stateful(
        run: impl Fn(&[u8], ComputeMode) -> Result<Vec<u8>, SgxError> + Send + Sync + 'static,
    ) -> HostCompute {
        HostCompute {
            run: Arc::new(run),
            stateful: true,
        }
    }

    /// Whether a replay hit must follow its probe with a commit run.
    pub fn is_stateful(&self) -> bool {
        self.stateful
    }

    /// Runs the twin on `payload`.
    ///
    /// # Errors
    ///
    /// Exactly the errors the in-enclave `handle` body would return for
    /// the same payload against the same state.
    pub fn run(&self, payload: &[u8], mode: ComputeMode) -> Result<Vec<u8>, SgxError> {
        (self.run)(payload, mode)
    }
}

impl std::fmt::Debug for HostCompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HostCompute {{ stateful: {} }}", self.stateful)
    }
}

/// Everything one loaded service instance needs: the trusted-function
/// table for [`NestedApp::load`] plus the host-side [`HostCompute`] twin
/// sharing the same captured state.
pub struct ServiceRuntime {
    /// Trusted functions (`handle` + `seal`/`restore` lifecycle pair).
    pub handlers: Vec<(String, TrustedFn)>,
    /// Host-side twin of the `handle` body.
    pub twin: HostCompute,
}

/// Builds the trusted-function set for one service instance (the
/// gate-facing `handle` body plus the host-facing `seal`/`restore`
/// lifecycle pair) together with its host-side compute twin, all sharing
/// the instance's captured state.
///
/// Per-service state (the echo session key, the tenant's [`Database`], the
/// pre-trained [`SvmModel`]) is captured by the closures; models and
/// tables are prepared host-side at build time — provisioning is not part
/// of the measured serving path.
pub fn service_runtime(kind: ServiceKind, tenant: usize, seed: u64) -> ServiceRuntime {
    match kind {
        ServiceKind::TlsEcho => {
            let key = tenant_key(tenant);
            let handle: TrustedFn = Arc::new(move |cx, wire| {
                cx.charge(ECHO_FRAMING_CYCLES);
                cx.charge(gcm_cost(cx.machine.config(), wire.len()));
                // Each request is a self-contained record exchange (both
                // sides start at sequence 0), so rejected or shed requests
                // never desynchronize the stream.
                let (_, payload) = RecordLayer::new(key)
                    .open(wire)
                    .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                let reply = RecordLayer::new(key).seal(ContentType::Data, &payload);
                cx.charge(gcm_cost(cx.machine.config(), payload.len()));
                Ok(reply)
            });
            let twin = HostCompute::stateless(move |wire, _mode| {
                let (_, payload) = RecordLayer::new(key)
                    .open(wire)
                    .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                Ok(RecordLayer::new(key).seal(ContentType::Data, &payload))
            });
            let mut fns = vec![("handle".to_string(), handle)];
            fns.extend(stateless_lifecycle());
            ServiceRuntime {
                handlers: fns,
                twin,
            }
        }
        ServiceKind::Db => {
            let db: Arc<Mutex<Database>> = Arc::new(Mutex::new(Database::new()));
            let handle_db = db.clone();
            let handle: TrustedFn = Arc::new(move |cx, args| {
                let sql = std::str::from_utf8(args)
                    .map_err(|_| SgxError::GeneralProtection("bad utf-8 query".into()))?;
                ne_db::parse(sql).map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                // A poisoned lock only means a previous handler panicked
                // mid-query; recover the guard rather than panicking the
                // serving loop too.
                let result = handle_db
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .execute(sql)
                    .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                let mut out = Vec::new();
                for row in &result.rows {
                    for v in row {
                        out.extend_from_slice(v.to_string().as_bytes());
                    }
                }
                cx.charge(
                    DB_ENGINE_CYCLES_PER_QUERY
                        + DB_ENGINE_CYCLES_PER_BYTE * (args.len() + out.len()) as u64,
                );
                Ok(out)
            });
            let twin_db = db.clone();
            let twin = HostCompute::stateful(move |args, mode| {
                let sql = std::str::from_utf8(args)
                    .map_err(|_| SgxError::GeneralProtection("bad utf-8 query".into()))?;
                let stmt =
                    ne_db::parse(sql).map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                let mut guard = twin_db
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // Probe must leave the live database untouched. SELECTs
                // are side-effect free and run live either way; only a
                // probed *write* pays for a throwaway deep copy.
                let read_only = matches!(stmt, ne_db::Statement::Select { .. });
                let result = if read_only || mode == ComputeMode::Commit {
                    guard.execute_statement(&stmt)
                } else {
                    guard.clone().execute_statement(&stmt)
                }
                .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
                let mut out = Vec::new();
                for row in &result.rows {
                    for v in row {
                        out.extend_from_slice(v.to_string().as_bytes());
                    }
                }
                Ok(out)
            });
            let seal_db = db.clone();
            let seal: TrustedFn = Arc::new(move |cx, args| {
                let (tenant, counter) = decode_seal_args(args)?;
                let snap = seal_db
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .snapshot_bytes();
                lifecycle::seal_state(cx, tenant, counter, &snap).map_err(seal_fault)
            });
            let restore: TrustedFn = Arc::new(move |cx, args| {
                let (tenant, min_counter, blob) = decode_restore_args(args)?;
                let (counter, payload) =
                    match lifecycle::unseal_state(cx, tenant, min_counter, blob) {
                        Ok(v) => v,
                        Err(e) => return restore_refusal(e),
                    };
                match Database::restore_bytes(&payload) {
                    Ok(restored) => {
                        *db.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = restored;
                        Ok(restore_ok(counter))
                    }
                    Err(_) => Ok(vec![RESTORE_BAD_PAYLOAD]),
                }
            });
            ServiceRuntime {
                handlers: vec![
                    ("handle".to_string(), handle),
                    ("seal".to_string(), seal),
                    ("restore".to_string(), restore),
                ],
                twin,
            }
        }
        ServiceKind::SvmInfer => {
            let model = Arc::new(tenant_model(tenant, seed));
            let handle_model = model.clone();
            let handle: TrustedFn = Arc::new(move |cx, args| {
                let x = decode_sample(args)?;
                let cells = handle_model.num_support_vectors() as u64 * SVM_DIM as u64;
                cx.charge(SVM_PREDICT_CYCLES_PER_CELL * cells);
                let class = handle_model.predict(&x);
                Ok(vec![class as u8])
            });
            let twin = HostCompute::stateless(move |args, _mode| {
                let x = decode_sample(args)?;
                Ok(vec![model.predict(&x) as u8])
            });
            let mut fns = vec![("handle".to_string(), handle)];
            fns.extend(stateless_lifecycle());
            ServiceRuntime {
                handlers: fns,
                twin,
            }
        }
    }
}

/// The trusted-function set alone (see [`service_runtime`]), for callers
/// that do not need the host-side twin.
pub fn service_handlers(kind: ServiceKind, tenant: usize, seed: u64) -> Vec<(String, TrustedFn)> {
    service_runtime(kind, tenant, seed).handlers
}

/// Trains tenant `tenant`'s SVM on a small synthetic dataset. Done once at
/// build time, host-side (model provisioning, not serving work).
fn tenant_model(tenant: usize, seed: u64) -> SvmModel {
    let ds = Dataset::synthetic(
        SVM_CLASSES,
        30,
        SVM_DIM,
        seed ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    train(
        &ds,
        &TrainParams {
            seed: seed.wrapping_add(tenant as u64),
            ..Default::default()
        },
    )
}

fn decode_sample(args: &[u8]) -> Result<Vec<f64>, SgxError> {
    if args.len() != SVM_DIM * 8 {
        return Err(SgxError::GeneralProtection(format!(
            "svm sample must be {} bytes, got {}",
            SVM_DIM * 8,
            args.len()
        )));
    }
    Ok(args
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap_or([0u8; 8])))
        .collect())
}

/// Encodes a feature vector the way [`ServiceKind::SvmInfer`] expects.
pub fn encode_sample(x: &[f64]) -> Vec<u8> {
    x.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Loads one service enclave into `app`, associates it with the tenant's
/// gate, and returns the host-side compute twin sharing its state.
///
/// # Errors
///
/// Loader or association failures (e.g. EPC exhaustion).
pub fn install_service(
    app: &mut NestedApp,
    tenant_name: &str,
    gate_name: &str,
    tenant: usize,
    kind: ServiceKind,
    seed: u64,
) -> Result<HostCompute, SgxError> {
    let rt = service_runtime(kind, tenant, seed);
    let name = service_enclave_name(tenant_name, kind);
    app.load(service_image(&name, kind), rt.handlers)?;
    app.associate(&name, gate_name)?;
    Ok(rt.twin)
}

/// Deterministic client-side request stream for one (tenant, service)
/// pair: produces payloads the matching [`service_handlers`] `handle` body
/// accepts, plus a validity check for replies.
#[derive(Debug)]
pub struct RequestFactory {
    kind: ServiceKind,
    tenant: usize,
    rng: StdRng,
    /// Pre-generated SQL for [`ServiceKind::Db`]: schema creation first,
    /// then pre-load inserts, then the measured mix, cycled when the run
    /// outlasts it. Per-tenant FIFO guarantees the schema statement
    /// reaches the engine before anything that needs the table.
    db_script: Vec<String>,
    db_next: usize,
}

impl RequestFactory {
    /// A factory seeded deterministically from (`seed`, `tenant`, `kind`).
    pub fn new(kind: ServiceKind, tenant: usize, seed: u64) -> RequestFactory {
        let sub = seed
            ^ (tenant as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ (kind as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB);
        let db_script = if kind == ServiceKind::Db {
            let w = Workload::generate(WorkloadMix::Select95Update5, DB_RECORDS, DB_OPS, sub);
            let mut script = vec![w.create];
            script.extend(w.load);
            script.extend(w.operations);
            script
        } else {
            Vec::new()
        };
        RequestFactory {
            kind,
            tenant,
            rng: StdRng::seed_from_u64(sub),
            db_script,
            db_next: 0,
        }
    }

    /// Leading requests that are provisioning rather than steady-state
    /// work: the db schema statement plus the pre-load inserts (zero for
    /// the other services). The load generator issues these during warmup
    /// so the measured window sees only the steady mix.
    pub fn setup_requests(&self) -> usize {
        match self.kind {
            // Script layout: [create] + load + operations (see `new`).
            ServiceKind::Db => self.db_script.len() - DB_OPS,
            _ => 0,
        }
    }

    /// The next request payload.
    pub fn next_request(&mut self) -> Vec<u8> {
        match self.kind {
            ServiceKind::TlsEcho => {
                let len = self.rng.gen_range(64..1024usize);
                let body: Vec<u8> = (0..len)
                    .map(|_| self.rng.gen_range(0..256u32) as u8)
                    .collect();
                RecordLayer::new(tenant_key(self.tenant)).seal(ContentType::Data, &body)
            }
            ServiceKind::Db => {
                // Cycle the measured mix once setup is exhausted, skipping
                // the schema statement (index 0) on wrap.
                let i = self.db_next;
                self.db_next = if i + 1 >= self.db_script.len() {
                    1
                } else {
                    i + 1
                };
                self.db_script[i].clone().into_bytes()
            }
            ServiceKind::SvmInfer => {
                let x: Vec<f64> = (0..SVM_DIM)
                    .map(|_| self.rng.gen_range(-4.0..4.0))
                    .collect();
                encode_sample(&x)
            }
        }
    }

    /// Checks that `reply` is a plausible reply to a request from this
    /// factory (used by tests and the load generator's sanity pass).
    pub fn check_reply(&self, reply: &[u8]) -> bool {
        match self.kind {
            // The echo reply must open under the tenant key.
            ServiceKind::TlsEcho => RecordLayer::new(tenant_key(self.tenant))
                .open(reply)
                .is_ok(),
            // SQL results are opaque bytes (possibly empty).
            ServiceKind::Db => true,
            // A class index.
            ServiceKind::SvmInfer => reply.len() == 1 && (reply[0] as usize) < SVM_CLASSES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_names() {
        for k in ServiceKind::ALL {
            assert_eq!(ServiceKind::parse(k.name()), Some(k));
        }
        assert_eq!(ServiceKind::parse("nope"), None);
    }

    #[test]
    fn tenant_keys_differ() {
        assert_ne!(tenant_key(0), tenant_key(1));
        assert_ne!(tenant_key(1), tenant_key(257));
    }

    #[test]
    fn factory_is_deterministic() {
        for kind in ServiceKind::ALL {
            let mut a = RequestFactory::new(kind, 3, 77);
            let mut b = RequestFactory::new(kind, 3, 77);
            for _ in 0..5 {
                assert_eq!(a.next_request(), b.next_request());
            }
            let mut c = RequestFactory::new(kind, 4, 77);
            let differs = (0..5).any(|_| a.next_request() != c.next_request());
            assert!(differs, "{} stream should depend on tenant", kind.name());
        }
    }

    #[test]
    fn setup_prefix_covers_schema_and_load() {
        let f = RequestFactory::new(ServiceKind::Db, 0, 1);
        assert_eq!(f.setup_requests(), 1 + DB_RECORDS);
        assert_eq!(
            RequestFactory::new(ServiceKind::TlsEcho, 0, 1).setup_requests(),
            0
        );
        assert_eq!(
            RequestFactory::new(ServiceKind::SvmInfer, 0, 1).setup_requests(),
            0
        );
    }

    #[test]
    fn db_script_starts_with_schema_and_cycles_past_it() {
        let mut f = RequestFactory::new(ServiceKind::Db, 0, 1);
        let first = String::from_utf8(f.next_request()).unwrap();
        assert!(first.to_uppercase().starts_with("CREATE TABLE"), "{first}");
        // Exhaust the script and wrap: CREATE must never repeat.
        for _ in 0..500 {
            let stmt = String::from_utf8(f.next_request()).unwrap();
            assert!(!stmt.to_uppercase().starts_with("CREATE TABLE"));
        }
    }

    #[test]
    fn sample_codec_round_trips() {
        let x = vec![1.5, -2.25, 0.0, 3.0, -0.5, 8.0, 1e-3, -7.75];
        assert_eq!(decode_sample(&encode_sample(&x)).unwrap(), x);
        assert!(decode_sample(&[0u8; 7]).is_err());
    }
}
