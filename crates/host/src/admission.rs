//! Admission control: bounded queues, backpressure, and EPC-pressure
//! shedding.
//!
//! Two gates stand between a client and the scheduler:
//!
//! 1. **Backpressure** — each tenant's queue is bounded
//!    ([`crate::tenant::TenantSpec::queue_capacity`]); a submission to a
//!    full queue is rejected immediately instead of buffered, so offered
//!    load beyond capacity surfaces as rejections, not unbounded memory
//!    and latency.
//! 2. **EPC pressure** — when free EPC falls below a low-water mark the
//!    host *sheds* whole tenants, lowest priority first, rejecting their
//!    new submissions. This degrades service for the least important
//!    tenants instead of letting the working set thrash through EWB/ELDU
//!    paging for everyone (§ IV-E is the expensive path this avoids).
//!
//! Once a request is **accepted it is never silently dropped** — shedding
//! closes the front door, and the scheduler drains whatever admission let
//! in. Under fault injection an accepted request may still terminate as
//! an *explicit* shed counted in
//! [`crate::tenant::TenantState::shed_requests`] (attempt budget or
//! deadline exhausted, or the tenant's circuit breaker opened — see
//! [`crate::recovery`]); the invariant the property tests hold is
//! reply-or-shed: `accepted == completed + shed_requests`.

use crate::tenant::{Request, TenantState};

/// Outcome of offering one request to admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Accepted and enqueued with this per-tenant sequence number.
    Accepted(u64),
    /// Rejected: the tenant's bounded queue is full (backpressure).
    RejectedFull,
    /// Rejected: the tenant is shed (EPC pressure, never loaded, or its
    /// circuit breaker is open).
    RejectedShed,
    /// Rejected: the submission named a tenant or service that does not
    /// exist (a client bug; the server keeps running).
    RejectedInvalid,
    /// Rejected: the tenant's inner enclaves have not passed (or have
    /// lost, after a rebuild) NEREPORT-gated admission — no verified
    /// attestation chain, no traffic.
    RejectedUnattested,
}

impl Admission {
    /// True for [`Admission::Accepted`].
    pub fn is_accepted(self) -> bool {
        matches!(self, Admission::Accepted(_))
    }
}

/// Admission policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionControl {
    /// Shed tenants when free EPC pages drop below this.
    pub epc_low_water: u64,
}

impl Default for AdmissionControl {
    fn default() -> AdmissionControl {
        AdmissionControl { epc_low_water: 64 }
    }
}

impl AdmissionControl {
    /// Offers one request for tenant `tenant`; on acceptance the request
    /// is enqueued and assigned the tenant's next sequence number.
    pub fn offer(
        &self,
        tenant: &mut TenantState,
        tenant_idx: usize,
        service: usize,
        arrival: u64,
        payload: Vec<u8>,
    ) -> Admission {
        if tenant.shed {
            tenant.rejected_shed += 1;
            return Admission::RejectedShed;
        }
        if tenant.queue.len() >= tenant.spec.queue_capacity {
            tenant.rejected_full += 1;
            return Admission::RejectedFull;
        }
        let seq = tenant.next_seq;
        tenant.next_seq += 1;
        tenant.accepted += 1;
        tenant.queue.push_back(Request {
            tenant: tenant_idx,
            service,
            seq,
            arrival,
            payload,
            attempts: 0,
        });
        Admission::Accepted(seq)
    }

    /// True when `free_epc_pages` is below the shedding threshold.
    pub fn under_pressure(&self, free_epc_pages: u64) -> bool {
        free_epc_pages < self.epc_low_water
    }

    /// Picks the tenant to shed under pressure: the lowest-priority tenant
    /// that is loaded and not already shed (ties broken toward the higher
    /// index, i.e. the later-arriving tenant). Returns its index.
    pub fn shed_victim(&self, tenants: &[TenantState]) -> Option<usize> {
        tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| t.loaded && !t.shed)
            .min_by_key(|(i, t)| (t.spec.priority, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceKind;
    use crate::tenant::TenantSpec;

    fn tenant(priority: u8, cap: usize, loaded: bool) -> TenantState {
        TenantState::new(
            TenantSpec::new("t", priority, vec![ServiceKind::Db]).queue_capacity(cap),
            loaded,
        )
    }

    #[test]
    fn bounded_queue_backpressure() {
        let ac = AdmissionControl::default();
        let mut t = tenant(1, 2, true);
        assert!(ac.offer(&mut t, 0, 0, 0, vec![]).is_accepted());
        assert!(ac.offer(&mut t, 0, 0, 0, vec![]).is_accepted());
        assert_eq!(ac.offer(&mut t, 0, 0, 0, vec![]), Admission::RejectedFull);
        assert_eq!((t.accepted, t.rejected_full), (2, 1));
        // Draining one slot re-opens the queue.
        t.queue.pop_front();
        assert!(ac.offer(&mut t, 0, 0, 0, vec![]).is_accepted());
    }

    #[test]
    fn shed_tenants_reject_everything() {
        let ac = AdmissionControl::default();
        let mut t = tenant(1, 8, true);
        t.shed = true;
        assert_eq!(ac.offer(&mut t, 0, 0, 0, vec![]), Admission::RejectedShed);
        assert_eq!(t.rejected_shed, 1);
        assert_eq!(t.accepted, 0);
    }

    #[test]
    fn sequence_numbers_are_fifo() {
        let ac = AdmissionControl::default();
        let mut t = tenant(1, 8, true);
        for expect in 0..5u64 {
            assert_eq!(
                ac.offer(&mut t, 0, 0, 0, vec![]),
                Admission::Accepted(expect)
            );
        }
        let seqs: Vec<u64> = t.queue.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shed_victim_is_lowest_priority() {
        let ac = AdmissionControl::default();
        let mut ts = vec![tenant(5, 8, true), tenant(1, 8, true), tenant(3, 8, true)];
        assert_eq!(ac.shed_victim(&ts), Some(1));
        ts[1].shed = true;
        assert_eq!(ac.shed_victim(&ts), Some(2));
        ts[2].shed = true;
        assert_eq!(ac.shed_victim(&ts), Some(0));
        ts[0].shed = true;
        assert_eq!(ac.shed_victim(&ts), None);
    }

    #[test]
    fn pressure_threshold() {
        let ac = AdmissionControl { epc_low_water: 10 };
        assert!(ac.under_pressure(9));
        assert!(!ac.under_pressure(10));
    }
}
