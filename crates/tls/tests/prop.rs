//! Property-based tests for the mini-TLS record layer.

use ne_tls::record::{ContentType, RecordLayer};
use proptest::prelude::*;

proptest! {
    /// Any payload stream round-trips in order.
    #[test]
    fn record_stream_roundtrip(
        key in prop::array::uniform16(any::<u8>()),
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..10),
    ) {
        let mut tx = RecordLayer::new(key);
        let mut rx = RecordLayer::new(key);
        for p in &payloads {
            let wire = tx.seal(ContentType::Data, p);
            let (ty, got) = rx.open(&wire).unwrap();
            prop_assert_eq!(ty, ContentType::Data);
            prop_assert_eq!(&got, p);
        }
    }

    /// The record parser is total: arbitrary bytes never panic and never
    /// decrypt successfully against a fresh session.
    #[test]
    fn record_open_total_and_safe(wire in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut rx = RecordLayer::new([1; 16]);
        prop_assert!(rx.open(&wire).is_err());
    }

    /// Bit-flips anywhere in a record are rejected.
    #[test]
    fn record_bitflip_rejected(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        idx in any::<prop::sample::Index>(),
        bit in 0..8u32,
    ) {
        let mut tx = RecordLayer::new([2; 16]);
        let mut rx = RecordLayer::new([2; 16]);
        let mut wire = tx.seal(ContentType::Data, &payload);
        let i = idx.index(wire.len());
        wire[i] ^= 1 << bit;
        // Either framing or MAC must reject it; flipping a length byte may
        // truncate/extend, flipping anything else breaks the tag.
        prop_assert!(rx.open(&wire).is_err());
    }
}
