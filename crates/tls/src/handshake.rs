//! Session establishment.
//!
//! A deliberately small handshake: both sides hold a pre-shared master
//! secret ("We assume the key is distributed to the echo server and
//! client", § VI-A) and derive per-session keys from fresh randoms. What
//! we *do* model carefully is the downgrade protection the case study
//! mentions: the server rejects version or cipher-suite rollback.

use ne_crypto::kdf::derive_key;
use std::fmt;

/// The protocol version both sides must speak.
pub const TLS_VERSION: u16 = 0x0303;

/// Cipher suites, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CipherSuite {
    /// The mini-TLS null suite (insecure; only offered by attackers).
    NullMd5 = 0,
    /// AES-128-GCM (the only acceptable suite).
    Aes128Gcm = 1,
}

/// Handshake failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HandshakeError {
    /// Client offered an older protocol version (rollback attack).
    VersionRollback(u16),
    /// Client offered only weak suites (cipher-suite rollback).
    CipherRollback,
}

impl fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandshakeError::VersionRollback(v) => {
                write!(f, "version rollback attempt to {v:#06x}")
            }
            HandshakeError::CipherRollback => write!(f, "cipher-suite rollback attempt"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// A ClientHello.
#[derive(Debug, Clone)]
pub struct ClientHello {
    /// Offered protocol version.
    pub version: u16,
    /// Offered cipher suites.
    pub suites: Vec<CipherSuite>,
    /// Client nonce.
    pub random: [u8; 16],
}

/// Keys derived by a successful handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionKeys {
    /// Key protecting client→server and server→client records.
    pub record_key: [u8; 16],
    /// The negotiated suite.
    pub suite: CipherSuite,
}

/// Runs the server side of the handshake against `hello`.
///
/// # Errors
///
/// [`HandshakeError`] on version or cipher rollback.
pub fn perform_handshake(
    master_secret: &[u8],
    hello: &ClientHello,
    server_random: [u8; 16],
) -> Result<SessionKeys, HandshakeError> {
    if hello.version != TLS_VERSION {
        return Err(HandshakeError::VersionRollback(hello.version));
    }
    let suite = hello
        .suites
        .iter()
        .copied()
        .filter(|s| *s == CipherSuite::Aes128Gcm)
        .max()
        .ok_or(HandshakeError::CipherRollback)?;
    let mut context = Vec::with_capacity(32);
    context.extend_from_slice(&hello.random);
    context.extend_from_slice(&server_random);
    Ok(SessionKeys {
        record_key: derive_key(master_secret, b"mini-tls record", &context),
        suite,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> ClientHello {
        ClientHello {
            version: TLS_VERSION,
            suites: vec![CipherSuite::Aes128Gcm],
            random: [1; 16],
        }
    }

    #[test]
    fn both_sides_derive_same_keys() {
        let h = hello();
        let a = perform_handshake(b"master", &h, [2; 16]).unwrap();
        let b = perform_handshake(b"master", &h, [2; 16]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_randoms_fresh_keys() {
        let h = hello();
        let a = perform_handshake(b"master", &h, [2; 16]).unwrap();
        let b = perform_handshake(b"master", &h, [3; 16]).unwrap();
        assert_ne!(a.record_key, b.record_key);
    }

    #[test]
    fn version_rollback_rejected() {
        let mut h = hello();
        h.version = 0x0301;
        assert_eq!(
            perform_handshake(b"m", &h, [0; 16]).unwrap_err(),
            HandshakeError::VersionRollback(0x0301)
        );
    }

    #[test]
    fn cipher_rollback_rejected() {
        let mut h = hello();
        h.suites = vec![CipherSuite::NullMd5];
        assert_eq!(
            perform_handshake(b"m", &h, [0; 16]).unwrap_err(),
            HandshakeError::CipherRollback
        );
    }

    #[test]
    fn strong_suite_chosen_among_mixed_offer() {
        let mut h = hello();
        h.suites = vec![CipherSuite::NullMd5, CipherSuite::Aes128Gcm];
        let keys = perform_handshake(b"m", &h, [0; 16]).unwrap();
        assert_eq!(keys.suite, CipherSuite::Aes128Gcm);
    }
}
