//! The heartbeat extension (RFC 6520), with the HeartBleed bug.
//!
//! "Due to a small bug in processing heartbeat messages ... attackers
//! could leak information of arbitrary freed buffers from the applications
//! linking the OpenSSL library. A crafted heartbeat message can leak up to
//! 4KB from the server-side heap memory." (§ VI-A)
//!
//! The echo of a heartbeat request copies `claimed_len` bytes starting at
//! the request payload *in the library's address space*. The vulnerable
//! build trusts `claimed_len`; the patched build discards requests whose
//! claimed length exceeds the actual payload (the upstream fix). Because
//! the copy runs through the simulated machine's validated translation
//! path, what an over-read can actually reach is decided by the enclave
//! configuration — that is the whole point of the case study.

use ne_core::runtime::EnclaveCtx;
use ne_sgx::addr::VirtAddr;
use ne_sgx::error::{Result, SgxError};

/// Heartbeat processing configuration.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Ship the CVE-2014-0160 bug.
    pub vulnerable: bool,
}

/// Maximum heartbeat payload the protocol allows (the bug caps leaks at
/// 4 KiB per request, as the paper notes).
pub const MAX_HEARTBEAT: usize = 4096;

/// Processes a heartbeat request whose `actual_len`-byte payload sits at
/// `payload_va` inside the library's memory, where the attacker-controlled
/// header *claims* the payload is `claimed_len` bytes.
///
/// Returns the echoed payload.
///
/// # Errors
///
/// * Patched build: `GeneralProtection` for over-long claims (request
///   silently discarded upstream; surfaced as an error here for tests).
/// * Vulnerable build: whatever the *hardware* says about the over-read —
///   in a monolithic enclave nothing stops it; with the library confined
///   to an outer enclave the access validation faults at the inner-enclave
///   boundary.
pub fn process_heartbeat(
    cx: &mut EnclaveCtx<'_>,
    payload_va: VirtAddr,
    actual_len: usize,
    claimed_len: usize,
    cfg: &HeartbeatConfig,
) -> Result<Vec<u8>> {
    if claimed_len > MAX_HEARTBEAT {
        return Err(SgxError::GeneralProtection(
            "heartbeat claim exceeds protocol maximum".into(),
        ));
    }
    let copy_len = if cfg.vulnerable {
        // The bug: trust the attacker-controlled length field.
        claimed_len
    } else {
        // RFC-compliant fix: "the received HeartbeatMessage MUST be
        // discarded" when the claimed length is inconsistent.
        if claimed_len > actual_len {
            return Err(SgxError::GeneralProtection(
                "heartbeat claim exceeds payload; request discarded".into(),
            ));
        }
        claimed_len
    };
    cx.read(payload_va, copy_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ne_core::edl::Edl;
    use ne_core::loader::EnclaveImage;
    use ne_core::runtime::{NestedApp, TrustedFn};
    use ne_sgx::config::HwConfig;
    use ne_sgx::error::FaultKind;
    use std::sync::Arc;

    /// Heartbeat handler body shared by the configurations: expects
    /// args = [claimed u32][payload...]; stores the payload at the start
    /// of the *library* heap, with the app secret placed by each scenario.
    fn heartbeat_fn(lib_enclave: &'static str, vulnerable: bool) -> TrustedFn {
        Arc::new(move |cx, args| {
            let claimed = u32::from_le_bytes(args[..4].try_into().expect("4")) as usize;
            let payload = &args[4..];
            // Session buffers live mid-heap, as on a real allocator; the
            // over-read can therefore run off the end of the heap page.
            let buf = cx.heap_base_of(lib_enclave)?.add(256);
            cx.write(buf, payload)?;
            process_heartbeat(
                cx,
                buf,
                payload.len(),
                claimed,
                &HeartbeatConfig { vulnerable },
            )
        })
    }

    /// Monolithic: library and app share one enclave; the app "secret"
    /// lives in the same heap, 256 bytes after the session buffer.
    fn monolithic_app(vulnerable: bool) -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        let img = EnclaveImage::new("server", b"provider")
            .heap_pages(1)
            .edl(Edl::new().ecall("heartbeat").ecall("store_secret"));
        let store: TrustedFn = Arc::new(|cx, args| {
            let heap = cx.heap_base_of("server")?;
            cx.write(heap.add(512), args)?;
            Ok(vec![])
        });
        app.load(
            img,
            [
                ("heartbeat".to_string(), heartbeat_fn("server", vulnerable)),
                ("store_secret".to_string(), store),
            ],
        )
        .unwrap();
        app
    }

    /// Nested: the library is the outer enclave; the app (holding the
    /// secret) is an inner enclave whose ELRANGE is adjacent.
    fn nested_app(vulnerable: bool) -> NestedApp {
        let mut app = NestedApp::new(HwConfig::small());
        let lib = EnclaveImage::new("ssl", b"openssl-project")
            .heap_pages(1)
            .edl(Edl::new().ecall("heartbeat"));
        app.load(
            lib,
            [("heartbeat".to_string(), heartbeat_fn("ssl", vulnerable))],
        )
        .unwrap();
        let appimg = EnclaveImage::new("app", b"provider")
            .heap_pages(1)
            .edl(Edl::new().ecall("store_secret"));
        let store: TrustedFn = Arc::new(|cx, args| {
            let heap = cx.heap_base_of("app")?;
            cx.write(heap, args)?;
            Ok(vec![])
        });
        app.load(appimg, [("store_secret".to_string(), store)])
            .unwrap();
        app.associate("app", "ssl").unwrap();
        app
    }

    const SECRET: &[u8] = b"MASTER-KEY-0123456789abcdef";

    fn attack(app: &mut NestedApp, enclave: &str, claimed: usize) -> Result<Vec<u8>> {
        let mut args = (claimed as u32).to_le_bytes().to_vec();
        args.extend_from_slice(b"ping"); // 4 actual payload bytes
        app.ecall(0, enclave, "heartbeat", &args)
    }

    #[test]
    fn benign_heartbeat_echoes() {
        let mut app = monolithic_app(true);
        let out = attack(&mut app, "server", 4).unwrap();
        assert_eq!(out, b"ping");
    }

    #[test]
    fn monolithic_vulnerable_leaks_the_secret() {
        let mut app = monolithic_app(true);
        app.ecall(0, "server", "store_secret", SECRET).unwrap();
        let leaked = attack(&mut app, "server", 512).unwrap();
        assert!(
            leaked.windows(SECRET.len()).any(|w| w == SECRET),
            "HeartBleed must reproduce in the monolithic enclave"
        );
    }

    #[test]
    fn monolithic_patched_discards() {
        let mut app = monolithic_app(false);
        app.ecall(0, "server", "store_secret", SECRET).unwrap();
        let err = attack(&mut app, "server", 512).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn nested_vulnerable_is_stopped_by_hardware() {
        let mut app = nested_app(true);
        app.ecall(0, "app", "store_secret", SECRET).unwrap();
        // The ssl heap page is the last page of the outer ELRANGE; the
        // inner enclave sits immediately after, so the 4 KiB over-read
        // crosses into it and the access validation faults.
        let err = attack(&mut app, "ssl", MAX_HEARTBEAT).unwrap_err();
        match err {
            SgxError::Fault { kind, .. } => {
                assert_eq!(kind, FaultKind::EpcmEnclaveMismatch);
            }
            other => panic!("expected a hardware fault, got {other:?}"),
        }
    }

    #[test]
    fn nested_leak_never_contains_secret() {
        // Even reads that stay within the outer enclave leak only outer
        // data — the secret lives in the inner enclave.
        let mut app = nested_app(true);
        app.ecall(0, "app", "store_secret", SECRET).unwrap();
        let leaked = attack(&mut app, "ssl", 512).unwrap();
        assert!(
            !leaked.windows(SECRET.len()).any(|w| w == SECRET),
            "secret must not be reachable from the outer enclave"
        );
    }

    #[test]
    fn protocol_maximum_enforced() {
        let mut app = monolithic_app(true);
        let err = attack(&mut app, "server", MAX_HEARTBEAT + 1).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }
}
