#![warn(missing_docs)]

//! # ne-tls — a miniature TLS-like library with a HeartBleed-style bug
//!
//! Substrate for the paper's § VI-A confinement case study. It plays the
//! role of (SGX-)OpenSSL:
//!
//! * [`handshake`] — session establishment with version/cipher-suite
//!   rollback detection,
//! * [`record`] — an authenticated record layer (AES-GCM, sequence
//!   numbers),
//! * [`heartbeat`] — the heartbeat extension, optionally compiled in its
//!   *vulnerable* form: a crafted request makes the library over-read past
//!   the request payload in its address space, exactly like
//!   CVE-2014-0160,
//! * [`echo`] — the SSL echo server of Fig. 7, runnable in monolithic
//!   (everything in one enclave) or nested (library in the outer enclave,
//!   application in an inner enclave) configuration.
//!
//! # Example
//!
//! ```
//! use ne_tls::record::RecordLayer;
//!
//! let mut client = RecordLayer::new([7u8; 16]);
//! let mut server = RecordLayer::new([7u8; 16]);
//! let wire = client.seal(ne_tls::record::ContentType::Data, b"ping");
//! let (ty, payload) = server.open(&wire).unwrap();
//! assert_eq!(ty, ne_tls::record::ContentType::Data);
//! assert_eq!(payload, b"ping");
//! ```

pub mod echo;
pub mod handshake;
pub mod heartbeat;
pub mod record;

pub use echo::{run_echo, EchoConfig, EchoRun};
pub use handshake::{perform_handshake, HandshakeError, SessionKeys, TLS_VERSION};
pub use heartbeat::{process_heartbeat, HeartbeatConfig};
pub use record::{ContentType, RecordError, RecordLayer};
