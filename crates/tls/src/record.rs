//! The authenticated record layer.
//!
//! Wire format: `[content_type: u8][len: u32 LE][ciphertext || tag]`, with
//! the sequence number as AES-GCM nonce/AAD so replayed or reordered
//! records fail to open.

use ne_crypto::gcm::AesGcm;
use std::fmt;

/// TLS content types (the subset we model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// Handshake messages.
    Handshake,
    /// Application data.
    Data,
    /// Heartbeat extension messages (RFC 6520).
    Heartbeat,
}

impl ContentType {
    fn to_byte(self) -> u8 {
        match self {
            ContentType::Handshake => 22,
            ContentType::Data => 23,
            ContentType::Heartbeat => 24,
        }
    }

    fn from_byte(b: u8) -> Option<ContentType> {
        match b {
            22 => Some(ContentType::Handshake),
            23 => Some(ContentType::Data),
            24 => Some(ContentType::Heartbeat),
            _ => None,
        }
    }
}

/// Record-layer errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Too short or inconsistent framing.
    Malformed,
    /// Unknown content type byte.
    BadContentType(u8),
    /// Authentication failed (tamper, replay, wrong key).
    BadMac,
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecordError::Malformed => write!(f, "malformed record"),
            RecordError::BadContentType(b) => write!(f, "bad content type {b}"),
            RecordError::BadMac => write!(f, "record authentication failed"),
        }
    }
}

impl std::error::Error for RecordError {}

/// One direction of a record stream (each peer owns two: send and
/// receive share the key here since the mini-handshake derives one key per
/// direction pair — adequate for the case study).
#[derive(Debug)]
pub struct RecordLayer {
    cipher: AesGcm,
    send_seq: u64,
    recv_seq: u64,
}

/// Bytes of framing overhead per record (type + length + GCM tag).
pub const RECORD_OVERHEAD: usize = 1 + 4 + 16;

impl RecordLayer {
    /// Creates a record layer with the session key.
    pub fn new(key: [u8; 16]) -> RecordLayer {
        RecordLayer {
            cipher: AesGcm::new(&key),
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Seals `payload` into a wire record.
    pub fn seal(&mut self, ty: ContentType, payload: &[u8]) -> Vec<u8> {
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.send_seq.to_le_bytes());
        let aad = [ty.to_byte()];
        let ct = self.cipher.seal(&nonce, payload, &aad);
        self.send_seq += 1;
        let mut out = Vec::with_capacity(5 + ct.len());
        out.push(ty.to_byte());
        out.extend_from_slice(&(ct.len() as u32).to_le_bytes());
        out.extend_from_slice(&ct);
        out
    }

    /// Opens a wire record.
    ///
    /// # Errors
    ///
    /// [`RecordError`] on framing or authentication failure.
    pub fn open(&mut self, wire: &[u8]) -> Result<(ContentType, Vec<u8>), RecordError> {
        if wire.len() < 5 {
            return Err(RecordError::Malformed);
        }
        let ty = ContentType::from_byte(wire[0]).ok_or(RecordError::BadContentType(wire[0]))?;
        // The length check above guarantees 4 bytes, but the wire path
        // must stay panic-free by construction, not by proof-at-a-
        // distance: a failed conversion is a malformed record, never an
        // abort.
        let len = wire[1..5]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| RecordError::Malformed)? as usize;
        if wire.len() != 5 + len {
            return Err(RecordError::Malformed);
        }
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&self.recv_seq.to_le_bytes());
        let aad = [wire[0]];
        let pt = self
            .cipher
            .open(&nonce, &wire[5..], &aad)
            .map_err(|_| RecordError::BadMac)?;
        self.recv_seq += 1;
        Ok((ty, pt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (RecordLayer, RecordLayer) {
        (RecordLayer::new([9; 16]), RecordLayer::new([9; 16]))
    }

    #[test]
    fn roundtrip() {
        let (mut a, mut b) = pair();
        let wire = a.seal(ContentType::Data, b"hello");
        let (ty, pt) = b.open(&wire).unwrap();
        assert_eq!(ty, ContentType::Data);
        assert_eq!(pt, b"hello");
    }

    #[test]
    fn sequence_numbers_prevent_replay() {
        let (mut a, mut b) = pair();
        let wire = a.seal(ContentType::Data, b"one");
        b.open(&wire).unwrap();
        assert_eq!(b.open(&wire).unwrap_err(), RecordError::BadMac);
    }

    #[test]
    fn reordering_detected() {
        let (mut a, mut b) = pair();
        let w1 = a.seal(ContentType::Data, b"one");
        let w2 = a.seal(ContentType::Data, b"two");
        assert_eq!(b.open(&w2).unwrap_err(), RecordError::BadMac);
        b.open(&w1).unwrap();
        b.open(&w2).unwrap();
    }

    #[test]
    fn content_type_is_authenticated() {
        let (mut a, mut b) = pair();
        let mut wire = a.seal(ContentType::Data, b"x");
        wire[0] = ContentType::Heartbeat.to_byte();
        assert_eq!(b.open(&wire).unwrap_err(), RecordError::BadMac);
    }

    #[test]
    fn tamper_detected() {
        let (mut a, mut b) = pair();
        let mut wire = a.seal(ContentType::Data, b"payload");
        let n = wire.len();
        wire[n - 1] ^= 1;
        assert_eq!(b.open(&wire).unwrap_err(), RecordError::BadMac);
    }

    #[test]
    fn malformed_records_rejected() {
        let (_, mut b) = pair();
        assert_eq!(b.open(&[]).unwrap_err(), RecordError::Malformed);
        assert_eq!(
            b.open(&[23, 9, 0, 0, 0]).unwrap_err(),
            RecordError::Malformed
        );
        assert_eq!(
            b.open(&[99, 0, 0, 0, 0]).unwrap_err(),
            RecordError::BadContentType(99)
        );
    }

    #[test]
    fn wrong_key_fails() {
        let mut a = RecordLayer::new([1; 16]);
        let mut b = RecordLayer::new([2; 16]);
        let wire = a.seal(ContentType::Data, b"x");
        assert_eq!(b.open(&wire).unwrap_err(), RecordError::BadMac);
    }
}
