//! The SSL echo server of Fig. 7.
//!
//! A client exchanges fixed-size chunks with an echo server over the
//! mini-TLS record layer. Two server configurations:
//!
//! * **monolithic** — the SSL library and the application code share one
//!   enclave (the paper's baseline);
//! * **nested** — the library runs in the outer enclave and the
//!   application (which holds the session keys and does all record
//!   encryption, § VI-A) in an inner enclave; every library call becomes
//!   an `n_ocall` crossing the protection boundary.
//!
//! Costs are charged in simulated cycles: AES-GCM per the cost profile,
//! and a fixed per-message network/syscall cost modelling the kernel
//! socket stack of the paper's real client/server testbed.

use crate::record::{ContentType, RecordLayer};
use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedFn};
use ne_sgx::config::HwConfig;
use ne_sgx::error::SgxError;
use ne_sgx::spantree::TraceBundle;
use std::sync::{Arc, Mutex};

/// Simulated cycles for one network send/receive (syscall + TCP/IP stack +
/// NIC handoff). Calibrated so transition overheads land in the paper's
/// 2–6% band for small chunks.
pub const NET_SYSCALL_CYCLES: u64 = 45_000;

/// Simulated cycles for record framing (header parse/emit) in the SSL
/// library, independent of payload size.
pub const FRAMING_CYCLES: u64 = 900;

/// Echo experiment configuration.
#[derive(Debug, Clone)]
pub struct EchoConfig {
    /// Payload bytes per message (the paper sweeps 128 B – 16 KiB).
    pub chunk_size: usize,
    /// Messages to exchange.
    pub num_messages: usize,
    /// Nested (library confined to the outer enclave) vs. monolithic.
    pub nested: bool,
    /// Record the event trace and return a [`TraceBundle`] with the run
    /// (Chrome Trace JSON + folded flamegraph stacks). Off by default in
    /// the sweeps — tracing is cheap but not free.
    pub trace: bool,
    /// Run on the naive reference memory pipeline instead of the optimized
    /// one (see [`HwConfig::reference_path`]). Architecturally identical;
    /// used by the wall-clock harness and the differential oracle.
    pub reference: bool,
}

/// Results of one echo run.
#[derive(Debug, Clone)]
pub struct EchoRun {
    /// Application bytes echoed.
    pub bytes: u64,
    /// Simulated cycles spent on the serving core.
    pub cycles: u64,
    /// EENTER-based calls observed.
    pub ecalls: u64,
    /// EEXIT-based calls observed.
    pub ocalls: u64,
    /// NEENTER transitions observed.
    pub n_ecalls: u64,
    /// NEEXIT transitions observed.
    pub n_ocalls: u64,
    /// Clock for cycle→time conversion.
    pub clock_ghz: f64,
    /// Full machine snapshot at the end of the run (per-enclave cycle
    /// breakdowns included).
    pub metrics: ne_sgx::metrics::MachineMetrics,
    /// Span-tree exports, when [`EchoConfig::trace`] was set.
    pub trace: Option<TraceBundle>,
}

impl EchoRun {
    /// Throughput in MB/s of simulated time.
    pub fn throughput_mbps(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (self.clock_ghz * 1e9);
        (self.bytes as f64 / 1e6) / seconds
    }

    /// ecalls+ocalls per message (the line series of Fig. 7; for nested
    /// runs this "includes n_ocall and n_ecall", as the paper states).
    pub fn calls_per_message(&self, num_messages: usize) -> f64 {
        (self.ecalls + self.ocalls + self.n_ecalls + self.n_ocalls) as f64
            / num_messages.max(1) as f64
    }
}

const SESSION_KEY: [u8; 16] = [0x42; 16];

fn gcm_cost(cfg: &HwConfig, len: usize) -> u64 {
    cfg.cost.gcm_setup + cfg.cost.gcm_per_byte * len as u64
}

/// Builds the echo application in the requested configuration.
///
/// # Errors
///
/// Loader/association failures.
pub fn build_echo_app(cfg: &EchoConfig) -> Result<NestedApp, SgxError> {
    let mut hw = HwConfig::testbed();
    hw.trace_events = cfg.trace;
    hw.reference_path = cfg.reference;
    let mut app = NestedApp::new(hw);
    let net_send: UntrustedFn = Arc::new(|cx, args| {
        cx.charge(NET_SYSCALL_CYCLES);
        Ok(args.to_vec())
    });
    app.register_untrusted("net_send", net_send);

    // The server's record state (one per direction pair); lives inside the
    // application enclave conceptually, host-side for the harness.
    let rx = Arc::new(Mutex::new(RecordLayer::new(SESSION_KEY)));
    let tx = Arc::new(Mutex::new(RecordLayer::new(SESSION_KEY)));

    if cfg.nested {
        // [port:begin echo]
        // Nested-enclave port of the echo server: the SSL library becomes
        // the outer enclave; library calls become n_ocalls.
        // Outer enclave: the SSL library — framing, session bookkeeping.
        let ssl = EnclaveImage::new("ssl", b"openssl-project")
            .code_pages(16)
            .heap_pages(4)
            .edl(Edl::new());
        let frame_fn: TrustedFn = Arc::new(|cx, args| {
            cx.charge(FRAMING_CYCLES);
            Ok(args.to_vec())
        });
        app.load(
            ssl,
            [
                ("ssl_open_frame".to_string(), frame_fn.clone()),
                ("ssl_seal_frame".to_string(), frame_fn),
            ],
        )?;
        // Inner enclave: the application — owns the keys, does the crypto.
        let img = EnclaveImage::new("app", b"service-provider")
            .heap_pages(8)
            .edl(
                Edl::new()
                    .ecall("echo_record")
                    .ocall("net_send")
                    .n_ocall("ssl_open_frame")
                    .n_ocall("ssl_seal_frame"),
            );
        let rx = rx.clone();
        let tx = tx.clone();
        let echo: TrustedFn = Arc::new(move |cx, wire| {
            let framed = cx.n_ocall("ssl_open_frame", wire)?;
            cx.charge(gcm_cost(cx.machine.config(), framed.len()));
            let (_, payload) = rx
                .lock()
                .expect("poisoned")
                .open(&framed)
                .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
            let reply = tx
                .lock()
                .expect("poisoned")
                .seal(ContentType::Data, &payload);
            cx.charge(gcm_cost(cx.machine.config(), payload.len()));
            let framed_reply = cx.n_ocall("ssl_seal_frame", &reply)?;
            cx.ocall("net_send", &framed_reply)
        });
        app.load(img, [("echo_record".to_string(), echo)])?;
        app.associate("app", "ssl")?;
        // [port:end echo]
    } else {
        // Monolithic: library + application in one enclave.
        let img = EnclaveImage::new("app", b"service-provider")
            .code_pages(20)
            .heap_pages(8)
            .edl(Edl::new().ecall("echo_record").ocall("net_send"));
        let rx = rx.clone();
        let tx = tx.clone();
        let echo: TrustedFn = Arc::new(move |cx, wire| {
            cx.charge(2 * FRAMING_CYCLES);
            cx.charge(gcm_cost(cx.machine.config(), wire.len()));
            let (_, payload) = rx
                .lock()
                .expect("poisoned")
                .open(wire)
                .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
            let reply = tx
                .lock()
                .expect("poisoned")
                .seal(ContentType::Data, &payload);
            cx.charge(gcm_cost(cx.machine.config(), payload.len()));
            cx.ocall("net_send", &reply)
        });
        app.load(img, [("echo_record".to_string(), echo)])?;
    }
    Ok(app)
}

/// Runs the Fig. 7 echo experiment.
///
/// # Errors
///
/// Propagates record-layer and enclave errors (none expected for valid
/// configurations).
pub fn run_echo(cfg: &EchoConfig) -> Result<EchoRun, SgxError> {
    let mut app = build_echo_app(cfg)?;
    let mut client_tx = RecordLayer::new(SESSION_KEY);
    let mut client_rx = RecordLayer::new(SESSION_KEY);
    let payload = vec![0xA5u8; cfg.chunk_size];
    app.machine.reset_metrics();
    let mut bytes = 0u64;
    for _ in 0..cfg.num_messages {
        let wire = client_tx.seal(ContentType::Data, &payload);
        // Receive syscall on the server (the client is a remote machine;
        // its cycles are not charged to the serving core).
        app.untrusted(0, |cx| cx.charge(NET_SYSCALL_CYCLES));
        let reply = app.ecall(0, "app", "echo_record", &wire)?;
        let (ty, echoed) = client_rx
            .open(&reply)
            .map_err(|e| SgxError::GeneralProtection(e.to_string()))?;
        assert_eq!(ty, ContentType::Data);
        assert_eq!(echoed, payload, "echo must be faithful");
        bytes += echoed.len() as u64;
    }
    let stats = app.machine.stats();
    Ok(EchoRun {
        bytes,
        cycles: app.machine.cycles(0),
        ecalls: stats.ecalls,
        ocalls: stats.ocalls,
        n_ecalls: stats.n_ecalls,
        n_ocalls: stats.n_ocalls,
        clock_ghz: app.machine.config().cost.clock_ghz,
        metrics: app.machine.metrics(),
        trace: cfg.trace.then(|| TraceBundle::capture(&app.machine)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(chunk: usize, nested: bool) -> EchoRun {
        run_echo(&EchoConfig {
            chunk_size: chunk,
            num_messages: 20,
            nested,
            trace: false,
            reference: false,
        })
        .unwrap()
    }

    #[test]
    fn both_configurations_echo_correctly() {
        for nested in [false, true] {
            let r = run(256, nested);
            assert_eq!(r.bytes, 20 * 256);
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn nested_uses_n_calls_monolithic_does_not() {
        let mono = run(256, false);
        assert_eq!(mono.n_ecalls + mono.n_ocalls, 0);
        let nested = run(256, true);
        assert_eq!(nested.n_ocalls, 20 * 2, "two library calls per message");
        assert_eq!(nested.n_ecalls, 20 * 2, "and two returns");
    }

    #[test]
    fn fig7_shape_small_overhead_that_shrinks_with_chunk_size() {
        // Paper: nested is 0.94–0.98× of monolithic, worse at small chunks.
        let overhead = |chunk: usize| {
            let mono = run(chunk, false);
            let nested = run(chunk, true);
            nested.cycles as f64 / mono.cycles as f64
        };
        let small = overhead(128);
        let large = overhead(16384);
        assert!(small > 1.0 && small < 1.12, "small-chunk overhead {small}");
        assert!(large > 1.0 && large < small, "large-chunk overhead {large}");
        assert!(large < 1.04, "large-chunk overhead {large} should be tiny");
    }

    #[test]
    fn calls_per_message_higher_when_nested() {
        let mono = run(512, false);
        let nested = run(512, true);
        assert!(nested.calls_per_message(20) > mono.calls_per_message(20));
    }

    #[test]
    fn tracing_captures_a_span_bundle() {
        let r = run_echo(&EchoConfig {
            chunk_size: 256,
            num_messages: 3,
            nested: true,
            trace: true,
            reference: false,
        })
        .unwrap();
        let bundle = r.trace.expect("trace requested");
        assert!(bundle.spans > 0, "spans reconstructed");
        assert!(bundle.chrome_json.contains("\"traceEvents\""));
        assert!(bundle.folded.contains("ecall"));
        // The untraced path stays cheap: no bundle.
        let quiet = run(256, true);
        assert!(quiet.trace.is_none());
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        let r = run(1024, true);
        let t = r.throughput_mbps();
        assert!(t.is_finite() && t > 0.0);
    }
}
