//! Property-based tests for the SQL engine.

use ne_db::{parse, Database, Value};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_total_on_arbitrary_input(input in "\\PC{0,200}") {
        let _ = parse(&input);
    }

    /// The parser is total on *near-miss* SQL too.
    #[test]
    fn parser_total_on_sql_shaped_input(
        kw in prop::sample::select(vec!["SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "FROM", "WHERE"]),
        rest in "[a-z0-9 '(),=*]{0,80}",
    ) {
        let _ = parse(&format!("{kw} {rest}"));
    }

    /// Inserted rows come back exactly via point SELECTs, matching a
    /// reference HashMap model, across arbitrary insert/update/delete
    /// interleavings.
    #[test]
    fn engine_matches_reference_model(
        ops in prop::collection::vec(
            (0..3u8, 0..24u32, "[a-z0-9]{0,12}"),
            1..80,
        )
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v TEXT)").unwrap();
        let mut model: HashMap<u32, String> = HashMap::new();
        for (op, key, val) in &ops {
            match op {
                0 => {
                    db.execute(&format!("INSERT INTO t VALUES ({key}, '{val}')")).unwrap();
                    model.insert(*key, val.clone());
                }
                1 => {
                    let r = db
                        .execute(&format!("UPDATE t SET v = '{val}' WHERE k = {key}"))
                        .unwrap();
                    if model.contains_key(key) {
                        prop_assert_eq!(r.affected, 1);
                        model.insert(*key, val.clone());
                    } else {
                        prop_assert_eq!(r.affected, 0);
                    }
                }
                _ => {
                    let r = db
                        .execute(&format!("DELETE FROM t WHERE k = {key}"))
                        .unwrap();
                    prop_assert_eq!(r.affected, usize::from(model.remove(key).is_some()));
                }
            }
            // Point query agrees with the model.
            let r = db.execute(&format!("SELECT v FROM t WHERE k = {key}")).unwrap();
            match model.get(key) {
                Some(v) => {
                    prop_assert_eq!(r.rows.len(), 1);
                    prop_assert_eq!(r.rows[0][0].as_text(), Some(v.as_str()));
                }
                None => prop_assert!(r.rows.is_empty()),
            }
        }
        // Full scan count agrees.
        let r = db.execute("SELECT * FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), model.len());
    }

    /// Scans always return rows in primary-key order.
    #[test]
    fn scans_are_key_ordered(keys in prop::collection::vec(0..1000i64, 1..40)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k INT, v TEXT)").unwrap();
        for k in &keys {
            db.execute(&format!("INSERT INTO t VALUES ({k}, 'x')")).unwrap();
        }
        let r = db.execute("SELECT k FROM t").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let mut want: Vec<i64> = keys.clone();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// Values display/compare consistently.
    #[test]
    fn value_ordering_total_within_type(a in any::<i64>(), b in any::<i64>()) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
    }
}
