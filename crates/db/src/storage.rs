//! B-tree-backed tables (the first column is the primary key, like the
//! YCSB `usertable`).

use crate::value::Value;
use std::collections::BTreeMap;

/// One table: schema + ordered rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Column names; column 0 is the primary key.
    pub columns: Vec<String>,
    rows: BTreeMap<Value, Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    pub fn new(columns: Vec<String>) -> Table {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Table {
            columns,
            rows: BTreeMap::new(),
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Inserts a full row; replaces any row with the same key, returning
    /// the old one.
    ///
    /// # Panics
    ///
    /// Panics if the arity mismatches (the executor validates first).
    pub fn insert(&mut self, row: Vec<Value>) -> Option<Vec<Value>> {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.insert(row[0].clone(), row)
    }

    /// Point lookup by primary key.
    pub fn get(&self, key: &Value) -> Option<&Vec<Value>> {
        self.rows.get(key)
    }

    /// Mutable point lookup.
    pub fn get_mut(&mut self, key: &Value) -> Option<&mut Vec<Value>> {
        self.rows.get_mut(key)
    }

    /// Removes a row by key.
    pub fn remove(&mut self, key: &Value) -> Option<Vec<Value>> {
        self.rows.remove(key)
    }

    /// Full scan in key order.
    pub fn scan(&self) -> impl Iterator<Item = &Vec<Value>> {
        self.rows.values()
    }

    /// Mutable full scan.
    pub fn scan_mut(&mut self) -> impl Iterator<Item = &mut Vec<Value>> {
        self.rows.values_mut()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new(vec!["k".into(), "v".into()])
    }

    #[test]
    fn insert_get() {
        let mut tab = t();
        tab.insert(vec![Value::Int(1), Value::from("a")]);
        assert_eq!(tab.get(&Value::Int(1)).unwrap()[1], Value::from("a"));
        assert!(tab.get(&Value::Int(2)).is_none());
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut tab = t();
        tab.insert(vec![Value::Int(1), Value::from("a")]);
        let old = tab.insert(vec![Value::Int(1), Value::from("b")]);
        assert_eq!(old.unwrap()[1], Value::from("a"));
        assert_eq!(tab.len(), 1);
        assert_eq!(tab.get(&Value::Int(1)).unwrap()[1], Value::from("b"));
    }

    #[test]
    fn scan_is_key_ordered() {
        let mut tab = t();
        for k in [3, 1, 2] {
            tab.insert(vec![Value::Int(k), Value::from("x")]);
        }
        let keys: Vec<i64> = tab.scan().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn remove() {
        let mut tab = t();
        tab.insert(vec![Value::Int(1), Value::from("a")]);
        assert!(tab.remove(&Value::Int(1)).is_some());
        assert!(tab.is_empty());
        assert!(tab.remove(&Value::Int(1)).is_none());
    }

    #[test]
    fn column_index() {
        let tab = t();
        assert_eq!(tab.column_index("v"), Some(1));
        assert_eq!(tab.column_index("zz"), None);
    }
}
