//! YCSB-style workload generator (Table VI).
//!
//! The paper runs SQLite under four mixes with a *uniform random* request
//! distribution over a pre-loaded `usertable`:
//!
//! | mix | reads | updates | inserts |
//! |-----|-------|---------|---------|
//! | `Insert100` | 0% | 0% | 100% |
//! | `Select50Update50` | 50% | 50% | 0% |
//! | `Select95Update5` | 95% | 5% | 0% |
//! | `Select100` | 100% | 0% | 0% |

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four Table VI mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMix {
    /// 100% INSERT.
    Insert100,
    /// 50% SELECT & 50% UPDATE.
    Select50Update50,
    /// 95% SELECT & 5% UPDATE.
    Select95Update5,
    /// 100% SELECT.
    Select100,
}

impl WorkloadMix {
    /// All four, in the paper's row order.
    pub const ALL: [WorkloadMix; 4] = [
        WorkloadMix::Insert100,
        WorkloadMix::Select50Update50,
        WorkloadMix::Select95Update5,
        WorkloadMix::Select100,
    ];

    /// The paper's row label.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadMix::Insert100 => "100% INSERT",
            WorkloadMix::Select50Update50 => "50% SELECT & 50% UPDATE",
            WorkloadMix::Select95Update5 => "95% SELECT & 5% UPDATE",
            WorkloadMix::Select100 => "100% SELECT",
        }
    }

    /// Probability of a SELECT (the remainder is UPDATE, except for
    /// `Insert100`).
    fn select_fraction(self) -> f64 {
        match self {
            WorkloadMix::Insert100 => 0.0,
            WorkloadMix::Select50Update50 => 0.5,
            WorkloadMix::Select95Update5 => 0.95,
            WorkloadMix::Select100 => 1.0,
        }
    }
}

/// A generated workload: SQL statements to run in order.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The schema-creation statement.
    pub create: String,
    /// Statements that pre-load the table.
    pub load: Vec<String>,
    /// The measured operations.
    pub operations: Vec<String>,
}

impl Workload {
    /// Generates a workload: `record_count` pre-loaded rows, then
    /// `op_count` operations of `mix` with uniformly random keys.
    pub fn generate(mix: WorkloadMix, record_count: usize, op_count: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        let create = "CREATE TABLE usertable (key TEXT, field0 TEXT)".to_string();
        let load = (0..record_count)
            .map(|i| format!("INSERT INTO usertable VALUES ('user{i}', '{}')", field(i)))
            .collect();
        let mut operations = Vec::with_capacity(op_count);
        let mut next_insert = record_count;
        for _ in 0..op_count {
            let op = if mix == WorkloadMix::Insert100 {
                let k = next_insert;
                next_insert += 1;
                format!("INSERT INTO usertable VALUES ('user{k}', '{}')", field(k))
            } else if rng.gen_range(0.0..1.0) < mix.select_fraction() {
                let k = rng.gen_range(0..record_count.max(1));
                format!("SELECT field0 FROM usertable WHERE key = 'user{k}'")
            } else {
                let k = rng.gen_range(0..record_count.max(1));
                format!(
                    "UPDATE usertable SET field0 = '{}' WHERE key = 'user{k}'",
                    field(k + 7)
                )
            };
            operations.push(op);
        }
        Workload {
            create,
            load,
            operations,
        }
    }
}

fn field(i: usize) -> String {
    // 100-byte-ish payload, like YCSB's default field size scaled down.
    format!("value-{i:08}-{}", "x".repeat(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    #[test]
    fn mixes_have_expected_composition() {
        let w = Workload::generate(WorkloadMix::Select95Update5, 100, 2000, 1);
        let selects = w
            .operations
            .iter()
            .filter(|o| o.starts_with("SELECT"))
            .count();
        let updates = w
            .operations
            .iter()
            .filter(|o| o.starts_with("UPDATE"))
            .count();
        assert_eq!(selects + updates, 2000);
        let frac = selects as f64 / 2000.0;
        assert!((frac - 0.95).abs() < 0.03, "select fraction {frac}");
    }

    #[test]
    fn insert_mix_is_all_inserts_with_fresh_keys() {
        let w = Workload::generate(WorkloadMix::Insert100, 10, 50, 2);
        assert!(w.operations.iter().all(|o| o.starts_with("INSERT")));
        let mut db = Database::new();
        db.execute(&w.create).unwrap();
        for s in w.load.iter().chain(&w.operations) {
            db.execute(s).unwrap();
        }
        assert_eq!(db.table_len("usertable"), Some(60), "no key collisions");
    }

    #[test]
    fn whole_workload_executes() {
        for mix in WorkloadMix::ALL {
            let w = Workload::generate(mix, 50, 200, 3);
            let mut db = Database::new();
            db.execute(&w.create).unwrap();
            for s in w.load.iter().chain(&w.operations) {
                db.execute(s).unwrap_or_else(|e| panic!("{mix:?}: {e}"));
            }
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Workload::generate(WorkloadMix::Select50Update50, 10, 20, 7);
        let b = Workload::generate(WorkloadMix::Select50Update50, 10, 20, 7);
        assert_eq!(a.operations, b.operations);
        let c = Workload::generate(WorkloadMix::Select50Update50, 10, 20, 8);
        assert_ne!(a.operations, c.operations);
    }
}
