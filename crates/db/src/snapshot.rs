//! Deterministic whole-database serialization.
//!
//! The sealed-state lifecycle (ne-core `lifecycle`, ROADMAP item 2) needs
//! to freeze a tenant's database engine into bytes, move those bytes to
//! another enclave — possibly on another shard — and thaw an engine that
//! answers every subsequent query exactly as the original would have.
//! That only works if serialization is **canonical**: the same logical
//! database state always produces the same bytes, regardless of the
//! insertion history or `HashMap` iteration order. Tables are therefore
//! written in ascending name order and rows in primary-key order (the
//! `BTreeMap` already guarantees the latter).
//!
//! The format is versioned and length-prefixed throughout, and
//! [`Database::restore_bytes`] is total: any truncated, corrupt, or
//! future-versioned input yields a typed [`SnapshotError`], never a
//! panic — the blob may have crossed a trust boundary.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "NEDBSNAP" | version u16 | table-count u32
//! per table (name order):
//!   name: len u32 + bytes
//!   column-count u32, per column: len u32 + bytes
//!   row-count u64, per row (key order), per value:
//!     tag u8 (0 = Int, 1 = Text) | i64  or  len u32 + bytes
//! ```

use crate::exec::Database;
use crate::storage::Table;
use crate::value::Value;
use std::fmt;

/// Magic prefix of every snapshot.
const MAGIC: &[u8; 8] = b"NEDBSNAP";
/// Current snapshot format version.
const VERSION: u16 = 1;

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The input ended before the structure it promised.
    Truncated,
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The input's format version is not one this build reads.
    BadVersion(u16),
    /// An unknown value tag (neither Int nor Text).
    BadTag(u8),
    /// A name or text value was not valid UTF-8.
    BadUtf8,
    /// Bytes remained after the last promised table.
    TrailingBytes(usize),
    /// A table arrived with zero columns (never produced by snapshot).
    EmptyTable(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a ne-db snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadTag(t) => write!(f, "unknown value tag {t}"),
            SnapshotError::BadUtf8 => write!(f, "snapshot string is not UTF-8"),
            SnapshotError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
            SnapshotError::EmptyTable(t) => write!(f, "table {t} has no columns"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

/// Bounded little-endian reader over the snapshot bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadUtf8)
    }

    fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.i64()?)),
            1 => Ok(Value::Text(self.str()?)),
            t => Err(SnapshotError::BadTag(t)),
        }
    }
}

impl Database {
    /// Serializes the whole database into canonical bytes: the same
    /// logical state always yields the same bytes (tables sorted by
    /// name, rows in key order).
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let tables = self.tables_sorted();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
        for (name, table) in tables {
            put_str(&mut out, name);
            out.extend_from_slice(&(table.columns.len() as u32).to_le_bytes());
            for c in &table.columns {
                put_str(&mut out, c);
            }
            out.extend_from_slice(&(table.len() as u64).to_le_bytes());
            for row in table.scan() {
                for v in row {
                    put_value(&mut out, v);
                }
            }
        }
        out
    }

    /// Rebuilds a database from [`Database::snapshot_bytes`] output.
    ///
    /// # Errors
    ///
    /// Any malformed input — truncation, wrong magic or version, unknown
    /// tags, non-UTF-8 strings, trailing bytes — yields a
    /// [`SnapshotError`]; restore never panics on hostile bytes.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Database, SnapshotError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16()?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let mut db = Database::new();
        let num_tables = r.u32()?;
        for _ in 0..num_tables {
            let name = r.str()?;
            let num_columns = r.u32()? as usize;
            if num_columns == 0 {
                return Err(SnapshotError::EmptyTable(name));
            }
            let mut columns = Vec::with_capacity(num_columns);
            for _ in 0..num_columns {
                columns.push(r.str()?);
            }
            let mut table = Table::new(columns);
            let rows = r.u64()?;
            for _ in 0..rows {
                let mut row = Vec::with_capacity(num_columns);
                for _ in 0..num_columns {
                    row.push(r.value()?);
                }
                table.insert(row);
            }
            db.install_table(name, table);
        }
        if r.pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes(bytes.len() - r.pos));
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE usertable (key TEXT, field0 TEXT)")
            .unwrap();
        db.execute("INSERT INTO usertable VALUES ('user3', 'c')")
            .unwrap();
        db.execute("INSERT INTO usertable VALUES ('user1', 'a')")
            .unwrap();
        db.execute("CREATE TABLE nums (k TEXT, n TEXT)").unwrap();
        db.execute("INSERT INTO nums VALUES ('x', '42')").unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let db = sample();
        let bytes = db.snapshot_bytes();
        let back = Database::restore_bytes(&bytes).unwrap();
        assert_eq!(back.num_tables(), 2);
        assert_eq!(back.table_len("usertable"), Some(2));
        let mut back = back;
        let r = back
            .execute("SELECT field0 FROM usertable WHERE key = 'user1'")
            .unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("a"));
    }

    #[test]
    fn snapshot_is_canonical() {
        // Same logical state built in two different orders → same bytes.
        let a = sample();
        let mut b = Database::new();
        b.execute("CREATE TABLE nums (k TEXT, n TEXT)").unwrap();
        b.execute("INSERT INTO nums VALUES ('x', '42')").unwrap();
        b.execute("CREATE TABLE usertable (key TEXT, field0 TEXT)")
            .unwrap();
        b.execute("INSERT INTO usertable VALUES ('user1', 'a')")
            .unwrap();
        b.execute("INSERT INTO usertable VALUES ('user3', 'c')")
            .unwrap();
        assert_eq!(a.snapshot_bytes(), b.snapshot_bytes());
        // And restore → snapshot is the identity on bytes.
        let bytes = a.snapshot_bytes();
        let back = Database::restore_bytes(&bytes).unwrap();
        assert_eq!(back.snapshot_bytes(), bytes);
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let back = Database::restore_bytes(&db.snapshot_bytes()).unwrap();
        assert_eq!(back.num_tables(), 0);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        let good = sample().snapshot_bytes();
        assert_eq!(
            Database::restore_bytes(b"not a snapshot at all"),
            Err(SnapshotError::BadMagic)
        );
        // Every truncation point fails cleanly.
        for cut in 0..good.len() {
            let r = Database::restore_bytes(&good[..cut]);
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
        // Future version refused.
        let mut v2 = good.clone();
        v2[8] = 2;
        assert_eq!(
            Database::restore_bytes(&v2),
            Err(SnapshotError::BadVersion(2))
        );
        // Trailing garbage refused.
        let mut long = good.clone();
        long.push(0);
        assert_eq!(
            Database::restore_bytes(&long),
            Err(SnapshotError::TrailingBytes(1))
        );
        // Unknown value tag refused (tag byte of the first row value).
        let mut bad = good;
        // Find the first value tag: after magic+version+count, table name,
        // columns, row count. Easier: flip a byte and require *an* error
        // or a state that still round-trips; the typed-tag path is
        // covered by constructing a tiny snapshot by hand below.
        bad.truncate(10);
        assert_eq!(Database::restore_bytes(&bad), Err(SnapshotError::Truncated));
    }

    #[test]
    fn bad_value_tag_is_refused() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (k TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES ('a')").unwrap();
        let mut bytes = db.snapshot_bytes();
        // The single row's single value tag is 1 (Text); corrupt it.
        let pos = bytes.len() - (4 + 1) - 1; // len u32 + 'a' + tag before them
        assert_eq!(bytes[pos], 1);
        bytes[pos] = 9;
        assert_eq!(
            Database::restore_bytes(&bytes),
            Err(SnapshotError::BadTag(9))
        );
    }
}
