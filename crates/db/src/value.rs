//! SQL values.

use std::fmt;

/// A dynamically-typed SQL value (the subset the case study needs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// Text string.
    Text(String),
}

impl Value {
    /// The integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Text(_) => None,
        }
    }

    /// The text, if this is one.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_text(), None);
        assert_eq!(Value::from("x").as_text(), Some("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("ab").to_string(), "'ab'");
    }

    #[test]
    fn ordering_within_type() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
    }
}
