//! Statement execution.

use crate::parser::{parse, ParseError, Statement};
use crate::storage::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Syntax error from the parser.
    Parse(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Wrong number of inserted values.
    ArityMismatch {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// Table already exists.
    TableExists(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(s) => write!(f, "parse error: {s}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e.0)
    }
}

/// Result of a statement: projected rows (for SELECT) and the number of
/// rows affected (for writes).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryResult {
    /// Projected rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
}

/// An in-memory SQL database. `Clone` yields an independent deep copy —
/// hosts use a throwaway clone to probe a statement's result without
/// committing its effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Parses and executes one statement.
    ///
    /// # Errors
    ///
    /// Parse and execution errors ([`DbError`]).
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult, DbError> {
        let stmt = parse(sql)?;
        self.execute_statement(&stmt)
    }

    /// Executes an already-parsed statement (the nested case study parses
    /// in the inner enclave and executes in the outer one).
    ///
    /// # Errors
    ///
    /// Execution errors ([`DbError`]).
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<QueryResult, DbError> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                if self.tables.contains_key(name) {
                    return Err(DbError::TableExists(name.clone()));
                }
                self.tables
                    .insert(name.clone(), Table::new(columns.clone()));
                Ok(QueryResult::default())
            }
            Statement::Insert { table, values } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                if values.len() != t.columns.len() {
                    return Err(DbError::ArityMismatch {
                        expected: t.columns.len(),
                        got: values.len(),
                    });
                }
                t.insert(values.clone());
                Ok(QueryResult {
                    rows: vec![],
                    affected: 1,
                })
            }
            Statement::Select {
                table,
                columns,
                predicate,
            } => {
                let t = self
                    .tables
                    .get(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let proj: Vec<usize> = if columns.is_empty() {
                    (0..t.columns.len()).collect()
                } else {
                    columns
                        .iter()
                        .map(|c| {
                            t.column_index(c)
                                .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                        })
                        .collect::<Result<_, _>>()?
                };
                let mut rows = Vec::new();
                match predicate {
                    // Point query on the primary key: B-tree lookup.
                    Some((col, v)) if t.column_index(col) == Some(0) => {
                        if let Some(row) = t.get(v) {
                            rows.push(proj.iter().map(|&i| row[i].clone()).collect());
                        }
                    }
                    Some((col, v)) => {
                        let ci = t
                            .column_index(col)
                            .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                        for row in t.scan() {
                            if &row[ci] == v {
                                rows.push(proj.iter().map(|&i| row[i].clone()).collect());
                            }
                        }
                    }
                    None => {
                        for row in t.scan() {
                            rows.push(proj.iter().map(|&i| row[i].clone()).collect());
                        }
                    }
                }
                let affected = rows.len();
                Ok(QueryResult { rows, affected })
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let assign_idx: Vec<(usize, Value)> = assignments
                    .iter()
                    .map(|(c, v)| {
                        t.column_index(c)
                            .map(|i| (i, v.clone()))
                            .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let mut affected = 0;
                match predicate {
                    Some((col, v)) if t.column_index(col) == Some(0) => {
                        if let Some(row) = t.get_mut(v) {
                            for (i, nv) in &assign_idx {
                                row[*i] = nv.clone();
                            }
                            affected = 1;
                        }
                    }
                    Some((col, v)) => {
                        let ci = t
                            .column_index(col)
                            .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                        for row in t.scan_mut() {
                            if &row[ci] == v {
                                for (i, nv) in &assign_idx {
                                    row[*i] = nv.clone();
                                }
                                affected += 1;
                            }
                        }
                    }
                    None => {
                        for row in t.scan_mut() {
                            for (i, nv) in &assign_idx {
                                row[*i] = nv.clone();
                            }
                            affected += 1;
                        }
                    }
                }
                Ok(QueryResult {
                    rows: vec![],
                    affected,
                })
            }
            Statement::Delete { table, predicate } => {
                let t = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
                let (col, v) = predicate;
                let affected = if t.column_index(col) == Some(0) {
                    usize::from(t.remove(v).is_some())
                } else {
                    let ci = t
                        .column_index(col)
                        .ok_or_else(|| DbError::NoSuchColumn(col.clone()))?;
                    let keys: Vec<Value> = t
                        .scan()
                        .filter(|row| &row[ci] == v)
                        .map(|row| row[0].clone())
                        .collect();
                    let n = keys.len();
                    for k in keys {
                        t.remove(&k);
                    }
                    n
                };
                Ok(QueryResult {
                    rows: vec![],
                    affected,
                })
            }
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Row count of a table, if it exists.
    pub fn table_len(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(Table::len)
    }

    /// Tables in ascending name order (the snapshot codec's canonical
    /// iteration order — `HashMap` iteration order must never leak into
    /// serialized bytes).
    pub(crate) fn tables_sorted(&self) -> Vec<(&String, &Table)> {
        let mut tables: Vec<_> = self.tables.iter().collect();
        tables.sort_by_key(|(name, _)| (*name).clone());
        tables
    }

    /// Installs a fully-built table under `name` (snapshot restore path).
    pub(crate) fn install_table(&mut self, name: String, table: Table) {
        self.tables.insert(name, table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut d = Database::new();
        d.execute("CREATE TABLE usertable (key TEXT, f0 TEXT, f1 INT)")
            .unwrap();
        d.execute("INSERT INTO usertable VALUES ('u1', 'a', 10)")
            .unwrap();
        d.execute("INSERT INTO usertable VALUES ('u2', 'b', 20)")
            .unwrap();
        d
    }

    #[test]
    fn select_point_query() {
        let mut d = db();
        let r = d
            .execute("SELECT f0, f1 FROM usertable WHERE key = 'u1'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("a"), Value::Int(10)]]);
    }

    #[test]
    fn select_star_scan() {
        let mut d = db();
        let r = d.execute("SELECT * FROM usertable").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("u1"));
    }

    #[test]
    fn select_non_key_predicate_scans() {
        let mut d = db();
        let r = d
            .execute("SELECT key FROM usertable WHERE f1 = 20")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::from("u2")]]);
    }

    #[test]
    fn update_point_and_verify() {
        let mut d = db();
        let r = d
            .execute("UPDATE usertable SET f0 = 'z' WHERE key = 'u2'")
            .unwrap();
        assert_eq!(r.affected, 1);
        let r = d
            .execute("SELECT f0 FROM usertable WHERE key = 'u2'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::from("z"));
    }

    #[test]
    fn update_all_rows() {
        let mut d = db();
        let r = d.execute("UPDATE usertable SET f1 = 0").unwrap();
        assert_eq!(r.affected, 2);
    }

    #[test]
    fn delete_by_key() {
        let mut d = db();
        let r = d.execute("DELETE FROM usertable WHERE key = 'u1'").unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(d.table_len("usertable"), Some(1));
    }

    #[test]
    fn insert_replaces_by_key() {
        let mut d = db();
        d.execute("INSERT INTO usertable VALUES ('u1', 'new', 99)")
            .unwrap();
        assert_eq!(d.table_len("usertable"), Some(2), "upsert, not duplicate");
        let r = d
            .execute("SELECT f0 FROM usertable WHERE key = 'u1'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::from("new"));
    }

    #[test]
    fn error_paths() {
        let mut d = db();
        assert!(matches!(
            d.execute("SELECT * FROM missing"),
            Err(DbError::NoSuchTable(_))
        ));
        assert!(matches!(
            d.execute("SELECT nope FROM usertable"),
            Err(DbError::NoSuchColumn(_))
        ));
        assert!(matches!(
            d.execute("INSERT INTO usertable VALUES ('x')"),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            d.execute("CREATE TABLE usertable (a TEXT)"),
            Err(DbError::TableExists(_))
        ));
        assert!(matches!(d.execute("garbage"), Err(DbError::Parse(_))));
    }

    #[test]
    fn missing_point_select_returns_empty() {
        let mut d = db();
        let r = d
            .execute("SELECT * FROM usertable WHERE key = 'nope'")
            .unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.affected, 0);
    }
}
