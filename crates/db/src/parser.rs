//! SQL tokenizer and parser for the dialect the case study exercises:
//!
//! ```sql
//! CREATE TABLE t (col1 TEXT, col2 INT, ...)
//! INSERT INTO t VALUES (v1, v2, ...)
//! SELECT col, ... | * FROM t [WHERE col = v]
//! UPDATE t SET col = v [, ...] [WHERE col = v]
//! DELETE FROM t WHERE col = v
//! ```

use crate::value::Value;
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (columns)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names (types are dynamic).
        columns: Vec<String>,
    },
    /// `INSERT INTO name VALUES (...)`.
    Insert {
        /// Table name.
        table: String,
        /// Row values, one per column.
        values: Vec<Value>,
    },
    /// `SELECT cols FROM name [WHERE col = v]`.
    Select {
        /// Table name.
        table: String,
        /// Projected columns; empty means `*`.
        columns: Vec<String>,
        /// Optional equality predicate.
        predicate: Option<(String, Value)>,
    },
    /// `UPDATE name SET col = v, ... [WHERE col = v]`.
    Update {
        /// Table name.
        table: String,
        /// Column assignments.
        assignments: Vec<(String, Value)>,
        /// Optional equality predicate.
        predicate: Option<(String, Value)>,
    },
    /// `DELETE FROM name WHERE col = v`.
    Delete {
        /// Table name.
        table: String,
        /// Equality predicate (mandatory — no full-table deletes).
        predicate: (String, Value),
    },
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(i64),
    LParen,
    RParen,
    Comma,
    Eq,
    Star,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(ch) => s.push(ch),
                        None => return Err(ParseError("unterminated string".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '-' | '0'..='9' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n = s
                    .parse::<i64>()
                    .map_err(|_| ParseError(format!("bad number '{s}'")))?;
                out.push(Token::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(ParseError(format!("unexpected character '{other}'"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| ParseError("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(ParseError(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect(&mut self, t: Token) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == t {
            Ok(())
        } else {
            Err(ParseError(format!("expected {t:?}, found {got:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.next()? {
            Token::Str(s) => Ok(Value::Text(s)),
            Token::Num(n) => Ok(Value::Int(n)),
            other => Err(ParseError(format!("expected value, found {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Option<(String, Value)>, ParseError> {
        if self.try_keyword("WHERE") {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            let v = self.value()?;
            Ok(Some((col, v)))
        } else {
            Ok(None)
        }
    }

    fn done(&self) -> Result<(), ParseError> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(ParseError("trailing tokens after statement".into()))
        }
    }
}

/// Parses one SQL statement.
///
/// # Errors
///
/// [`ParseError`] describing the first syntax problem.
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
    };
    let stmt = match p.next()? {
        Token::Ident(kw) if kw.eq_ignore_ascii_case("CREATE") => {
            p.keyword("TABLE")?;
            let name = p.ident()?;
            p.expect(Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = p.ident()?;
                // Optional type annotation (TEXT/INT/...), ignored.
                if let Some(Token::Ident(_)) = p.peek() {
                    p.pos += 1;
                }
                columns.push(col);
                match p.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return Err(ParseError(format!("expected , or ), got {other:?}"))),
                }
            }
            Statement::CreateTable { name, columns }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("INSERT") => {
            p.keyword("INTO")?;
            let table = p.ident()?;
            p.keyword("VALUES")?;
            p.expect(Token::LParen)?;
            let mut values = vec![p.value()?];
            loop {
                match p.next()? {
                    Token::Comma => values.push(p.value()?),
                    Token::RParen => break,
                    other => return Err(ParseError(format!("expected , or ), got {other:?}"))),
                }
            }
            Statement::Insert { table, values }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("SELECT") => {
            let mut columns = Vec::new();
            if let Some(Token::Star) = p.peek() {
                p.pos += 1;
            } else {
                columns.push(p.ident()?);
                while let Some(Token::Comma) = p.peek() {
                    p.pos += 1;
                    columns.push(p.ident()?);
                }
            }
            p.keyword("FROM")?;
            let table = p.ident()?;
            let predicate = p.predicate()?;
            Statement::Select {
                table,
                columns,
                predicate,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("UPDATE") => {
            let table = p.ident()?;
            p.keyword("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = p.ident()?;
                p.expect(Token::Eq)?;
                assignments.push((col, p.value()?));
                if let Some(Token::Comma) = p.peek() {
                    p.pos += 1;
                } else {
                    break;
                }
            }
            let predicate = p.predicate()?;
            Statement::Update {
                table,
                assignments,
                predicate,
            }
        }
        Token::Ident(kw) if kw.eq_ignore_ascii_case("DELETE") => {
            p.keyword("FROM")?;
            let table = p.ident()?;
            let predicate = p
                .predicate()?
                .ok_or_else(|| ParseError("DELETE requires WHERE".into()))?;
            Statement::Delete { table, predicate }
        }
        other => return Err(ParseError(format!("unknown statement start {other:?}"))),
    };
    p.done()?;
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table() {
        let s = parse("CREATE TABLE t (a TEXT, b INT)").unwrap();
        assert_eq!(
            s,
            Statement::CreateTable {
                name: "t".into(),
                columns: vec!["a".into(), "b".into()]
            }
        );
    }

    #[test]
    fn insert() {
        let s = parse("INSERT INTO t VALUES ('x', 42)").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::from("x"), Value::Int(42)]
            }
        );
    }

    #[test]
    fn select_star_and_columns() {
        let s = parse("SELECT * FROM t").unwrap();
        assert_eq!(
            s,
            Statement::Select {
                table: "t".into(),
                columns: vec![],
                predicate: None
            }
        );
        let s = parse("SELECT a, b FROM t WHERE a = 'k'").unwrap();
        assert_eq!(
            s,
            Statement::Select {
                table: "t".into(),
                columns: vec!["a".into(), "b".into()],
                predicate: Some(("a".into(), Value::from("k")))
            }
        );
    }

    #[test]
    fn update_with_where() {
        let s = parse("UPDATE t SET b = 7, c = 'z' WHERE a = 1").unwrap();
        assert_eq!(
            s,
            Statement::Update {
                table: "t".into(),
                assignments: vec![("b".into(), Value::Int(7)), ("c".into(), Value::from("z"))],
                predicate: Some(("a".into(), Value::Int(1)))
            }
        );
    }

    #[test]
    fn delete_requires_where() {
        assert!(parse("DELETE FROM t").is_err());
        let s = parse("DELETE FROM t WHERE a = 1").unwrap();
        assert_eq!(
            s,
            Statement::Delete {
                table: "t".into(),
                predicate: ("a".into(), Value::Int(1))
            }
        );
    }

    #[test]
    fn negative_numbers() {
        let s = parse("INSERT INTO t VALUES (-5)").unwrap();
        assert_eq!(
            s,
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(-5)]
            }
        );
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("select * from t").is_ok());
        assert!(parse("insert into t values (1)").is_ok());
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t VALUES ('unterminated)").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT * FROM t WHERE a = ").is_err());
    }
}
