#![warn(missing_docs)]

//! # ne-db — a miniature SQL engine with a YCSB workload generator
//!
//! Substrate for the paper's SQLite case study (§ VI-B, Table VI): a small
//! but real query path — tokenizer → parser → executor over B-tree-backed
//! tables — plus a YCSB-style workload generator producing the paper's
//! four mixes with a uniform random request distribution.
//!
//! # Example
//!
//! ```
//! use ne_db::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE usertable (key TEXT, field0 TEXT)").unwrap();
//! db.execute("INSERT INTO usertable VALUES ('user1', 'v1')").unwrap();
//! let rows = db.execute("SELECT field0 FROM usertable WHERE key = 'user1'").unwrap();
//! assert_eq!(rows.rows[0][0].as_text(), Some("v1"));
//! ```

pub mod exec;
pub mod parser;
pub mod snapshot;
pub mod storage;
pub mod value;
pub mod ycsb;

pub use exec::{Database, QueryResult};
pub use parser::{parse, Statement};
pub use snapshot::SnapshotError;
pub use value::Value;
pub use ycsb::{Workload, WorkloadMix};
