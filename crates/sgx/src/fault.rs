//! Deterministic fault injection ("chaos") for the simulated machine.
//!
//! A [`FaultPlan`] is installed on a [`Machine`](crate::machine::Machine)
//! and consulted at the EENTER boundary — the natural clock of a serving
//! workload, and the point where real SGX failures surface (a crashed
//! enclave faults the *next* entry attempt). Every decision the plan makes
//! comes from a seeded [SplitMix64] generator and a per-kind trigger
//! period, so a run with the same seed and spec replays the exact same
//! fault sequence, byte for byte. No wall clock, no OS entropy.
//!
//! Five fault kinds are modeled (§ taxonomy in ARCHITECTURE.md):
//!
//! * **aex** — an interrupt storm: 1–3 immediate AEX/ERESUME round trips
//!   on the entering core, exercising context save/restore and the
//!   TLB-flush accounting on every trip;
//! * **evict** — forced EPC pressure: the lowest-VA regular pages of the
//!   entered enclave *and of each of its inner enclaves* are EWBed out
//!   (sealed blobs parked on the machine), so the next code fetch faults
//!   with `EnclavePageSwappedOut` and the host must reload;
//! * **mac** — a physical integrity attack: a cache line of the enclave's
//!   entry page is tampered on the DRAM bus, so the MEE rejects the next
//!   fetch with `IntegrityViolation`;
//! * **crash** — the enclave (or one of its inner enclaves, chosen by the
//!   PRNG) aborts: it is poisoned and every subsequent EENTER/NEENTER
//!   fails with [`SgxError::EnclavePoisoned`] until EREMOVE;
//! * **stall** — the switchless reply core stops polling for a few
//!   requests: switchless ocalls fail with [`SgxError::Stalled`] and the
//!   host degrades to classic exit-based ocalls.
//!
//! The injected faults are applied with the *real* instruction
//! implementations (`aex`/`eresume`/`ewb`/`physical_tamper`), so every
//! cycle-attribution and profile identity in
//! [`MachineMetrics::check`](crate::metrics::MachineMetrics::check)
//! continues to hold under chaos.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::error::{Result, SgxError};
use std::fmt;

/// Default trigger period (in targeted EENTERs) per fault kind. Chosen
/// mutually coprime so combined specs interleave rather than align.
const DEFAULT_PERIODS: [(ChaosKind, u64); 6] = [
    (ChaosKind::Aex, 4),
    (ChaosKind::Evict, 7),
    (ChaosKind::Stall, 5),
    (ChaosKind::Mac, 19),
    (ChaosKind::Crash, 23),
    (ChaosKind::Migrate, 29),
];

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosKind {
    /// AEX storm on the entering core.
    Aex,
    /// Forced EWB of hot pages (outer and inner).
    Evict,
    /// MEE MAC/version-tree integrity failure.
    Mac,
    /// Enclave abort: poison the enclave (or an inner enclave).
    Crash,
    /// Switchless reply-queue stall window.
    Stall,
    /// Migration pressure: ask the host to live-migrate the entered
    /// enclave's tenant. Unlike the other kinds this injects no
    /// architectural fault — it parks a request the driving layer picks
    /// up at its next safe point, so the five-phase migration machine
    /// itself runs *under* whatever other chaos the spec combines it
    /// with.
    Migrate,
}

impl ChaosKind {
    /// Stable lowercase name (spec syntax and export key).
    pub fn name(self) -> &'static str {
        match self {
            ChaosKind::Aex => "aex",
            ChaosKind::Evict => "evict",
            ChaosKind::Mac => "mac",
            ChaosKind::Crash => "crash",
            ChaosKind::Stall => "stall",
            ChaosKind::Migrate => "migrate",
        }
    }

    fn parse(s: &str) -> Option<ChaosKind> {
        match s {
            "aex" => Some(ChaosKind::Aex),
            "evict" => Some(ChaosKind::Evict),
            "mac" => Some(ChaosKind::Mac),
            "crash" => Some(ChaosKind::Crash),
            "stall" => Some(ChaosKind::Stall),
            "migrate" => Some(ChaosKind::Migrate),
            _ => None,
        }
    }

    fn default_period(self) -> u64 {
        DEFAULT_PERIODS
            .iter()
            .find(|(k, _)| *k == self)
            .map(|&(_, p)| p)
            .unwrap_or(7)
    }
}

impl fmt::Display for ChaosKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One parsed `kind[:period]` term of a chaos spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTerm {
    /// What to inject.
    pub kind: ChaosKind,
    /// Fire every `period`-th targeted EENTER.
    pub period: u64,
}

/// A concrete fault the machine must apply at the current EENTER.
///
/// The plan makes every random choice up front (as raw PRNG draws) so the
/// machine-side application is pure bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Run `rounds` AEX + ERESUME round trips on the entering core.
    AexStorm {
        /// Number of interrupt round trips (1–3).
        rounds: u32,
    },
    /// EWB the `pages` lowest-VA REG pages of the entered enclave and of
    /// each of its inner enclaves.
    Evict {
        /// Pages to evict per enclave (1–3).
        pages: u32,
    },
    /// Tamper a cache line of the enclave's entry page.
    Mac,
    /// Poison the entered enclave or one of its inner enclaves;
    /// `pick` indexes (mod the candidate count) into `[self] ++ inners`.
    Crash {
        /// Raw PRNG draw selecting the victim.
        pick: u64,
    },
    /// `window` switchless ocalls will report the reply core stalled.
    Stall {
        /// Number of consecutive switchless ocalls to fail (1–3).
        window: u32,
    },
    /// Park a migration request for the entered enclave (no fault).
    Migrate,
}

/// One applied chaos injection, as recorded by the machine at the moment
/// the fault was put into effect. The log (see
/// [`Machine::chaos_events`](crate::machine::Machine::chaos_events)) is
/// what lets an observability layer join *injections* with the *recovery
/// actions* they later trigger: the cycle stamps come from the simulated
/// clock, so the log is byte-deterministic like everything else here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosInjection {
    /// Cycle count of the entering core when the fault was applied.
    pub cycle: u64,
    /// Raw id of the affected enclave — the crash *victim* for
    /// [`ChaosKind::Crash`] (which may be an inner enclave of the entered
    /// one), the entered enclave otherwise.
    pub eid: u64,
    /// What was injected.
    pub kind: ChaosKind,
}

/// Counters for the faults a plan has injected so far. Deterministic for
/// a given (seed, spec, workload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Targeted EENTERs observed (the trigger clock).
    pub eenters_seen: u64,
    /// AEX storms injected (individual AEXes are in `stats.aexes`).
    pub aex_storms: u64,
    /// Pages force-evicted (matches the chaos share of `ewb_pages`).
    pub forced_evictions: u64,
    /// Integrity (MAC) tamperings injected.
    pub tamperings: u64,
    /// Enclave crashes injected (poisonings).
    pub crashes: u64,
    /// Switchless ocalls failed by a stall window.
    pub stalls: u64,
    /// Migration requests parked for the host.
    pub migrations: u64,
}

/// SplitMix64: tiny, seedable, excellent diffusion; keeps `ne-sgx` free
/// of a RNG dependency.
#[derive(Debug, Clone)]
struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    fn new(seed: u64) -> ChaosRng {
        ChaosRng { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[1, n]` (n ≥ 1).
    fn one_to(&mut self, n: u64) -> u64 {
        1 + self.next() % n
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Build one with [`FaultPlan::parse`] (the `--chaos` grammar) or
/// [`FaultPlan::new`], optionally confine it with
/// [`target_eids`](FaultPlan::target_eids), and install it with
/// [`Machine::install_chaos`](crate::machine::Machine::install_chaos).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    terms: Vec<FaultTerm>,
    rng: ChaosRng,
    /// Raw enclave ids the plan is confined to; empty = every enclave.
    targets: Vec<u64>,
    /// Remaining switchless ocalls to fail.
    stall_window: u32,
    stats: ChaosStats,
}

impl FaultPlan {
    /// Creates a plan from explicit terms and a seed.
    pub fn new(terms: Vec<FaultTerm>, seed: u64) -> FaultPlan {
        FaultPlan {
            terms,
            rng: ChaosRng::new(seed),
            targets: Vec::new(),
            stall_window: 0,
            stats: ChaosStats::default(),
        }
    }

    /// Parses the `--chaos` spec grammar:
    ///
    /// ```text
    /// spec   := term ('+' term)*
    /// term   := kind [':' period]
    /// kind   := 'aex' | 'evict' | 'mac' | 'crash' | 'stall'
    /// period := positive integer (fire every Nth targeted EENTER)
    /// ```
    ///
    /// Example: `aex+evict` (default periods), `crash:25+stall:9`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed term.
    pub fn parse(spec: &str, seed: u64) -> std::result::Result<FaultPlan, String> {
        let mut terms = Vec::new();
        for raw in spec.split('+') {
            let raw = raw.trim();
            if raw.is_empty() {
                return Err(format!("empty term in chaos spec '{spec}'"));
            }
            let (name, period) = match raw.split_once(':') {
                Some((n, p)) => {
                    let period: u64 = p
                        .parse()
                        .map_err(|_| format!("bad period '{p}' in chaos term '{raw}'"))?;
                    if period == 0 {
                        return Err(format!("zero period in chaos term '{raw}'"));
                    }
                    (n, Some(period))
                }
                None => (raw, None),
            };
            let kind = ChaosKind::parse(name).ok_or_else(|| {
                format!("unknown chaos kind '{name}' (want aex|evict|mac|crash|stall|migrate)")
            })?;
            terms.push(FaultTerm {
                kind,
                period: period.unwrap_or_else(|| kind.default_period()),
            });
        }
        Ok(FaultPlan::new(terms, seed))
    }

    /// Confines the plan to the given enclaves (raw ids). EENTERs into
    /// other enclaves still advance the trigger clock but never fire —
    /// this is what the cross-tenant isolation property tests use.
    pub fn target_eids(mut self, eids: Vec<u64>) -> FaultPlan {
        self.targets = eids;
        self
    }

    /// Replaces `old` with `new` in the target set (a respawned enclave
    /// gets a fresh id; the host re-aims the plan at it).
    pub fn retarget(&mut self, old: u64, new: u64) {
        for t in &mut self.targets {
            if *t == old {
                *t = new;
            }
        }
    }

    /// The terms this plan fires.
    pub fn terms(&self) -> &[FaultTerm] {
        &self.terms
    }

    /// Injection counters so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// Called by the machine on every EENTER (after validation, before
    /// entry); returns the actions to apply for this entry. Advances the
    /// trigger clock and draws from the PRNG deterministically.
    pub(crate) fn on_eenter(&mut self, raw_eid: u64) -> Vec<ChaosAction> {
        self.stats.eenters_seen += 1;
        if !self.targets.is_empty() && !self.targets.contains(&raw_eid) {
            return Vec::new();
        }
        let tick = self.stats.eenters_seen;
        let mut actions = Vec::new();
        for term in &self.terms {
            if !tick.is_multiple_of(term.period) {
                continue;
            }
            match term.kind {
                ChaosKind::Aex => {
                    self.stats.aex_storms += 1;
                    actions.push(ChaosAction::AexStorm {
                        rounds: self.rng.one_to(3) as u32,
                    });
                }
                ChaosKind::Evict => {
                    // forced_evictions is counted per page at apply time.
                    actions.push(ChaosAction::Evict {
                        pages: self.rng.one_to(3) as u32,
                    });
                }
                ChaosKind::Mac => {
                    self.stats.tamperings += 1;
                    actions.push(ChaosAction::Mac);
                }
                ChaosKind::Crash => {
                    self.stats.crashes += 1;
                    actions.push(ChaosAction::Crash {
                        pick: self.rng.next(),
                    });
                }
                ChaosKind::Stall => {
                    actions.push(ChaosAction::Stall {
                        window: self.rng.one_to(3) as u32,
                    });
                }
                ChaosKind::Migrate => {
                    self.stats.migrations += 1;
                    actions.push(ChaosAction::Migrate);
                }
            }
        }
        actions
    }

    /// True if advancing the trigger clock across the EENTER sequence
    /// `eids` (raw ids, in entry order) provably fires nothing: no stall
    /// window is open, and every tick is either aimed at an untargeted
    /// enclave or matches no term period. On a quiet tick
    /// `FaultPlan::on_eenter` mutates only `eenters_seen` and draws
    /// nothing from the PRNG, so a replay that passes this check and
    /// then calls [`FaultPlan::advance_quiet`] leaves the plan
    /// byte-identical to a real execution of the same entries.
    pub fn replay_safe(&self, eids: &[u64]) -> bool {
        if self.stall_window > 0 {
            return false;
        }
        for (tick, eid) in (self.stats.eenters_seen + 1..).zip(eids) {
            if !self.targets.is_empty() && !self.targets.contains(eid) {
                continue;
            }
            if self.terms.iter().any(|t| tick.is_multiple_of(t.period)) {
                return false;
            }
        }
        true
    }

    /// Advances the trigger clock by `n` quiet EENTERs (the replay-side
    /// counterpart of `n` `FaultPlan::on_eenter` calls that
    /// [`FaultPlan::replay_safe`] proved would fire nothing).
    pub fn advance_quiet(&mut self, n: u64) {
        self.stats.eenters_seen += n;
    }

    /// Opens a stall window of `window` switchless ocalls.
    pub(crate) fn open_stall(&mut self, window: u32) {
        self.stall_window = self.stall_window.max(window);
    }

    /// Consumes one tick of the stall window; true if the switchless
    /// ocall at hand should fail with [`SgxError::Stalled`].
    pub(crate) fn take_stall(&mut self) -> bool {
        if self.stall_window > 0 {
            self.stall_window -= 1;
            self.stats.stalls += 1;
            true
        } else {
            false
        }
    }

    /// Bumps the forced-eviction counter (apply-side, one per page).
    pub(crate) fn count_forced_eviction(&mut self) {
        self.stats.forced_evictions += 1;
    }

    /// The error a stalled switchless ocall reports.
    pub fn stall_error() -> SgxError {
        SgxError::Stalled("switchless reply core stopped polling".to_string())
    }

    /// Convenience used by tests: parse-or-panic.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors as [`SgxError::GeneralProtection`].
    pub fn try_parse(spec: &str, seed: u64) -> Result<FaultPlan> {
        FaultPlan::parse(spec, seed).map_err(SgxError::GeneralProtection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_defaults_and_explicit_periods() {
        let p = FaultPlan::parse("aex+evict", 1).unwrap();
        assert_eq!(
            p.terms(),
            &[
                FaultTerm {
                    kind: ChaosKind::Aex,
                    period: 4
                },
                FaultTerm {
                    kind: ChaosKind::Evict,
                    period: 7
                },
            ]
        );
        let p = FaultPlan::parse("crash:25+stall:9", 1).unwrap();
        assert_eq!(
            p.terms(),
            &[
                FaultTerm {
                    kind: ChaosKind::Crash,
                    period: 25
                },
                FaultTerm {
                    kind: ChaosKind::Stall,
                    period: 9
                },
            ]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("", 1).is_err());
        assert!(FaultPlan::parse("aex++evict", 1).is_err());
        assert!(FaultPlan::parse("frob", 1).is_err());
        assert!(FaultPlan::parse("aex:0", 1).is_err());
        assert!(FaultPlan::parse("aex:x", 1).is_err());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::parse("aex:2+crash:3", 42).unwrap();
        let mut b = FaultPlan::parse("aex:2+crash:3", 42).unwrap();
        for eid in 0..64u64 {
            assert_eq!(a.on_eenter(eid % 5), b.on_eenter(eid % 5));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().aex_storms > 0);
        assert!(a.stats().crashes > 0);
    }

    #[test]
    fn targeting_confines_fires_but_advances_clock() {
        let mut p = FaultPlan::parse("aex:1", 7).unwrap().target_eids(vec![3]);
        assert!(p.on_eenter(1).is_empty());
        assert!(!p.on_eenter(3).is_empty());
        assert_eq!(p.stats().eenters_seen, 2);
        p.retarget(3, 9);
        assert!(p.on_eenter(3).is_empty());
        assert!(!p.on_eenter(9).is_empty());
    }

    #[test]
    fn stall_window_drains() {
        let mut p = FaultPlan::new(Vec::new(), 0);
        p.open_stall(2);
        assert!(p.take_stall());
        assert!(p.take_stall());
        assert!(!p.take_stall());
        assert_eq!(p.stats().stalls, 2);
    }
}
