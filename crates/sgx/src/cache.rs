//! Last-level cache model.
//!
//! Fig. 11 of the paper hinges on one micro-architectural fact: data that
//! stays inside the LLC never touches the MEE, because memory encryption
//! happens at the DRAM boundary. "If the size is small, the data transfers
//! can be done via the large on-chip last-level cache. In such cases, the
//! encryption by MEE is not invoked as the data exist in plaintext within
//! the CPU boundary." (§ IV-A). This set-associative model provides exactly
//! that behaviour.

use crate::addr::LINE_SIZE;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Line was resident.
    Hit,
    /// Line missed; if a dirty victim was evicted, its line address is
    /// carried so the machine can charge MEE write-back cost for PRM lines.
    Miss {
        /// Dirty line pushed out to DRAM, if any.
        dirty_victim: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: u64,
    dirty: bool,
    /// Last-touch generation stamp. Stamps increase monotonically with
    /// every access, so the way holding the set's minimum stamp is exactly
    /// the one a move-to-back recency list would keep at its front: the
    /// O(1)-update stamp scheme picks the same LRU victim the old
    /// `Vec::remove(0)` implementation did, without shifting ways on
    /// every hit.
    stamp: u64,
}

/// Set-associative LLC with LRU replacement, tracking line residency only
/// (contents live in [`crate::mem::Dram`]).
#[derive(Debug)]
pub struct Llc {
    sets: Vec<Vec<Way>>,
    ways: usize,
    hits: u64,
    misses: u64,
    /// Generation counter feeding [`Way::stamp`].
    tick: u64,
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(capacity_bytes: usize, ways: usize) -> Llc {
        let lines = capacity_bytes / LINE_SIZE;
        assert!(ways > 0 && lines.is_multiple_of(ways), "bad cache geometry");
        let num_sets = lines / ways;
        Llc {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    /// Accesses physical cache line `line` (address / 64), marking it dirty
    /// if `write`.
    pub fn access(&mut self, line: u64, write: bool) -> CacheAccess {
        let set_idx = (line as usize) % self.sets.len();
        let stamp = self.tick;
        self.tick += 1;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.dirty |= write;
            way.stamp = stamp;
            self.hits += 1;
            return CacheAccess::Hit;
        }
        self.misses += 1;
        let dirty_victim = if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set has ways");
            let victim = set.swap_remove(lru);
            victim.dirty.then_some(victim.line)
        } else {
            None
        };
        set.push(Way {
            line,
            dirty: write,
            stamp,
        });
        CacheAccess::Miss { dirty_victim }
    }

    /// Accesses every line in `[first, last]`, returning `(hits, misses)`
    /// and appending dirty victims to `dirty_victims`. Equivalent to
    /// calling [`Llc::access`] per line; exists so the machine's range
    /// charging can fold per-line cost math into two multiplications.
    pub fn access_range(
        &mut self,
        first: u64,
        last: u64,
        write: bool,
        dirty_victims: &mut Vec<u64>,
    ) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for line in first..=last {
            match self.access(line, write) {
                CacheAccess::Hit => hits += 1,
                CacheAccess::Miss { dirty_victim } => {
                    misses += 1;
                    if let Some(v) = dirty_victim {
                        dirty_victims.push(v);
                    }
                }
            }
        }
        (hits, misses)
    }

    /// Drops every line (e.g. simulating a wbinvd); dirty victims are not
    /// reported — use only where write-back cost is irrelevant.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// True if `line` is currently resident. Residency is the replay
    /// precondition of [`crate::replay`]: an all-hit access sequence
    /// never evicts, so if every recorded line is still resident,
    /// re-running the sequence reproduces the capture's hits exactly.
    pub fn contains(&self, line: u64) -> bool {
        let set = &self.sets[(line as usize) % self.sets.len()];
        set.iter().any(|w| w.line == line)
    }

    /// Applies the net effect of re-running an all-hit access sequence in
    /// O(unique lines) instead of O(accesses). `touched` holds one
    /// `(line, last_offset, dirty)` entry per distinct line, where
    /// `last_offset` is the 0-based position of the line's *final* access
    /// among the sequence's `accesses` total line-accesses and `dirty` is
    /// whether any of them wrote.
    ///
    /// Equivalence to calling [`Llc::access`] per access: every access of
    /// an all-hit sequence bumps `hits` and `tick` by one and rewrites
    /// its way's stamp to the pre-access tick, so after the sequence each
    /// touched way's stamp equals `tick_before + last_offset`, its dirty
    /// bit has OR-ed in every write, and both counters advanced by
    /// `accesses`. Nothing else moves — hits never evict. The caller
    /// must have verified residency of every touched line first
    /// (see [`Llc::contains`]); a non-resident line would have been a
    /// miss under re-execution, which this fast path cannot model.
    pub fn replay_commit(&mut self, touched: &[(u64, u64, bool)], accesses: u64) {
        let base = self.tick;
        let num_sets = self.sets.len();
        for &(line, last_offset, dirty) in touched {
            let set = &mut self.sets[(line as usize) % num_sets];
            if let Some(way) = set.iter_mut().find(|w| w.line == line) {
                way.stamp = base + last_offset;
                way.dirty |= dirty;
            } else {
                debug_assert!(false, "replay_commit on a non-resident line {line}");
            }
        }
        self.tick += accesses;
        self.hits += accesses;
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets.len() * self.ways * LINE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Llc::new(1024, 2); // 16 lines, 8 sets
        assert!(matches!(c.access(5, false), CacheAccess::Miss { .. }));
        assert_eq!(c.access(5, false), CacheAccess::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = Llc::new(128, 2); // 2 lines, 1 set, 2 ways
        c.access(0, true); // dirty
        c.access(1, false);
        // Third distinct line evicts line 0 (LRU), which is dirty.
        match c.access(2, false) {
            CacheAccess::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(0)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn clean_victim_not_reported() {
        let mut c = Llc::new(128, 2);
        c.access(0, false);
        c.access(1, false);
        match c.access(2, false) {
            CacheAccess::Miss { dirty_victim } => assert_eq!(dirty_victim, None),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_promotion_on_hit() {
        let mut c = Llc::new(128, 2);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // promote 0; 1 becomes LRU
        c.access(2, false); // evicts 1
        assert_eq!(c.access(0, false), CacheAccess::Hit);
        assert!(matches!(c.access(1, false), CacheAccess::Miss { .. }));
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = Llc::new(64 * 1024, 16);
        let lines = (64 * 1024 / LINE_SIZE) as u64;
        for l in 0..lines {
            c.access(l, true);
        }
        let misses_before = c.misses();
        for l in 0..lines {
            assert_eq!(c.access(l, false), CacheAccess::Hit, "line {l}");
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn replay_commit_matches_per_access_reexecution() {
        // Two identical warm caches; re-run an all-hit sequence on one via
        // `access`, apply its folded effect to the other via
        // `replay_commit`, then drive both into evictions and check they
        // victimize identically (stamps equal) and count identically.
        let mut warm = Llc::new(128, 2); // 1 set, 2 ways
        warm.access(0, false);
        warm.access(1, false);
        let mut fast = Llc::new(128, 2);
        fast.access(0, false);
        fast.access(1, false);
        // Sequence: hit 1, hit 0, write 1, hit 0 → offsets: line 1 last at
        // 2 (dirty), line 0 last at 3.
        for (line, write) in [(1u64, false), (0, false), (1, true), (0, false)] {
            assert_eq!(warm.access(line, write), CacheAccess::Hit);
        }
        fast.replay_commit(&[(1, 2, true), (0, 3, false)], 4);
        assert_eq!(warm.hits(), fast.hits());
        assert_eq!(warm.misses(), fast.misses());
        // Line 1 is LRU in both (older final stamp): a conflicting fill
        // must evict it, reporting it as the dirty victim.
        match (warm.access(2, false), fast.access(2, false)) {
            (
                CacheAccess::Miss {
                    dirty_victim: Some(w),
                },
                CacheAccess::Miss {
                    dirty_victim: Some(f),
                },
            ) => {
                assert_eq!(w, 1);
                assert_eq!(f, 1);
            }
            other => panic!("expected dirty-victim misses, got {other:?}"),
        }
        assert!(warm.contains(0) && fast.contains(0));
        assert!(!warm.contains(1) && !fast.contains(1));
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Llc::new(4 * 1024, 4);
        let lines = 4 * (4 * 1024 / LINE_SIZE) as u64; // 4× capacity
        for l in 0..lines {
            c.access(l, false);
        }
        for l in 0..lines {
            assert!(
                matches!(c.access(l, false), CacheAccess::Miss { .. }),
                "line {l} should have been evicted"
            );
        }
    }
}
