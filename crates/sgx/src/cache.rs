//! Last-level cache model.
//!
//! Fig. 11 of the paper hinges on one micro-architectural fact: data that
//! stays inside the LLC never touches the MEE, because memory encryption
//! happens at the DRAM boundary. "If the size is small, the data transfers
//! can be done via the large on-chip last-level cache. In such cases, the
//! encryption by MEE is not invoked as the data exist in plaintext within
//! the CPU boundary." (§ IV-A). This set-associative model provides exactly
//! that behaviour.

use crate::addr::LINE_SIZE;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Line was resident.
    Hit,
    /// Line missed; if a dirty victim was evicted, its line address is
    /// carried so the machine can charge MEE write-back cost for PRM lines.
    Miss {
        /// Dirty line pushed out to DRAM, if any.
        dirty_victim: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: u64,
    dirty: bool,
    /// Last-touch generation stamp. Stamps increase monotonically with
    /// every access, so the way holding the set's minimum stamp is exactly
    /// the one a move-to-back recency list would keep at its front: the
    /// O(1)-update stamp scheme picks the same LRU victim the old
    /// `Vec::remove(0)` implementation did, without shifting ways on
    /// every hit.
    stamp: u64,
}

/// Set-associative LLC with LRU replacement, tracking line residency only
/// (contents live in [`crate::mem::Dram`]).
#[derive(Debug)]
pub struct Llc {
    sets: Vec<Vec<Way>>,
    ways: usize,
    hits: u64,
    misses: u64,
    /// Generation counter feeding [`Way::stamp`].
    tick: u64,
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn new(capacity_bytes: usize, ways: usize) -> Llc {
        let lines = capacity_bytes / LINE_SIZE;
        assert!(ways > 0 && lines.is_multiple_of(ways), "bad cache geometry");
        let num_sets = lines / ways;
        Llc {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    /// Accesses physical cache line `line` (address / 64), marking it dirty
    /// if `write`.
    pub fn access(&mut self, line: u64, write: bool) -> CacheAccess {
        let set_idx = (line as usize) % self.sets.len();
        let stamp = self.tick;
        self.tick += 1;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.line == line) {
            way.dirty |= write;
            way.stamp = stamp;
            self.hits += 1;
            return CacheAccess::Hit;
        }
        self.misses += 1;
        let dirty_victim = if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("full set has ways");
            let victim = set.swap_remove(lru);
            victim.dirty.then_some(victim.line)
        } else {
            None
        };
        set.push(Way {
            line,
            dirty: write,
            stamp,
        });
        CacheAccess::Miss { dirty_victim }
    }

    /// Accesses every line in `[first, last]`, returning `(hits, misses)`
    /// and appending dirty victims to `dirty_victims`. Equivalent to
    /// calling [`Llc::access`] per line; exists so the machine's range
    /// charging can fold per-line cost math into two multiplications.
    pub fn access_range(
        &mut self,
        first: u64,
        last: u64,
        write: bool,
        dirty_victims: &mut Vec<u64>,
    ) -> (u64, u64) {
        let mut hits = 0u64;
        let mut misses = 0u64;
        for line in first..=last {
            match self.access(line, write) {
                CacheAccess::Hit => hits += 1,
                CacheAccess::Miss { dirty_victim } => {
                    misses += 1;
                    if let Some(v) = dirty_victim {
                        dirty_victims.push(v);
                    }
                }
            }
        }
        (hits, misses)
    }

    /// Drops every line (e.g. simulating a wbinvd); dirty victims are not
    /// reported — use only where write-back cost is irrelevant.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets.len() * self.ways * LINE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Llc::new(1024, 2); // 16 lines, 8 sets
        assert!(matches!(c.access(5, false), CacheAccess::Miss { .. }));
        assert_eq!(c.access(5, false), CacheAccess::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = Llc::new(128, 2); // 2 lines, 1 set, 2 ways
        c.access(0, true); // dirty
        c.access(1, false);
        // Third distinct line evicts line 0 (LRU), which is dirty.
        match c.access(2, false) {
            CacheAccess::Miss { dirty_victim } => assert_eq!(dirty_victim, Some(0)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn clean_victim_not_reported() {
        let mut c = Llc::new(128, 2);
        c.access(0, false);
        c.access(1, false);
        match c.access(2, false) {
            CacheAccess::Miss { dirty_victim } => assert_eq!(dirty_victim, None),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn lru_promotion_on_hit() {
        let mut c = Llc::new(128, 2);
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // promote 0; 1 becomes LRU
        c.access(2, false); // evicts 1
        assert_eq!(c.access(0, false), CacheAccess::Hit);
        assert!(matches!(c.access(1, false), CacheAccess::Miss { .. }));
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = Llc::new(64 * 1024, 16);
        let lines = (64 * 1024 / LINE_SIZE) as u64;
        for l in 0..lines {
            c.access(l, true);
        }
        let misses_before = c.misses();
        for l in 0..lines {
            assert_eq!(c.access(l, false), CacheAccess::Hit, "line {l}");
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Llc::new(4 * 1024, 4);
        let lines = 4 * (4 * 1024 / LINE_SIZE) as u64; // 4× capacity
        for l in 0..lines {
            c.access(l, false);
        }
        for l in 0..lines {
            assert!(
                matches!(c.access(l, false), CacheAccess::Miss { .. }),
                "line {l} should have been evicted"
            );
        }
    }
}
