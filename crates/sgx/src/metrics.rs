//! Cycle attribution and metrics export.
//!
//! Every cycle charged to a core is tagged with a [`CycleCategory`] and
//! accumulated twice: per **core** (where it executed) and per **enclave**
//! (who it was executed for — `None` meaning untrusted code). Because each
//! charge lands in exactly one category of exactly one core and one
//! enclave bucket, two identities hold by construction and are enforced by
//! [`MachineMetrics::check`]:
//!
//! - each core's category breakdown sums to that core's cycle clock, and
//! - the per-enclave breakdowns (untrusted bucket included) sum to
//!   [`crate::machine::Machine::total_cycles`].
//!
//! [`MachineMetrics`] is a plain snapshot: capture it with
//! [`crate::machine::Machine::metrics`], then inspect it, export it
//! ([`MachineMetrics::to_json`] / [`MachineMetrics::to_csv`]), or validate
//! it. The JSON schema is versioned (`ne-metrics/v2` — v2 added the
//! `profile` latency-histogram section and the span counters) and key
//! order is fixed, so downstream tooling can diff exports byte-for-byte.
//!
//! ```
//! use ne_sgx::config::HwConfig;
//! use ne_sgx::machine::Machine;
//! use ne_sgx::metrics::CycleCategory;
//!
//! let mut m = Machine::new(HwConfig::small());
//! let va = m.os_alloc_untrusted(ne_sgx::enclave::ProcessId(0), 1);
//! m.write(0, va, b"hello").unwrap();
//!
//! let snap = m.metrics();
//! snap.check().expect("counter identities hold");
//! // The write charged TLB-walk and memory cycles to core 0, attributed
//! // to untrusted execution (eid = None).
//! assert!(snap.cores[0].breakdown.get(CycleCategory::TlbWalk) > 0);
//! assert_eq!(snap.total_cycles, m.total_cycles());
//! assert!(snap.to_json().starts_with("{\n  \"schema\": \"ne-metrics/v2\""));
//! ```

use crate::machine::Machine;
use crate::profile::{HierLevel, Histogram, ProfileEvent};
use crate::trace::Stats;

/// Version tag emitted at the top of [`MachineMetrics::to_json`]. Bump it
/// whenever a key is added, removed, or reordered; compare tooling hard
/// fails on a mismatch.
pub const METRICS_SCHEMA: &str = "ne-metrics/v2";

/// Where a charged cycle went, at the granularity the paper's evaluation
/// reasons about (transition cost, validation walk, MEE crypto, paging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleCategory {
    /// Transition instructions and SDK dispatch (EENTER/EEXIT/AEX extras,
    /// Table II call costs, transition TLB flushes).
    Transition,
    /// Page-table walks on TLB misses.
    TlbWalk,
    /// TLB-miss validation steps (Fig. 2 baseline walk, Fig. 6 nested).
    Validation,
    /// MEE line encryption/decryption on PRM traffic.
    MeeCrypto,
    /// EWB/ELDU paging, including shootdown IPIs.
    Paging,
    /// Enclave lifecycle instructions (ECREATE/EADD/EEXTEND/EINIT/EAUG/
    /// EACCEPT/EREMOVE).
    Lifecycle,
    /// Cache/DRAM access latency and TLB-hit lookups.
    Memory,
    /// Application work charged by workloads through
    /// [`crate::machine::Machine::charge`].
    AppCompute,
}

impl CycleCategory {
    /// Every category, in export order.
    pub const ALL: [CycleCategory; 8] = [
        CycleCategory::Transition,
        CycleCategory::TlbWalk,
        CycleCategory::Validation,
        CycleCategory::MeeCrypto,
        CycleCategory::Paging,
        CycleCategory::Lifecycle,
        CycleCategory::Memory,
        CycleCategory::AppCompute,
    ];

    /// Stable snake_case name (used as JSON/CSV keys).
    pub fn name(self) -> &'static str {
        match self {
            CycleCategory::Transition => "transition",
            CycleCategory::TlbWalk => "tlb_walk",
            CycleCategory::Validation => "validation",
            CycleCategory::MeeCrypto => "mee_crypto",
            CycleCategory::Paging => "paging",
            CycleCategory::Lifecycle => "lifecycle",
            CycleCategory::Memory => "memory",
            CycleCategory::AppCompute => "app_compute",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// Cycles accumulated per [`CycleCategory`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleBreakdown {
    cycles: [u64; CycleCategory::ALL.len()],
}

impl CycleBreakdown {
    /// Adds `cycles` to `category`.
    pub fn add(&mut self, category: CycleCategory, cycles: u64) {
        self.cycles[category.index()] += cycles;
    }

    /// Cycles recorded under `category`.
    pub fn get(&self, category: CycleCategory) -> u64 {
        self.cycles[category.index()]
    }

    /// Sum over all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Accumulates another breakdown into this one.
    pub fn merge(&mut self, other: &CycleBreakdown) {
        for (dst, src) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *dst += src;
        }
    }

    /// `(category, cycles)` pairs in export order.
    pub fn iter(&self) -> impl Iterator<Item = (CycleCategory, u64)> + '_ {
        CycleCategory::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

/// One core's share of the cycle accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreMetrics {
    /// Core index.
    pub core: usize,
    /// The core's cycle clock.
    pub cycles: u64,
    /// Category breakdown; sums to `cycles`.
    pub breakdown: CycleBreakdown,
}

/// One enclave's (or the untrusted bucket's) share of the accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveMetrics {
    /// Enclave id; `None` is the untrusted (non-enclave) bucket.
    pub eid: Option<u64>,
    /// Outer enclaves this enclave is nested inside (empty for top-level
    /// enclaves and the untrusted bucket) — the outer/inner hierarchy.
    pub outer_eids: Vec<u64>,
    /// Category breakdown of cycles attributed to this enclave.
    pub breakdown: CycleBreakdown,
}

/// One non-empty latency histogram in a snapshot, keyed by what was
/// measured and the hierarchy level it was measured at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// What the samples measure.
    pub event: ProfileEvent,
    /// Hierarchy level the samples belong to.
    pub level: HierLevel,
    /// The recorded distribution (cycles).
    pub hist: Histogram,
}

impl ProfileEntry {
    /// Stable `event/level` identifier used in JSON/CSV exports.
    pub fn key(&self) -> String {
        format!("{}/{}", self.event.name(), self.level.name())
    }
}

/// A point-in-time snapshot of every counter the machine maintains.
///
/// See the [module docs](self) for the identities [`check`]
/// enforces and an end-to-end example.
///
/// [`check`]: MachineMetrics::check
#[derive(Debug, Clone, PartialEq)]
pub struct MachineMetrics {
    /// Installed TLB-miss validator (`"sgx"` or `"nested"`).
    pub validator: String,
    /// Cost-profile name (`"hw-sgx"` / `"emulated"`).
    pub cost_profile: String,
    /// Modelled clock in GHz (converts cycles to wall time).
    pub clock_ghz: f64,
    /// Sum of all core cycle clocks.
    pub total_cycles: u64,
    /// Cores currently executing in enclave mode. The transition-pairing
    /// identities only hold at rest (when this is zero).
    pub cores_in_enclave_mode: usize,
    /// Always-on event counters.
    pub stats: Stats,
    /// Non-empty latency histograms, in (event, level) export order.
    pub profile: Vec<ProfileEntry>,
    /// Per-core accounting, core 0 first.
    pub cores: Vec<CoreMetrics>,
    /// Per-enclave accounting: untrusted bucket first, then by ascending
    /// enclave id.
    pub enclaves: Vec<EnclaveMetrics>,
    /// MEE lines decrypted (PRM reads from DRAM).
    pub mee_lines_decrypted: u64,
    /// MEE lines encrypted (PRM writebacks).
    pub mee_lines_encrypted: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// TLB flushes across all cores.
    pub tlb_flushes: u64,
    /// Events offered to the trace while enabled.
    pub trace_recorded: u64,
    /// Events the trace ring dropped (oldest-first) after filling.
    pub trace_dropped: u64,
    /// Events currently retained in the trace ring.
    pub trace_retained: usize,
    /// Free EPC pages.
    pub free_epc_pages: usize,
    /// DRAM pages actually materialized by the backing store.
    pub resident_pages: usize,
}

impl MachineMetrics {
    /// Snapshots `machine`'s counters. Also available as
    /// [`Machine::metrics`].
    pub fn capture(machine: &Machine) -> MachineMetrics {
        let cfg = machine.config();
        let stats = machine.stats();
        let cores = (0..machine.num_cores())
            .map(|i| CoreMetrics {
                core: i,
                cycles: machine.cycles(i),
                breakdown: *machine.core_breakdown(i),
            })
            .collect();
        let mut enclaves: Vec<EnclaveMetrics> = machine
            .enclave_cycle_table()
            .iter()
            .map(|(eid, breakdown)| EnclaveMetrics {
                eid: eid.map(|e| e.0),
                outer_eids: eid
                    .and_then(|e| machine.enclaves().get(e))
                    .map(|secs| secs.outer_eids.iter().map(|o| o.0).collect())
                    .unwrap_or_default(),
                breakdown: *breakdown,
            })
            .collect();
        // Untrusted bucket (None) first, then ascending eid, so exports are
        // stable run to run.
        enclaves.sort_by_key(|e| e.eid.map_or((0, 0), |id| (1, id)));
        if enclaves.first().is_none_or(|e| e.eid.is_some()) {
            enclaves.insert(
                0,
                EnclaveMetrics {
                    eid: None,
                    outer_eids: Vec::new(),
                    breakdown: CycleBreakdown::default(),
                },
            );
        }
        let cores_in_enclave_mode = (0..machine.num_cores())
            .filter(|&i| machine.current_enclave(i).is_some())
            .count();
        MachineMetrics {
            validator: machine.validator_name().to_string(),
            cost_profile: cfg.cost.name.to_string(),
            clock_ghz: cfg.cost.clock_ghz,
            total_cycles: machine.total_cycles(),
            cores_in_enclave_mode,
            stats,
            profile: machine
                .profile()
                .entries()
                .map(|(event, level, hist)| ProfileEntry {
                    event,
                    level,
                    hist: hist.clone(),
                })
                .collect(),
            cores,
            enclaves,
            mee_lines_decrypted: machine.mee().lines_decrypted(),
            mee_lines_encrypted: machine.mee().lines_encrypted(),
            llc_hits: machine.llc().hits(),
            llc_misses: machine.llc().misses(),
            tlb_flushes: machine.tlb_flushes(),
            trace_recorded: machine.trace().recorded(),
            trace_dropped: machine.trace().dropped(),
            trace_retained: machine.trace().len(),
            free_epc_pages: machine.free_epc_pages(),
            resident_pages: machine.resident_pages(),
        }
    }

    /// Cycles attributed to enclave `eid` (`None` = untrusted bucket).
    pub fn enclave(&self, eid: Option<u64>) -> Option<&EnclaveMetrics> {
        self.enclaves.iter().find(|e| e.eid == eid)
    }

    /// Verifies the counter identities the accounting guarantees:
    ///
    /// 1. each core's breakdown sums to its cycle clock;
    /// 2. core clocks sum to `total_cycles`;
    /// 3. per-enclave breakdowns (untrusted included) sum to `total_cycles`;
    /// 4. at rest (no core in enclave mode), enclave entries and exits
    ///    pair up: `ecalls + eresumes == ocalls + aexes` and
    ///    `n_ecalls == n_ocalls`;
    /// 5. pages reloaded never exceed pages evicted;
    /// 6. the trace ring accounts for every event offered:
    ///    `recorded == dropped + retained`;
    /// 7. every latency histogram is internally consistent (bucket counts
    ///    sum to its count) with monotone percentiles
    ///    (`min ≤ p50 ≤ p90 ≤ p99 ≤ max`);
    /// 8. the boundary histograms (ecall/ocall/n_ecall/n_ocall/switchless)
    ///    together hold exactly `span_closes` samples;
    /// 9. the microarchitectural histograms agree with the counters:
    ///    `tlb_miss` count == `tlb_misses`, `aex` == `aexes`,
    ///    `eresume` == `eresumes`, `paging` == `ewb_pages + eldu_pages`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first identity violated. The bench
    /// harness treats that as a fatal error — a broken identity means the
    /// simulator (or a new charge site) mis-attributed cycles.
    pub fn check(&self) -> Result<(), String> {
        for c in &self.cores {
            let sum = c.breakdown.total();
            if sum != c.cycles {
                return Err(format!(
                    "core {}: category breakdown sums to {sum} but the core clock is {} \
                     (a charge bypassed category accounting)",
                    c.core, c.cycles
                ));
            }
        }
        let core_sum: u64 = self.cores.iter().map(|c| c.cycles).sum();
        if core_sum != self.total_cycles {
            return Err(format!(
                "core clocks sum to {core_sum}, total_cycles is {}",
                self.total_cycles
            ));
        }
        let enclave_sum: u64 = self.enclaves.iter().map(|e| e.breakdown.total()).sum();
        if enclave_sum != self.total_cycles {
            return Err(format!(
                "per-enclave cycles sum to {enclave_sum}, total_cycles is {} \
                 (a charge was attributed to no enclave bucket, or to two)",
                self.total_cycles
            ));
        }
        if self.cores_in_enclave_mode == 0 {
            let entries = self.stats.ecalls + self.stats.eresumes;
            let exits = self.stats.ocalls + self.stats.aexes;
            if entries != exits {
                return Err(format!(
                    "at rest, enclave entries ({} ecalls + {} eresumes) != exits \
                     ({} ocalls + {} aexes)",
                    self.stats.ecalls, self.stats.eresumes, self.stats.ocalls, self.stats.aexes
                ));
            }
            if self.stats.n_ecalls != self.stats.n_ocalls {
                return Err(format!(
                    "at rest, n_ecalls ({}) != n_ocalls ({})",
                    self.stats.n_ecalls, self.stats.n_ocalls
                ));
            }
        }
        if self.stats.eldu_pages > self.stats.ewb_pages {
            return Err(format!(
                "more pages reloaded ({}) than evicted ({})",
                self.stats.eldu_pages, self.stats.ewb_pages
            ));
        }
        if self.trace_recorded != self.trace_dropped + self.trace_retained as u64 {
            return Err(format!(
                "trace ring leaked events: recorded {} != dropped {} + retained {}",
                self.trace_recorded, self.trace_dropped, self.trace_retained
            ));
        }
        for e in &self.profile {
            if e.hist.bucket_total() != e.hist.count() {
                return Err(format!(
                    "histogram {}: bucket counts sum to {} but count is {}",
                    e.key(),
                    e.hist.bucket_total(),
                    e.hist.count()
                ));
            }
            let s = e.hist.summary();
            if !(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max) {
                return Err(format!(
                    "histogram {}: percentiles not monotone \
                     (min {} p50 {} p90 {} p99 {} max {})",
                    e.key(),
                    s.min,
                    s.p50,
                    s.p90,
                    s.p99,
                    s.max
                ));
            }
        }
        let count_of = |ev: ProfileEvent| -> u64 {
            self.profile
                .iter()
                .filter(|e| e.event == ev)
                .map(|e| e.hist.count())
                .sum()
        };
        let boundary: u64 = ProfileEvent::BOUNDARY.iter().map(|&e| count_of(e)).sum();
        if boundary != self.stats.span_closes {
            return Err(format!(
                "boundary histograms hold {boundary} samples but {} spans closed \
                 (a span close bypassed latency recording)",
                self.stats.span_closes
            ));
        }
        for (ev, expect, what) in [
            (ProfileEvent::TlbMiss, self.stats.tlb_misses, "tlb_misses"),
            (ProfileEvent::Aex, self.stats.aexes, "aexes"),
            (ProfileEvent::Eresume, self.stats.eresumes, "eresumes"),
            (
                ProfileEvent::Paging,
                self.stats.ewb_pages + self.stats.eldu_pages,
                "ewb_pages + eldu_pages",
            ),
        ] {
            let got = count_of(ev);
            if got != expect {
                return Err(format!(
                    "{} histogram holds {got} samples but {what} is {expect}",
                    ev.name()
                ));
            }
        }
        Ok(())
    }

    /// Namespaces this snapshot's core and enclave ids into shard
    /// `shard`'s id range, so snapshots captured from **independent
    /// machines** can be folded with [`MachineMetrics::absorb`] without
    /// id collisions: core ids gain `shard << SHARD_CORE_BITS`, enclave
    /// ids (including `outer_eids`) gain `shard << SHARD_EID_BITS`. The
    /// untrusted bucket (`eid == None`) is shared by design and stays
    /// `None`. Rebasing into shard 0 is a strict no-op, which is what
    /// makes a single-shard merged report byte-identical to the plain
    /// captured snapshot.
    pub fn rebase_shard(&mut self, shard: usize) {
        let core_base = shard << SHARD_CORE_BITS;
        let eid_base = (shard as u64) << SHARD_EID_BITS;
        for c in &mut self.cores {
            c.core += core_base;
        }
        for e in &mut self.enclaves {
            if let Some(id) = &mut e.eid {
                *id += eid_base;
            }
            for o in &mut e.outer_eids {
                *o += eid_base;
            }
        }
    }

    /// Folds `other` into `self` component-wise: counters and cycle
    /// totals sum, per-core and per-enclave rows with the same id merge
    /// (rows are kept sorted — untrusted bucket first, then ascending
    /// id), and latency histograms merge bucket-wise. The operation is
    /// **commutative and associative** (see the `shard_merge` tests), so
    /// folding per-shard snapshots in any fixed order yields the same
    /// merged report; every identity [`MachineMetrics::check`] verifies
    /// is a sum over these components and therefore survives the fold.
    ///
    /// Snapshots from different shards must be namespaced first with
    /// [`MachineMetrics::rebase_shard`] — otherwise shard-local enclave
    /// ids collide and unrelated enclaves merge into one row.
    ///
    /// # Errors
    ///
    /// The snapshots must describe identically configured machines:
    /// same validator, cost profile, and clock. A same-id enclave row
    /// whose outer chain disagrees is also an error (it means the
    /// caller skipped rebasing).
    pub fn absorb(&mut self, other: &MachineMetrics) -> Result<(), String> {
        if self.validator != other.validator {
            return Err(format!(
                "cannot merge snapshots of different validators: {} vs {}",
                self.validator, other.validator
            ));
        }
        if self.cost_profile != other.cost_profile {
            return Err(format!(
                "cannot merge snapshots of different cost profiles: {} vs {}",
                self.cost_profile, other.cost_profile
            ));
        }
        if self.clock_ghz != other.clock_ghz {
            return Err(format!(
                "cannot merge snapshots of different clocks: {} vs {} GHz",
                self.clock_ghz, other.clock_ghz
            ));
        }
        self.total_cycles += other.total_cycles;
        self.cores_in_enclave_mode += other.cores_in_enclave_mode;
        self.stats.merge(&other.stats);
        self.profile = merged_profiles(&self.profile, &other.profile);

        let mut cores: Vec<CoreMetrics> = Vec::with_capacity(self.cores.len() + other.cores.len());
        cores.append(&mut self.cores);
        cores.extend(other.cores.iter().cloned());
        cores.sort_by_key(|c| c.core);
        for c in cores {
            match self.cores.last_mut() {
                Some(prev) if prev.core == c.core => {
                    prev.cycles += c.cycles;
                    prev.breakdown.merge(&c.breakdown);
                }
                _ => self.cores.push(c),
            }
        }

        let mut enclaves: Vec<EnclaveMetrics> =
            Vec::with_capacity(self.enclaves.len() + other.enclaves.len());
        enclaves.append(&mut self.enclaves);
        enclaves.extend(other.enclaves.iter().cloned());
        enclaves.sort_by_key(|e| e.eid.map_or((0, 0), |id| (1, id)));
        for e in enclaves {
            match self.enclaves.last_mut() {
                Some(prev) if prev.eid == e.eid => {
                    if prev.eid.is_some() && prev.outer_eids != e.outer_eids {
                        return Err(format!(
                            "enclave {:?} merged with conflicting outer chains \
                             {:?} vs {:?} (rebase_shard skipped?)",
                            e.eid, prev.outer_eids, e.outer_eids
                        ));
                    }
                    prev.breakdown.merge(&e.breakdown);
                }
                _ => self.enclaves.push(e),
            }
        }

        self.mee_lines_decrypted += other.mee_lines_decrypted;
        self.mee_lines_encrypted += other.mee_lines_encrypted;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.tlb_flushes += other.tlb_flushes;
        self.trace_recorded += other.trace_recorded;
        self.trace_dropped += other.trace_dropped;
        self.trace_retained += other.trace_retained;
        self.free_epc_pages += other.free_epc_pages;
        self.resident_pages += other.resident_pages;
        Ok(())
    }

    /// Merges per-shard snapshots into one report: each snapshot is
    /// namespaced into its slice index's id range
    /// ([`MachineMetrics::rebase_shard`]) and folded in shard order with
    /// [`MachineMetrics::absorb`]. For a single shard this returns the
    /// snapshot unchanged (rebasing into shard 0 is a no-op), so a
    /// one-shard cluster exports byte-identical metrics to the unsharded
    /// path.
    ///
    /// # Errors
    ///
    /// An empty slice, or any [`MachineMetrics::absorb`] failure.
    pub fn merge_shards(shards: &[MachineMetrics]) -> Result<MachineMetrics, String> {
        let Some(first) = shards.first() else {
            return Err("merge_shards: no shard snapshots to merge".to_string());
        };
        let mut merged = first.clone();
        for (shard, snap) in shards.iter().enumerate().skip(1) {
            let mut rebased = snap.clone();
            rebased.rebase_shard(shard);
            merged.absorb(&rebased)?;
        }
        Ok(merged)
    }

    /// Renders the snapshot as pretty-printed JSON with a fixed key order
    /// (schema [`METRICS_SCHEMA`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{METRICS_SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"validator\": \"{}\",\n",
            escape(&self.validator)
        ));
        out.push_str(&format!(
            "  \"cost_profile\": \"{}\",\n",
            escape(&self.cost_profile)
        ));
        out.push_str(&format!("  \"clock_ghz\": {},\n", self.clock_ghz));
        out.push_str(&format!("  \"total_cycles\": {},\n", self.total_cycles));
        out.push_str(&format!(
            "  \"cores_in_enclave_mode\": {},\n",
            self.cores_in_enclave_mode
        ));
        out.push_str("  \"stats\": {");
        let s = &self.stats;
        let stat_fields = stat_fields(s);
        out.push_str(
            &stat_fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {v}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        out.push_str("},\n");
        if self.profile.is_empty() {
            out.push_str("  \"profile\": [],\n");
        } else {
            out.push_str("  \"profile\": [\n");
            for (i, e) in self.profile.iter().enumerate() {
                let s = e.hist.summary();
                out.push_str(&format!(
                    "    {{\"event\": \"{}\", \"level\": \"{}\", \"count\": {}, \
                     \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \
                     \"p99\": {}}}{}\n",
                    e.event.name(),
                    e.level.name(),
                    s.count,
                    s.sum,
                    s.min,
                    s.max,
                    s.p50,
                    s.p90,
                    s.p99,
                    if i + 1 < self.profile.len() { "," } else { "" }
                ));
            }
            out.push_str("  ],\n");
        }
        out.push_str("  \"cores\": [\n");
        for (i, c) in self.cores.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"core\": {}, \"cycles\": {}, \"breakdown\": {}}}{}\n",
                c.core,
                c.cycles,
                breakdown_json(&c.breakdown),
                if i + 1 < self.cores.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"enclaves\": [\n");
        for (i, e) in self.enclaves.iter().enumerate() {
            let eid = e.eid.map_or("null".to_string(), |id| id.to_string());
            let outers = e
                .outer_eids
                .iter()
                .map(|o| o.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"eid\": {eid}, \"outer_eids\": [{outers}], \"breakdown\": {}}}{}\n",
                breakdown_json(&e.breakdown),
                if i + 1 < self.enclaves.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"mee\": {{\"lines_decrypted\": {}, \"lines_encrypted\": {}}},\n",
            self.mee_lines_decrypted, self.mee_lines_encrypted
        ));
        out.push_str(&format!(
            "  \"llc\": {{\"hits\": {}, \"misses\": {}}},\n",
            self.llc_hits, self.llc_misses
        ));
        out.push_str(&format!("  \"tlb_flushes\": {},\n", self.tlb_flushes));
        out.push_str(&format!(
            "  \"trace\": {{\"recorded\": {}, \"dropped\": {}, \"retained\": {}}},\n",
            self.trace_recorded, self.trace_dropped, self.trace_retained
        ));
        out.push_str(&format!(
            "  \"epc\": {{\"free_pages\": {}, \"resident_dram_pages\": {}}}\n",
            self.free_epc_pages, self.resident_pages
        ));
        out.push('}');
        out
    }

    /// Renders the snapshot as `scope,id,metric,value` CSV rows (one
    /// breakdown category per row), header included. Label fields (ids,
    /// metric names) are RFC-4180 quoted whenever they contain a comma,
    /// quote, or newline, so downstream parsers can split rows naively
    /// only when labels are tame and robustly otherwise.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scope,id,metric,value\n");
        out.push_str(&format!("machine,,total_cycles,{}\n", self.total_cycles));
        out.push_str(&format!("machine,,tlb_flushes,{}\n", self.tlb_flushes));
        for (k, v) in stat_fields(&self.stats) {
            out.push_str(&format!("stats,,{},{v}\n", csv_field(k)));
        }
        for e in &self.profile {
            let id = csv_field(&e.key());
            let s = e.hist.summary();
            for (k, v) in [
                ("count", s.count),
                ("sum", s.sum),
                ("min", s.min),
                ("max", s.max),
                ("p50", s.p50),
                ("p90", s.p90),
                ("p99", s.p99),
            ] {
                out.push_str(&format!("profile,{id},{k},{v}\n"));
            }
        }
        for c in &self.cores {
            for (cat, v) in c.breakdown.iter() {
                out.push_str(&format!("core,{},{},{v}\n", c.core, csv_field(cat.name())));
            }
        }
        for e in &self.enclaves {
            let id = csv_field(&e.eid.map_or("untrusted".to_string(), |id| id.to_string()));
            for (cat, v) in e.breakdown.iter() {
                out.push_str(&format!("enclave,{id},{},{v}\n", csv_field(cat.name())));
            }
        }
        out
    }
}

/// Bit position where [`MachineMetrics::rebase_shard`] places the shard
/// index inside a core id. 16 bits leave room for 65 535 cores per shard —
/// far beyond any modelled machine.
pub const SHARD_CORE_BITS: u32 = 16;

/// Bit position where [`MachineMetrics::rebase_shard`] places the shard
/// index inside an enclave id. Per-machine eids are small sequential
/// integers, so the low 32 bits never collide with the shard tag.
pub const SHARD_EID_BITS: u32 = 32;

/// Bucket-wise merge of two profile entry lists, preserving the canonical
/// (event, level) export order and dropping empty histograms — the same
/// shape [`MachineMetrics::capture`] produces.
fn merged_profiles(a: &[ProfileEntry], b: &[ProfileEntry]) -> Vec<ProfileEntry> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    for event in ProfileEvent::ALL {
        for level in HierLevel::ALL {
            let find = |entries: &[ProfileEntry]| {
                entries
                    .iter()
                    .find(|e| e.event == event && e.level == level)
                    .map(|e| e.hist.clone())
            };
            let hist = match (find(a), find(b)) {
                (Some(mut h), Some(other)) => {
                    h.merge(&other);
                    Some(h)
                }
                (Some(h), None) | (None, Some(h)) => Some(h),
                (None, None) => None,
            };
            if let Some(hist) = hist.filter(|h| !h.is_empty()) {
                out.push(ProfileEntry { event, level, hist });
            }
        }
    }
    out
}

/// Stats counters in export order — the single source shared by the JSON
/// and CSV renderers so the two can never drift.
fn stat_fields(s: &Stats) -> [(&'static str, u64); 14] {
    [
        ("ecalls", s.ecalls),
        ("ocalls", s.ocalls),
        ("n_ecalls", s.n_ecalls),
        ("n_ocalls", s.n_ocalls),
        ("aexes", s.aexes),
        ("eresumes", s.eresumes),
        ("switchless_ocalls", s.switchless_ocalls),
        ("tlb_misses", s.tlb_misses),
        ("faults", s.faults),
        ("ewb_pages", s.ewb_pages),
        ("eldu_pages", s.eldu_pages),
        ("ipis", s.ipis),
        ("span_opens", s.span_opens),
        ("span_closes", s.span_closes),
    ]
}

/// RFC-4180 field quoting: wrap in quotes (doubling embedded quotes) when
/// the field contains a comma, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn breakdown_json(b: &CycleBreakdown) -> String {
    let fields = b
        .iter()
        .map(|(cat, v)| format!("\"{}\": {v}", cat.name()))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{{{fields}}}")
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;
    use crate::enclave::ProcessId;

    #[test]
    fn breakdown_totals_and_merge() {
        let mut b = CycleBreakdown::default();
        b.add(CycleCategory::Transition, 10);
        b.add(CycleCategory::MeeCrypto, 5);
        assert_eq!(b.total(), 15);
        assert_eq!(b.get(CycleCategory::Transition), 10);
        let mut c = CycleBreakdown::default();
        c.add(CycleCategory::Transition, 1);
        c.merge(&b);
        assert_eq!(c.get(CycleCategory::Transition), 11);
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn snapshot_of_fresh_machine_checks_clean() {
        let m = Machine::new(HwConfig::small());
        let snap = m.metrics();
        snap.check().unwrap();
        assert_eq!(snap.total_cycles, 0);
        assert_eq!(snap.enclaves.len(), 1, "only the untrusted bucket");
        assert_eq!(snap.enclaves[0].eid, None);
    }

    #[test]
    fn untrusted_work_is_attributed_and_consistent() {
        let mut m = Machine::new(HwConfig::small());
        let va = m.os_alloc_untrusted(ProcessId(0), 2);
        m.write(0, va, b"some data crossing a line").unwrap();
        m.read(0, va, 25).unwrap();
        m.charge(1, 777);

        let snap = m.metrics();
        snap.check().unwrap();
        assert!(snap.total_cycles > 777);
        let untrusted = snap.enclave(None).unwrap();
        assert_eq!(untrusted.breakdown.total(), snap.total_cycles);
        assert_eq!(snap.cores[1].breakdown.get(CycleCategory::AppCompute), 777);
        assert!(snap.cores[0].breakdown.get(CycleCategory::TlbWalk) > 0);
        assert!(snap.cores[0].breakdown.get(CycleCategory::Memory) > 0);
    }

    #[test]
    fn check_catches_mismatched_totals() {
        let m = Machine::new(HwConfig::small());
        let mut snap = m.metrics();
        snap.total_cycles = 1;
        assert!(snap.check().is_err());
    }

    #[test]
    fn check_catches_unpaired_transitions_at_rest() {
        let m = Machine::new(HwConfig::small());
        let mut snap = m.metrics();
        snap.stats.ecalls = 3;
        snap.stats.ocalls = 2;
        let err = snap.check().unwrap_err();
        assert!(err.contains("entries"), "unexpected error: {err}");
        // The same imbalance is fine while a core is still inside.
        snap.cores_in_enclave_mode = 1;
        snap.check().unwrap();
    }

    #[test]
    fn json_is_schema_stable() {
        let m = Machine::new(HwConfig::small());
        let json = m.metrics().to_json();
        assert!(json.starts_with("{\n  \"schema\": \"ne-metrics/v2\","));
        assert!(json.starts_with(&format!("{{\n  \"schema\": \"{METRICS_SCHEMA}\",")));
        for key in [
            "\"validator\"",
            "\"cost_profile\"",
            "\"clock_ghz\"",
            "\"total_cycles\"",
            "\"stats\"",
            "\"profile\"",
            "\"cores\"",
            "\"enclaves\"",
            "\"mee\"",
            "\"llc\"",
            "\"trace\"",
            "\"epc\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Identical machines export identical bytes.
        let again = Machine::new(HwConfig::small()).metrics().to_json();
        assert_eq!(json, again);
    }

    #[test]
    fn csv_has_header_and_categories() {
        let m = Machine::new(HwConfig::small());
        let csv = m.metrics().to_csv();
        assert!(csv.starts_with("scope,id,metric,value\n"));
        assert!(csv.contains("core,0,transition,"));
        assert!(csv.contains("enclave,untrusted,app_compute,"));
        assert!(csv.contains("stats,,ecalls,"));
        assert!(csv.contains("stats,,span_closes,"));
    }

    #[test]
    fn csv_quotes_hostile_labels() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn profile_appears_in_snapshot_and_checks() {
        let mut m = Machine::new(HwConfig::small());
        let va = m.os_alloc_untrusted(ProcessId(0), 2);
        m.write(0, va, b"touch two pages to take tlb misses")
            .unwrap();
        let snap = m.metrics();
        snap.check().unwrap();
        let misses: u64 = snap
            .profile
            .iter()
            .filter(|e| e.event == ProfileEvent::TlbMiss)
            .map(|e| e.hist.count())
            .sum();
        assert_eq!(misses, snap.stats.tlb_misses);
        assert!(misses > 0);
        let json = snap.to_json();
        assert!(json.contains("\"event\": \"tlb_miss\", \"level\": \"untrusted\""));
        let csv = snap.to_csv();
        assert!(csv.contains("profile,tlb_miss/untrusted,p99,"));
    }

    #[test]
    fn check_catches_histogram_count_drift() {
        let mut m = Machine::new(HwConfig::small());
        let va = m.os_alloc_untrusted(ProcessId(0), 1);
        m.read(0, va, 1).unwrap();
        let mut snap = m.metrics();
        snap.stats.tlb_misses += 1;
        let err = snap.check().unwrap_err();
        assert!(err.contains("tlb_miss"), "unexpected error: {err}");
    }

    /// A small snapshot with real work on it, for the merge tests.
    fn busy_snapshot(work: u64) -> MachineMetrics {
        let mut m = Machine::new(HwConfig::small());
        let va = m.os_alloc_untrusted(ProcessId(0), 2);
        m.write(0, va, b"cross a cache line boundary here").unwrap();
        m.read(0, va, 17).unwrap();
        m.charge(1, work);
        m.metrics()
    }

    #[test]
    fn rebase_into_shard_zero_is_a_no_op() {
        let snap = busy_snapshot(100);
        let mut rebased = snap.clone();
        rebased.rebase_shard(0);
        assert_eq!(snap, rebased);
        assert_eq!(snap.to_json(), rebased.to_json());
    }

    #[test]
    fn rebase_namespaces_cores_and_eids() {
        let mut snap = busy_snapshot(100);
        snap.enclaves.push(EnclaveMetrics {
            eid: Some(3),
            outer_eids: vec![1],
            breakdown: CycleBreakdown::default(),
        });
        snap.rebase_shard(2);
        assert_eq!(snap.cores[0].core, 2 << SHARD_CORE_BITS);
        assert_eq!(snap.enclaves[0].eid, None, "untrusted bucket is shared");
        let e = snap.enclaves.last().unwrap();
        assert_eq!(e.eid, Some(3 + (2u64 << SHARD_EID_BITS)));
        assert_eq!(e.outer_eids, vec![1 + (2u64 << SHARD_EID_BITS)]);
    }

    #[test]
    fn merge_shards_sums_components_and_checks_clean() {
        let a = busy_snapshot(100);
        let b = busy_snapshot(999);
        let merged = MachineMetrics::merge_shards(&[a.clone(), b.clone()]).unwrap();
        merged.check().unwrap();
        assert_eq!(merged.total_cycles, a.total_cycles + b.total_cycles);
        assert_eq!(
            merged.stats.tlb_misses,
            a.stats.tlb_misses + b.stats.tlb_misses
        );
        assert_eq!(merged.cores.len(), a.cores.len() + b.cores.len());
        // One shared untrusted bucket, not two.
        assert_eq!(merged.enclaves.len(), 1);
        assert_eq!(merged.enclaves[0].eid, None);
        assert_eq!(
            merged.enclaves[0].breakdown.total(),
            a.total_cycles + b.total_cycles
        );
        // Core rows stay sorted after the fold.
        assert!(merged.cores.windows(2).all(|w| w[0].core < w[1].core));
    }

    #[test]
    fn merge_of_one_shard_is_identity() {
        let snap = busy_snapshot(123);
        let merged = MachineMetrics::merge_shards(std::slice::from_ref(&snap)).unwrap();
        assert_eq!(snap, merged);
        assert_eq!(snap.to_json(), merged.to_json());
    }

    #[test]
    fn merge_rejects_mismatched_machines() {
        assert!(MachineMetrics::merge_shards(&[]).is_err());
        let a = busy_snapshot(10);
        let mut b = busy_snapshot(10);
        b.validator = "nested".to_string();
        let err = MachineMetrics::merge_shards(&[a.clone(), b]).unwrap_err();
        assert!(err.contains("validator"), "unexpected error: {err}");
        let mut c = busy_snapshot(10);
        c.clock_ghz += 1.0;
        let err = MachineMetrics::merge_shards(&[a, c]).unwrap_err();
        assert!(err.contains("clock"), "unexpected error: {err}");
    }

    #[test]
    fn check_catches_unclosed_boundary_accounting() {
        let m = Machine::new(HwConfig::small());
        let mut snap = m.metrics();
        snap.stats.span_closes = 3; // no boundary histogram samples exist
        let err = snap.check().unwrap_err();
        assert!(err.contains("boundary"), "unexpected error: {err}");
    }
}
