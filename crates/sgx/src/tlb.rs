//! Per-core TLB model.
//!
//! The TLB is where SGX's access control lives: validation happens once at
//! fill time, so the key invariant (§ II-B) is that *the TLB only ever
//! contains valid translations*. The machine flushes it on every
//! enclave/non-enclave transition and on eviction shootdowns.

use crate::addr::{Ppn, Vpn};
use crate::epcm::PagePerms;
use std::collections::{HashMap, VecDeque};

/// A validated translation resident in the TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Physical page.
    pub ppn: Ppn,
    /// Effective permissions (OS PTE ∩ EPCM ∩ validator restrictions —
    /// e.g. enclave-mode accesses to untrusted pages lose execute).
    pub perms: PagePerms,
}

/// Number of L0 micro-TLB slots in front of the main array.
const L0_WAYS: usize = 4;

/// A fully-associative TLB with FIFO replacement, fronted by a tiny L0
/// micro-TLB.
///
/// The L0 is a pure lookup accelerator for [`Tlb::lookup_hot`]: it holds
/// copies of entries that are *also* resident in the main array (strict
/// subset invariant), so an L0 hit and a main-array hit are
/// indistinguishable architecturally — miss counts, fills, and evictions
/// are identical whether callers use `lookup` or `lookup_hot`.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<u64, TlbEntry>,
    order: VecDeque<u64>,
    capacity: usize,
    flushes: u64,
    /// L0 micro-TLB: (vpn, entry) copies, round-robin replacement.
    l0: [Option<(u64, TlbEntry)>; L0_WAYS],
    l0_next: usize,
}

impl Tlb {
    /// Creates a TLB holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Tlb {
        Tlb {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            flushes: 0,
            l0: [None; L0_WAYS],
            l0_next: 0,
        }
    }

    /// Looks up `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<TlbEntry> {
        self.entries.get(&vpn.0).copied()
    }

    /// Looks up `vpn` through the L0 micro-TLB, filling an L0 slot on a
    /// main-array hit. Architecturally equivalent to [`Tlb::lookup`]
    /// (same hit/miss outcome for every sequence of operations); only the
    /// wall-clock cost differs.
    pub fn lookup_hot(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        for (v, e) in self.l0.iter().flatten() {
            if *v == vpn.0 {
                return Some(*e);
            }
        }
        let entry = self.entries.get(&vpn.0).copied()?;
        self.l0[self.l0_next] = Some((vpn.0, entry));
        self.l0_next = (self.l0_next + 1) % L0_WAYS;
        Some(entry)
    }

    /// Inserts a validated entry, evicting the oldest if full.
    pub fn insert(&mut self, vpn: Vpn, entry: TlbEntry) {
        if self.entries.insert(vpn.0, entry).is_none() {
            self.order.push_back(vpn.0);
            if self.order.len() > self.capacity {
                let victim = self.order.pop_front().expect("order non-empty");
                self.entries.remove(&victim);
                self.l0_remove(victim);
            }
        } else {
            // Same-vpn update: refresh the L0 copy so it never serves a
            // stale translation.
            for slot in self.l0.iter_mut().flatten() {
                if slot.0 == vpn.0 {
                    slot.1 = entry;
                }
            }
        }
    }

    /// Drops every entry. Counted, since flush frequency is the overhead
    /// source the paper's Fig. 7 measures.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.l0 = [None; L0_WAYS];
        self.flushes += 1;
    }

    /// Drops a single translation (used by precise shootdowns).
    pub fn invalidate(&mut self, vpn: Vpn) {
        if self.entries.remove(&vpn.0).is_some() {
            self.order.retain(|&v| v != vpn.0);
            self.l0_remove(vpn.0);
        }
    }

    fn l0_remove(&mut self, vpn: u64) {
        for slot in &mut self.l0 {
            if matches!(slot, Some((v, _)) if *v == vpn) {
                *slot = None;
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many times this TLB has been flushed.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Iterates over resident `(vpn, entry)` pairs, for invariant audits.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &TlbEntry)> {
        self.entries.iter().map(|(&v, e)| (Vpn(v), e))
    }

    /// FNV-1a digest of the architecturally visible TLB state: every
    /// resident entry in FIFO order. The L0 micro-TLB is deliberately
    /// excluded — it is a pure lookup accelerator whose contents never
    /// change any architectural outcome (see the type docs). Equal
    /// fingerprints mean a sequence of lookups/inserts/flushes behaves
    /// identically from here on, which is what the macro-op replay
    /// cache ([`crate::replay`]) needs to prove before re-applying a
    /// memoized effect.
    pub fn logical_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(self.order.len() as u64);
        for &vpn in &self.order {
            mix(vpn);
            if let Some(e) = self.entries.get(&vpn) {
                mix(e.ppn.0);
                mix(u64::from(e.perms.r) | u64::from(e.perms.w) << 1 | u64::from(e.perms.x) << 2);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ppn: u64) -> TlbEntry {
        TlbEntry {
            ppn: Ppn(ppn),
            perms: PagePerms::RW,
        }
    }

    #[test]
    fn insert_lookup() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        assert_eq!(t.lookup(Vpn(1)).unwrap().ppn, Ppn(10));
        assert!(t.lookup(Vpn(2)).is_none());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = Tlb::new(2);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(2), e(20));
        t.insert(Vpn(3), e(30));
        assert!(t.lookup(Vpn(1)).is_none(), "oldest evicted");
        assert!(t.lookup(Vpn(2)).is_some());
        assert!(t.lookup(Vpn(3)).is_some());
    }

    #[test]
    fn flush_clears_and_counts() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.flush_count(), 1);
    }

    #[test]
    fn invalidate_single() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(2), e(20));
        t.invalidate(Vpn(1));
        assert!(t.lookup(Vpn(1)).is_none());
        assert!(t.lookup(Vpn(2)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_same_vpn_updates() {
        let mut t = Tlb::new(2);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(1), e(11));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Vpn(1)).unwrap().ppn, Ppn(11));
    }

    #[test]
    fn l0_hit_after_fill() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        // First hot lookup fills an L0 slot; the second is served by it.
        assert_eq!(t.lookup_hot(Vpn(1)).unwrap().ppn, Ppn(10));
        assert_eq!(t.lookup_hot(Vpn(1)).unwrap().ppn, Ppn(10));
        assert!(t.lookup_hot(Vpn(2)).is_none());
    }

    #[test]
    fn l0_invalidated_with_main_array() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        t.lookup_hot(Vpn(1));
        t.invalidate(Vpn(1));
        assert!(t.lookup_hot(Vpn(1)).is_none(), "stale L0 copy survived");
        t.insert(Vpn(1), e(10));
        t.lookup_hot(Vpn(1));
        t.flush();
        assert!(t.lookup_hot(Vpn(1)).is_none(), "L0 survived a flush");
    }

    #[test]
    fn l0_tracks_fifo_eviction_and_updates() {
        let mut t = Tlb::new(2);
        t.insert(Vpn(1), e(10));
        t.lookup_hot(Vpn(1));
        t.insert(Vpn(2), e(20));
        t.insert(Vpn(3), e(30)); // evicts vpn 1 (FIFO)
        assert!(t.lookup_hot(Vpn(1)).is_none(), "L0 outlived eviction");
        t.insert(Vpn(2), e(21));
        t.lookup_hot(Vpn(2));
        t.insert(Vpn(2), e(22)); // same-vpn update must refresh the copy
        assert_eq!(t.lookup_hot(Vpn(2)).unwrap().ppn, Ppn(22));
    }
}
