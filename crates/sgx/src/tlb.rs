//! Per-core TLB model.
//!
//! The TLB is where SGX's access control lives: validation happens once at
//! fill time, so the key invariant (§ II-B) is that *the TLB only ever
//! contains valid translations*. The machine flushes it on every
//! enclave/non-enclave transition and on eviction shootdowns.

use crate::addr::{Ppn, Vpn};
use crate::epcm::PagePerms;
use std::collections::HashMap;

/// A validated translation resident in the TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Physical page.
    pub ppn: Ppn,
    /// Effective permissions (OS PTE ∩ EPCM ∩ validator restrictions —
    /// e.g. enclave-mode accesses to untrusted pages lose execute).
    pub perms: PagePerms,
}

/// A fully-associative TLB with FIFO replacement.
#[derive(Debug)]
pub struct Tlb {
    entries: HashMap<u64, TlbEntry>,
    order: Vec<u64>,
    capacity: usize,
    flushes: u64,
}

impl Tlb {
    /// Creates a TLB holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Tlb {
        Tlb {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity,
            flushes: 0,
        }
    }

    /// Looks up `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<TlbEntry> {
        self.entries.get(&vpn.0).copied()
    }

    /// Inserts a validated entry, evicting the oldest if full.
    pub fn insert(&mut self, vpn: Vpn, entry: TlbEntry) {
        if self.entries.insert(vpn.0, entry).is_none() {
            self.order.push(vpn.0);
            if self.order.len() > self.capacity {
                let victim = self.order.remove(0);
                self.entries.remove(&victim);
            }
        }
    }

    /// Drops every entry. Counted, since flush frequency is the overhead
    /// source the paper's Fig. 7 measures.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
        self.flushes += 1;
    }

    /// Drops a single translation (used by precise shootdowns).
    pub fn invalidate(&mut self, vpn: Vpn) {
        if self.entries.remove(&vpn.0).is_some() {
            self.order.retain(|&v| v != vpn.0);
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many times this TLB has been flushed.
    pub fn flush_count(&self) -> u64 {
        self.flushes
    }

    /// Iterates over resident `(vpn, entry)` pairs, for invariant audits.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, &TlbEntry)> {
        self.entries.iter().map(|(&v, e)| (Vpn(v), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ppn: u64) -> TlbEntry {
        TlbEntry {
            ppn: Ppn(ppn),
            perms: PagePerms::RW,
        }
    }

    #[test]
    fn insert_lookup() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        assert_eq!(t.lookup(Vpn(1)).unwrap().ppn, Ppn(10));
        assert!(t.lookup(Vpn(2)).is_none());
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut t = Tlb::new(2);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(2), e(20));
        t.insert(Vpn(3), e(30));
        assert!(t.lookup(Vpn(1)).is_none(), "oldest evicted");
        assert!(t.lookup(Vpn(2)).is_some());
        assert!(t.lookup(Vpn(3)).is_some());
    }

    #[test]
    fn flush_clears_and_counts() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        t.flush();
        assert!(t.is_empty());
        assert_eq!(t.flush_count(), 1);
    }

    #[test]
    fn invalidate_single() {
        let mut t = Tlb::new(4);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(2), e(20));
        t.invalidate(Vpn(1));
        assert!(t.lookup(Vpn(1)).is_none());
        assert!(t.lookup(Vpn(2)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinsert_same_vpn_updates() {
        let mut t = Tlb::new(2);
        t.insert(Vpn(1), e(10));
        t.insert(Vpn(1), e(11));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Vpn(1)).unwrap().ppn, Ppn(11));
    }
}
