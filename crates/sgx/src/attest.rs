//! Local attestation (EREPORT / report verification) and key derivation
//! (EGETKEY).
//!
//! Substitution note: real SGX derives report keys inside the CPU from
//! fused secrets and verifies MACs with AES-CMAC; we use HMAC-SHA-256 keyed
//! from the simulated platform secret. The trust argument is identical:
//! only the physical package (here, the `Machine`) can derive the target
//! enclave's report key, so a verifying enclave knows the report was
//! produced on the same machine.

use crate::enclave::EnclaveId;
use crate::error::{Result, SgxError};
use crate::machine::Machine;
use ne_crypto::hmac::hmac_sha256;
use ne_crypto::Digest32;

/// User data bound into a report (64 bytes, as in SGX).
pub type ReportData = [u8; 64];

/// A local attestation report (EREPORT output).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Measurement of the reporting enclave.
    pub mrenclave: Digest32,
    /// Signer identity of the reporting enclave.
    pub mrsigner: Digest32,
    /// Caller-chosen payload (e.g. a channel key commitment).
    pub report_data: ReportData,
    /// MAC over the body, keyed for the target enclave.
    pub mac: [u8; 32],
}

impl Report {
    fn body(mrenclave: &Digest32, mrsigner: &Digest32, report_data: &ReportData) -> Vec<u8> {
        let mut body = Vec::with_capacity(32 + 32 + 64);
        body.extend_from_slice(mrenclave);
        body.extend_from_slice(mrsigner);
        body.extend_from_slice(report_data);
        body
    }
}

/// EGETKEY key-derivation policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPolicy {
    /// Sealing key bound to the exact enclave measurement (MRENCLAVE).
    SealToEnclave,
    /// Sealing key bound to the author identity (MRSIGNER), shared by all
    /// of the author's enclaves.
    SealToSigner,
}

impl Machine {
    /// Derives the report key for `target` — a hardware-internal operation
    /// exposed so ISA-extension crates (NEREPORT in `ne-core`) can MAC their
    /// extended reports with the same key hierarchy.
    ///
    /// # Errors
    ///
    /// Fails if `target` is not a live, initialized enclave.
    pub fn derive_report_key(&self, target: EnclaveId) -> Result<[u8; 16]> {
        let secs = self
            .enclaves()
            .get(target)
            .ok_or(SgxError::NoSuchEnclave(target))?;
        if !secs.is_initialized() {
            return Err(SgxError::BadEnclaveState(
                "report key for uninitialized enclave".into(),
            ));
        }
        Ok(ne_crypto::kdf::derive_key(
            &self.platform_secret,
            b"report-key",
            &secs.mrenclave,
        ))
    }

    /// `EREPORT`: produces a report about the enclave executing on `core`,
    /// MACed so that only `target` (on this machine) can verify it.
    ///
    /// # Errors
    ///
    /// General-protection fault outside enclave mode; fails if `target`
    /// does not exist.
    pub fn ereport(
        &mut self,
        core: usize,
        target: EnclaveId,
        report_data: ReportData,
    ) -> Result<Report> {
        let eid = self
            .current_enclave(core)
            .ok_or_else(|| SgxError::GeneralProtection("EREPORT outside enclave mode".into()))?;
        let (mrenclave, mrsigner) = {
            let secs = self.enclaves().get(eid).expect("running enclave is live");
            (secs.mrenclave, secs.mrsigner)
        };
        let key = self.derive_report_key(target)?;
        let body = Report::body(&mrenclave, &mrsigner, &report_data);
        let mac = hmac_sha256(&key, &body);
        Ok(Report {
            mrenclave,
            mrsigner,
            report_data,
            mac,
        })
    }

    /// Verifies a report from the point of view of the enclave executing on
    /// `core` (the report must have targeted this enclave).
    ///
    /// # Errors
    ///
    /// General-protection fault outside enclave mode.
    pub fn verify_report(&mut self, core: usize, report: &Report) -> Result<bool> {
        let eid = self.current_enclave(core).ok_or_else(|| {
            SgxError::GeneralProtection("report verification outside enclave mode".into())
        })?;
        let key = self.derive_report_key(eid)?;
        let body = Report::body(&report.mrenclave, &report.mrsigner, &report.report_data);
        let expected = hmac_sha256(&key, &body);
        Ok(ne_crypto::ct::ct_eq(&expected, &report.mac))
    }

    /// `EGETKEY`: derives a sealing key for the enclave executing on `core`.
    ///
    /// # Errors
    ///
    /// General-protection fault outside enclave mode.
    pub fn egetkey(&mut self, core: usize, policy: KeyPolicy) -> Result<[u8; 16]> {
        let eid = self
            .current_enclave(core)
            .ok_or_else(|| SgxError::GeneralProtection("EGETKEY outside enclave mode".into()))?;
        let secs = self.enclaves().get(eid).expect("running enclave is live");
        let (label, ident): (&[u8], &[u8]) = match policy {
            KeyPolicy::SealToEnclave => (b"seal-mrenclave", &secs.mrenclave),
            KeyPolicy::SealToSigner => (b"seal-mrsigner", &secs.mrsigner),
        };
        Ok(ne_crypto::kdf::derive_key(
            &self.platform_secret,
            label,
            ident,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{VirtAddr, VirtRange, PAGE_SIZE};
    use crate::config::HwConfig;
    use crate::enclave::{ProcessId, SigStruct};
    use crate::epcm::{PagePerms, PageType};
    use crate::instr::PageSource;

    /// Builds a minimal enclave whose identity comes from `code` —
    /// measurement is load-position independent, so distinct test
    /// enclaves must differ in *content*, as on real hardware.
    fn build(m: &mut Machine, base: u64, signer: &[u8], code: &[u8]) -> EnclaveId {
        let base = VirtAddr(base);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 2 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        m.eadd(
            eid,
            base.add(PAGE_SIZE as u64),
            PageType::Reg,
            PageSource::Image(code.to_vec()),
            PagePerms::RW,
        )
        .unwrap();
        m.eextend(eid, base.add(PAGE_SIZE as u64)).unwrap();
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(signer, measured)).unwrap();
        eid
    }

    #[test]
    fn report_roundtrip() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"alice", b"code-a");
        let b = build(&mut m, 0x20_0000, b"bob", b"code-b");
        // A reports to B.
        m.eenter(0, a, VirtAddr(0x10_0000)).unwrap();
        let report = m.ereport(0, b, [7u8; 64]).unwrap();
        m.eexit(0).unwrap();
        // B verifies.
        m.eenter(0, b, VirtAddr(0x20_0000)).unwrap();
        assert!(m.verify_report(0, &report).unwrap());
        m.eexit(0).unwrap();
    }

    #[test]
    fn tampered_report_rejected() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"alice", b"code-a");
        let b = build(&mut m, 0x20_0000, b"bob", b"code-b");
        m.eenter(0, a, VirtAddr(0x10_0000)).unwrap();
        let mut report = m.ereport(0, b, [7u8; 64]).unwrap();
        m.eexit(0).unwrap();
        report.mrenclave[0] ^= 1; // claim a different identity
        m.eenter(0, b, VirtAddr(0x20_0000)).unwrap();
        assert!(!m.verify_report(0, &report).unwrap());
    }

    #[test]
    fn report_for_wrong_target_fails_verification() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"alice", b"code-a");
        let b = build(&mut m, 0x20_0000, b"bob", b"code-b");
        let c = build(&mut m, 0x30_0000, b"carol", b"code-c");
        // A reports *to C*, but B tries to verify it.
        m.eenter(0, a, VirtAddr(0x10_0000)).unwrap();
        let report = m.ereport(0, c, [0u8; 64]).unwrap();
        m.eexit(0).unwrap();
        m.eenter(0, b, VirtAddr(0x20_0000)).unwrap();
        assert!(!m.verify_report(0, &report).unwrap());
    }

    #[test]
    fn ereport_requires_enclave_mode() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"alice", b"code-a");
        assert!(m.ereport(0, a, [0u8; 64]).is_err());
    }

    #[test]
    fn seal_keys_differ_by_policy_and_identity() {
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, b"alice", b"code-a");
        let b = build(&mut m, 0x20_0000, b"alice", b"code-b"); // same author, different code
        m.eenter(0, a, VirtAddr(0x10_0000)).unwrap();
        let a_encl = m.egetkey(0, KeyPolicy::SealToEnclave).unwrap();
        let a_sign = m.egetkey(0, KeyPolicy::SealToSigner).unwrap();
        m.eexit(0).unwrap();
        m.eenter(0, b, VirtAddr(0x20_0000)).unwrap();
        let b_encl = m.egetkey(0, KeyPolicy::SealToEnclave).unwrap();
        let b_sign = m.egetkey(0, KeyPolicy::SealToSigner).unwrap();
        m.eexit(0).unwrap();
        assert_ne!(a_encl, a_sign);
        // Code differs → measurements differ → enclave-bound keys differ.
        assert_ne!(a_encl, b_encl);
        // Same author → signer-bound keys shared.
        assert_eq!(a_sign, b_sign);
    }
}
