//! OS-managed page tables.
//!
//! Crucially, page tables are **untrusted** in the SGX threat model: the OS
//! may map any virtual page to any physical page at any time, including
//! remapping enclave pages maliciously. All protection comes from the
//! validation performed at TLB-fill time, never from trusting these tables.

use crate::addr::{Ppn, Vpn};
use crate::epcm::PagePerms;
use std::collections::HashMap;

/// A page-table entry as the OS wrote it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Target physical page.
    pub ppn: Ppn,
    /// OS-granted permissions.
    pub perms: PagePerms,
}

/// One process's page table (single flat level; the multi-level radix walk
/// is abstracted into the constant walk cost).
#[derive(Debug, Default)]
pub struct PageTable {
    entries: HashMap<u64, Pte>,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Installs or replaces the mapping for `vpn`.
    pub fn map(&mut self, vpn: Vpn, ppn: Ppn, perms: PagePerms) {
        self.entries.insert(vpn.0, Pte { ppn, perms });
    }

    /// Removes the mapping for `vpn`, returning the old entry.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        self.entries.remove(&vpn.0)
    }

    /// Walks the table.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        self.entries.get(&vpn.0).copied()
    }

    /// Number of mappings (diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.lookup(Vpn(1)).is_none());
        pt.map(Vpn(1), Ppn(42), PagePerms::RW);
        assert_eq!(pt.lookup(Vpn(1)).unwrap().ppn, Ppn(42));
        pt.map(Vpn(1), Ppn(43), PagePerms::R); // OS may silently remap
        assert_eq!(pt.lookup(Vpn(1)).unwrap().ppn, Ppn(43));
        assert_eq!(pt.unmap(Vpn(1)).unwrap().ppn, Ppn(43));
        assert!(pt.is_empty());
    }
}
