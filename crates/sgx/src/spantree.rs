//! Span-tree reconstruction and trace export (Perfetto / flamegraph).
//!
//! The [`crate::trace::Trace`] ring buffer holds a bounded, most-recent
//! window of events; this module rebuilds the runtime call tree from the
//! `SpanBegin`/`SpanEnd` events in that window and renders it two ways:
//!
//! - **Chrome Trace Event JSON** ([`SpanTree::to_chrome_json`]) —
//!   loadable in Perfetto or `chrome://tracing`. Each hierarchy level
//!   ([`HierLevel`]) becomes a process (`pid`), each core a thread
//!   (`tid`), so the UI shows one track per core within one group per
//!   level, and timestamps are simulated microseconds.
//! - **Folded stacks** ([`SpanTree::to_folded`]) — `path;to;frame N`
//!   lines with *self* cycles, the input format of `flamegraph.pl` and
//!   `inferno-flamegraph`.
//!
//! Because the ring drops the **oldest** events, a window can contain a
//! `SpanEnd` whose `SpanBegin` was evicted, or a `SpanBegin` whose parent
//! was. Reconstruction never panics on these: end-without-begin is counted
//! in [`SpanTree::truncated`] and marked in the export as an instant
//! event; begin-without-parent becomes a root and counts in
//! [`SpanTree::orphaned`]. Spans still open at capture (no end in the
//! window) are counted in [`SpanTree::unfinished`] and exported as
//! instants rather than unbalanced `B` events.

use crate::machine::Machine;
use crate::profile::HierLevel;
use crate::trace::{Event, SpanKind, Trace};
use std::collections::{BTreeMap, HashMap};

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Machine-unique span id.
    pub id: u64,
    /// Core the span executed on.
    pub core: usize,
    /// Parent span id as recorded (even if the parent's begin was
    /// evicted from the window).
    pub parent: Option<u64>,
    /// Boundary kind.
    pub kind: SpanKind,
    /// Caller hierarchy level at open.
    pub level: HierLevel,
    /// Registered function name.
    pub label: String,
    /// Core cycle clock at open.
    pub begin: u64,
    /// Core cycle clock at close; `None` if still open at capture.
    pub end: Option<u64>,
    /// True when the close was inherited from an enclosing span (the
    /// runtime closed this span implicitly, so it emitted no `SpanEnd`).
    pub implicit_end: bool,
    /// Child spans, in begin order (arena indices into
    /// [`SpanTree::nodes`]).
    pub children: Vec<usize>,
}

impl SpanNode {
    /// Span duration in cycles (0 while unfinished).
    pub fn duration(&self) -> u64 {
        self.end.map_or(0, |e| e.saturating_sub(self.begin))
    }
}

/// The call tree reconstructed from one trace window.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All spans whose begin fell inside the window, in begin order.
    pub nodes: Vec<SpanNode>,
    /// Indices of parentless spans, in begin order.
    pub roots: Vec<usize>,
    /// `(core, cycles)` of `SpanEnd` events whose begin was evicted by
    /// ring wraparound — truncated spans, marked in the export.
    pub truncated: Vec<(usize, u64)>,
    /// Spans whose recorded parent was evicted (promoted to roots).
    pub orphaned: u64,
    /// Spans with no close in the window (open at capture).
    pub unfinished: u64,
}

impl SpanTree {
    /// Rebuilds the span tree from the retained trace window.
    pub fn reconstruct(trace: &Trace) -> SpanTree {
        let mut tree = SpanTree::default();
        let mut index: HashMap<u64, usize> = HashMap::new();
        for ev in trace.events() {
            match ev {
                Event::SpanBegin {
                    core,
                    id,
                    parent,
                    kind,
                    level,
                    label,
                    cycles,
                } => {
                    let idx = tree.nodes.len();
                    tree.nodes.push(SpanNode {
                        id: *id,
                        core: *core,
                        parent: *parent,
                        kind: *kind,
                        level: *level,
                        label: label.clone(),
                        begin: *cycles,
                        end: None,
                        implicit_end: false,
                        children: Vec::new(),
                    });
                    match parent.and_then(|p| index.get(&p).copied()) {
                        Some(p) => tree.nodes[p].children.push(idx),
                        None => {
                            if parent.is_some() {
                                tree.orphaned += 1;
                            }
                            tree.roots.push(idx);
                        }
                    }
                    index.insert(*id, idx);
                }
                Event::SpanEnd { core, id, cycles } => match index.get(id) {
                    Some(&idx) => tree.nodes[idx].end = Some(*cycles),
                    None => tree.truncated.push((*core, *cycles)),
                },
                _ => {}
            }
        }
        // Spans the runtime closed implicitly (an enclosing span_end
        // truncated them) emitted no SpanEnd of their own: inherit the
        // close time of the nearest closed ancestor.
        let roots = tree.roots.clone();
        for root in roots {
            tree.close_implicit(root, None);
        }
        tree.unfinished = tree.nodes.iter().filter(|n| n.end.is_none()).count() as u64;
        tree
    }

    fn close_implicit(&mut self, idx: usize, inherited: Option<u64>) {
        if self.nodes[idx].end.is_none() {
            if let Some(e) = inherited {
                self.nodes[idx].end = Some(e);
                self.nodes[idx].implicit_end = true;
            }
        }
        let end = self.nodes[idx].end;
        let children = self.nodes[idx].children.clone();
        for c in children {
            self.close_implicit(c, end);
        }
    }

    /// Finished spans (close known, explicit or implicit).
    pub fn finished(&self) -> usize {
        self.nodes.iter().filter(|n| n.end.is_some()).count()
    }

    /// Renders the tree as Chrome Trace Event JSON (Perfetto-loadable).
    ///
    /// `pid` is the hierarchy level ([`HierLevel::index`]), `tid` the
    /// core; timestamps are simulated microseconds at `clock_ghz`.
    /// Truncated span ends and unfinished spans appear as instant (`"i"`)
    /// events, never as unbalanced `B`/`E` pairs.
    pub fn to_chrome_json(&self, clock_ghz: f64) -> String {
        let us = |cycles: u64| cycles as f64 / (clock_ghz * 1000.0);
        let mut events: Vec<String> = Vec::new();
        // Metadata: name the processes (levels) and threads (cores) in use.
        let mut pairs: Vec<(usize, usize)> = self
            .nodes
            .iter()
            .map(|n| (n.level.index(), n.core))
            .chain(self.truncated.iter().map(|(core, _)| (0usize, *core)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut pids: Vec<usize> = pairs.iter().map(|(p, _)| *p).collect();
        pids.dedup();
        for pid in &pids {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                HierLevel::ALL[*pid].name()
            ));
        }
        for (pid, tid) in &pairs {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"core {tid}\"}}}}",
            ));
        }
        for &root in &self.roots {
            self.emit_chrome(root, &us, &mut events);
        }
        for (core, cycles) in &self.truncated {
            events.push(format!(
                "{{\"name\":\"truncated_span_end\",\"cat\":\"truncated\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{:.3},\"pid\":0,\"tid\":{core},\"args\":{{}}}}",
                us(*cycles)
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}",
            events.join(",\n")
        )
    }

    fn emit_chrome(&self, idx: usize, us: &dyn Fn(u64) -> f64, events: &mut Vec<String>) {
        let n = &self.nodes[idx];
        let name = format!("{}:{}", n.kind.name(), json_escape(&n.label));
        match n.end {
            Some(end) => {
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{:.3},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"span_id\":{},\"implicit_end\":{}}}}}",
                    n.kind.name(),
                    us(n.begin),
                    n.level.index(),
                    n.core,
                    n.id,
                    n.implicit_end
                ));
                for &c in &n.children {
                    self.emit_chrome(c, us, events);
                }
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{:.3},\
                     \"pid\":{},\"tid\":{}}}",
                    n.kind.name(),
                    us(end),
                    n.level.index(),
                    n.core
                ));
            }
            None => {
                // Unfinished: an instant marker instead of a dangling B.
                events.push(format!(
                    "{{\"name\":\"unfinished:{name}\",\"cat\":\"unfinished\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{:.3},\"pid\":{},\"tid\":{},\"args\":{{\"span_id\":{}}}}}",
                    us(n.begin),
                    n.level.index(),
                    n.core,
                    n.id
                ));
                for &c in &n.children {
                    self.emit_chrome(c, us, events);
                }
            }
        }
    }

    /// Renders folded flamegraph stacks: one `coreN;kind:label;… cycles`
    /// line per distinct call path, with **self** cycles (span duration
    /// minus finished children), zero-self paths omitted.
    pub fn to_folded(&self) -> String {
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for &root in &self.roots {
            let prefix = format!("core{}", self.nodes[root].core);
            self.fold(root, &prefix, &mut agg);
        }
        let mut out = String::new();
        for (path, cycles) in agg {
            out.push_str(&format!("{path} {cycles}\n"));
        }
        out
    }

    fn fold(&self, idx: usize, prefix: &str, agg: &mut BTreeMap<String, u64>) {
        let n = &self.nodes[idx];
        if n.end.is_none() {
            // Unfinished spans have no duration; descend without a frame.
            for &c in &n.children {
                self.fold(c, prefix, agg);
            }
            return;
        }
        let path = format!("{prefix};{}:{}", n.kind.name(), n.label);
        let child_cycles: u64 = n.children.iter().map(|&c| self.nodes[c].duration()).sum();
        let self_cycles = n.duration().saturating_sub(child_cycles);
        if self_cycles > 0 {
            *agg.entry(path.clone()).or_default() += self_cycles;
        }
        for &c in &n.children {
            self.fold(c, &path, agg);
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Both export formats captured from a machine in one go, plus the
/// truncation accounting a consumer should surface next to them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBundle {
    /// Chrome Trace Event JSON (write to a `.json` for Perfetto).
    pub chrome_json: String,
    /// Folded flamegraph stacks (pipe through `flamegraph.pl`).
    pub folded: String,
    /// Spans reconstructed from the window.
    pub spans: usize,
    /// `SpanEnd`s whose begin was evicted (ring wraparound).
    pub truncated: u64,
    /// Spans still open at capture.
    pub unfinished: u64,
    /// Spans whose parent was evicted.
    pub orphaned: u64,
    /// Events the ring dropped in total (context for the above).
    pub trace_dropped: u64,
}

impl TraceBundle {
    /// Reconstructs and renders the machine's current trace window.
    pub fn capture(machine: &Machine) -> TraceBundle {
        let tree = SpanTree::reconstruct(machine.trace());
        TraceBundle {
            chrome_json: tree.to_chrome_json(machine.config().cost.clock_ghz),
            folded: tree.to_folded(),
            spans: tree.nodes.len(),
            truncated: tree.truncated.len() as u64,
            unfinished: tree.unfinished,
            orphaned: tree.orphaned,
            trace_dropped: machine.trace().dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;

    fn traced_machine(capacity: usize) -> Machine {
        let mut cfg = HwConfig::small();
        cfg.trace_events = true;
        cfg.trace_capacity = capacity;
        Machine::new(cfg)
    }

    #[test]
    fn reconstructs_nesting_and_durations() {
        let mut m = traced_machine(1024);
        let outer = m.span_begin(0, SpanKind::Ecall, "outer");
        m.charge(0, 100);
        let inner = m.span_begin(0, SpanKind::Ocall, "inner");
        m.charge(0, 40);
        m.span_end(0, inner);
        m.charge(0, 10);
        m.span_end(0, outer);
        let tree = SpanTree::reconstruct(m.trace());
        assert_eq!(tree.nodes.len(), 2);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.label, "outer");
        assert_eq!(root.duration(), 150);
        let child = &tree.nodes[root.children[0]];
        assert_eq!(child.label, "inner");
        assert_eq!(child.duration(), 40);
        assert_eq!(tree.truncated.len(), 0);
        assert_eq!(tree.unfinished, 0);
    }

    #[test]
    fn implicitly_closed_children_inherit_parent_end() {
        let mut m = traced_machine(1024);
        let outer = m.span_begin(0, SpanKind::Ecall, "outer");
        let _leaked = m.span_begin(0, SpanKind::Ocall, "leaked");
        m.charge(0, 70);
        m.span_end(0, outer); // closes "leaked" implicitly: no SpanEnd for it
        let tree = SpanTree::reconstruct(m.trace());
        assert_eq!(tree.finished(), 2);
        let leaked = tree.nodes.iter().find(|n| n.label == "leaked").unwrap();
        assert!(leaked.implicit_end);
        assert_eq!(leaked.end, Some(70));
    }

    #[test]
    fn wraparound_mid_span_yields_truncated_not_panic() {
        // Capacity 4: the begins of early spans are evicted while their
        // ends still arrive — the reconstructor must count, not panic.
        let mut m = traced_machine(4);
        let outer = m.span_begin(0, SpanKind::Ecall, "outer");
        for i in 0..6 {
            let s = m.span_begin(0, SpanKind::Ocall, &format!("o{i}"));
            m.charge(0, 10);
            m.span_end(0, s);
        }
        m.span_end(0, outer);
        assert!(m.trace().dropped() > 0, "ring must have wrapped");
        let tree = SpanTree::reconstruct(m.trace());
        assert!(
            !tree.truncated.is_empty(),
            "ends without begins must be counted as truncated"
        );
        // The export renders without panicking and marks the truncation.
        let json = tree.to_chrome_json(3.6);
        assert!(json.contains("truncated_span_end"));
        let _ = tree.to_folded();
    }

    #[test]
    fn unfinished_spans_become_instants_not_dangling_begins() {
        let mut m = traced_machine(1024);
        let _open = m.span_begin(0, SpanKind::Ecall, "still-open");
        m.charge(0, 5);
        let tree = SpanTree::reconstruct(m.trace());
        assert_eq!(tree.unfinished, 1);
        let json = tree.to_chrome_json(3.6);
        assert!(json.contains("unfinished:ecall:still-open"));
        assert!(!json.contains("\"ph\":\"B\""), "no unbalanced B events");
    }

    #[test]
    fn folded_output_accounts_self_cycles() {
        let mut m = traced_machine(1024);
        let outer = m.span_begin(0, SpanKind::Ecall, "handler");
        m.charge(0, 100);
        let inner = m.span_begin(0, SpanKind::Ocall, "sink");
        m.charge(0, 30);
        m.span_end(0, inner);
        m.span_end(0, outer);
        let folded = SpanTree::reconstruct(m.trace()).to_folded();
        assert!(folded.contains("core0;ecall:handler 100\n"), "{folded}");
        assert!(
            folded.contains("core0;ecall:handler;ocall:sink 30\n"),
            "{folded}"
        );
    }

    #[test]
    fn bundle_capture_smoke() {
        let mut m = traced_machine(1024);
        let s = m.span_begin(1, SpanKind::SwitchlessOcall, "q");
        m.charge(1, 620);
        m.span_end(1, s);
        let b = TraceBundle::capture(&m);
        assert_eq!(b.spans, 1);
        assert_eq!(b.truncated, 0);
        assert!(b.chrome_json.contains("switchless_ocall:q"));
        assert!(b.folded.contains("core1;switchless_ocall:q 620"));
    }
}
