//! Event counters and the bounded event trace.
//!
//! Two layers, per the observability design in `ARCHITECTURE.md`:
//!
//! - [`Stats`]: cheap always-on counters, maintained unconditionally.
//!   Fig. 7 plots ecall/ocall counts directly from these, and the
//!   [`crate::metrics`] consistency checker asserts identities over them.
//! - [`Trace`]: an opt-in **ring buffer** of architectural [`Event`]s.
//!   When full it drops the *oldest* events (keeping the most recent
//!   window) and counts what it dropped, so a long run can always be
//!   inspected near its end without unbounded memory use.
//!
//! Span events ([`Event::SpanBegin`]/[`Event::SpanEnd`]) are emitted by the
//! SDK runtime around ecall/ocall dispatch; `parent` links let a consumer
//! reconstruct the ecall→ocall call tree from the trace alone.

use crate::addr::VirtAddr;
use crate::enclave::EnclaveId;
use crate::error::FaultKind;
use crate::profile::HierLevel;
use std::collections::VecDeque;

/// Cheap always-on counters. Fig. 7 plots ecall/ocall counts directly from
/// these; the higher-level runtime also reads them to report transitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// EENTER transitions (untrusted → enclave).
    pub ecalls: u64,
    /// EEXIT transitions (enclave → untrusted).
    pub ocalls: u64,
    /// NEENTER transitions (outer → inner).
    pub n_ecalls: u64,
    /// NEEXIT transitions (inner → outer).
    pub n_ocalls: u64,
    /// Asynchronous enclave exits.
    pub aexes: u64,
    /// ERESUME re-entries after an AEX.
    pub eresumes: u64,
    /// Ocalls served without an enclave transition (switchless queue).
    pub switchless_ocalls: u64,
    /// TLB misses taken.
    pub tlb_misses: u64,
    /// Validation faults raised.
    pub faults: u64,
    /// Pages evicted with EWB.
    pub ewb_pages: u64,
    /// Pages reloaded with ELDU.
    pub eldu_pages: u64,
    /// Inter-processor interrupts for eviction shootdowns.
    pub ipis: u64,
    /// Runtime call spans opened ([`crate::machine::Machine::span_begin`]).
    pub span_opens: u64,
    /// Runtime call spans closed — explicitly, or implicitly when an
    /// enclosing span closed over them. The combined count of the
    /// boundary latency histograms equals this by construction.
    pub span_closes: u64,
}

impl Stats {
    /// Total boundary crossings of any kind (ERESUME included; switchless
    /// ocalls excluded — avoiding the crossing is their whole point).
    pub fn total_transitions(&self) -> u64 {
        self.ecalls + self.ocalls + self.n_ecalls + self.n_ocalls + self.aexes + self.eresumes
    }

    /// Accumulates another counter set into this one (field-wise sums;
    /// associative and commutative). Used when folding per-shard machine
    /// snapshots into one merged report — every counter is a plain event
    /// count, so addition preserves all the identities
    /// [`crate::metrics::MachineMetrics::check`] verifies.
    pub fn merge(&mut self, other: &Stats) {
        self.ecalls += other.ecalls;
        self.ocalls += other.ocalls;
        self.n_ecalls += other.n_ecalls;
        self.n_ocalls += other.n_ocalls;
        self.aexes += other.aexes;
        self.eresumes += other.eresumes;
        self.switchless_ocalls += other.switchless_ocalls;
        self.tlb_misses += other.tlb_misses;
        self.faults += other.faults;
        self.ewb_pages += other.ewb_pages;
        self.eldu_pages += other.eldu_pages;
        self.ipis += other.ipis;
        self.span_opens += other.span_opens;
        self.span_closes += other.span_closes;
    }
}

/// What kind of call boundary a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Untrusted → enclave call (EENTER/EEXIT pair).
    Ecall,
    /// Enclave → untrusted call (EEXIT/EENTER pair).
    Ocall,
    /// Outer → inner enclave call (NEENTER/NEEXIT pair).
    NEcall,
    /// Inner → outer enclave call (NEEXIT/NEENTER pair).
    NOcall,
    /// Ocall served through the switchless queue (no transition).
    SwitchlessOcall,
}

impl SpanKind {
    /// Stable lowercase name (used in exported JSON).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Ecall => "ecall",
            SpanKind::Ocall => "ocall",
            SpanKind::NEcall => "n_ecall",
            SpanKind::NOcall => "n_ocall",
            SpanKind::SwitchlessOcall => "switchless_ocall",
        }
    }
}

/// Architectural events, recorded when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// EENTER into an enclave on a core.
    Eenter {
        /// Executing core.
        core: usize,
        /// Entered enclave.
        eid: EnclaveId,
    },
    /// EEXIT from an enclave on a core.
    Eexit {
        /// Executing core.
        core: usize,
        /// Exited enclave.
        eid: EnclaveId,
    },
    /// NEENTER into an inner enclave.
    Neenter {
        /// Executing core.
        core: usize,
        /// Outer enclave the transition left.
        from: EnclaveId,
        /// Inner enclave entered.
        to: EnclaveId,
    },
    /// NEEXIT back to the outer enclave.
    Neexit {
        /// Executing core.
        core: usize,
        /// Inner enclave the transition left.
        from: EnclaveId,
        /// Outer enclave entered.
        to: EnclaveId,
    },
    /// Asynchronous exit.
    Aex {
        /// Executing core.
        core: usize,
        /// Interrupted enclave.
        eid: EnclaveId,
    },
    /// ERESUME after an AEX.
    Eresume {
        /// Executing core.
        core: usize,
        /// Resumed enclave.
        eid: EnclaveId,
    },
    /// TLB flush on a core.
    TlbFlush {
        /// Flushed core.
        core: usize,
    },
    /// A memory access faulted.
    Fault {
        /// Executing core.
        core: usize,
        /// Faulting virtual address.
        addr: VirtAddr,
        /// Fault classification.
        kind: FaultKind,
    },
    /// An EPC page was evicted.
    Ewb {
        /// Owner enclave.
        eid: EnclaveId,
        /// Evicted virtual address.
        addr: VirtAddr,
    },
    /// An EPC page was reloaded.
    Eldu {
        /// Owner enclave.
        eid: EnclaveId,
        /// Reloaded virtual address.
        addr: VirtAddr,
    },
    /// A runtime-level call span opened (ecall/ocall dispatch).
    SpanBegin {
        /// Executing core.
        core: usize,
        /// Machine-unique span id.
        id: u64,
        /// Enclosing span on the same core, if any.
        parent: Option<u64>,
        /// Boundary kind.
        kind: SpanKind,
        /// Hierarchy level of the calling context when the span opened.
        level: HierLevel,
        /// Registered function name (or a fixed label for queue ops).
        label: String,
        /// Core cycle clock when the span opened.
        cycles: u64,
    },
    /// A runtime-level call span closed.
    SpanEnd {
        /// Executing core.
        core: usize,
        /// Id from the matching [`Event::SpanBegin`].
        id: u64,
        /// Core cycle clock when the span closed.
        cycles: u64,
    },
}

/// Bounded ring-buffer event recorder.
///
/// `recorded` counts every event offered while enabled; once `len()`
/// reaches the capacity, each new event evicts the oldest and increments
/// `dropped`. Counters survive [`Trace::clear`]-less overflow intact, so
/// `recorded == dropped + len()` always holds.
#[derive(Debug, Default)]
pub struct Trace {
    events: VecDeque<Event>,
    capacity: usize,
    enabled: bool,
    recorded: u64,
    dropped: u64,
}

impl Trace {
    /// Creates a trace holding at most `capacity` events; recording only
    /// happens once enabled.
    pub fn new(enabled: bool, capacity: usize) -> Trace {
        Trace {
            events: VecDeque::new(),
            capacity,
            enabled,
            recorded: 0,
            dropped: 0,
        }
    }

    /// Records an event if enabled, evicting the oldest event when full.
    pub fn record(&mut self, event: Event) {
        if !self.enabled || self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.recorded += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events recorded while enabled (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drops retained events and resets the overflow counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.recorded = 0;
        self.dropped = 0;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false, 16);
        t.record(Event::TlbFlush { core: 0 });
        assert_eq!(t.len(), 0);
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new(true, 16);
        t.record(Event::TlbFlush { core: 1 });
        assert_eq!(
            t.events().collect::<Vec<_>>(),
            vec![&Event::TlbFlush { core: 1 }]
        );
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Trace::new(true, 3);
        for core in 0..5 {
            t.record(Event::TlbFlush { core });
        }
        // Oldest two (cores 0, 1) evicted; the window holds the newest three.
        let kept: Vec<usize> = t
            .events()
            .map(|e| match e {
                Event::TlbFlush { core } => *core,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.recorded(), t.dropped() + t.len() as u64);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut t = Trace::new(true, 0);
        t.record(Event::TlbFlush { core: 0 });
        assert_eq!(t.len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn stats_total() {
        let s = Stats {
            ecalls: 1,
            ocalls: 2,
            n_ecalls: 3,
            n_ocalls: 4,
            aexes: 5,
            ..Stats::default()
        };
        assert_eq!(s.total_transitions(), 15);
        let with_resume = Stats { eresumes: 2, ..s };
        assert_eq!(with_resume.total_transitions(), 17);
    }
}
