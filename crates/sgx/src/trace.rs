//! Event counters and optional event trace.

use crate::addr::VirtAddr;
use crate::enclave::EnclaveId;
use crate::error::FaultKind;

/// Cheap always-on counters. Fig. 7 plots ecall/ocall counts directly from
/// these; the higher-level runtime also reads them to report transitions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// EENTER transitions (untrusted → enclave).
    pub ecalls: u64,
    /// EEXIT transitions (enclave → untrusted).
    pub ocalls: u64,
    /// NEENTER transitions (outer → inner).
    pub n_ecalls: u64,
    /// NEEXIT transitions (inner → outer).
    pub n_ocalls: u64,
    /// Asynchronous enclave exits.
    pub aexes: u64,
    /// TLB misses taken.
    pub tlb_misses: u64,
    /// Validation faults raised.
    pub faults: u64,
    /// Pages evicted with EWB.
    pub ewb_pages: u64,
    /// Pages reloaded with ELDU.
    pub eldu_pages: u64,
    /// Inter-processor interrupts for eviction shootdowns.
    pub ipis: u64,
}

impl Stats {
    /// Total boundary crossings of any kind.
    pub fn total_transitions(&self) -> u64 {
        self.ecalls + self.ocalls + self.n_ecalls + self.n_ocalls + self.aexes
    }
}

/// Architectural events, recorded when tracing is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// EENTER into an enclave on a core.
    Eenter {
        /// Executing core.
        core: usize,
        /// Entered enclave.
        eid: EnclaveId,
    },
    /// EEXIT from an enclave on a core.
    Eexit {
        /// Executing core.
        core: usize,
        /// Exited enclave.
        eid: EnclaveId,
    },
    /// NEENTER into an inner enclave.
    Neenter {
        /// Executing core.
        core: usize,
        /// Outer enclave the transition left.
        from: EnclaveId,
        /// Inner enclave entered.
        to: EnclaveId,
    },
    /// NEEXIT back to the outer enclave.
    Neexit {
        /// Executing core.
        core: usize,
        /// Inner enclave the transition left.
        from: EnclaveId,
        /// Outer enclave entered.
        to: EnclaveId,
    },
    /// Asynchronous exit.
    Aex {
        /// Executing core.
        core: usize,
        /// Interrupted enclave.
        eid: EnclaveId,
    },
    /// TLB flush on a core.
    TlbFlush {
        /// Flushed core.
        core: usize,
    },
    /// A memory access faulted.
    Fault {
        /// Executing core.
        core: usize,
        /// Faulting virtual address.
        addr: VirtAddr,
        /// Fault classification.
        kind: FaultKind,
    },
    /// An EPC page was evicted.
    Ewb {
        /// Owner enclave.
        eid: EnclaveId,
        /// Evicted virtual address.
        addr: VirtAddr,
    },
    /// An EPC page was reloaded.
    Eldu {
        /// Owner enclave.
        eid: EnclaveId,
        /// Reloaded virtual address.
        addr: VirtAddr,
    },
}

/// Bounded event recorder.
#[derive(Debug, Default)]
pub struct Trace {
    events: Vec<Event>,
    enabled: bool,
}

/// Safety valve so a forgotten trace cannot consume unbounded memory.
const MAX_EVENTS: usize = 1 << 20;

impl Trace {
    /// Creates a trace; recording only happens once enabled.
    pub fn new(enabled: bool) -> Trace {
        Trace {
            events: Vec::new(),
            enabled,
        }
    }

    /// Records an event if enabled.
    pub fn record(&mut self, event: Event) {
        if self.enabled && self.events.len() < MAX_EVENTS {
            self.events.push(event);
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Drops recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.record(Event::TlbFlush { core: 0 });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new(true);
        t.record(Event::TlbFlush { core: 1 });
        assert_eq!(t.events(), &[Event::TlbFlush { core: 1 }]);
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn stats_total() {
        let s = Stats {
            ecalls: 1,
            ocalls: 2,
            n_ecalls: 3,
            n_ocalls: 4,
            aexes: 5,
            ..Stats::default()
        };
        assert_eq!(s.total_transitions(), 15);
    }
}
