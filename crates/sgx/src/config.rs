//! Machine configuration.

use crate::cost::CostProfile;

/// Static configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Number of logical cores.
    pub num_cores: usize,
    /// Total DRAM pages (physical address space size / 4 KiB).
    pub dram_pages: u64,
    /// Number of pages reserved for the Processor Reserved Memory region.
    /// The EPC lives inside PRM; PRM occupies the *last* `prm_pages` pages
    /// of DRAM.
    pub prm_pages: u64,
    /// TLB capacity per core, in entries.
    pub tlb_entries: usize,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: usize,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Cycle-cost profile.
    pub cost: CostProfile,
    /// When true, EWB-triggered TLB shootdowns interrupt every core instead
    /// of only the cores tracked as running the affected enclave tree.
    /// (§ IV-E: "A simplified, but potentially more costly solution is to
    /// send inter-processor interrupts to all the cores in the system.")
    pub flush_all_on_evict: bool,
    /// Record an event trace (cheap counters are always maintained).
    pub trace_events: bool,
    /// Ring-buffer capacity of the event trace: when full, the oldest
    /// events are dropped (and counted) so memory use stays bounded.
    pub trace_capacity: usize,
    /// Run the naive (pre-optimization) translate/data-access pipeline
    /// instead of the fast one. Both produce byte-identical architectural
    /// outputs; the reference path exists as the differential oracle the
    /// optimized path is property-tested against, and as the baseline the
    /// wall-clock harness measures speedups over.
    pub reference_path: bool,
}

/// Default [`HwConfig::trace_capacity`]: large enough to hold the full
/// transition history of the quick-mode experiments, small enough
/// (~tens of MiB worst case) to be safe always-on.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

impl HwConfig {
    /// A small machine suitable for unit tests: 4 cores, 16 MiB DRAM with a
    /// 4 MiB PRM, tiny TLBs so flush/refill behaviour is visible.
    pub fn small() -> HwConfig {
        HwConfig {
            num_cores: 4,
            dram_pages: 4096,
            prm_pages: 1024,
            tlb_entries: 64,
            llc_bytes: 2 * 1024 * 1024,
            llc_ways: 8,
            cost: CostProfile::emulated(),
            flush_all_on_evict: false,
            trace_events: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            reference_path: false,
        }
    }

    /// A machine shaped like the paper's testbed (i7-7700: 4 cores, 8 MiB
    /// LLC) with a large PRM so the case-study workloads fit.
    pub fn testbed() -> HwConfig {
        HwConfig {
            num_cores: 4,
            dram_pages: 16 * 1024 * 1024 / 4, // 16 GiB
            prm_pages: 4 * 1024 * 1024 / 4,   // 4 GiB PRM (generous; § V uses emulation)
            tlb_entries: 1536,
            llc_bytes: 8 * 1024 * 1024,
            llc_ways: 16,
            cost: CostProfile::emulated(),
            flush_all_on_evict: false,
            trace_events: false,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
            reference_path: false,
        }
    }

    /// First PRM physical page number.
    pub fn prm_start(&self) -> u64 {
        self.dram_pages - self.prm_pages
    }

    /// True if physical page `ppn` lies inside PRM.
    pub fn in_prm(&self, ppn: u64) -> bool {
        ppn >= self.prm_start() && ppn < self.dram_pages
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prm_is_top_of_dram() {
        let c = HwConfig::small();
        assert_eq!(c.prm_start(), 3072);
        assert!(c.in_prm(3072));
        assert!(c.in_prm(4095));
        assert!(!c.in_prm(3071));
        assert!(!c.in_prm(4096));
    }

    #[test]
    fn testbed_has_8mb_llc() {
        assert_eq!(HwConfig::testbed().llc_bytes, 8 * 1024 * 1024);
    }
}
