#![warn(missing_docs)]

//! # ne-sgx — a cycle-accounted simulator of the Intel SGX micro-architecture
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Nested Enclave: Supporting Fine-grained Hierarchical Isolation with
//! SGX"* (ISCA 2020). It models the parts of SGX the paper's proposal
//! touches, at the level the proposal is defined at:
//!
//! * **Memory system** — sparse DRAM with a Processor Reserved Memory
//!   region, the Enclave Page Cache Map ([`epcm`]), untrusted OS page
//!   tables ([`page_table`]), per-core TLBs ([`tlb`]), a set-associative
//!   LLC ([`cache`]) and the Memory Encryption Engine ([`mee`]).
//! * **Access control** — the TLB-miss validation flow of the paper's
//!   Fig. 2, implemented as a swappable [`validate::TlbValidator`] so the
//!   nested-enclave extension (crate `ne-core`) can install its Fig. 6
//!   flow like a microcode patch.
//! * **Enclave life cycle** — ECREATE/EADD/EEXTEND/EINIT with real SHA-256
//!   measurement, EENTER/EEXIT/AEX/ERESUME with TLB-flush and
//!   register-scrub semantics, EWB/ELDU paging with sealing and rollback
//!   protection, and local attestation ([`attest`]).
//! * **Cost model** — every architectural action charges simulated cycles
//!   ([`cost`]), calibrated against the paper's Table II.
//!
//! # Example
//!
//! ```
//! use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
//! use ne_sgx::config::HwConfig;
//! use ne_sgx::enclave::{ProcessId, SigStruct};
//! use ne_sgx::epcm::{PagePerms, PageType};
//! use ne_sgx::instr::PageSource;
//! use ne_sgx::machine::Machine;
//!
//! # fn main() -> Result<(), ne_sgx::error::SgxError> {
//! let mut m = Machine::new(HwConfig::small());
//! let base = VirtAddr(0x10_0000);
//! let eid = m.ecreate(ProcessId(0), VirtRange::new(base, 2 * PAGE_SIZE as u64))?;
//! m.add_tcs(eid, base, base.add(PAGE_SIZE as u64))?;
//! m.eadd(eid, base.add(PAGE_SIZE as u64), PageType::Reg,
//!        PageSource::Zeros, PagePerms::RW)?;
//! m.eextend(eid, base.add(PAGE_SIZE as u64))?;
//! let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
//! m.einit(eid, &SigStruct::new(b"author", measured))?;
//! m.eenter(0, eid, base)?;
//! m.write(0, base.add(PAGE_SIZE as u64), b"sealed inside")?;
//! m.eexit(0)?;
//! // Untrusted reads of EPC memory observe only abort-page ones:
//! assert_eq!(m.read(0, base.add(PAGE_SIZE as u64), 4)?, vec![0xFF; 4]);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod attest;
pub mod cache;
pub mod config;
pub mod cost;
pub mod enclave;
pub mod epcm;
pub mod error;
pub mod fault;
pub mod instr;
pub mod machine;
pub mod mee;
pub mod mem;
pub mod metrics;
pub mod page_table;
pub mod profile;
pub mod replay;
pub mod spantree;
pub mod tlb;
pub mod trace;
pub mod validate;

pub use addr::{PhysAddr, VirtAddr, VirtRange, PAGE_SIZE};
pub use config::HwConfig;
pub use cost::CostProfile;
pub use enclave::{EnclaveId, ProcessId, SigStruct};
pub use error::{FaultKind, Result, SgxError};
pub use fault::{ChaosStats, FaultPlan};
pub use instr::{EvictedPage, PageSource};
pub use machine::{AccessKind, CoreMode, Machine};
pub use replay::{MacroEffect, ReplayRefusal};
