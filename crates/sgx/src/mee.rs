//! Memory Encryption Engine model.
//!
//! The MEE sits between the LLC and DRAM and protects the PRM at cache-line
//! granularity (§ II-B): confidentiality by encryption, integrity by a hash
//! tree. We model it at the architectural level:
//!
//! * **Confidentiality** — [`Mee::encrypt_view`] produces the ciphertext a
//!   physical attacker would observe on the DRAM bus for PRM lines
//!   (keystream derived from an in-package key that never leaves the CPU).
//!   Architectural accesses see plaintext, exactly as software on a real
//!   SGX machine does.
//! * **Integrity** — any physical modification of a PRM line is recorded;
//!   the next architectural access to a tampered line raises an integrity
//!   violation, modelling the overwhelming-probability MAC failure of the
//!   real hash tree without per-access hashing cost.
//! * **Cost accounting** — the machine reports every PRM line that crosses
//!   the LLC/DRAM boundary; the counters drive Fig. 11's MEE-vs-GCM
//!   comparison.
//!
//! The MEE uses one shared key for all enclaves; per-enclave separation is
//! the EPCM's job, not the MEE's (§ IV-F).

use crate::addr::LINE_SIZE;
use ne_crypto::sha256::Sha256;
use std::collections::{BTreeMap, HashSet};

/// The Memory Encryption Engine.
#[derive(Debug)]
pub struct Mee {
    key: [u8; 32],
    tampered_lines: HashSet<u64>,
    /// The same tamper record as `tampered_lines`, indexed as disjoint
    /// inclusive line intervals `start → end` (never adjacent — touching
    /// ranges merge on insert). Lets [`Mee::any_tampered`] answer a range
    /// query with one ordered lookup instead of a per-line scan, and makes
    /// the universal no-chaos case (`is_empty`) free.
    tampered_intervals: BTreeMap<u64, u64>,
    lines_decrypted: u64,
    lines_encrypted: u64,
}

impl Mee {
    /// Creates an MEE with a package-unique `key`.
    pub fn new(key: [u8; 32]) -> Mee {
        Mee {
            key,
            tampered_lines: HashSet::new(),
            tampered_intervals: BTreeMap::new(),
            lines_decrypted: 0,
            lines_encrypted: 0,
        }
    }

    /// Records that a PRM line was fetched from DRAM (decrypt + verify).
    pub fn note_decrypt(&mut self) {
        self.lines_decrypted += 1;
    }

    /// Records that `n` PRM lines were fetched from DRAM (decrypt + verify).
    pub fn note_decrypts(&mut self, n: u64) {
        self.lines_decrypted += n;
    }

    /// Records that a dirty PRM line was written back (encrypt + re-hash).
    pub fn note_encrypt(&mut self) {
        self.lines_encrypted += 1;
    }

    /// Records that `n` dirty PRM lines were written back.
    pub fn note_encrypts(&mut self, n: u64) {
        self.lines_encrypted += n;
    }

    /// PRM lines decrypted so far.
    pub fn lines_decrypted(&self) -> u64 {
        self.lines_decrypted
    }

    /// PRM lines encrypted so far.
    pub fn lines_encrypted(&self) -> u64 {
        self.lines_encrypted
    }

    /// Resets the traffic counters (between experiment phases).
    pub fn reset_counters(&mut self) {
        self.lines_decrypted = 0;
        self.lines_encrypted = 0;
    }

    /// Returns the encrypted image of `plaintext` as it would appear on the
    /// DRAM bus. `base_paddr` must be line-aligned and `plaintext` a
    /// multiple of the line size.
    ///
    /// # Panics
    ///
    /// Panics on misaligned input.
    pub fn encrypt_view(&self, base_paddr: u64, plaintext: &[u8]) -> Vec<u8> {
        assert_eq!(base_paddr % LINE_SIZE as u64, 0, "misaligned line base");
        assert_eq!(plaintext.len() % LINE_SIZE, 0, "partial line");
        let mut out = Vec::with_capacity(plaintext.len());
        for (i, chunk) in plaintext.chunks(LINE_SIZE).enumerate() {
            let line_addr = base_paddr + (i * LINE_SIZE) as u64;
            let ks = self.keystream(line_addr);
            out.extend(chunk.iter().zip(ks.iter()).map(|(p, k)| p ^ k));
        }
        out
    }

    /// Marks the lines covering `[paddr, paddr + len)` as physically
    /// tampered. The next architectural access to any of them must fault.
    pub fn mark_tampered(&mut self, paddr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        for line in first..=last {
            self.tampered_lines.insert(line);
        }
        self.insert_interval(first, last);
    }

    /// True if the line containing `paddr` fails integrity verification.
    pub fn is_tampered(&self, paddr: u64) -> bool {
        self.tampered_lines.contains(&(paddr / LINE_SIZE as u64))
    }

    /// True if any line in `[paddr, paddr + len)` fails verification.
    ///
    /// Answered from the interval index: free when no tampering has been
    /// recorded (the universal no-chaos case), one ordered lookup
    /// otherwise. [`Mee::any_tampered_scan`] is the per-line reference
    /// implementation the oracle suite checks this against.
    pub fn any_tampered(&self, paddr: u64, len: usize) -> bool {
        if len == 0 || self.tampered_intervals.is_empty() {
            return false;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        // Intervals are disjoint and non-adjacent, so both starts and ends
        // ascend: the interval with the greatest start ≤ `last` is the only
        // candidate that can reach back into `[first, last]`.
        match self.tampered_intervals.range(..=last).next_back() {
            Some((_, &end)) => end >= first,
            None => false,
        }
    }

    /// Reference implementation of [`Mee::any_tampered`]: scans the line
    /// set one probe per line. Kept for the differential oracle and the
    /// `reference_path` machine configuration.
    pub fn any_tampered_scan(&self, paddr: u64, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        (first..=last).any(|l| self.tampered_lines.contains(&l))
    }

    /// Clears the tamper record for lines overwritten by an architectural
    /// write (a full-line store re-encrypts and re-hashes the line).
    pub fn clear_tamper(&mut self, paddr: u64, len: usize) {
        if len == 0 || self.tampered_intervals.is_empty() {
            return;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        for line in first..=last {
            self.tampered_lines.remove(&line);
        }
        self.remove_interval(first, last);
    }

    /// Merges `[first, last]` into the interval index, coalescing any
    /// overlapping or adjacent intervals.
    fn insert_interval(&mut self, first: u64, last: u64) {
        let mut lo = first;
        let mut hi = last;
        // Absorb every interval that overlaps or touches [lo, hi]. Each
        // candidate is the greatest start ≤ hi+1; anything earlier that
        // still reaches lo gets picked up on the next iteration once the
        // absorbed interval is gone.
        while let Some((&s, &e)) = self
            .tampered_intervals
            .range(..=hi.saturating_add(1))
            .next_back()
        {
            if e.saturating_add(1) < lo {
                break;
            }
            lo = lo.min(s);
            hi = hi.max(e);
            self.tampered_intervals.remove(&s);
        }
        self.tampered_intervals.insert(lo, hi);
    }

    /// Removes `[first, last]` from the interval index, splitting any
    /// partially covered interval.
    fn remove_interval(&mut self, first: u64, last: u64) {
        let mut split: Vec<(u64, u64)> = Vec::new();
        let mut doomed: Vec<u64> = Vec::new();
        for (&s, &e) in self.tampered_intervals.range(..=last).rev() {
            if e < first {
                break; // disjoint intervals: earlier starts have earlier ends
            }
            doomed.push(s);
            if s < first {
                split.push((s, first - 1));
            }
            if e > last {
                split.push((last + 1, e));
            }
        }
        for s in doomed {
            self.tampered_intervals.remove(&s);
        }
        for (s, e) in split {
            self.tampered_intervals.insert(s, e);
        }
    }

    fn keystream(&self, line_addr: u64) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        for blk in 0..(LINE_SIZE / 32) {
            let mut h = Sha256::new();
            h.update(&self.key);
            h.update(&line_addr.to_le_bytes());
            h.update(&(blk as u32).to_le_bytes());
            out[blk * 32..blk * 32 + 32].copy_from_slice(&h.finalize());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0xABu8; 128];
        let ct = mee.encrypt_view(0, &pt);
        assert_ne!(ct, pt);
        assert_eq!(ct.len(), 128);
    }

    #[test]
    fn different_lines_get_different_keystreams() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0u8; 128];
        let ct = mee.encrypt_view(0, &pt);
        assert_ne!(&ct[..64], &ct[64..], "keystream must be position-bound");
    }

    #[test]
    fn deterministic_view() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0x11u8; 64];
        assert_eq!(mee.encrypt_view(64, &pt), mee.encrypt_view(64, &pt));
    }

    #[test]
    fn tamper_tracking() {
        let mut mee = Mee::new([0u8; 32]);
        assert!(!mee.is_tampered(100));
        mee.mark_tampered(100, 1);
        assert!(mee.is_tampered(100));
        assert!(mee.is_tampered(64)); // same line
        assert!(!mee.is_tampered(128));
        assert!(mee.any_tampered(0, 4096));
        mee.clear_tamper(64, 64);
        assert!(!mee.is_tampered(100));
    }

    #[test]
    fn tamper_spanning_lines() {
        let mut mee = Mee::new([0u8; 32]);
        mee.mark_tampered(60, 10); // crosses the 64-byte boundary
        assert!(mee.is_tampered(0));
        assert!(mee.is_tampered(64));
    }

    #[test]
    fn interval_index_matches_scan() {
        let mut mee = Mee::new([0u8; 32]);
        // Build a ragged tamper pattern: disjoint runs, merges, and splits.
        mee.mark_tampered(0, 64);
        mee.mark_tampered(256, 192);
        mee.mark_tampered(192, 64); // adjacent: merges with the run above
        mee.mark_tampered(4096, 64);
        mee.clear_tamper(320, 64); // splits the merged run
        for (paddr, len) in [
            (0u64, 1usize),
            (0, 64),
            (64, 64),
            (128, 512),
            (320, 64),
            (384, 64),
            (448, 4096),
            (4096, 64),
            (8192, 64),
            (0, 16384),
        ] {
            assert_eq!(
                mee.any_tampered(paddr, len),
                mee.any_tampered_scan(paddr, len),
                "divergence at ({paddr}, {len})"
            );
        }
        mee.clear_tamper(0, 16384);
        assert!(!mee.any_tampered(0, 16384));
        assert!(!mee.any_tampered_scan(0, 16384));
    }

    #[test]
    fn counters() {
        let mut mee = Mee::new([0u8; 32]);
        mee.note_decrypt();
        mee.note_decrypt();
        mee.note_encrypt();
        assert_eq!(mee.lines_decrypted(), 2);
        assert_eq!(mee.lines_encrypted(), 1);
        mee.reset_counters();
        assert_eq!(mee.lines_decrypted(), 0);
    }
}
