//! Memory Encryption Engine model.
//!
//! The MEE sits between the LLC and DRAM and protects the PRM at cache-line
//! granularity (§ II-B): confidentiality by encryption, integrity by a hash
//! tree. We model it at the architectural level:
//!
//! * **Confidentiality** — [`Mee::encrypt_view`] produces the ciphertext a
//!   physical attacker would observe on the DRAM bus for PRM lines
//!   (keystream derived from an in-package key that never leaves the CPU).
//!   Architectural accesses see plaintext, exactly as software on a real
//!   SGX machine does.
//! * **Integrity** — any physical modification of a PRM line is recorded;
//!   the next architectural access to a tampered line raises an integrity
//!   violation, modelling the overwhelming-probability MAC failure of the
//!   real hash tree without per-access hashing cost.
//! * **Cost accounting** — the machine reports every PRM line that crosses
//!   the LLC/DRAM boundary; the counters drive Fig. 11's MEE-vs-GCM
//!   comparison.
//!
//! The MEE uses one shared key for all enclaves; per-enclave separation is
//! the EPCM's job, not the MEE's (§ IV-F).

use crate::addr::LINE_SIZE;
use ne_crypto::sha256::Sha256;
use std::collections::HashSet;

/// The Memory Encryption Engine.
#[derive(Debug)]
pub struct Mee {
    key: [u8; 32],
    tampered_lines: HashSet<u64>,
    lines_decrypted: u64,
    lines_encrypted: u64,
}

impl Mee {
    /// Creates an MEE with a package-unique `key`.
    pub fn new(key: [u8; 32]) -> Mee {
        Mee {
            key,
            tampered_lines: HashSet::new(),
            lines_decrypted: 0,
            lines_encrypted: 0,
        }
    }

    /// Records that a PRM line was fetched from DRAM (decrypt + verify).
    pub fn note_decrypt(&mut self) {
        self.lines_decrypted += 1;
    }

    /// Records that a dirty PRM line was written back (encrypt + re-hash).
    pub fn note_encrypt(&mut self) {
        self.lines_encrypted += 1;
    }

    /// PRM lines decrypted so far.
    pub fn lines_decrypted(&self) -> u64 {
        self.lines_decrypted
    }

    /// PRM lines encrypted so far.
    pub fn lines_encrypted(&self) -> u64 {
        self.lines_encrypted
    }

    /// Resets the traffic counters (between experiment phases).
    pub fn reset_counters(&mut self) {
        self.lines_decrypted = 0;
        self.lines_encrypted = 0;
    }

    /// Returns the encrypted image of `plaintext` as it would appear on the
    /// DRAM bus. `base_paddr` must be line-aligned and `plaintext` a
    /// multiple of the line size.
    ///
    /// # Panics
    ///
    /// Panics on misaligned input.
    pub fn encrypt_view(&self, base_paddr: u64, plaintext: &[u8]) -> Vec<u8> {
        assert_eq!(base_paddr % LINE_SIZE as u64, 0, "misaligned line base");
        assert_eq!(plaintext.len() % LINE_SIZE, 0, "partial line");
        let mut out = Vec::with_capacity(plaintext.len());
        for (i, chunk) in plaintext.chunks(LINE_SIZE).enumerate() {
            let line_addr = base_paddr + (i * LINE_SIZE) as u64;
            let ks = self.keystream(line_addr);
            out.extend(chunk.iter().zip(ks.iter()).map(|(p, k)| p ^ k));
        }
        out
    }

    /// Marks the lines covering `[paddr, paddr + len)` as physically
    /// tampered. The next architectural access to any of them must fault.
    pub fn mark_tampered(&mut self, paddr: u64, len: usize) {
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        for line in first..=last {
            self.tampered_lines.insert(line);
        }
    }

    /// True if the line containing `paddr` fails integrity verification.
    pub fn is_tampered(&self, paddr: u64) -> bool {
        self.tampered_lines.contains(&(paddr / LINE_SIZE as u64))
    }

    /// True if any line in `[paddr, paddr + len)` fails verification.
    pub fn any_tampered(&self, paddr: u64, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        (first..=last).any(|l| self.tampered_lines.contains(&l))
    }

    /// Clears the tamper record for lines overwritten by an architectural
    /// write (a full-line store re-encrypts and re-hashes the line).
    pub fn clear_tamper(&mut self, paddr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = paddr / LINE_SIZE as u64;
        let last = (paddr + len as u64 - 1) / LINE_SIZE as u64;
        for line in first..=last {
            self.tampered_lines.remove(&line);
        }
    }

    fn keystream(&self, line_addr: u64) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        for blk in 0..(LINE_SIZE / 32) {
            let mut h = Sha256::new();
            h.update(&self.key);
            h.update(&line_addr.to_le_bytes());
            h.update(&(blk as u32).to_le_bytes());
            out[blk * 32..blk * 32 + 32].copy_from_slice(&h.finalize());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0xABu8; 128];
        let ct = mee.encrypt_view(0, &pt);
        assert_ne!(ct, pt);
        assert_eq!(ct.len(), 128);
    }

    #[test]
    fn different_lines_get_different_keystreams() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0u8; 128];
        let ct = mee.encrypt_view(0, &pt);
        assert_ne!(&ct[..64], &ct[64..], "keystream must be position-bound");
    }

    #[test]
    fn deterministic_view() {
        let mee = Mee::new([7u8; 32]);
        let pt = vec![0x11u8; 64];
        assert_eq!(mee.encrypt_view(64, &pt), mee.encrypt_view(64, &pt));
    }

    #[test]
    fn tamper_tracking() {
        let mut mee = Mee::new([0u8; 32]);
        assert!(!mee.is_tampered(100));
        mee.mark_tampered(100, 1);
        assert!(mee.is_tampered(100));
        assert!(mee.is_tampered(64)); // same line
        assert!(!mee.is_tampered(128));
        assert!(mee.any_tampered(0, 4096));
        mee.clear_tamper(64, 64);
        assert!(!mee.is_tampered(100));
    }

    #[test]
    fn tamper_spanning_lines() {
        let mut mee = Mee::new([0u8; 32]);
        mee.mark_tampered(60, 10); // crosses the 64-byte boundary
        assert!(mee.is_tampered(0));
        assert!(mee.is_tampered(64));
    }

    #[test]
    fn counters() {
        let mut mee = Mee::new([0u8; 32]);
        mee.note_decrypt();
        mee.note_decrypt();
        mee.note_encrypt();
        assert_eq!(mee.lines_decrypted(), 2);
        assert_eq!(mee.lines_encrypted(), 1);
        mee.reset_counters();
        assert_eq!(mee.lines_decrypted(), 0);
    }
}
