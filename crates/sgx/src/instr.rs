//! Enclave life-cycle and transition instructions
//! (ECREATE/EADD/EEXTEND/EINIT/EENTER/EEXIT/AEX/ERESUME/EWB/ELDU/EREMOVE).

use crate::addr::{VirtAddr, VirtRange, Vpn, LINE_SIZE, PAGE_SIZE};
use crate::enclave::{EnclaveId, EnclaveState, ProcessId, SavedContext, SigStruct, Tcs};
use crate::epcm::{EpcmEntry, PagePerms, PageType};
use crate::error::{Result, SgxError};
use crate::fault::{ChaosAction, ChaosInjection, ChaosKind};
use crate::machine::{CoreMode, Machine};
use crate::metrics::CycleCategory;
use crate::profile::ProfileEvent;
use crate::trace::Event;
use ne_crypto::gcm::AesGcm;
use ne_crypto::Digest32;

/// Initial contents of an EADDed page.
///
/// `Image` carries real bytes. `Opaque` models pages whose exact bytes are
/// irrelevant to an experiment (e.g. the 4 MB library text of Fig. 10): the
/// measurement still binds the content identity via the seed, but the bytes
/// are not materialized, keeping host memory proportional to pages actually
/// touched.
#[derive(Debug, Clone)]
pub enum PageSource {
    /// Zero-filled page.
    Zeros,
    /// Explicit initial bytes (at most one page; padded with zeros).
    Image(Vec<u8>),
    /// Content identified by a seed but never materialized.
    Opaque {
        /// Identity of the synthetic content.
        seed: u64,
    },
}

impl PageSource {
    /// Digest of the page content as EEXTEND will measure it. Public so
    /// loaders can *replay* a measurement without performing the load
    /// (an enclave file must embed the expected MRENCLAVE of counterparts
    /// that are not loaded yet — § IV-C).
    pub fn content_digest(&self) -> Digest32 {
        match self {
            PageSource::Zeros => ne_crypto::sha256::digest(&[0u8; PAGE_SIZE]),
            PageSource::Image(bytes) => {
                let mut page = vec![0u8; PAGE_SIZE];
                page[..bytes.len()].copy_from_slice(bytes);
                ne_crypto::sha256::digest(&page)
            }
            PageSource::Opaque { seed } => {
                let mut h = ne_crypto::sha256::Sha256::new();
                h.update(b"opaque-page");
                h.update(&seed.to_le_bytes());
                h.finalize()
            }
        }
    }
}

/// An EPC page evicted to untrusted memory by [`Machine::ewb`]: sealed
/// ciphertext plus the metadata the reload needs. The OS holds this; it can
/// drop or replay it, but not forge or roll it back undetected.
#[derive(Debug, Clone)]
pub struct EvictedPage {
    /// Owner enclave.
    pub eid: EnclaveId,
    /// Bound virtual page.
    pub vpn: Vpn,
    /// Anti-replay version stamped at eviction.
    pub version: u64,
    /// AES-GCM sealed page contents.
    pub sealed: Vec<u8>,
    /// Page metadata needed to rebuild the EPCM entry.
    pub page_type: PageType,
    /// Author permissions to rebuild the EPCM entry.
    pub perms: PagePerms,
}

impl Machine {
    // ----- build-time instructions -------------------------------------------

    /// `ECREATE`: creates an enclave with the given ELRANGE in process
    /// `pid`, consuming one EPC page for the SECS.
    ///
    /// # Errors
    ///
    /// Fails if the EPC is full or the range overlaps a live enclave in the
    /// same process.
    pub fn ecreate(&mut self, pid: ProcessId, elrange: VirtRange) -> Result<EnclaveId> {
        for other in self.enclaves().iter() {
            if other.pid == pid && other.elrange.overlaps(elrange) {
                return Err(SgxError::RangeConflict(format!(
                    "ELRANGE overlaps enclave {}",
                    other.eid
                )));
            }
        }
        let secs_page = self.alloc_epc()?;
        let eid = self.enclaves_mut().create(pid, elrange);
        // SECS pages have no linear mapping; the sentinel VPN can never be
        // produced by a walk, and the page type blocks software access.
        self.epcm_mut().insert(
            secs_page,
            EpcmEntry {
                eid,
                vpn: Vpn(u64::MAX),
                page_type: PageType::Secs,
                perms: PagePerms::R,
                blocked: false,
                pending: false,
            },
        );
        self.bump_replay_epoch();
        let cost = self.config().cost.ecreate;
        self.charge_cat(0, CycleCategory::Lifecycle, cost);
        Ok(eid)
    }

    /// `EADD`: adds one page at `va` to enclave `eid` and maps it in the
    /// owning process (as the SGX driver would).
    ///
    /// # Errors
    ///
    /// Fails if the enclave is initialized, `va` is outside ELRANGE or
    /// unaligned, the page was already added, or the EPC is full.
    pub fn eadd(
        &mut self,
        eid: EnclaveId,
        va: VirtAddr,
        page_type: PageType,
        source: PageSource,
        perms: PagePerms,
    ) -> Result<()> {
        if page_type == PageType::Secs {
            return Err(SgxError::GeneralProtection(
                "SECS pages are created by ECREATE only".into(),
            ));
        }
        let secs = self
            .enclaves()
            .get(eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        if secs.state != EnclaveState::Building {
            return Err(SgxError::BadEnclaveState(
                "EADD after EINIT (no SGX2 dynamic EPC in this model)".into(),
            ));
        }
        if !va.is_page_aligned() {
            return Err(SgxError::GeneralProtection("EADD address unaligned".into()));
        }
        if !secs.elrange.contains_page(va.vpn()) {
            return Err(SgxError::RangeConflict(format!(
                "EADD {va} outside ELRANGE"
            )));
        }
        let pid = secs.pid;
        let page_offset = va.0 - secs.elrange.start().0;
        if self.pending_digests.contains_key(&(eid.0, va.vpn().0))
            || self
                .os_lookup(pid, va.vpn())
                .map(|pte| {
                    self.epcm()
                        .get(pte.ppn)
                        .map(|e| e.eid == eid)
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        {
            return Err(SgxError::RangeConflict(format!("{va} already added")));
        }
        let ppn = self.alloc_epc()?;
        let digest = source.content_digest();
        if let PageSource::Image(bytes) = &source {
            assert!(bytes.len() <= PAGE_SIZE, "EADD image larger than a page");
            let mut page = [0u8; PAGE_SIZE];
            page[..bytes.len()].copy_from_slice(bytes);
            self.dram_mut().write_page(ppn, &page);
        } else {
            self.dram_mut().clear_page(ppn);
        }
        self.mee_mut().clear_tamper(ppn.base().0, PAGE_SIZE);
        self.epcm_mut().insert(
            ppn,
            EpcmEntry {
                eid,
                vpn: va.vpn(),
                page_type,
                perms,
                blocked: false,
                pending: false,
            },
        );
        self.os_map(pid, va.vpn(), ppn, perms);
        let type_tag = match page_type {
            PageType::Secs => 0,
            PageType::Tcs => 1,
            PageType::Reg => 2,
        };
        let perm_bits = (perms.r as u8) | ((perms.w as u8) << 1) | ((perms.x as u8) << 2);
        self.enclaves_mut()
            .get_mut(eid)
            .expect("checked above")
            .measurement
            .eadd(page_offset, type_tag, perm_bits);
        self.pending_digests.insert((eid.0, va.vpn().0), digest);
        let cost = self.config().cost.eadd_page;
        self.charge_cat(0, CycleCategory::Lifecycle, cost);
        Ok(())
    }

    /// `EEXTEND`: measures the contents of a previously EADDed page into
    /// the enclave measurement.
    ///
    /// # Errors
    ///
    /// Fails if the page was not EADDed or was already extended.
    pub fn eextend(&mut self, eid: EnclaveId, va: VirtAddr) -> Result<()> {
        let secs = self
            .enclaves()
            .get(eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        if secs.state != EnclaveState::Building {
            return Err(SgxError::BadEnclaveState("EEXTEND after EINIT".into()));
        }
        let page_offset =
            va.0.checked_sub(secs.elrange.start().0)
                .ok_or_else(|| SgxError::RangeConflict(format!("EEXTEND {va} outside ELRANGE")))?;
        let digest = self
            .pending_digests
            .get(&(eid.0, va.vpn().0))
            .copied()
            .ok_or_else(|| SgxError::GeneralProtection(format!("EEXTEND before EADD at {va}")))?;
        self.enclaves_mut()
            .get_mut(eid)
            .expect("checked above")
            .measurement
            .eextend(page_offset, &digest);
        let cost = self.config().cost.eextend_page;
        self.charge_cat(0, CycleCategory::Lifecycle, cost);
        Ok(())
    }

    /// `EINIT`: finalizes the enclave, verifying the author's SIGSTRUCT
    /// against the accumulated measurement.
    ///
    /// # Errors
    ///
    /// Fails if the measurement does not match the signed expectation.
    pub fn einit(&mut self, eid: EnclaveId, sig: &SigStruct) -> Result<()> {
        let secs = self
            .enclaves()
            .get(eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        if secs.state != EnclaveState::Building {
            return Err(SgxError::BadEnclaveState("double EINIT".into()));
        }
        let measured = secs.measurement.finalize();
        if measured != sig.expected_mrenclave {
            return Err(SgxError::InitVerification(
                "measurement does not match SIGSTRUCT".into(),
            ));
        }
        let mrsigner = sig.mrsigner();
        let secs = self.enclaves_mut().get_mut(eid).expect("checked above");
        secs.mrenclave = measured;
        secs.mrsigner = mrsigner;
        secs.state = EnclaveState::Initialized;
        self.bump_replay_epoch();
        let cost = self.config().cost.einit;
        self.charge_cat(0, CycleCategory::Lifecycle, cost);
        Ok(())
    }

    /// Convenience: EADD + register a Thread Control Structure whose entry
    /// point is `entry`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Machine::eadd`], plus `entry` must lie in
    /// ELRANGE.
    pub fn add_tcs(&mut self, eid: EnclaveId, va: VirtAddr, entry: VirtAddr) -> Result<()> {
        {
            let secs = self
                .enclaves()
                .get(eid)
                .ok_or(SgxError::NoSuchEnclave(eid))?;
            if !secs.elrange.contains(entry) {
                return Err(SgxError::GeneralProtection(
                    "TCS entry point outside ELRANGE".into(),
                ));
            }
        }
        self.eadd(eid, va, PageType::Tcs, PageSource::Zeros, PagePerms::RW)?;
        self.tcs_table.insert(
            (eid.0, va.0),
            Tcs {
                eid,
                va,
                entry,
                busy: false,
                ssa: None,
                caller: None,
            },
        );
        Ok(())
    }

    // ----- transition instructions -------------------------------------------

    /// `EENTER`: enters enclave `eid` through the TCS at `tcs_va`.
    ///
    /// Flushes the TLB (the transition invariant) but charges only the
    /// architectural flush; the SDK-level call cost of Table II is charged
    /// by the runtime dispatch layer.
    ///
    /// # Errors
    ///
    /// General-protection fault if the core is already in enclave mode, the
    /// enclave is not initialized, or the TCS is missing/busy/foreign.
    /// [`SgxError::EnclavePoisoned`] if the enclave crashed earlier (entry
    /// into a crashed enclave faults until EREMOVE rebuilds it).
    pub fn eenter(&mut self, core: usize, eid: EnclaveId, tcs_va: VirtAddr) -> Result<()> {
        if self.current_enclave(core).is_some() {
            return Err(SgxError::GeneralProtection(
                "EENTER while already in enclave mode".into(),
            ));
        }
        {
            let secs = self
                .enclaves()
                .get(eid)
                .ok_or(SgxError::NoSuchEnclave(eid))?;
            if !secs.is_initialized() {
                return Err(SgxError::BadEnclaveState("EENTER before EINIT".into()));
            }
            if secs.pid != self.core(core).pid {
                return Err(SgxError::GeneralProtection(
                    "EENTER from a different process".into(),
                ));
            }
        }
        if self.is_poisoned(eid) {
            return Err(SgxError::EnclavePoisoned(eid));
        }
        {
            let tcs = self
                .tcs_table
                .get(&(eid.0, tcs_va.0))
                .ok_or_else(|| SgxError::GeneralProtection("EENTER with invalid TCS".into()))?;
            if tcs.busy {
                return Err(SgxError::GeneralProtection("EENTER on busy TCS".into()));
            }
        }
        // Consult the fault plan once the entry is architecturally valid: a
        // crash injection poisons its victim and, if the victim is this
        // enclave, preempts the entry itself.
        let chaos_actions = self.chaos_decide_eenter(core, eid)?;
        if let Some(tcs) = self.tcs_table.get_mut(&(eid.0, tcs_va.0)) {
            tcs.busy = true;
        }
        self.flush_tlb(core);
        self.set_core_mode(core, CoreMode::Enclave { eid, tcs: tcs_va });
        self.enclaves_mut()
            .get_mut(eid)
            .expect("live")
            .active_threads += 1;
        self.stats_mut().ecalls += 1;
        self.macro_note_eenter(eid.0);
        self.record_event(Event::Eenter { core, eid });
        self.chaos_apply_post_entry(core, eid, tcs_va, chaos_actions)?;
        Ok(())
    }

    /// `EEXIT`: leaves enclave mode to untrusted execution.
    ///
    /// # Errors
    ///
    /// General-protection fault if the core is not in enclave mode.
    pub fn eexit(&mut self, core: usize) -> Result<()> {
        let (eid, tcs_va) = match self.core(core).mode {
            CoreMode::Enclave { eid, tcs } => (eid, tcs),
            CoreMode::NonEnclave => {
                return Err(SgxError::GeneralProtection(
                    "EEXIT outside enclave mode".into(),
                ))
            }
        };
        self.flush_tlb(core);
        if let Some(tcs) = self.tcs_table.get_mut(&(eid.0, tcs_va.0)) {
            tcs.busy = false;
            tcs.ssa = None;
        }
        self.set_core_mode(core, CoreMode::NonEnclave);
        if let Some(secs) = self.enclaves_mut().get_mut(eid) {
            secs.active_threads = secs.active_threads.saturating_sub(1);
        }
        self.stats_mut().ocalls += 1;
        self.record_event(Event::Eexit { core, eid });
        Ok(())
    }

    /// Asynchronous Enclave Exit: an interrupt/exception kicks the core out
    /// of enclave mode, saving the context in the TCS's SSA and scrubbing
    /// the registers. The TCS stays busy until [`Machine::eresume`].
    ///
    /// # Errors
    ///
    /// General-protection fault if the core is not in enclave mode.
    pub fn aex(&mut self, core: usize) -> Result<()> {
        let (eid, tcs_va) = match self.core(core).mode {
            CoreMode::Enclave { eid, tcs } => (eid, tcs),
            CoreMode::NonEnclave => {
                return Err(SgxError::GeneralProtection(
                    "AEX outside enclave mode".into(),
                ))
            }
        };
        let saved = *self.regs_mut(core);
        *self.regs_mut(core) = SavedContext::default(); // scrub
        if let Some(tcs) = self.tcs_table.get_mut(&(eid.0, tcs_va.0)) {
            tcs.ssa = Some(saved);
        }
        self.flush_tlb(core);
        self.set_core_mode(core, CoreMode::NonEnclave);
        if let Some(secs) = self.enclaves_mut().get_mut(eid) {
            secs.active_threads = secs.active_threads.saturating_sub(1);
        }
        let cost = self.config().cost.aex;
        // The core already left enclave mode; the exit belongs to the
        // interrupted enclave.
        self.charge_to(core, CycleCategory::Transition, cost, Some(eid));
        self.stats_mut().aexes += 1;
        let level = self.hier_level(Some(eid));
        self.profile_record(ProfileEvent::Aex, level, cost);
        self.record_event(Event::Aex { core, eid });
        Ok(())
    }

    /// `ERESUME`: resumes an enclave thread interrupted by [`Machine::aex`].
    ///
    /// # Errors
    ///
    /// General-protection fault unless the TCS is busy with a saved SSA.
    pub fn eresume(&mut self, core: usize, eid: EnclaveId, tcs_va: VirtAddr) -> Result<()> {
        if self.current_enclave(core).is_some() {
            return Err(SgxError::GeneralProtection(
                "ERESUME while in enclave mode".into(),
            ));
        }
        let saved = {
            let tcs = self
                .tcs_table
                .get_mut(&(eid.0, tcs_va.0))
                .ok_or_else(|| SgxError::GeneralProtection("ERESUME with invalid TCS".into()))?;
            if !tcs.busy {
                return Err(SgxError::GeneralProtection("ERESUME on idle TCS".into()));
            }
            tcs.ssa
                .take()
                .ok_or_else(|| SgxError::GeneralProtection("ERESUME without saved state".into()))?
        };
        *self.regs_mut(core) = saved;
        self.flush_tlb(core);
        self.set_core_mode(core, CoreMode::Enclave { eid, tcs: tcs_va });
        self.enclaves_mut()
            .get_mut(eid)
            .expect("live")
            .active_threads += 1;
        self.stats_mut().eresumes += 1;
        // ERESUME's modelled cost is the entry TLB flush charged above.
        let level = self.hier_level(Some(eid));
        let cost = self.config().cost.tlb_flush;
        self.profile_record(ProfileEvent::Eresume, level, cost);
        self.record_event(Event::Eresume { core, eid });
        Ok(())
    }

    // ----- SGX2 dynamic memory --------------------------------------------------

    /// `EAUG` (SGX2): the OS adds a zeroed EPC page at `va` to the
    /// *initialized* enclave `eid`, in the *pending* state. The enclave
    /// must `EACCEPT` it before any access succeeds — otherwise a hostile
    /// OS could inject pages into a running enclave.
    ///
    /// Dynamic pages are not measured (MRENCLAVE is fixed at EINIT); the
    /// pending/accept handshake is what replaces the measurement in the
    /// trust argument.
    ///
    /// # Errors
    ///
    /// Fails before EINIT, outside ELRANGE, on already-backed pages, and
    /// when the EPC is full.
    pub fn eaug(&mut self, eid: EnclaveId, va: VirtAddr) -> Result<()> {
        let (pid, in_range, initialized) = {
            let secs = self
                .enclaves()
                .get(eid)
                .ok_or(SgxError::NoSuchEnclave(eid))?;
            (
                secs.pid,
                secs.elrange.contains_page(va.vpn()),
                secs.is_initialized(),
            )
        };
        if !initialized {
            return Err(SgxError::BadEnclaveState(
                "EAUG before EINIT (use EADD while building)".into(),
            ));
        }
        if !va.is_page_aligned() {
            return Err(SgxError::GeneralProtection("EAUG address unaligned".into()));
        }
        if !in_range {
            return Err(SgxError::RangeConflict(format!(
                "EAUG {va} outside ELRANGE"
            )));
        }
        if self
            .os_lookup(pid, va.vpn())
            .map(|pte| self.epcm().get(pte.ppn).is_some())
            .unwrap_or(false)
        {
            return Err(SgxError::RangeConflict(format!("{va} already backed")));
        }
        let ppn = self.alloc_epc()?;
        self.dram_mut().clear_page(ppn);
        self.mee_mut().clear_tamper(ppn.base().0, PAGE_SIZE);
        self.epcm_mut().insert(
            ppn,
            EpcmEntry {
                eid,
                vpn: va.vpn(),
                page_type: PageType::Reg,
                perms: PagePerms::RW,
                blocked: false,
                pending: true,
            },
        );
        self.os_map(pid, va.vpn(), ppn, PagePerms::RW);
        let cost = self.config().cost.eaug_page;
        self.charge_cat(0, CycleCategory::Lifecycle, cost);
        Ok(())
    }

    /// `EACCEPT` (SGX2): the enclave running on `core` accepts the pending
    /// page at `va` into its protection domain.
    ///
    /// # Errors
    ///
    /// General-protection fault outside enclave mode, or when `va` is not
    /// a pending page of the current enclave.
    pub fn eaccept(&mut self, core: usize, va: VirtAddr) -> Result<()> {
        let eid = self
            .current_enclave(core)
            .ok_or_else(|| SgxError::GeneralProtection("EACCEPT outside enclave mode".into()))?;
        let pid = self.core(core).pid;
        let pte = self
            .os_lookup(pid, va.vpn())
            .ok_or_else(|| SgxError::GeneralProtection(format!("EACCEPT: {va} not mapped")))?;
        let entry = self.epcm_mut().get_mut(pte.ppn).ok_or_else(|| {
            SgxError::GeneralProtection(format!("EACCEPT: {va} is not an EPC page"))
        })?;
        if entry.eid != eid || entry.vpn != va.vpn() {
            return Err(SgxError::GeneralProtection(
                "EACCEPT: page does not belong to the calling enclave".into(),
            ));
        }
        if !entry.pending {
            return Err(SgxError::GeneralProtection(
                "EACCEPT: page is not pending".into(),
            ));
        }
        entry.pending = false;
        self.bump_replay_epoch();
        let cost = self.config().cost.eaccept_page;
        self.charge_cat(core, CycleCategory::Lifecycle, cost);
        Ok(())
    }

    // ----- EPC paging ----------------------------------------------------------

    /// `EWB`: evicts the EPC page at `va` of enclave `eid` to a sealed blob
    /// the OS keeps in untrusted memory.
    ///
    /// Before the page can leave, every core whose TLB may cache a
    /// translation to it is interrupted (AEX + flush). Which cores those
    /// are depends on the installed validator's tracking set — the nested
    /// validator extends it to inner-enclave threads (§ IV-E) — or on the
    /// `flush_all_on_evict` config knob (the paper's simpler alternative).
    ///
    /// # Errors
    ///
    /// Fails for unknown pages and for SECS/TCS pages (not evictable in
    /// this model).
    pub fn ewb(&mut self, eid: EnclaveId, va: VirtAddr) -> Result<EvictedPage> {
        let pid = {
            let secs = self
                .enclaves()
                .get(eid)
                .ok_or(SgxError::NoSuchEnclave(eid))?;
            secs.pid
        };
        let pte = self
            .os_lookup(pid, va.vpn())
            .ok_or_else(|| SgxError::Paging(format!("{va} not mapped")))?;
        let entry = *self
            .epcm()
            .get(pte.ppn)
            .ok_or_else(|| SgxError::Paging(format!("{va} is not an EPC page")))?;
        if entry.eid != eid || entry.vpn != va.vpn() {
            return Err(SgxError::Paging(format!("{va} does not belong to {eid}")));
        }
        if entry.page_type != PageType::Reg {
            return Err(SgxError::Paging("only REG pages are evictable here".into()));
        }
        // Mark blocked so no new TLB fills can recreate the translation.
        self.bump_replay_epoch();
        self.epcm_mut().get_mut(pte.ppn).expect("present").blocked = true;
        // Thread tracking: interrupt every core that may cache it.
        self.evict_shootdown(eid)?;
        // Seal the contents.
        let plain = self.dram().read_page(pte.ppn);
        let version = self.next_evict_version;
        self.next_evict_version += 1;
        let key = self.paging_key(eid);
        let cipher = AesGcm::new(&key);
        let nonce = Self::paging_nonce(version);
        let aad = Self::paging_aad(eid, va.vpn(), version, entry);
        let sealed = cipher.seal(&nonce, &plain, &aad);
        self.evicted_versions.insert((eid.0, va.vpn().0), version);
        // Free the EPC page.
        self.epcm_mut().remove(pte.ppn);
        self.dram_mut().clear_page(pte.ppn);
        self.os_unmap(pid, va.vpn());
        self.free_epc.push(pte.ppn);
        let cost = self.config().cost.ewb_page;
        // Paging runs in the (untrusted) driver but on behalf of the page's
        // owner enclave — attribute it there for the hierarchy report.
        self.charge_to(0, CycleCategory::Paging, cost, Some(eid));
        self.stats_mut().ewb_pages += 1;
        let level = self.hier_level(Some(eid));
        self.profile_record(ProfileEvent::Paging, level, cost);
        self.record_event(Event::Ewb { eid, addr: va });
        Ok(EvictedPage {
            eid,
            vpn: va.vpn(),
            version,
            sealed,
            page_type: entry.page_type,
            perms: entry.perms,
        })
    }

    /// `ELDU`: reloads an evicted page into the EPC, verifying freshness.
    ///
    /// # Errors
    ///
    /// Fails on forged or replayed blobs and when the EPC is full.
    pub fn eldu(&mut self, page: &EvictedPage) -> Result<()> {
        let pid = {
            let secs = self
                .enclaves()
                .get(page.eid)
                .ok_or(SgxError::NoSuchEnclave(page.eid))?;
            secs.pid
        };
        let expected = self
            .evicted_versions
            .get(&(page.eid.0, page.vpn.0))
            .copied()
            .ok_or_else(|| SgxError::Paging("no eviction record (replay?)".into()))?;
        if expected != page.version {
            return Err(SgxError::Paging(format!(
                "version mismatch: expected {expected}, blob has {} (rollback attack)",
                page.version
            )));
        }
        let key = self.paging_key(page.eid);
        let cipher = AesGcm::new(&key);
        let nonce = Self::paging_nonce(page.version);
        let entry = EpcmEntry {
            eid: page.eid,
            vpn: page.vpn,
            page_type: page.page_type,
            perms: page.perms,
            blocked: false,
            pending: false,
        };
        let aad = Self::paging_aad(page.eid, page.vpn, page.version, entry);
        let plain = cipher
            .open(&nonce, &page.sealed, &aad)
            .map_err(|_| SgxError::Paging("sealed page failed authentication".into()))?;
        let ppn = self.alloc_epc()?;
        let mut buf = [0u8; PAGE_SIZE];
        buf.copy_from_slice(&plain);
        self.dram_mut().write_page(ppn, &buf);
        self.mee_mut().clear_tamper(ppn.base().0, PAGE_SIZE);
        self.epcm_mut().insert(ppn, entry);
        self.os_map(pid, page.vpn, ppn, page.perms);
        self.evicted_versions.remove(&(page.eid.0, page.vpn.0));
        let cost = self.config().cost.eldu_page;
        self.charge_to(0, CycleCategory::Paging, cost, Some(page.eid));
        self.stats_mut().eldu_pages += 1;
        let level = self.hier_level(Some(page.eid));
        self.profile_record(ProfileEvent::Paging, level, cost);
        self.record_event(Event::Eldu {
            eid: page.eid,
            addr: page.vpn.base(),
        });
        Ok(())
    }

    /// Interrupts (AEX) every core that may cache translations into pages
    /// of `eid`, per the tracking policy.
    fn evict_shootdown(&mut self, eid: EnclaveId) -> Result<()> {
        let affected: Vec<EnclaveId> = if self.config().flush_all_on_evict {
            Vec::new() // sentinel: every enclave core
        } else {
            self.validator().eviction_tracking_set(eid, self.enclaves())
        };
        let flush_all = self.config().flush_all_on_evict;
        let ipi_cost = self.config().cost.ipi;
        for core in 0..self.num_cores() {
            let hit = match self.core(core).mode {
                CoreMode::Enclave { eid: running, .. } => flush_all || affected.contains(&running),
                // Idle/untrusted cores hold no enclave translations
                // (invariant 1), except under flush-all which IPIs everyone.
                CoreMode::NonEnclave => flush_all,
            };
            if hit {
                // Shootdown IPIs are part of the eviction's cost.
                self.charge_to(core, CycleCategory::Paging, ipi_cost, Some(eid));
                self.stats_mut().ipis += 1;
                if self.current_enclave(core).is_some() {
                    self.aex(core)?;
                } else {
                    self.flush_tlb(core);
                }
            }
        }
        Ok(())
    }

    /// `EREMOVE`-style teardown of a whole enclave: frees all EPC pages.
    ///
    /// # Errors
    ///
    /// Fails while any thread is executing inside the enclave, and also
    /// while any of its TCSes is still **busy** without counting as an
    /// active thread — an AEX'd context awaiting `ERESUME`, or an inner
    /// context suspended mid-`n_ocall`. Tearing those down would free the
    /// pages a live `SavedContext` still refers to; the enclave (and its
    /// EPCM entries) is left untouched so the context can be resumed and
    /// exited cleanly first.
    pub fn eremove(&mut self, eid: EnclaveId) -> Result<()> {
        let secs = self
            .enclaves()
            .get(eid)
            .ok_or(SgxError::NoSuchEnclave(eid))?;
        if secs.active_threads > 0 {
            return Err(SgxError::BadEnclaveState(
                "EREMOVE while threads are active".into(),
            ));
        }
        if self
            .tcs_table
            .iter()
            .any(|((e, _), tcs)| *e == eid.0 && tcs.busy)
        {
            return Err(SgxError::BadEnclaveState(
                "EREMOVE while a TCS is busy (interrupted or suspended context in flight)".into(),
            ));
        }
        let pid = secs.pid;
        self.bump_replay_epoch();
        let pages = self.epcm().pages_of(eid);
        for ppn in pages {
            let entry = self.epcm_mut().remove(ppn).expect("listed");
            if entry.vpn.0 != u64::MAX {
                self.os_unmap(pid, entry.vpn);
            }
            self.dram_mut().clear_page(ppn);
            self.free_epc.push(ppn);
        }
        self.tcs_table.retain(|(e, _), _| *e != eid.0);
        self.pending_digests.retain(|(e, _), _| *e != eid.0);
        // Sever any nested-enclave associations so no SECS keeps a
        // dangling link to the destroyed enclave.
        let (outers, inners) = {
            let secs = self.enclaves().get(eid).expect("checked above");
            (secs.outer_eids.clone(), secs.inner_eids.clone())
        };
        for outer in outers {
            if let Some(s) = self.enclaves_mut().get_mut(outer) {
                s.inner_eids.retain(|&i| i != eid);
            }
        }
        for inner in inners {
            if let Some(s) = self.enclaves_mut().get_mut(inner) {
                s.outer_eids.retain(|&o| o != eid);
            }
        }
        self.enclaves_mut().remove(eid);
        // Destroying the enclave cures a crash-injected poisoning and
        // invalidates any chaos-evicted blobs still parked for it.
        self.poisoned.remove(&eid.0);
        self.chaos_evicted.retain(|b| b.eid != eid);
        self.flush_all_tlbs();
        Ok(())
    }

    // ----- fault-injection application ---------------------------------------

    /// Runs the fault plan's EENTER trigger (if a plan is installed) and
    /// applies crash poisonings. Returns the remaining actions to apply
    /// after the entry completes.
    ///
    /// # Errors
    ///
    /// [`SgxError::EnclavePoisoned`] if a crash injection selected the
    /// entered enclave itself — the entry is preempted, exactly as if the
    /// enclave had aborted inside the previous ecall.
    fn chaos_decide_eenter(&mut self, core: usize, eid: EnclaveId) -> Result<Vec<ChaosAction>> {
        let actions = match self.chaos.as_mut() {
            Some(plan) => plan.on_eenter(eid.0),
            None => return Ok(Vec::new()),
        };
        let cycle = self.cycles(core);
        for action in &actions {
            if let ChaosAction::Crash { pick } = *action {
                let victim = self.chaos_crash_victim(eid, pick);
                self.chaos_events.push(ChaosInjection {
                    cycle,
                    eid: victim.0,
                    kind: ChaosKind::Crash,
                });
                self.poison_enclave(victim);
                if victim == eid {
                    return Err(SgxError::EnclavePoisoned(eid));
                }
            }
        }
        Ok(actions)
    }

    /// The crash victim for an entry into `eid`: the enclave itself or one
    /// of its inner enclaves, selected by the plan's PRNG draw over the
    /// VA-sorted candidate list (deterministic across runs).
    fn chaos_crash_victim(&self, eid: EnclaveId, pick: u64) -> EnclaveId {
        let mut candidates = vec![eid];
        if let Some(secs) = self.enclaves().get(eid) {
            let mut inners = secs.inner_eids.clone();
            inners.sort_by_key(|e| e.0);
            candidates.extend(inners);
        }
        candidates[(pick % candidates.len() as u64) as usize]
    }

    /// Applies the non-crash chaos actions after the entry completed, using
    /// the real instruction implementations so every attribution identity
    /// keeps holding.
    fn chaos_apply_post_entry(
        &mut self,
        core: usize,
        eid: EnclaveId,
        tcs_va: VirtAddr,
        actions: Vec<ChaosAction>,
    ) -> Result<()> {
        for action in actions {
            // Log the injection before applying it, stamped with the
            // entering core's clock at the injection point.
            if let Some(kind) = match action {
                ChaosAction::AexStorm { .. } => Some(ChaosKind::Aex),
                ChaosAction::Evict { .. } => Some(ChaosKind::Evict),
                ChaosAction::Mac => Some(ChaosKind::Mac),
                ChaosAction::Stall { .. } => Some(ChaosKind::Stall),
                ChaosAction::Migrate => Some(ChaosKind::Migrate),
                ChaosAction::Crash { .. } => None, // logged pre-entry
            } {
                self.chaos_events.push(ChaosInjection {
                    cycle: self.cycles(core),
                    eid: eid.0,
                    kind,
                });
            }
            match action {
                ChaosAction::AexStorm { rounds } => {
                    for _ in 0..rounds {
                        self.aex(core)?;
                        self.eresume(core, eid, tcs_va)?;
                    }
                }
                ChaosAction::Evict { pages } => {
                    let mut victims = vec![eid];
                    if let Some(secs) = self.enclaves().get(eid) {
                        let mut inners = secs.inner_eids.clone();
                        inners.sort_by_key(|e| e.0);
                        victims.extend(inners);
                    }
                    for victim in victims {
                        for vpn in self.chaos_hot_pages(victim, pages as usize) {
                            let blob = self.ewb(victim, vpn.base())?;
                            if let Some(plan) = self.chaos.as_mut() {
                                plan.count_forced_eviction();
                            }
                            self.chaos_evicted.push(blob);
                        }
                    }
                    // The eviction shootdown may have AEXed this very core;
                    // resume so the caller still holds a completed entry.
                    if self.current_enclave(core).is_none() {
                        self.eresume(core, eid, tcs_va)?;
                    }
                }
                ChaosAction::Mac => self.chaos_apply_mac(eid),
                ChaosAction::Stall { window } => {
                    if let Some(plan) = self.chaos.as_mut() {
                        plan.open_stall(window);
                    }
                }
                // No architectural fault: park the request for the host's
                // next safe point (a cluster barrier). Dedup keeps a storm
                // of entries from queueing the same victim twice.
                ChaosAction::Migrate => {
                    if !self.migration_requests.contains(&eid.0) {
                        self.migration_requests.push(eid.0);
                    }
                }
                ChaosAction::Crash { .. } => {} // applied before entry
            }
        }
        Ok(())
    }

    /// The `n` lowest-VA resident REG pages of `victim` — its hottest
    /// pages in practice (entry code first), and a deterministic choice.
    fn chaos_hot_pages(&self, victim: EnclaveId, n: usize) -> Vec<Vpn> {
        let mut vpns: Vec<Vpn> = self
            .epcm()
            .pages_of(victim)
            .into_iter()
            .filter_map(|ppn| self.epcm().get(ppn))
            .filter(|e| e.page_type == PageType::Reg && !e.blocked && !e.pending)
            .map(|e| e.vpn)
            .collect();
        vpns.sort();
        vpns.truncate(n);
        vpns
    }

    /// Tampers one cache line of `eid`'s lowest-VA REG page (the entry
    /// code page) on the DRAM bus: the MEE rejects the next fetch through
    /// that line with an integrity violation.
    fn chaos_apply_mac(&mut self, eid: EnclaveId) {
        let target = self
            .epcm()
            .pages_of(eid)
            .into_iter()
            .filter_map(|ppn| self.epcm().get(ppn).map(|e| (e.vpn, ppn, e.page_type)))
            .filter(|&(_, _, t)| t == PageType::Reg)
            .min_by_key(|&(vpn, _, _)| vpn.0);
        if let Some((_, ppn, _)) = target {
            self.physical_tamper(ppn.base(), &[0xA5; LINE_SIZE]);
        }
    }

    /// Audits EPCM consistency: every valid EPC entry points into PRM, and
    /// every REG/TCS entry's virtual page lies inside its owner's ELRANGE.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (test/diagnostic
    /// use; a correct machine never produces one).
    pub fn audit_epcm(&self) -> std::result::Result<(), String> {
        for (ppn, entry) in self.epcm().iter() {
            if !self.config().in_prm(ppn.0) {
                return Err(format!("EPCM entry for non-PRM page {ppn:?}"));
            }
            let secs = match self.enclaves().get(entry.eid) {
                Some(s) => s,
                None => return Err(format!("EPCM entry for dead enclave {}", entry.eid)),
            };
            if entry.page_type != PageType::Secs && !secs.elrange.contains_page(entry.vpn) {
                return Err(format!(
                    "EPCM entry {ppn:?} binds {:?} outside {}'s ELRANGE",
                    entry.vpn, entry.eid
                ));
            }
        }
        Ok(())
    }

    fn paging_key(&self, eid: EnclaveId) -> [u8; 16] {
        ne_crypto::kdf::derive_key(&self.platform_secret, b"epc-paging", &eid.0.to_le_bytes())
    }

    fn paging_nonce(version: u64) -> [u8; 12] {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&version.to_le_bytes());
        n
    }

    fn paging_aad(eid: EnclaveId, vpn: Vpn, version: u64, entry: EpcmEntry) -> Vec<u8> {
        let mut aad = Vec::with_capacity(32);
        aad.extend_from_slice(&eid.0.to_le_bytes());
        aad.extend_from_slice(&vpn.0.to_le_bytes());
        aad.extend_from_slice(&version.to_le_bytes());
        aad.push(match entry.page_type {
            PageType::Secs => 0,
            PageType::Tcs => 1,
            PageType::Reg => 2,
        });
        aad.push(
            (entry.perms.r as u8) | ((entry.perms.w as u8) << 1) | ((entry.perms.x as u8) << 2),
        );
        aad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HwConfig;
    use crate::error::FaultKind;

    fn machine() -> Machine {
        Machine::new(HwConfig::small())
    }

    /// Builds a 4-page initialized enclave with a TCS at page 0 and data
    /// pages at 1..4; returns (machine, eid, base VA).
    fn built_enclave() -> (Machine, EnclaveId, VirtAddr) {
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 4 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        for i in 1..4u64 {
            m.eadd(
                eid,
                base.add(i * PAGE_SIZE as u64),
                PageType::Reg,
                PageSource::Image(vec![i as u8; 16]),
                PagePerms::RW,
            )
            .unwrap();
            m.eextend(eid, base.add(i * PAGE_SIZE as u64)).unwrap();
        }
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(b"tester", measured)).unwrap();
        (m, eid, base)
    }

    #[test]
    fn full_lifecycle_and_owner_access() {
        let (mut m, eid, base) = built_enclave();
        m.eenter(0, eid, base).unwrap();
        assert_eq!(m.current_enclave(0), Some(eid));
        let data_va = base.add(PAGE_SIZE as u64);
        assert_eq!(m.read(0, data_va, 4).unwrap(), vec![1, 1, 1, 1]);
        m.write(0, data_va, b"new!").unwrap();
        assert_eq!(m.read(0, data_va, 4).unwrap(), b"new!");
        m.audit_tlbs().unwrap();
        m.eexit(0).unwrap();
        assert_eq!(m.current_enclave(0), None);
    }

    #[test]
    fn non_owner_cannot_read_epc() {
        let (mut m, _eid, base) = built_enclave();
        // Untrusted access to enclave memory aborts (all-ones).
        let data = m.read(0, base.add(PAGE_SIZE as u64), 4).unwrap();
        assert_eq!(data, vec![0xFF; 4]);
    }

    #[test]
    fn einit_rejects_wrong_measurement() {
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, PAGE_SIZE as u64))
            .unwrap();
        m.eadd(eid, base, PageType::Reg, PageSource::Zeros, PagePerms::RW)
            .unwrap();
        let err = m
            .einit(eid, &SigStruct::new(b"tester", [0xAB; 32]))
            .unwrap_err();
        assert!(matches!(err, SgxError::InitVerification(_)));
    }

    #[test]
    fn eadd_after_einit_rejected() {
        let (mut m, eid, base) = built_enclave();
        let err = m
            .eadd(
                eid,
                base.add(3 * PAGE_SIZE as u64),
                PageType::Reg,
                PageSource::Zeros,
                PagePerms::RW,
            )
            .unwrap_err();
        assert!(matches!(err, SgxError::BadEnclaveState(_)));
    }

    #[test]
    fn eenter_requires_init_and_idle_tcs() {
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, PAGE_SIZE as u64 * 2))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        assert!(m.eenter(0, eid, base).is_err(), "not initialized yet");
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(b"t", measured)).unwrap();
        m.eenter(0, eid, base).unwrap();
        // Same TCS from another core: busy.
        let err = m.eenter(1, eid, base).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn transitions_flush_tlb() {
        let (mut m, eid, base) = built_enclave();
        let flushes0 = m.tlb_flushes();
        m.eenter(0, eid, base).unwrap();
        m.read(0, base.add(PAGE_SIZE as u64), 1).unwrap();
        assert!(!m.core(0).tlb.is_empty());
        m.eexit(0).unwrap();
        assert!(m.core(0).tlb.is_empty(), "EEXIT must flush");
        assert!(m.tlb_flushes() >= flushes0 + 2);
    }

    #[test]
    fn aex_and_eresume_roundtrip() {
        let (mut m, eid, base) = built_enclave();
        m.eenter(0, eid, base).unwrap();
        m.set_reg(0, 3, 0xDEAD);
        m.aex(0).unwrap();
        assert_eq!(m.current_enclave(0), None);
        assert_eq!(m.reg(0, 3), 0, "AEX must scrub registers");
        assert!(m.tcs(eid, base).unwrap().busy, "TCS stays busy across AEX");
        m.eresume(0, eid, base).unwrap();
        assert_eq!(m.reg(0, 3), 0xDEAD, "ERESUME restores context");
        assert_eq!(m.current_enclave(0), Some(eid));
    }

    #[test]
    fn ewb_eldu_roundtrip_preserves_content() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(2 * PAGE_SIZE as u64);
        m.eenter(0, eid, base).unwrap();
        m.write(0, va, b"persistent").unwrap();
        m.eexit(0).unwrap();
        let free_before = m.free_epc_pages();
        let blob = m.ewb(eid, va).unwrap();
        assert_eq!(m.free_epc_pages(), free_before + 1);
        // While evicted, enclave access faults as swapped-out.
        m.eenter(0, eid, base).unwrap();
        let err = m.read(0, va, 4).unwrap_err();
        assert!(
            err.is_fault(FaultKind::EnclavePageSwappedOut) || err.is_fault(FaultKind::NotMapped)
        );
        m.eexit(0).unwrap();
        m.eldu(&blob).unwrap();
        m.eenter(0, eid, base).unwrap();
        assert_eq!(m.read(0, va, 10).unwrap(), b"persistent");
    }

    #[test]
    fn eldu_rejects_replay() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(2 * PAGE_SIZE as u64);
        let blob = m.ewb(eid, va).unwrap();
        m.eldu(&blob).unwrap();
        let err = m.eldu(&blob).unwrap_err();
        assert!(matches!(err, SgxError::Paging(_)), "replay must fail");
    }

    #[test]
    fn eldu_rejects_rollback() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(2 * PAGE_SIZE as u64);
        let old = m.ewb(eid, va).unwrap();
        m.eldu(&old).unwrap();
        m.eenter(0, eid, base).unwrap();
        m.write(0, va, b"newer data").unwrap();
        m.eexit(0).unwrap();
        let _new = m.ewb(eid, va).unwrap();
        // OS tries to reload the *old* snapshot.
        let err = m.eldu(&old).unwrap_err();
        assert!(matches!(err, SgxError::Paging(_)), "rollback must fail");
    }

    #[test]
    fn eldu_rejects_forgery() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(2 * PAGE_SIZE as u64);
        let mut blob = m.ewb(eid, va).unwrap();
        blob.sealed[0] ^= 1;
        let err = m.eldu(&blob).unwrap_err();
        assert!(matches!(err, SgxError::Paging(_)));
    }

    #[test]
    fn ewb_interrupts_running_thread() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(2 * PAGE_SIZE as u64);
        m.eenter(0, eid, base).unwrap();
        m.read(0, va, 1).unwrap();
        let _blob = m.ewb(eid, va).unwrap();
        assert_eq!(m.current_enclave(0), None, "running thread must take AEX");
        assert!(m.stats().aexes >= 1);
        assert!(m.stats().ipis >= 1);
        m.audit_tlbs().unwrap();
    }

    #[test]
    fn eremove_frees_everything() {
        let (mut m, eid, _base) = built_enclave();
        let free_before = m.free_epc_pages();
        m.eremove(eid).unwrap();
        // 1 SECS + 1 TCS + 3 REG pages come back.
        assert_eq!(m.free_epc_pages(), free_before + 5);
        assert!(m.enclaves().get(eid).is_none());
    }

    /// Regression: after an AEX the thread no longer counts as active, but
    /// its TCS is still busy with a saved context awaiting ERESUME.
    /// EREMOVE in that window must refuse cleanly — previously it freed
    /// the pages out from under the interrupted context — and must leave
    /// the enclave fully resumable.
    #[test]
    fn eremove_rejects_interrupted_context() {
        let (mut m, eid, base) = built_enclave();
        m.eenter(0, eid, base).unwrap();
        m.set_reg(0, 4, 0xFEED);
        m.aex(0).unwrap();
        assert_eq!(m.enclaves().get(eid).unwrap().active_threads, 0);
        let free_before = m.free_epc_pages();
        let err = m.eremove(eid).unwrap_err();
        assert!(matches!(err, SgxError::BadEnclaveState(_)), "got {err}");
        // The refusal must not have touched EPCM or enclave state.
        assert_eq!(m.free_epc_pages(), free_before);
        assert!(m.enclaves().get(eid).is_some());
        m.audit_epcm().unwrap();
        // The interrupted context is still intact and can unwind.
        m.eresume(0, eid, base).unwrap();
        assert_eq!(m.reg(0, 4), 0xFEED, "saved context survived");
        m.eexit(0).unwrap();
        m.eremove(eid).unwrap();
        m.audit_epcm().unwrap();
    }

    #[test]
    fn physical_probe_of_epc_is_ciphertext() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(PAGE_SIZE as u64);
        m.eenter(0, eid, base).unwrap();
        m.write(0, va, b"TOP-SECRET-DATA!").unwrap();
        m.eexit(0).unwrap();
        let pte = m.os_lookup(ProcessId(0), va.vpn()).unwrap();
        let probe = m.physical_probe(pte.ppn);
        assert!(
            !probe.windows(16).any(|w| w == b"TOP-SECRET-DATA!"),
            "plaintext must not appear on the DRAM bus"
        );
    }

    #[test]
    fn physical_tamper_detected_on_next_access() {
        let (mut m, eid, base) = built_enclave();
        let va = base.add(PAGE_SIZE as u64);
        let pte = m.os_lookup(ProcessId(0), va.vpn()).unwrap();
        m.physical_tamper(pte.ppn.base(), &[0x66; 8]);
        m.eenter(0, eid, base).unwrap();
        let err = m.read(0, va, 8).unwrap_err();
        assert!(err.is_fault(FaultKind::IntegrityViolation));
    }

    #[test]
    fn os_remap_attack_defeated() {
        // OS points the victim's VA at another enclave's EPC page.
        let (mut m, eid, base) = built_enclave();
        let other_base = VirtAddr(0x80_0000);
        let other = m
            .ecreate(ProcessId(0), VirtRange::new(other_base, PAGE_SIZE as u64))
            .unwrap();
        m.eadd(
            other,
            other_base,
            PageType::Reg,
            PageSource::Image(b"victim secret".to_vec()),
            PagePerms::RW,
        )
        .unwrap();
        let victim_pte = m.os_lookup(ProcessId(0), other_base.vpn()).unwrap();
        // Attack: remap a page of `eid`'s ELRANGE onto the other enclave's
        // EPC frame.
        let target = base.add(PAGE_SIZE as u64);
        m.os_map(ProcessId(0), target.vpn(), victim_pte.ppn, PagePerms::RW);
        m.flush_all_tlbs();
        m.eenter(0, eid, base).unwrap();
        let err = m.read(0, target, 8).unwrap_err();
        assert!(err.is_fault(FaultKind::EpcmEnclaveMismatch));
        m.audit_tlbs().unwrap();
    }

    #[test]
    fn elrange_overlap_rejected() {
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        m.ecreate(ProcessId(0), VirtRange::new(base, 4 * PAGE_SIZE as u64))
            .unwrap();
        let err = m
            .ecreate(
                ProcessId(0),
                VirtRange::new(base.add(PAGE_SIZE as u64), PAGE_SIZE as u64),
            )
            .unwrap_err();
        assert!(matches!(err, SgxError::RangeConflict(_)));
    }

    #[test]
    fn opaque_pages_do_not_materialize() {
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 8 * PAGE_SIZE as u64))
            .unwrap();
        let resident_before = m.resident_pages();
        for i in 0..8u64 {
            m.eadd(
                eid,
                base.add(i * PAGE_SIZE as u64),
                PageType::Reg,
                PageSource::Opaque { seed: i },
                PagePerms::RX,
            )
            .unwrap();
            m.eextend(eid, base.add(i * PAGE_SIZE as u64)).unwrap();
        }
        assert_eq!(m.resident_pages(), resident_before);
    }

    #[test]
    fn opaque_seed_changes_measurement() {
        let a = PageSource::Opaque { seed: 1 }.content_digest();
        let b = PageSource::Opaque { seed: 2 }.content_digest();
        assert_ne!(a, b);
    }

    #[test]
    fn eaug_eaccept_lifecycle() {
        // Reserve one unadded page inside ELRANGE for dynamic growth.
        let mut m = machine();
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 3 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        m.eadd(
            eid,
            base.add(PAGE_SIZE as u64),
            PageType::Reg,
            PageSource::Zeros,
            PagePerms::RW,
        )
        .unwrap();
        m.eextend(eid, base.add(PAGE_SIZE as u64)).unwrap();
        let dynamic = base.add(2 * PAGE_SIZE as u64);
        // EAUG before EINIT is rejected.
        assert!(matches!(
            m.eaug(eid, dynamic),
            Err(SgxError::BadEnclaveState(_))
        ));
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(b"t", measured)).unwrap();
        // OS grows the enclave.
        m.eaug(eid, dynamic).unwrap();
        // Pending page is inaccessible even to the owner...
        m.eenter(0, eid, base).unwrap();
        let err = m.read(0, dynamic, 4).unwrap_err();
        assert!(err.is_fault(FaultKind::NotAccepted));
        // ...until the enclave accepts it.
        m.eaccept(0, dynamic).unwrap();
        m.write(0, dynamic, b"grown").unwrap();
        assert_eq!(m.read(0, dynamic, 5).unwrap(), b"grown");
        m.eexit(0).unwrap();
        // The untrusted world still sees abort-page ones.
        assert_eq!(m.read(0, dynamic, 4).unwrap(), vec![0xFF; 4]);
        m.audit_tlbs().unwrap();
        m.audit_epcm().unwrap();
    }

    #[test]
    fn eaccept_rejects_foreign_and_double_accept() {
        let (mut m, eid, base) = built_enclave();
        // Double-accept / non-pending page.
        m.eenter(0, eid, base).unwrap();
        let err = m.eaccept(0, base.add(PAGE_SIZE as u64)).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
        m.eexit(0).unwrap();
        // A different enclave cannot accept the victim's pending page.
        let other_base = VirtAddr(0x80_0000);
        let other = m
            .ecreate(
                ProcessId(0),
                VirtRange::new(other_base, 2 * PAGE_SIZE as u64),
            )
            .unwrap();
        m.add_tcs(other, other_base, other_base.add(PAGE_SIZE as u64))
            .unwrap();
        let measured = m.enclaves().get(other).unwrap().measurement.finalize();
        m.einit(other, &SigStruct::new(b"o", measured)).unwrap();
        let dynamic = other_base.add(PAGE_SIZE as u64);
        m.eaug(other, dynamic).unwrap();
        m.eenter(0, eid, base).unwrap();
        let err = m.eaccept(0, dynamic).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)));
    }

    #[test]
    fn eaug_outside_elrange_rejected() {
        let (mut m, eid, _base) = built_enclave();
        let err = m.eaug(eid, VirtAddr(0x90_0000)).unwrap_err();
        assert!(matches!(err, SgxError::RangeConflict(_)));
    }

    #[test]
    fn epc_exhaustion_reported() {
        let mut cfg = HwConfig::small();
        cfg.prm_pages = 2;
        cfg.dram_pages = 1024;
        let mut m = Machine::new(cfg);
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 4 * PAGE_SIZE as u64))
            .unwrap();
        m.eadd(eid, base, PageType::Reg, PageSource::Zeros, PagePerms::RW)
            .unwrap();
        let err = m
            .eadd(
                eid,
                base.add(PAGE_SIZE as u64),
                PageType::Reg,
                PageSource::Zeros,
                PagePerms::RW,
            )
            .unwrap_err();
        assert_eq!(err, SgxError::EpcFull);
    }
}
