//! Error types for the simulator.

use crate::addr::VirtAddr;
use crate::enclave::EnclaveId;
use std::fmt;

/// The reason an access or instruction faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Page-table walk found no mapping for the virtual page.
    NotMapped,
    /// EPCM says the physical page belongs to a different enclave.
    EpcmEnclaveMismatch,
    /// EPCM virtual-address field does not match the accessed address
    /// (an OS remapping attack).
    EpcmAddressMismatch,
    /// Access inside ELRANGE resolved to a non-EPC physical page
    /// (the backing page was evicted).
    EnclavePageSwappedOut,
    /// Write attempted through a read-only mapping.
    WriteToReadOnly,
    /// Instruction fetch attempted from a non-executable mapping.
    ExecFromNonExec,
    /// The MEE integrity tree rejected the cache line (physical tamper).
    IntegrityViolation,
    /// SGX2: access to an EAUGed page before the enclave ran EACCEPT.
    NotAccepted,
    /// Access to the protected region from an unauthorized context was
    /// silently aborted (SGX "abort page" semantics).
    AbortPage,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::NotMapped => "page not mapped",
            FaultKind::EpcmEnclaveMismatch => "EPCM enclave id mismatch",
            FaultKind::EpcmAddressMismatch => "EPCM virtual address mismatch",
            FaultKind::EnclavePageSwappedOut => "enclave page swapped out",
            FaultKind::WriteToReadOnly => "write to read-only page",
            FaultKind::ExecFromNonExec => "execute from non-executable page",
            FaultKind::IntegrityViolation => "MEE integrity violation",
            FaultKind::NotAccepted => "dynamic page not yet EACCEPTed",
            FaultKind::AbortPage => "access aborted (abort page semantics)",
        };
        f.write_str(s)
    }
}

/// Errors returned by the simulated architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// A memory access faulted.
    Fault {
        /// Fault classification.
        kind: FaultKind,
        /// Faulting virtual address.
        addr: VirtAddr,
    },
    /// General protection fault raised by an enclave instruction
    /// (invalid TCS, wrong mode, busy TCS, ...). The string says why.
    GeneralProtection(String),
    /// The EPC is out of free pages.
    EpcFull,
    /// An id did not name a live enclave.
    NoSuchEnclave(EnclaveId),
    /// Operation requires the enclave to be (un)initialized and it is not.
    BadEnclaveState(String),
    /// EINIT measurement/signature validation failed.
    InitVerification(String),
    /// EWB/ELDU sealing or replay check failed.
    Paging(String),
    /// The virtual range conflicts with an existing enclave or mapping.
    RangeConflict(String),
    /// The enclave crashed (or was crash-injected) and is poisoned:
    /// every EENTER/NEENTER faults until the enclave is torn down with
    /// EREMOVE and rebuilt.
    EnclavePoisoned(EnclaveId),
    /// Forward progress stopped: a bounded wait (drain loop, switchless
    /// reply queue) exceeded its iteration budget. The string says where.
    Stalled(String),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::Fault { kind, addr } => write!(f, "fault at {addr}: {kind}"),
            SgxError::GeneralProtection(s) => write!(f, "general protection fault: {s}"),
            SgxError::EpcFull => write!(f, "enclave page cache exhausted"),
            SgxError::NoSuchEnclave(id) => write!(f, "no such enclave: {id:?}"),
            SgxError::BadEnclaveState(s) => write!(f, "bad enclave state: {s}"),
            SgxError::InitVerification(s) => write!(f, "EINIT verification failed: {s}"),
            SgxError::Paging(s) => write!(f, "EPC paging error: {s}"),
            SgxError::RangeConflict(s) => write!(f, "address range conflict: {s}"),
            SgxError::EnclavePoisoned(id) => {
                write!(
                    f,
                    "enclave {id:?} is poisoned (crashed; rebuild with EREMOVE)"
                )
            }
            SgxError::Stalled(s) => write!(f, "stalled: {s}"),
        }
    }
}

impl std::error::Error for SgxError {}

/// Result alias used throughout the simulator.
pub type Result<T> = std::result::Result<T, SgxError>;

impl SgxError {
    /// True if this error is a memory fault of the given kind.
    pub fn is_fault(&self, kind: FaultKind) -> bool {
        matches!(self, SgxError::Fault { kind: k, .. } if *k == kind)
    }
}
