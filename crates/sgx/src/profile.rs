//! Latency profiling: log-bucketed histograms of span and event durations.
//!
//! [`crate::trace::Stats`] answers *how many* transitions happened and
//! [`crate::metrics::CycleBreakdown`] answers *where the cycles went in
//! total*; this module answers *how the latency was distributed*. A
//! [`Profile`] holds one [`Histogram`] per ([`ProfileEvent`],
//! [`HierLevel`]) pair and is maintained **always-on** by the machine —
//! recording a value is two array indexings and a handful of integer adds,
//! cheap enough to leave enabled even when event tracing is off.
//!
//! Recording sites (all inside `ne-sgx`, so the identities checked by
//! [`crate::metrics::MachineMetrics::check`] hold by construction):
//!
//! - boundary spans (ecall/ocall/n_ecall/n_ocall/switchless) record their
//!   close-to-open cycle duration in `Machine::span_end`;
//! - TLB misses record walk + validation cycles in `Machine::translate`;
//! - MEE line crypto records per-access crypto cycles;
//! - AEX/ERESUME and EWB/ELDU record their architectural costs.
//!
//! One event, [`ProfileEvent::Request`], is recorded from *outside*
//! `ne-sgx` (by the `ne-host` serving layer, through
//! `Machine::profile_record`) and deliberately has no counter identity.
//!
//! Histograms use 64 power-of-two buckets (bucket *i* holds values whose
//! `ilog2` is *i*), HDR-style: constant-size, mergeable by bucket-wise
//! addition, with percentile error bounded by the bucket width. Exact
//! `count`/`sum`/`min`/`max` ride along so summaries stay honest at the
//! tails.

use crate::trace::SpanKind;

/// Number of power-of-two buckets; covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram (cycles).
///
/// Mergeable ([`Histogram::merge`] is associative and commutative) and
/// constant-size. Percentiles are approximate — a reported quantile is the
/// inclusive upper bound of the bucket containing that rank, clamped to
/// the observed `[min, max]` — which guarantees
/// `min ≤ p50 ≤ p90 ≤ p99 ≤ max` for any recorded population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of a value: `ilog2(value)`, with 0 sharing bucket 0.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        value.ilog2() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (values with `ilog2 == i`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Sum of all bucket counts — equals [`Histogram::count`] by
    /// construction; the metrics checker asserts it anyway to catch
    /// hand-edited snapshots.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The `q`-quantile (`q` in `[0, 1]`), as the inclusive upper bound of
    /// the bucket holding that rank, clamped to `[min, max]`.
    ///
    /// Edge behavior (exact, not bucket-approximated):
    ///
    /// * an **empty** histogram returns 0 for every `q`;
    /// * `q <= 0.0` returns [`Histogram::min`] exactly (the bucket upper
    ///   bound could overshoot the smallest sample);
    /// * `q >= 1.0` returns [`Histogram::max`] exactly.
    ///
    /// Out-of-range `q` is clamped, so `percentile(-1.0) == min()` and
    /// `percentile(2.0) == max()`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Accumulates `other` into `self` (bucket-wise; associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fixed-quantile summary for exports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            buckets: BUCKETS,
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// The fixed quantiles exported for one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of log2 buckets the source histogram used ([`BUCKETS`]).
    /// Carried in the summary so downstream parsers and schema consumers
    /// need not hardcode the histogram geometry.
    pub buckets: usize,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// What a profiled latency sample measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileEvent {
    /// Full ecall round trip (EENTER…EEXIT span).
    Ecall,
    /// Full ocall round trip (EEXIT…EENTER span).
    Ocall,
    /// Full n_ecall round trip (NEENTER…NEEXIT span).
    NEcall,
    /// Full n_ocall round trip (NEEXIT…NEENTER span).
    NOcall,
    /// Switchless ocall served through the queue (no transition).
    SwitchlessOcall,
    /// Asynchronous exit cost.
    Aex,
    /// ERESUME re-entry cost.
    Eresume,
    /// TLB miss: page walk plus validation steps.
    TlbMiss,
    /// MEE line encryption/decryption incurred by one data access.
    MeeCrypto,
    /// One EWB or ELDU page operation.
    Paging,
    /// End-to-end request latency as observed by a serving layer (arrival
    /// to completion). Recorded by hosting code outside `ne-sgx` via
    /// [`crate::machine::Machine::profile_record`]; like [`MeeCrypto`]
    /// (whose samples have no dedicated `Stats` counter either) it carries
    /// no counter identity in the metrics checker.
    ///
    /// [`MeeCrypto`]: ProfileEvent::MeeCrypto
    Request,
}

impl ProfileEvent {
    /// Every event, in export order.
    pub const ALL: [ProfileEvent; 11] = [
        ProfileEvent::Ecall,
        ProfileEvent::Ocall,
        ProfileEvent::NEcall,
        ProfileEvent::NOcall,
        ProfileEvent::SwitchlessOcall,
        ProfileEvent::Aex,
        ProfileEvent::Eresume,
        ProfileEvent::TlbMiss,
        ProfileEvent::MeeCrypto,
        ProfileEvent::Paging,
        ProfileEvent::Request,
    ];

    /// The call-boundary events — those recorded at span close. Their
    /// combined histogram count equals `Stats::span_closes`.
    pub const BOUNDARY: [ProfileEvent; 5] = [
        ProfileEvent::Ecall,
        ProfileEvent::Ocall,
        ProfileEvent::NEcall,
        ProfileEvent::NOcall,
        ProfileEvent::SwitchlessOcall,
    ];

    /// Stable snake_case name (used as JSON/CSV keys).
    pub fn name(self) -> &'static str {
        match self {
            ProfileEvent::Ecall => "ecall",
            ProfileEvent::Ocall => "ocall",
            ProfileEvent::NEcall => "n_ecall",
            ProfileEvent::NOcall => "n_ocall",
            ProfileEvent::SwitchlessOcall => "switchless_ocall",
            ProfileEvent::Aex => "aex",
            ProfileEvent::Eresume => "eresume",
            ProfileEvent::TlbMiss => "tlb_miss",
            ProfileEvent::MeeCrypto => "mee_crypto",
            ProfileEvent::Paging => "paging",
            ProfileEvent::Request => "request",
        }
    }

    /// The profile event a closing span of `kind` records into.
    pub fn from_span(kind: SpanKind) -> ProfileEvent {
        match kind {
            SpanKind::Ecall => ProfileEvent::Ecall,
            SpanKind::Ocall => ProfileEvent::Ocall,
            SpanKind::NEcall => ProfileEvent::NEcall,
            SpanKind::NOcall => ProfileEvent::NOcall,
            SpanKind::SwitchlessOcall => ProfileEvent::SwitchlessOcall,
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|e| *e == self).unwrap()
    }
}

/// Position in the enclave hierarchy of the context a sample belongs to.
///
/// For boundary spans this is the **caller's** level when the span opened
/// (an `ocall` from an inner enclave is keyed `Inner`); for
/// microarchitectural events it is the level of the context executing (or,
/// for paging, owning) the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierLevel {
    /// Ordinary (non-enclave) execution.
    Untrusted,
    /// A top-level enclave (no outer association).
    Outer,
    /// An inner enclave nested inside at least one outer.
    Inner,
}

impl HierLevel {
    /// Every level, in export order.
    pub const ALL: [HierLevel; 3] = [HierLevel::Untrusted, HierLevel::Outer, HierLevel::Inner];

    /// Stable lowercase name (used as JSON/CSV keys and Perfetto process
    /// names).
    pub fn name(self) -> &'static str {
        match self {
            HierLevel::Untrusted => "untrusted",
            HierLevel::Outer => "outer",
            HierLevel::Inner => "inner",
        }
    }

    /// Stable small integer (used as the Perfetto `pid`).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|l| *l == self).unwrap()
    }
}

/// Always-on latency histograms keyed by ([`ProfileEvent`], [`HierLevel`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    hists: Vec<Histogram>,
}

impl Default for Profile {
    fn default() -> Profile {
        Profile {
            hists: vec![Histogram::default(); ProfileEvent::ALL.len() * HierLevel::ALL.len()],
        }
    }
}

impl Profile {
    /// An empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    fn slot(event: ProfileEvent, level: HierLevel) -> usize {
        event.index() * HierLevel::ALL.len() + level.index()
    }

    /// Records one sample.
    pub fn record(&mut self, event: ProfileEvent, level: HierLevel, cycles: u64) {
        self.hists[Self::slot(event, level)].record(cycles);
    }

    /// The histogram for one (event, level) pair.
    pub fn hist(&self, event: ProfileEvent, level: HierLevel) -> &Histogram {
        &self.hists[Self::slot(event, level)]
    }

    /// The histogram for `event` merged across all hierarchy levels.
    pub fn merged(&self, event: ProfileEvent) -> Histogram {
        let mut out = Histogram::new();
        for level in HierLevel::ALL {
            out.merge(self.hist(event, level));
        }
        out
    }

    /// Non-empty `(event, level, histogram)` entries in export order.
    pub fn entries(&self) -> impl Iterator<Item = (ProfileEvent, HierLevel, &Histogram)> {
        ProfileEvent::ALL.into_iter().flat_map(move |event| {
            HierLevel::ALL.into_iter().filter_map(move |level| {
                let h = self.hist(event, level);
                (!h.is_empty()).then_some((event, level, h))
            })
        })
    }

    /// Total samples recorded across the boundary events (the span-close
    /// sites) — equals `Stats::span_closes` by construction.
    pub fn boundary_count(&self) -> u64 {
        ProfileEvent::BOUNDARY
            .into_iter()
            .map(|e| self.merged(e).count())
            .sum()
    }

    /// Total samples recorded for `event` across levels.
    pub fn event_count(&self, event: ProfileEvent) -> u64 {
        self.merged(event).count()
    }

    /// Clears every histogram.
    pub fn clear(&mut self) {
        for h in &mut self.hists {
            *h = Histogram::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn bucket_indexing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn count_and_bucket_total_agree() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 17, 1000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_total(), 7);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 10);
        }
        let (p50, p90, p99) = (h.percentile(0.5), h.percentile(0.9), h.percentile(0.99));
        assert!(h.min() <= p50, "{} > {p50}", h.min());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // Single-value population: every quantile is that value.
        let mut one = Histogram::new();
        one.record(777);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.percentile(q), 777);
        }
    }

    #[test]
    fn percentile_edges_are_exact() {
        // Empty: every quantile (including the edges) is 0.
        let empty = Histogram::new();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0] {
            assert_eq!(empty.percentile(q), 0);
        }
        // Two values sharing one log2 bucket: the bucket upper bound
        // (1023 for bucket 9) would overshoot both samples, but the edges
        // must return the exact extremes.
        let mut h = Histogram::new();
        h.record(513);
        h.record(700);
        assert_eq!(h.percentile(0.0), 513, "q=0 is the exact minimum");
        assert_eq!(h.percentile(1.0), 700, "q=1 is the exact maximum");
        // Out-of-range q clamps to the edges.
        assert_eq!(h.percentile(-0.5), 513);
        assert_eq!(h.percentile(1.5), 700);
        // Interior quantiles stay inside [min, max].
        let p50 = h.percentile(0.5);
        assert!((513..=700).contains(&p50));
    }

    #[test]
    fn summary_carries_the_bucket_count() {
        assert_eq!(Histogram::new().summary().buckets, BUCKETS);
        let mut h = Histogram::new();
        h.record(42);
        let s = h.summary();
        assert_eq!(s.buckets, BUCKETS);
        assert_eq!((s.p50, s.min, s.max), (42, 42, 42));
    }

    #[test]
    fn merge_is_associative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 2, 3]), mk(&[100, 200]), mk(&[0, u64::MAX]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.count(), 7);
    }

    #[test]
    fn profile_records_and_merges_across_levels() {
        let mut p = Profile::new();
        p.record(ProfileEvent::Ecall, HierLevel::Untrusted, 100);
        p.record(ProfileEvent::Ecall, HierLevel::Untrusted, 200);
        p.record(ProfileEvent::NOcall, HierLevel::Inner, 50);
        assert_eq!(p.hist(ProfileEvent::Ecall, HierLevel::Untrusted).count(), 2);
        assert_eq!(p.merged(ProfileEvent::Ecall).count(), 2);
        assert_eq!(p.boundary_count(), 3);
        assert_eq!(p.entries().count(), 2);
        p.clear();
        assert_eq!(p.boundary_count(), 0);
    }

    #[test]
    fn summary_matches_histogram() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert_eq!(s.p50, h.percentile(0.5));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ProfileEvent::NEcall.name(), "n_ecall");
        assert_eq!(
            ProfileEvent::from_span(SpanKind::SwitchlessOcall).name(),
            "switchless_ocall"
        );
        assert_eq!(HierLevel::Inner.name(), "inner");
        assert_eq!(HierLevel::Untrusted.index(), 0);
    }
}
