//! TLB-miss access validation.
//!
//! This module is the heart of the reproduction. SGX performs its access
//! control during TLB-miss handling (paper Fig. 2); the nested-enclave
//! proposal changes *only this flow* (paper Fig. 6). The machine therefore
//! exposes validation as a swappable [`TlbValidator`] — installing a
//! different validator is the software analogue of the paper's microcode
//! patch (§ IV-F).

use crate::addr::Vpn;
use crate::enclave::{EnclaveId, EnclaveTable};
use crate::epcm::{Epcm, PageType};
use crate::error::FaultKind;
use crate::page_table::Pte;
use crate::tlb::TlbEntry;
use std::fmt;

/// What the executing core looks like to the validator.
#[derive(Debug, Clone, Copy)]
pub struct CoreView {
    /// The enclave the core is executing, if in enclave mode.
    pub enclave: Option<EnclaveId>,
}

/// Everything the validation hardware can see during a TLB miss.
pub struct ValidationCtx<'a> {
    /// Executing core state.
    pub core: CoreView,
    /// Virtual page being translated.
    pub vpn: Vpn,
    /// The page-table entry the (untrusted) OS provided.
    pub pte: Pte,
    /// The EPCM.
    pub epcm: &'a Epcm,
    /// Live enclaves (for ELRANGE and, in the nested extension, the
    /// inner→outer chain).
    pub enclaves: &'a EnclaveTable,
    /// Predicate: is a physical page inside PRM?
    pub in_prm: &'a dyn Fn(u64) -> bool,
}

impl fmt::Debug for ValidationCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValidationCtx")
            .field("core", &self.core)
            .field("vpn", &self.vpn)
            .field("pte", &self.pte)
            .finish_non_exhaustive()
    }
}

/// Decision of the validation flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Translation is valid: insert into the TLB.
    Insert(TlbEntry),
    /// Raise a fault to the OS.
    Fault(FaultKind),
    /// Abort-page semantics: reads return all-ones, writes are dropped,
    /// nothing enters the TLB (unauthorized PRM access from outside).
    Abort,
}

/// Result of a validation: the decision plus the number of flow steps
/// taken, which the machine converts to cycles. Longer chains (nested
/// traversal) cost more, reproducing § IV-A's observation that deeper
/// nesting "only increases the validation time".
#[derive(Debug, Clone, Copy)]
pub struct Validation {
    /// The decision.
    pub outcome: Outcome,
    /// Flow steps taken.
    pub steps: u32,
}

/// The swappable TLB-miss validation logic.
pub trait TlbValidator: fmt::Debug + Send {
    /// Validates one candidate translation.
    fn validate(&self, cx: &ValidationCtx<'_>) -> Validation;

    /// The set of enclaves whose running threads must be interrupted when
    /// an EPC page of `eid` is evicted. The baseline returns just `eid`;
    /// the nested validator adds every (transitive) inner enclave, because
    /// their TLBs may cache translations into the outer enclave (§ IV-E).
    fn eviction_tracking_set(&self, eid: EnclaveId, enclaves: &EnclaveTable) -> Vec<EnclaveId> {
        let _ = enclaves;
        vec![eid]
    }

    /// Name for diagnostics.
    fn name(&self) -> &'static str;
}

/// The baseline SGX validation flow of paper Fig. 2.
#[derive(Debug, Default, Clone, Copy)]
pub struct SgxValidator;

impl SgxValidator {
    /// Creates the baseline validator.
    pub fn new() -> SgxValidator {
        SgxValidator
    }
}

/// Shared tail of the enclave-mode PRM check: verifies the EPCM binding of
/// `ppn` against `expected_eid` and the accessed `vpn`, returning the entry
/// permissions on success. Used by both the baseline check (against the
/// current enclave) and the nested extension (against outer enclaves).
pub fn check_epcm_binding(
    cx: &ValidationCtx<'_>,
    expected_eid: EnclaveId,
) -> Result<crate::epcm::PagePerms, FaultKind> {
    let entry = match cx.epcm.get(cx.pte.ppn) {
        Some(e) => e,
        // PRM page without a valid EPCM entry (e.g. freed): treat as a
        // mismatch — nothing may map it.
        None => return Err(FaultKind::EpcmEnclaveMismatch),
    };
    if entry.blocked {
        // Page is mid-eviction; translations must not be recreated.
        return Err(FaultKind::EnclavePageSwappedOut);
    }
    if entry.pending {
        // SGX2: EAUGed but not yet EACCEPTed by the enclave.
        return Err(FaultKind::NotAccepted);
    }
    if entry.eid != expected_eid {
        return Err(FaultKind::EpcmEnclaveMismatch);
    }
    // SECS/TCS pages are never software-accessible.
    if entry.page_type != PageType::Reg {
        return Err(FaultKind::EpcmEnclaveMismatch);
    }
    if entry.vpn != cx.vpn {
        return Err(FaultKind::EpcmAddressMismatch);
    }
    Ok(entry.perms)
}

impl TlbValidator for SgxValidator {
    fn validate(&self, cx: &ValidationCtx<'_>) -> Validation {
        let in_prm = (cx.in_prm)(cx.pte.ppn.0);
        match cx.core.enclave {
            // (A) Non-enclave mode.
            None => {
                if in_prm {
                    Validation {
                        outcome: Outcome::Abort,
                        steps: 2,
                    }
                } else {
                    Validation {
                        outcome: Outcome::Insert(TlbEntry {
                            ppn: cx.pte.ppn,
                            perms: cx.pte.perms,
                        }),
                        steps: 2,
                    }
                }
            }
            Some(eid) => {
                let secs = cx
                    .enclaves
                    .get(eid)
                    .expect("core in enclave mode references a live enclave");
                if in_prm {
                    // (B) Enclave mode, physical page inside PRM.
                    match check_epcm_binding(cx, eid) {
                        Ok(epcm_perms) => Validation {
                            outcome: Outcome::Insert(TlbEntry {
                                ppn: cx.pte.ppn,
                                perms: cx.pte.perms.intersect(epcm_perms),
                            }),
                            steps: 4,
                        },
                        Err(kind) => Validation {
                            outcome: Outcome::Fault(kind),
                            steps: 4,
                        },
                    }
                } else {
                    // (C) Enclave mode, physical page outside PRM.
                    if secs.elrange.contains_page(cx.vpn) {
                        // ELRANGE page backed by non-EPC memory: swapped out.
                        Validation {
                            outcome: Outcome::Fault(FaultKind::EnclavePageSwappedOut),
                            steps: 3,
                        }
                    } else {
                        // Untrusted memory accessed from an enclave: legal,
                        // but never executable.
                        let mut perms = cx.pte.perms;
                        perms.x = false;
                        Validation {
                            outcome: Outcome::Insert(TlbEntry {
                                ppn: cx.pte.ppn,
                                perms,
                            }),
                            steps: 3,
                        }
                    }
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "sgx-baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Ppn, VirtAddr, VirtRange, Vpn};
    use crate::enclave::ProcessId;
    use crate::epcm::{EpcmEntry, PagePerms};

    struct Fixture {
        epcm: Epcm,
        enclaves: EnclaveTable,
        eid: EnclaveId,
    }

    const PRM_START: u64 = 1000;

    fn in_prm(ppn: u64) -> bool {
        ppn >= PRM_START
    }

    fn fixture() -> Fixture {
        let mut enclaves = EnclaveTable::new();
        // ELRANGE: vpns 16..32
        let eid = enclaves.create(ProcessId(0), VirtRange::new(VirtAddr(16 * 4096), 16 * 4096));
        let mut epcm = Epcm::new();
        epcm.insert(
            Ppn(PRM_START + 1),
            EpcmEntry {
                eid,
                vpn: Vpn(16),
                page_type: PageType::Reg,
                perms: PagePerms::RW,
                blocked: false,
                pending: false,
            },
        );
        Fixture {
            epcm,
            enclaves,
            eid,
        }
    }

    fn ctx<'a>(
        f: &'a Fixture,
        enclave: Option<EnclaveId>,
        vpn: u64,
        ppn: u64,
        perms: PagePerms,
    ) -> ValidationCtx<'a> {
        ValidationCtx {
            core: CoreView { enclave },
            vpn: Vpn(vpn),
            pte: Pte {
                ppn: Ppn(ppn),
                perms,
            },
            epcm: &f.epcm,
            enclaves: &f.enclaves,
            in_prm: &in_prm,
        }
    }

    #[test]
    fn non_enclave_to_normal_memory_inserts() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, None, 5, 7, PagePerms::RWX));
        match v.outcome {
            Outcome::Insert(e) => assert_eq!(e.ppn, Ppn(7)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_enclave_to_prm_aborts() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, None, 5, PRM_START + 1, PagePerms::RWX));
        assert_eq!(v.outcome, Outcome::Abort);
    }

    #[test]
    fn owner_enclave_access_inserts_with_intersected_perms() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 16, PRM_START + 1, PagePerms::RWX));
        match v.outcome {
            Outcome::Insert(e) => {
                assert!(e.perms.r && e.perms.w);
                assert!(!e.perms.x, "EPCM RW ∩ PTE RWX must drop execute");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_owner_enclave_faults() {
        let mut f = fixture();
        let other = f
            .enclaves
            .create(ProcessId(0), VirtRange::new(VirtAddr(64 * 4096), 4096));
        let v = SgxValidator.validate(&ctx(&f, Some(other), 16, PRM_START + 1, PagePerms::RW));
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmEnclaveMismatch));
    }

    #[test]
    fn os_remap_detected_by_vpn_check() {
        // OS maps a different virtual page onto the victim's EPC page.
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 17, PRM_START + 1, PagePerms::RW));
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmAddressMismatch));
    }

    #[test]
    fn elrange_page_backed_by_normal_memory_is_swapped_out_fault() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 17, 7, PagePerms::RW));
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EnclavePageSwappedOut));
    }

    #[test]
    fn untrusted_memory_from_enclave_loses_exec() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 200, 7, PagePerms::RWX));
        match v.outcome {
            Outcome::Insert(e) => assert!(!e.perms.x),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn blocked_page_faults_as_swapped_out() {
        let mut f = fixture();
        f.epcm.get_mut(Ppn(PRM_START + 1)).unwrap().blocked = true;
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 16, PRM_START + 1, PagePerms::RW));
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EnclavePageSwappedOut));
    }

    #[test]
    fn prm_page_without_epcm_entry_faults() {
        let f = fixture();
        let v = SgxValidator.validate(&ctx(&f, Some(f.eid), 16, PRM_START + 2, PagePerms::RW));
        assert_eq!(v.outcome, Outcome::Fault(FaultKind::EpcmEnclaveMismatch));
    }

    #[test]
    fn baseline_tracking_set_is_self() {
        let f = fixture();
        assert_eq!(
            SgxValidator.eviction_tracking_set(f.eid, &f.enclaves),
            vec![f.eid]
        );
    }
}
