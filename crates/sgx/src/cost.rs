//! Cycle-cost model.
//!
//! Every architectural action charges simulated cycles to the executing
//! core. The constants are calibrated so the experiment harness reproduces
//! the paper's Table II latencies and the relative shapes of Figs. 7–11;
//! they are not microarchitecturally exact.
//!
//! Two profiles exist, mirroring the paper's methodology (§ V):
//!
//! * [`CostProfile::hw_sgx`] — real-hardware SGX transition costs
//!   (Table II row 1: ecall 3.45 µs, ocall 3.13 µs at 3.6 GHz).
//! * [`CostProfile::emulated`] — SDK simulation-mode costs (Table II rows
//!   2–3), which the paper uses for all comparative runs because nested
//!   enclave only exists in emulation.

/// Simulated clock frequency used to convert cycles to wall time.
pub const DEFAULT_CLOCK_GHZ: f64 = 3.6;

/// Cycle costs of architectural events.
#[derive(Debug, Clone, PartialEq)]
pub struct CostProfile {
    /// Human-readable profile name (shows up in experiment output).
    pub name: &'static str,
    /// Clock frequency in GHz, for cycle→time conversion.
    pub clock_ghz: f64,
    /// TLB hit during translation.
    pub tlb_hit: u64,
    /// Page-table walk on a TLB miss (before validation).
    pub tlb_miss_walk: u64,
    /// One step of the TLB-miss access-validation flow (Fig. 2 / Fig. 6).
    /// Nested validation takes more steps, so inner-enclave accesses to the
    /// outer enclave cost slightly more — the overhead § IV-D describes.
    pub validation_step: u64,
    /// Full TLB flush of one core.
    pub tlb_flush: u64,
    /// Last-level-cache hit.
    pub llc_hit: u64,
    /// DRAM access on an LLC miss (non-PRM line).
    pub dram_access: u64,
    /// Extra MEE work to decrypt+verify one PRM cache line on an LLC miss.
    pub mee_decrypt_line: u64,
    /// Extra MEE work to encrypt+hash one dirty PRM line on writeback.
    pub mee_encrypt_line: u64,
    /// EENTER/ERESUME round half: untrusted → enclave (one ecall direction,
    /// including SDK marshalling; Table II).
    pub ecall: u64,
    /// EEXIT half: enclave → untrusted (one ocall direction; Table II).
    pub ocall: u64,
    /// NEENTER: outer → inner direct transition (Table II `n_ecall`).
    pub n_ecall: u64,
    /// NEEXIT: inner → outer direct transition (Table II `n_ocall`).
    pub n_ocall: u64,
    /// Asynchronous enclave exit (interrupt delivery + state save).
    pub aex: u64,
    /// Inter-processor interrupt for eviction thread tracking.
    pub ipi: u64,
    /// ECREATE.
    pub ecreate: u64,
    /// EADD of one page (copy + EPCM update).
    pub eadd_page: u64,
    /// EEXTEND measurement of one page (16 × 256-byte chunks).
    pub eextend_page: u64,
    /// EINIT finalization.
    pub einit: u64,
    /// SGX2 EAUG of one page (zeroing + EPCM update).
    pub eaug_page: u64,
    /// SGX2 EACCEPT of one page.
    pub eaccept_page: u64,
    /// EWB eviction of one page (sealing).
    pub ewb_page: u64,
    /// ELDU reload of one page (unsealing + verification).
    pub eldu_page: u64,
    /// Software AES-GCM: fixed per-call setup cost (key schedule, J0, tag).
    pub gcm_setup: u64,
    /// Software AES-GCM: marginal cycles per byte (one direction).
    pub gcm_per_byte: u64,
}

impl CostProfile {
    /// Real-hardware SGX cost profile (Table II row "HW SGX ecall/ocall").
    pub fn hw_sgx() -> CostProfile {
        CostProfile {
            name: "hw-sgx",
            clock_ghz: DEFAULT_CLOCK_GHZ,
            tlb_hit: 1,
            tlb_miss_walk: 60,
            validation_step: 6,
            tlb_flush: 200,
            llc_hit: 30,
            dram_access: 170,
            mee_decrypt_line: 130,
            mee_encrypt_line: 130,
            // 3.45 µs / 3.13 µs at 3.6 GHz.
            ecall: 12_420,
            ocall: 11_268,
            // Nested transitions do not exist on real hardware; keep them at
            // the projected direct-switch cost for completeness.
            n_ecall: 4_000,
            n_ocall: 3_820,
            aex: 2_000,
            ipi: 1_500,
            ecreate: 10_000,
            eadd_page: 4_500,
            eextend_page: 9_600,
            einit: 60_000,
            eaug_page: 4_000,
            eaccept_page: 2_000,
            ewb_page: 12_000,
            eldu_page: 12_000,
            gcm_setup: 2_200,
            gcm_per_byte: 3,
        }
    }

    /// SDK simulation-mode cost profile (Table II rows "Emulated ...").
    ///
    /// The paper notes emulated transitions *underestimate* real costs; all
    /// comparative experiments use this profile for both the monolithic
    /// baseline and nested enclave, exactly as § V describes.
    pub fn emulated() -> CostProfile {
        CostProfile {
            name: "emulated",
            // 1.25 µs / 1.14 µs and 1.11 µs / 1.06 µs at 3.6 GHz.
            ecall: 4_500,
            ocall: 4_104,
            n_ecall: 3_996,
            n_ocall: 3_816,
            ..CostProfile::hw_sgx()
        }
    }

    /// Converts a cycle count to microseconds at this profile's clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1_000.0)
    }

    /// Converts microseconds to cycles at this profile's clock.
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * self.clock_ghz * 1_000.0) as u64
    }
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile::emulated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_hw_latencies() {
        let p = CostProfile::hw_sgx();
        assert!((p.cycles_to_us(p.ecall) - 3.45).abs() < 0.01);
        assert!((p.cycles_to_us(p.ocall) - 3.13).abs() < 0.01);
    }

    #[test]
    fn table2_emulated_latencies() {
        let p = CostProfile::emulated();
        assert!((p.cycles_to_us(p.ecall) - 1.25).abs() < 0.01);
        assert!((p.cycles_to_us(p.ocall) - 1.14).abs() < 0.01);
        assert!((p.cycles_to_us(p.n_ecall) - 1.11).abs() < 0.01);
        assert!((p.cycles_to_us(p.n_ocall) - 1.06).abs() < 0.01);
    }

    #[test]
    fn emulated_underestimates_hardware() {
        // § V: "the emulated transitions ... tend to underestimate the
        // transition costs, compared to the real hardware measurement."
        let hw = CostProfile::hw_sgx();
        let em = CostProfile::emulated();
        assert!(em.ecall < hw.ecall);
        assert!(em.ocall < hw.ocall);
    }

    #[test]
    fn nested_cheaper_than_emulated_ecall() {
        let em = CostProfile::emulated();
        assert!(em.n_ecall < em.ecall);
        assert!(em.n_ocall < em.ocall);
    }

    #[test]
    fn cycle_time_roundtrip() {
        let p = CostProfile::emulated();
        assert_eq!(p.us_to_cycles(p.cycles_to_us(7200)), 7200);
    }
}
