//! Simulated physical memory (DRAM) with sparse backing.
//!
//! Pages are materialized lazily on first write, so experiments that load
//! hundreds of enclaves (Fig. 10) do not pay for gigabytes of host memory.
//!
//! The MEE view: architectural accesses see plaintext; [`Machine::physical_probe`](crate::machine::Machine::physical_probe)
//! models a physical attacker (bus snooping / cold boot) and returns the
//! *encrypted* image for PRM pages, mirroring how EPC pages "exist only as
//! encrypted text in the physical DRAM" (§ II-B).

use crate::addr::{Ppn, PAGE_SIZE};
use std::collections::HashMap;

/// Sparse DRAM.
#[derive(Debug)]
pub struct Dram {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    num_pages: u64,
}

impl Dram {
    /// Creates DRAM with `num_pages` physical pages, all zero.
    pub fn new(num_pages: u64) -> Dram {
        Dram {
            pages: HashMap::new(),
            num_pages,
        }
    }

    /// Number of physical pages.
    pub fn num_pages(&self) -> u64 {
        self.num_pages
    }

    /// Number of pages that have been materialized (for memory accounting).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads `buf.len()` bytes starting at byte `offset` within page `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the page boundary or `ppn` is out of
    /// range — callers (the machine) split accesses per page first.
    pub fn read(&self, ppn: Ppn, offset: usize, buf: &mut [u8]) {
        assert!(offset + buf.len() <= PAGE_SIZE, "access crosses page");
        assert!(ppn.0 < self.num_pages, "ppn out of range");
        match self.pages.get(&ppn.0) {
            Some(page) => buf.copy_from_slice(&page[offset..offset + buf.len()]),
            None => buf.fill(0),
        }
    }

    /// Writes `data` starting at byte `offset` within page `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the page boundary or `ppn` is out of
    /// range.
    pub fn write(&mut self, ppn: Ppn, offset: usize, data: &[u8]) {
        assert!(offset + data.len() <= PAGE_SIZE, "access crosses page");
        assert!(ppn.0 < self.num_pages, "ppn out of range");
        let page = self
            .pages
            .entry(ppn.0)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Copies out a whole page.
    pub fn read_page(&self, ppn: Ppn) -> [u8; PAGE_SIZE] {
        let mut out = [0u8; PAGE_SIZE];
        self.read(ppn, 0, &mut out);
        out
    }

    /// Overwrites a whole page.
    pub fn write_page(&mut self, ppn: Ppn, data: &[u8; PAGE_SIZE]) {
        self.write(ppn, 0, data);
    }

    /// Zeroes a page and drops its backing storage.
    pub fn clear_page(&mut self, ppn: Ppn) {
        self.pages.remove(&ppn.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_until_written() {
        let mut d = Dram::new(16);
        let mut buf = [1u8; 8];
        d.read(Ppn(3), 100, &mut buf);
        assert_eq!(buf, [0u8; 8]);
        assert_eq!(d.resident_pages(), 0);
        d.write(Ppn(3), 100, &[7, 8, 9]);
        assert_eq!(d.resident_pages(), 1);
        d.read(Ppn(3), 99, &mut buf);
        assert_eq!(&buf[..5], &[0, 7, 8, 9, 0]);
    }

    #[test]
    fn clear_releases_backing() {
        let mut d = Dram::new(4);
        d.write(Ppn(0), 0, &[1]);
        assert_eq!(d.resident_pages(), 1);
        d.clear_page(Ppn(0));
        assert_eq!(d.resident_pages(), 0);
        let mut b = [9u8; 1];
        d.read(Ppn(0), 0, &mut b);
        assert_eq!(b, [0]);
    }

    #[test]
    #[should_panic(expected = "crosses page")]
    fn cross_page_panics() {
        let d = Dram::new(4);
        let mut buf = [0u8; 8];
        d.read(Ppn(0), PAGE_SIZE - 4, &mut buf);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut d = Dram::new(4);
        d.write(Ppn(4), 0, &[0]);
    }
}
