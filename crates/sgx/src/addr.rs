//! Address newtypes for the simulated machine.
//!
//! Virtual and physical addresses are deliberately distinct types so the
//! access-validation logic (the part of SGX this whole repository is about)
//! can never confuse the two.

use std::fmt;

/// Size of a page in the simulated machine, matching x86.
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cache line, the granularity of the Memory Encryption Engine.
pub const LINE_SIZE: usize = 64;

/// A virtual address in some process address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical address in simulated DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ppn(pub u64);

impl VirtAddr {
    /// The virtual page containing this address.
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// True if this address is page aligned.
    pub fn is_page_aligned(self) -> bool {
        self.page_offset() == 0
    }

    /// Address advanced by `n` bytes.
    #[allow(clippy::should_implement_trait)] // pervasive call sites predate an `Add` impl
    pub fn add(self, n: u64) -> VirtAddr {
        VirtAddr(self.0 + n)
    }
}

impl PhysAddr {
    /// The physical page containing this address.
    pub fn ppn(self) -> Ppn {
        Ppn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    pub fn page_offset(self) -> usize {
        (self.0 & (PAGE_SIZE as u64 - 1)) as usize
    }

    /// The cache-line-aligned address containing this address.
    pub fn line(self) -> u64 {
        self.0 / LINE_SIZE as u64
    }
}

impl Vpn {
    /// First address of the page.
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }
}

impl Ppn {
    /// First address of the page.
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(v: u64) -> Self {
        VirtAddr(v)
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        PhysAddr(v)
    }
}

/// A contiguous, page-aligned virtual address range.
///
/// This is the representation of `ELRANGE` (Enclave Linear Address Range):
/// SGX requires an enclave's virtual range to be contiguous so that range
/// membership can be checked by simple hardware (§ II-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VirtRange {
    start: VirtAddr,
    len: u64,
}

impl VirtRange {
    /// Creates a range; `start` must be page aligned and `len` a non-zero
    /// multiple of the page size.
    ///
    /// # Panics
    ///
    /// Panics if the alignment requirements are violated.
    pub fn new(start: VirtAddr, len: u64) -> VirtRange {
        assert!(
            start.is_page_aligned(),
            "ELRANGE start must be page aligned"
        );
        assert!(
            len > 0 && len.is_multiple_of(PAGE_SIZE as u64),
            "ELRANGE length must be a non-zero multiple of the page size"
        );
        VirtRange { start, len }
    }

    /// First address of the range.
    pub fn start(self) -> VirtAddr {
        self.start
    }

    /// One past the last address of the range.
    pub fn end(self) -> VirtAddr {
        VirtAddr(self.start.0 + self.len)
    }

    /// Length in bytes.
    pub fn len(self) -> u64 {
        self.len
    }

    /// Always false: construction rejects zero-length ranges.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Length in pages.
    pub fn num_pages(self) -> u64 {
        self.len / PAGE_SIZE as u64
    }

    /// True if `addr` falls inside the range.
    pub fn contains(self, addr: VirtAddr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }

    /// True if the whole page `vpn` falls inside the range.
    pub fn contains_page(self, vpn: Vpn) -> bool {
        self.contains(vpn.base())
    }

    /// True if the ranges share any page.
    pub fn overlaps(self, other: VirtRange) -> bool {
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset() {
        let a = VirtAddr(0x12345);
        assert_eq!(a.vpn(), Vpn(0x12));
        assert_eq!(a.page_offset(), 0x345);
        assert!(!a.is_page_aligned());
        assert!(VirtAddr(0x12000).is_page_aligned());
    }

    #[test]
    fn range_contains() {
        let r = VirtRange::new(VirtAddr(0x10000), 0x2000);
        assert!(r.contains(VirtAddr(0x10000)));
        assert!(r.contains(VirtAddr(0x11fff)));
        assert!(!r.contains(VirtAddr(0x12000)));
        assert!(!r.contains(VirtAddr(0xffff)));
        assert_eq!(r.num_pages(), 2);
    }

    #[test]
    fn range_overlap() {
        let a = VirtRange::new(VirtAddr(0x10000), 0x2000);
        let b = VirtRange::new(VirtAddr(0x11000), 0x2000);
        let c = VirtRange::new(VirtAddr(0x12000), 0x1000);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn misaligned_range_panics() {
        VirtRange::new(VirtAddr(0x10001), 0x1000);
    }

    #[test]
    fn line_address() {
        assert_eq!(PhysAddr(0).line(), 0);
        assert_eq!(PhysAddr(63).line(), 0);
        assert_eq!(PhysAddr(64).line(), 1);
    }
}
