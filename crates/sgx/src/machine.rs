//! The simulated machine: cores, memory, and the translation path.
//!
//! Every architectural memory access funnels through [`Machine::translate`]:
//! TLB lookup → (on miss) page walk → [`crate::validate::TlbValidator`] →
//! TLB fill. This is the exact path SGX hardware uses for access control,
//! so the security properties of both baseline SGX and the nested-enclave
//! extension are enforced where the paper says they are.

use crate::addr::{PhysAddr, Ppn, VirtAddr, Vpn, LINE_SIZE, PAGE_SIZE};
use crate::cache::{CacheAccess, Llc};
use crate::config::HwConfig;
use crate::enclave::{EnclaveId, EnclaveTable, ProcessId, SavedContext, Tcs};
use crate::epcm::{Epcm, PagePerms};
use crate::error::{FaultKind, Result, SgxError};
use crate::fault::{ChaosInjection, ChaosStats, FaultPlan};
use crate::instr::EvictedPage;
use crate::mee::Mee;
use crate::mem::Dram;
use crate::metrics::{CycleBreakdown, CycleCategory, MachineMetrics};
use crate::page_table::PageTable;
use crate::profile::{HierLevel, Profile, ProfileEvent};
use crate::replay::{MacroRecorder, TlbOp};
use crate::tlb::Tlb;
use crate::trace::{Event, SpanKind, Stats, Trace};
use crate::validate::{CoreView, Outcome, SgxValidator, TlbValidator, ValidationCtx};
use ne_crypto::Digest32;
use std::collections::{HashMap, HashSet};

/// Execution mode of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreMode {
    /// Ordinary (untrusted) execution.
    NonEnclave,
    /// Executing inside an enclave through a TCS.
    Enclave {
        /// The enclave being executed.
        eid: EnclaveId,
        /// The TCS the thread entered through.
        tcs: VirtAddr,
    },
}

/// Per-core state.
#[derive(Debug)]
pub struct Core {
    /// Current mode.
    pub mode: CoreMode,
    /// Address space the core is executing in.
    pub pid: ProcessId,
    /// This core's TLB.
    pub tlb: Tlb,
    /// Simulated cycle counter.
    pub cycles: u64,
    /// Where this core's cycles went, by category; sums to `cycles`.
    pub breakdown: CycleBreakdown,
    /// Architectural registers (modelled subset). Transition instructions
    /// scrub these so enclave state cannot leak (§ V "zeroing registers").
    pub regs: SavedContext,
}

/// Kind of memory access, for permission checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// Result of a translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Translated {
    /// Valid mapping.
    Phys(PhysAddr, PagePerms),
    /// Abort-page semantics (reads all-ones, writes dropped).
    Abort,
}

/// A runtime call span still open on a core. Everything needed to record
/// the span's latency at close time is captured at open time, so closing
/// is independent of the (possibly wrapped) event trace.
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    id: u64,
    kind: SpanKind,
    level: HierLevel,
    begin_cycles: u64,
}

/// One simulated process.
#[derive(Debug)]
pub struct Process {
    /// OS-managed (untrusted) page table.
    pub page_table: PageTable,
    next_untrusted_va: u64,
}

/// The simulated machine.
pub struct Machine {
    cfg: HwConfig,
    dram: Dram,
    epcm: Epcm,
    pub(crate) llc: Llc,
    mee: Mee,
    processes: Vec<Process>,
    enclaves: EnclaveTable,
    pub(crate) tcs_table: HashMap<(u64, u64), Tcs>,
    pub(crate) cores: Vec<Core>,
    validator: Box<dyn TlbValidator>,
    stats: Stats,
    trace: Trace,
    /// Cycles attributed per enclave (`None` = untrusted execution).
    pub(crate) enclave_cycles: HashMap<Option<EnclaveId>, CycleBreakdown>,
    /// Always-on latency histograms (span durations, TLB-miss walks, MEE
    /// crypto, paging).
    profile: Profile,
    /// Monotonic id source for runtime call spans.
    pub(crate) next_span_id: u64,
    /// Per-core stack of open spans (parents for nested spans).
    span_stacks: Vec<Vec<OpenSpan>>,
    pub(crate) free_epc: Vec<Ppn>,
    next_ram_ppn: u64,
    pub(crate) platform_secret: [u8; 32],
    /// EADD-time page content digests awaiting EEXTEND, keyed by (eid, vpn).
    pub(crate) pending_digests: HashMap<(u64, u64), Digest32>,
    /// Anti-replay version store for EWB/ELDU, keyed by (eid, vpn).
    pub(crate) evicted_versions: HashMap<(u64, u64), u64>,
    pub(crate) next_evict_version: u64,
    /// Reusable dirty-victim buffer for the range-charging fast path, so
    /// the hot loop never allocates.
    dirty_scratch: Vec<u64>,
    /// Installed fault-injection plan (None = chaos off, the default).
    pub(crate) chaos: Option<FaultPlan>,
    /// Raw ids of crashed (poisoned) enclaves; EENTER/NEENTER fault until
    /// the enclave is EREMOVEd.
    pub(crate) poisoned: HashSet<u64>,
    /// Sealed blobs of pages the chaos layer force-evicted, in eviction
    /// order, waiting for the host to reload them.
    pub(crate) chaos_evicted: Vec<EvictedPage>,
    /// Cycle-stamped log of every injection the plan applied, in
    /// application order (the observability layer's join key against
    /// host-side recovery events). Cleared by `reset_metrics`.
    pub(crate) chaos_events: Vec<ChaosInjection>,
    /// Raw ids of enclaves a `migrate` chaos injection asked the host to
    /// live-migrate, deduplicated, in request order. Drained by
    /// [`Machine::take_migration_requests`] at the host's next safe point.
    pub(crate) migration_requests: Vec<u64>,
    /// Invalidation epoch for the macro-op replay cache: bumps on every
    /// operation that can change translation/protection state (EPCM
    /// changes, paging, OS remaps, tampering, poisoning, chaos-plan
    /// changes). See [`crate::replay`].
    replay_epoch: u64,
    /// Active macro-op capture, if any ([`Machine::macro_capture_begin`]).
    pub(crate) macro_rec: Option<Box<MacroRecorder>>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("enclaves", &self.enclaves.len())
            .field("epc_used", &self.epcm.len())
            .field("validator", &self.validator.name())
            .finish_non_exhaustive()
    }
}

/// Base of the untrusted heap region handed out by [`Machine::os_alloc_untrusted`].
const UNTRUSTED_VA_BASE: u64 = 0x7000_0000_0000;

impl Machine {
    /// Boots a machine with the baseline SGX validator.
    pub fn new(cfg: HwConfig) -> Machine {
        Self::with_validator(cfg, Box::new(SgxValidator::new()))
    }

    /// Boots a machine with a custom TLB-miss validator (how the
    /// nested-enclave "microcode" is installed).
    pub fn with_validator(cfg: HwConfig, validator: Box<dyn TlbValidator>) -> Machine {
        let mut free_epc: Vec<Ppn> = (cfg.prm_start()..cfg.dram_pages).map(Ppn).collect();
        free_epc.reverse(); // pop() hands out low PRM pages first
        let cores = (0..cfg.num_cores)
            .map(|_| Core {
                mode: CoreMode::NonEnclave,
                pid: ProcessId(0),
                tlb: Tlb::new(cfg.tlb_entries),
                cycles: 0,
                breakdown: CycleBreakdown::default(),
                regs: SavedContext::default(),
            })
            .collect();
        // The package-unique secret every key derivation hangs off.
        let platform_secret = ne_crypto::sha256::digest(b"ne-sgx platform fuse bank");
        Machine {
            dram: Dram::new(cfg.dram_pages),
            epcm: Epcm::new(),
            llc: Llc::new(cfg.llc_bytes, cfg.llc_ways),
            mee: Mee::new(ne_crypto::sha256::digest(b"ne-sgx mee boot key")),
            processes: vec![Process {
                page_table: PageTable::new(),
                next_untrusted_va: UNTRUSTED_VA_BASE,
            }],
            enclaves: EnclaveTable::new(),
            tcs_table: HashMap::new(),
            cores,
            validator,
            stats: Stats::default(),
            trace: Trace::new(cfg.trace_events, cfg.trace_capacity),
            enclave_cycles: HashMap::new(),
            profile: Profile::new(),
            next_span_id: 0,
            span_stacks: vec![Vec::new(); cfg.num_cores],
            free_epc,
            next_ram_ppn: 1,
            platform_secret,
            pending_digests: HashMap::new(),
            evicted_versions: HashMap::new(),
            next_evict_version: 1,
            dirty_scratch: Vec::new(),
            chaos: None,
            poisoned: HashSet::new(),
            chaos_evicted: Vec::new(),
            chaos_events: Vec::new(),
            migration_requests: Vec::new(),
            replay_epoch: 0,
            macro_rec: None,
            cfg,
        }
    }

    /// Current replay-cache invalidation epoch. A
    /// [`crate::replay::MacroEffect`] is only replayable while this
    /// matches its capture-time value.
    pub fn replay_epoch(&self) -> u64 {
        self.replay_epoch
    }

    /// Advances the replay epoch, invalidating every cached macro-op.
    /// Called internally by every state-changing operation; public so
    /// hosts can force invalidation around their own barriers (and so
    /// tests can prove stale replays are refused).
    pub fn bump_replay_epoch(&mut self) {
        self.replay_epoch += 1;
    }

    /// The machine configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Replaces the validator (diagnostics/ablation only; normally set at
    /// boot).
    pub fn install_validator(&mut self, validator: Box<dyn TlbValidator>) {
        self.bump_replay_epoch();
        self.flush_all_tlbs();
        self.validator = validator;
    }

    /// Name of the installed validator.
    pub fn validator_name(&self) -> &'static str {
        self.validator.name()
    }

    // ----- processes and cores --------------------------------------------

    /// Creates a new (empty) process address space.
    pub fn spawn_process(&mut self) -> ProcessId {
        self.processes.push(Process {
            page_table: PageTable::new(),
            next_untrusted_va: UNTRUSTED_VA_BASE,
        });
        ProcessId(self.processes.len() - 1)
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Schedules `core` onto process `pid` (context switch; flushes the
    /// TLB like a CR3 write would).
    pub fn set_core_process(&mut self, core: usize, pid: ProcessId) {
        assert!(pid.0 < self.processes.len(), "no such process");
        assert_eq!(
            self.cores[core].mode,
            CoreMode::NonEnclave,
            "cannot context-switch a core in enclave mode"
        );
        self.cores[core].pid = pid;
        self.flush_tlb(core);
    }

    /// Core accessor.
    pub fn core(&self, core: usize) -> &Core {
        &self.cores[core]
    }

    /// The enclave `core` is currently executing, if any.
    pub fn current_enclave(&self, core: usize) -> Option<EnclaveId> {
        match self.cores[core].mode {
            CoreMode::Enclave { eid, .. } => Some(eid),
            CoreMode::NonEnclave => None,
        }
    }

    /// Current TCS of `core`, if in enclave mode.
    pub fn current_tcs(&self, core: usize) -> Option<VirtAddr> {
        match self.cores[core].mode {
            CoreMode::Enclave { tcs, .. } => Some(tcs),
            CoreMode::NonEnclave => None,
        }
    }

    /// Sets the core's execution mode — an architectural surface for
    /// ISA-extension crates (NEENTER/NEEXIT switch modes directly).
    pub fn set_core_mode(&mut self, core: usize, mode: CoreMode) {
        self.cores[core].mode = mode;
    }

    /// Writes a modelled architectural register (tests/transition checks).
    pub fn set_reg(&mut self, core: usize, idx: usize, value: u64) {
        self.cores[core].regs.regs[idx] = value;
    }

    /// Reads a modelled architectural register.
    pub fn reg(&self, core: usize, idx: usize) -> u64 {
        self.cores[core].regs.regs[idx]
    }

    /// Mutable register file — an architectural surface for ISA-extension
    /// crates (NEEXIT scrubs all registers).
    pub fn regs_mut(&mut self, core: usize) -> &mut SavedContext {
        &mut self.cores[core].regs
    }

    // ----- cycles and stats -----------------------------------------------

    /// Charges simulated cycles of application work to a core. Public so
    /// higher layers (the SDK runtime, workloads) can account software
    /// work in the same clock; shorthand for [`Machine::charge_cat`] with
    /// [`CycleCategory::AppCompute`].
    pub fn charge(&mut self, core: usize, cycles: u64) {
        self.charge_cat(core, CycleCategory::AppCompute, cycles);
    }

    /// Charges cycles to a core under an explicit category, attributed to
    /// the enclave the core is currently executing (or the untrusted
    /// bucket). Every architectural cost in the simulator funnels through
    /// here, which is what makes the [`crate::metrics`] identities hold.
    pub fn charge_cat(&mut self, core: usize, category: CycleCategory, cycles: u64) {
        let owner = self.current_enclave(core);
        self.charge_to(core, category, cycles, owner);
    }

    /// Charges cycles to a core but attributes them to an explicit enclave
    /// bucket — used when work executes in one context on behalf of
    /// another (EWB/ELDU run untrusted but page for an owner enclave).
    pub fn charge_to(
        &mut self,
        core: usize,
        category: CycleCategory,
        cycles: u64,
        owner: Option<EnclaveId>,
    ) {
        if cycles == 0 {
            return;
        }
        let c = &mut self.cores[core];
        c.cycles += cycles;
        c.breakdown.add(category, cycles);
        self.enclave_cycles
            .entry(owner)
            .or_default()
            .add(category, cycles);
    }

    /// Cycle counter of one core.
    pub fn cycles(&self, core: usize) -> u64 {
        self.cores[core].cycles
    }

    /// Sum of all core cycle counters.
    pub fn total_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).sum()
    }

    /// Category breakdown of one core's cycles.
    pub fn core_breakdown(&self, core: usize) -> &CycleBreakdown {
        &self.cores[core].breakdown
    }

    /// Cycle attribution per enclave (`None` = untrusted). Buckets appear
    /// once something is charged to them.
    pub fn enclave_cycle_table(&self) -> &HashMap<Option<EnclaveId>, CycleBreakdown> {
        &self.enclave_cycles
    }

    /// Cycles attributed to one enclave bucket so far.
    pub fn enclave_breakdown(&self, eid: Option<EnclaveId>) -> CycleBreakdown {
        self.enclave_cycles.get(&eid).copied().unwrap_or_default()
    }

    /// Snapshots every counter into an exportable [`MachineMetrics`].
    pub fn metrics(&self) -> MachineMetrics {
        MachineMetrics::capture(self)
    }

    /// Architectural event counters.
    pub fn stats(&self) -> Stats {
        self.stats
    }

    /// Mutable access for the transition instructions in extension crates.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Clears counters, cycle clocks, attribution tables, latency
    /// histograms, and the event trace (between experiment phases).
    pub fn reset_metrics(&mut self) {
        self.stats = Stats::default();
        for c in &mut self.cores {
            c.cycles = 0;
            c.breakdown = CycleBreakdown::default();
        }
        self.enclave_cycles.clear();
        self.mee.reset_counters();
        self.profile.clear();
        self.trace.clear();
        self.chaos_events.clear();
        // Spans still open when the clock resets restart from zero, so
        // their eventual durations cover post-reset work only.
        for stack in &mut self.span_stacks {
            for span in stack.iter_mut() {
                span.begin_cycles = 0;
            }
        }
    }

    /// The event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Records an event (extension crates use this for NEENTER/NEEXIT).
    pub fn record_event(&mut self, event: Event) {
        self.trace.record(event);
    }

    /// Opens a runtime call span on `core` and returns its id. The span
    /// nests under any span already open on the core, so ecall→ocall
    /// chains are reconstructable from the trace. The duration histogram
    /// key ([`HierLevel`]) is the caller's hierarchy level at open time.
    pub fn span_begin(&mut self, core: usize, kind: SpanKind, label: &str) -> u64 {
        self.next_span_id += 1;
        let id = self.next_span_id;
        let level = self.hier_level(self.current_enclave(core));
        let cycles = self.cores[core].cycles;
        let parent = self.span_stacks[core].last().map(|s| s.id);
        self.span_stacks[core].push(OpenSpan {
            id,
            kind,
            level,
            begin_cycles: cycles,
        });
        self.stats.span_opens += 1;
        if self.trace.is_enabled() {
            self.trace.record(Event::SpanBegin {
                core,
                id,
                parent,
                kind,
                level,
                label: label.to_string(),
                cycles,
            });
        }
        id
    }

    /// Closes the span `id` opened by [`Machine::span_begin`] (also closes
    /// any spans left open beneath it) and records each closed span's
    /// duration in the latency [`Profile`].
    pub fn span_end(&mut self, core: usize, id: u64) {
        let cycles = self.cores[core].cycles;
        if let Some(pos) = self.span_stacks[core].iter().rposition(|s| s.id == id) {
            while self.span_stacks[core].len() > pos {
                let open = self.span_stacks[core].pop().expect("len > pos");
                let duration = cycles.saturating_sub(open.begin_cycles);
                self.profile_note(ProfileEvent::from_span(open.kind), open.level, duration);
                self.stats.span_closes += 1;
            }
        }
        if self.trace.is_enabled() {
            self.trace.record(Event::SpanEnd { core, id, cycles });
        }
    }

    /// Open runtime spans on `core` (diagnostics/tests).
    pub fn open_spans(&self, core: usize) -> usize {
        self.span_stacks[core].len()
    }

    /// The always-on latency histograms.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Records a latency sample directly — an architectural surface for
    /// ISA-extension crates (AEX/ERESUME and paging record their costs).
    pub fn profile_record(&mut self, event: ProfileEvent, level: HierLevel, cycles: u64) {
        self.profile_note(event, level, cycles);
    }

    /// Single funnel for every histogram sample: taps an active macro-op
    /// capture (so replay can re-apply identical samples), then records.
    fn profile_note(&mut self, event: ProfileEvent, level: HierLevel, cycles: u64) {
        if let Some(rec) = self.macro_rec.as_deref_mut() {
            rec.note_sample(event, level, cycles);
        }
        self.profile.record(event, level, cycles);
    }

    /// The [`HierLevel`] of an execution context: untrusted for `None`,
    /// inner for enclaves associated with at least one outer, outer
    /// otherwise.
    pub fn hier_level(&self, eid: Option<EnclaveId>) -> HierLevel {
        match eid {
            None => HierLevel::Untrusted,
            Some(e) => match self.enclaves.get(e) {
                Some(secs) if !secs.outer_eids.is_empty() => HierLevel::Inner,
                _ => HierLevel::Outer,
            },
        }
    }

    /// The MEE (counters used by Fig. 11).
    pub fn mee(&self) -> &Mee {
        &self.mee
    }

    /// The LLC (hit/miss counters).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// The enclave table.
    pub fn enclaves(&self) -> &EnclaveTable {
        &self.enclaves
    }

    /// Mutable enclave table — an architectural surface for ISA-extension
    /// crates (NASSO updates SECS fields through this).
    pub fn enclaves_mut(&mut self) -> &mut EnclaveTable {
        &mut self.enclaves
    }

    /// The EPCM (read-only; only instructions mutate it).
    pub fn epcm(&self) -> &Epcm {
        &self.epcm
    }

    pub(crate) fn epcm_mut(&mut self) -> &mut Epcm {
        &mut self.epcm
    }

    /// Free EPC pages remaining.
    pub fn free_epc_pages(&self) -> usize {
        self.free_epc.len()
    }

    /// TCS bookkeeping lookup.
    pub fn tcs(&self, eid: EnclaveId, va: VirtAddr) -> Option<&Tcs> {
        self.tcs_table.get(&(eid.0, va.0))
    }

    /// Mutable TCS access — an architectural surface for ISA-extension
    /// crates (NEENTER/NEEXIT update busy bits and the caller link).
    pub fn tcs_mut(&mut self, eid: EnclaveId, va: VirtAddr) -> Option<&mut Tcs> {
        self.tcs_table.get_mut(&(eid.0, va.0))
    }

    /// Finds an idle TCS of `eid`, lowest address first (used by NEEXIT's
    /// call path to acquire an outer-enclave thread slot).
    pub fn find_idle_tcs(&self, eid: EnclaveId) -> Option<VirtAddr> {
        self.tcs_table
            .iter()
            .filter(|((e, _), tcs)| *e == eid.0 && !tcs.busy)
            .map(|((_, va), _)| VirtAddr(*va))
            .min()
    }

    /// Host-pages actually materialized in DRAM (Fig. 10 footprint).
    pub fn resident_pages(&self) -> usize {
        self.dram.resident_pages()
    }

    // ----- TLB management --------------------------------------------------

    /// Flushes one core's TLB, charging the flush cost. Flushes happen at
    /// transition boundaries, so the cost lands in
    /// [`CycleCategory::Transition`].
    pub fn flush_tlb(&mut self, core: usize) {
        self.cores[core].tlb.flush();
        if let Some(rec) = self.macro_rec.as_deref_mut() {
            rec.note_tlb(core, TlbOp::Flush);
        }
        let cost = self.cfg.cost.tlb_flush;
        self.charge_cat(core, CycleCategory::Transition, cost);
        self.trace.record(Event::TlbFlush { core });
    }

    /// Flushes every TLB.
    pub fn flush_all_tlbs(&mut self) {
        for core in 0..self.cores.len() {
            self.flush_tlb(core);
        }
    }

    /// Total TLB flushes across cores.
    pub fn tlb_flushes(&self) -> u64 {
        self.cores.iter().map(|c| c.tlb.flush_count()).sum()
    }

    // ----- OS-level (untrusted) memory management ---------------------------

    /// OS primitive: map `vpn → ppn` in process `pid`. The OS may do this
    /// arbitrarily — including maliciously; protection comes from
    /// validation, not from restricting this call.
    pub fn os_map(&mut self, pid: ProcessId, vpn: Vpn, ppn: Ppn, perms: PagePerms) {
        self.bump_replay_epoch();
        self.processes[pid.0].page_table.map(vpn, ppn, perms);
    }

    /// OS primitive: unmap a page. Does *not* shoot down TLBs — a correct
    /// OS calls [`Machine::flush_tlb`]; an attacker might not.
    pub fn os_unmap(&mut self, pid: ProcessId, vpn: Vpn) {
        self.bump_replay_epoch();
        self.processes[pid.0].page_table.unmap(vpn);
    }

    /// OS page-table walk (diagnostics).
    pub fn os_lookup(&self, pid: ProcessId, vpn: Vpn) -> Option<crate::page_table::Pte> {
        self.processes[pid.0].page_table.lookup(vpn)
    }

    /// Allocates `n` fresh non-PRM physical frames.
    ///
    /// # Panics
    ///
    /// Panics if ordinary RAM is exhausted.
    pub fn os_alloc_frames(&mut self, n: usize) -> Vec<Ppn> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            assert!(
                self.next_ram_ppn < self.cfg.prm_start(),
                "untrusted RAM exhausted"
            );
            out.push(Ppn(self.next_ram_ppn));
            self.next_ram_ppn += 1;
        }
        out
    }

    /// Allocates and maps `n` pages of fresh untrusted memory in `pid`,
    /// returning the base virtual address.
    pub fn os_alloc_untrusted(&mut self, pid: ProcessId, n: usize) -> VirtAddr {
        let frames = self.os_alloc_frames(n);
        let base = self.processes[pid.0].next_untrusted_va;
        self.processes[pid.0].next_untrusted_va += (n * PAGE_SIZE) as u64;
        for (i, ppn) in frames.into_iter().enumerate() {
            let va = VirtAddr(base + (i * PAGE_SIZE) as u64);
            self.os_map(pid, va.vpn(), ppn, PagePerms::RWX);
        }
        VirtAddr(base)
    }

    /// Pops a free EPC page.
    pub(crate) fn alloc_epc(&mut self) -> Result<Ppn> {
        self.free_epc.pop().ok_or(SgxError::EpcFull)
    }

    // ----- translation and data access --------------------------------------

    /// Translates `va` on `core` for the given access kind, running the
    /// full TLB-miss validation flow on a miss.
    ///
    /// # Errors
    ///
    /// Returns the fault the validation flow (or permission check) raised.
    pub fn translate(&mut self, core: usize, va: VirtAddr, kind: AccessKind) -> Result<Translated> {
        let vpn = va.vpn();
        self.charge_cat(core, CycleCategory::Memory, self.cfg.cost.tlb_hit);
        let hit = if self.cfg.reference_path {
            self.cores[core].tlb.lookup(vpn)
        } else {
            self.cores[core].tlb.lookup_hot(vpn)
        };
        if let Some(entry) = hit {
            self.check_perms(core, va, entry.perms, kind)?;
            return Ok(Translated::Phys(
                PhysAddr(entry.ppn.base().0 + va.page_offset() as u64),
                entry.perms,
            ));
        }
        // TLB miss: walk the (untrusted) page table.
        self.stats.tlb_misses += 1;
        let walk_cost = self.cfg.cost.tlb_miss_walk;
        let level = self.hier_level(self.current_enclave(core));
        self.charge_cat(core, CycleCategory::TlbWalk, walk_cost);
        let pte = match self.processes[self.cores[core].pid.0]
            .page_table
            .lookup(vpn)
        {
            Some(p) => p,
            None => {
                // The walk found nothing, so no validation ran: the miss
                // cost recorded is the walk alone.
                self.profile_note(ProfileEvent::TlbMiss, level, walk_cost);
                self.stats.faults += 1;
                self.trace.record(Event::Fault {
                    core,
                    addr: va,
                    kind: FaultKind::NotMapped,
                });
                return Err(SgxError::Fault {
                    kind: FaultKind::NotMapped,
                    addr: va,
                });
            }
        };
        // Run the validation flow (Fig. 2, or Fig. 6 with the nested
        // validator installed).
        let cfg = &self.cfg;
        let in_prm = move |ppn: u64| cfg.in_prm(ppn);
        let cx = ValidationCtx {
            core: CoreView {
                enclave: self.current_enclave(core),
            },
            vpn,
            pte,
            epcm: &self.epcm,
            enclaves: &self.enclaves,
            in_prm: &in_prm,
        };
        let validation = self.validator.validate(&cx);
        let step_cost = validation.steps as u64 * self.cfg.cost.validation_step;
        self.charge_cat(core, CycleCategory::Validation, step_cost);
        self.profile_note(ProfileEvent::TlbMiss, level, walk_cost + step_cost);
        match validation.outcome {
            Outcome::Insert(entry) => {
                self.cores[core].tlb.insert(vpn, entry);
                if let Some(rec) = self.macro_rec.as_deref_mut() {
                    rec.note_tlb(core, TlbOp::Insert { vpn, entry });
                }
                self.check_perms(core, va, entry.perms, kind)?;
                Ok(Translated::Phys(
                    PhysAddr(entry.ppn.base().0 + va.page_offset() as u64),
                    entry.perms,
                ))
            }
            Outcome::Fault(kind) => {
                self.stats.faults += 1;
                self.trace.record(Event::Fault {
                    core,
                    addr: va,
                    kind,
                });
                Err(SgxError::Fault { kind, addr: va })
            }
            Outcome::Abort => Ok(Translated::Abort),
        }
    }

    fn check_perms(
        &mut self,
        core: usize,
        va: VirtAddr,
        perms: PagePerms,
        kind: AccessKind,
    ) -> Result<()> {
        let kind_fault = match kind {
            AccessKind::Read if !perms.r => Some(FaultKind::NotMapped),
            AccessKind::Write if !perms.w => Some(FaultKind::WriteToReadOnly),
            AccessKind::Fetch if !perms.x => Some(FaultKind::ExecFromNonExec),
            _ => None,
        };
        if let Some(kind) = kind_fault {
            self.stats.faults += 1;
            self.trace.record(Event::Fault {
                core,
                addr: va,
                kind,
            });
            return Err(SgxError::Fault { kind, addr: va });
        }
        Ok(())
    }

    /// Charges cache/DRAM/MEE costs for touching `[paddr, paddr+len)`.
    ///
    /// Dispatches between the optimized range-charging implementation and
    /// the naive per-line reference ([`HwConfig::reference_path`]); the two
    /// are architecturally identical and differentially tested against
    /// each other.
    fn charge_data_access(&mut self, core: usize, paddr: PhysAddr, len: usize, write: bool) {
        if len == 0 {
            return;
        }
        if let Some(rec) = self.macro_rec.as_deref_mut() {
            rec.note_llc(
                paddr.0 / LINE_SIZE as u64,
                (paddr.0 + len as u64 - 1) / LINE_SIZE as u64,
                write,
            );
        }
        if self.cfg.reference_path {
            self.charge_data_access_reference(core, paddr, len, write);
        } else {
            self.charge_data_access_fast(core, paddr, len, write);
        }
    }

    /// The naive data-access cost path: one LLC probe, one cost branch, and
    /// one MEE counter bump per line, then two separate category charges.
    /// Retained verbatim as the differential-oracle reference for
    /// [`Machine::charge_data_access_fast`].
    fn charge_data_access_reference(
        &mut self,
        core: usize,
        paddr: PhysAddr,
        len: usize,
        write: bool,
    ) {
        let first = paddr.0 / LINE_SIZE as u64;
        let last = (paddr.0 + len as u64 - 1) / LINE_SIZE as u64;
        let mut mem_cycles = 0u64;
        let mut mee_cycles = 0u64;
        for line in first..=last {
            match self.llc.access(line, write) {
                CacheAccess::Hit => mem_cycles += self.cfg.cost.llc_hit,
                CacheAccess::Miss { dirty_victim } => {
                    mem_cycles += self.cfg.cost.dram_access;
                    let line_ppn = line * LINE_SIZE as u64 / PAGE_SIZE as u64;
                    if self.cfg.in_prm(line_ppn) {
                        self.mee.note_decrypt();
                        mee_cycles += self.cfg.cost.mee_decrypt_line;
                    }
                    if let Some(victim) = dirty_victim {
                        let victim_ppn = victim * LINE_SIZE as u64 / PAGE_SIZE as u64;
                        if self.cfg.in_prm(victim_ppn) {
                            self.mee.note_encrypt();
                            mee_cycles += self.cfg.cost.mee_encrypt_line;
                        }
                    }
                }
            }
        }
        self.charge_cat(core, CycleCategory::Memory, mem_cycles);
        self.charge_cat(core, CycleCategory::MeeCrypto, mee_cycles);
        if mee_cycles > 0 {
            let level = self.hier_level(self.current_enclave(core));
            self.profile_note(ProfileEvent::MeeCrypto, level, mee_cycles);
        }
    }

    /// Optimized data-access charging: walks the range page segment by page
    /// segment so the PRM check runs once per page instead of once per
    /// line, folds per-line cost arithmetic into `hits × cost` products,
    /// batches the MEE traffic counters, and books both cycle categories
    /// through a single attribution-table update. Produces exactly the
    /// charges, counters, and eviction decisions of
    /// [`Machine::charge_data_access_reference`] — cost addition commutes,
    /// all lines of a page segment share PRM residency, and the LLC visits
    /// lines in the same order.
    fn charge_data_access_fast(&mut self, core: usize, paddr: PhysAddr, len: usize, write: bool) {
        const LINES_PER_PAGE: u64 = (PAGE_SIZE / LINE_SIZE) as u64;
        let first = paddr.0 / LINE_SIZE as u64;
        let last = (paddr.0 + len as u64 - 1) / LINE_SIZE as u64;
        let mut mem_cycles = 0u64;
        let mut mee_cycles = 0u64;
        let mut decrypts = 0u64;
        let mut encrypts = 0u64;
        let mut victims = std::mem::take(&mut self.dirty_scratch);
        victims.clear();
        let mut seg = first;
        while seg <= last {
            let seg_last = last.min((seg / LINES_PER_PAGE + 1) * LINES_PER_PAGE - 1);
            let (hits, misses) = self.llc.access_range(seg, seg_last, write, &mut victims);
            mem_cycles += hits * self.cfg.cost.llc_hit + misses * self.cfg.cost.dram_access;
            if self.cfg.in_prm(seg / LINES_PER_PAGE) {
                decrypts += misses;
                mee_cycles += misses * self.cfg.cost.mee_decrypt_line;
            }
            seg = seg_last + 1;
        }
        for &victim in &victims {
            if self.cfg.in_prm(victim / LINES_PER_PAGE) {
                encrypts += 1;
                mee_cycles += self.cfg.cost.mee_encrypt_line;
            }
        }
        self.dirty_scratch = victims;
        self.mee.note_decrypts(decrypts);
        self.mee.note_encrypts(encrypts);
        // Single fused charge for both categories: one core update and one
        // attribution-table lookup per access instead of two.
        let owner = self.current_enclave(core);
        if mem_cycles + mee_cycles > 0 {
            let c = &mut self.cores[core];
            c.cycles += mem_cycles + mee_cycles;
            c.breakdown.add(CycleCategory::Memory, mem_cycles);
            c.breakdown.add(CycleCategory::MeeCrypto, mee_cycles);
            let bucket = self.enclave_cycles.entry(owner).or_default();
            bucket.add(CycleCategory::Memory, mem_cycles);
            bucket.add(CycleCategory::MeeCrypto, mee_cycles);
        }
        if mee_cycles > 0 {
            let level = self.hier_level(owner);
            self.profile_note(ProfileEvent::MeeCrypto, level, mee_cycles);
        }
    }

    /// Range tamper check, honouring [`HwConfig::reference_path`].
    fn tampered(&self, paddr: u64, len: usize) -> bool {
        if self.cfg.reference_path {
            self.mee.any_tampered_scan(paddr, len)
        } else {
            self.mee.any_tampered(paddr, len)
        }
    }

    /// Reads `buf.len()` bytes at `va` as `core`.
    ///
    /// # Errors
    ///
    /// Faults propagate; aborted accesses (unauthorized PRM reads) fill the
    /// buffer with `0xFF` without error, matching SGX abort-page semantics.
    pub fn read_into(&mut self, core: usize, va: VirtAddr, buf: &mut [u8]) -> Result<()> {
        let mut done = 0usize;
        while done < buf.len() {
            let cur = va.add(done as u64);
            let in_page = (PAGE_SIZE - cur.page_offset()).min(buf.len() - done);
            match self.translate(core, cur, AccessKind::Read)? {
                Translated::Phys(pa, _) => {
                    if self.tampered(pa.0, in_page) {
                        return Err(self.integrity_fault(core, cur));
                    }
                    self.charge_data_access(core, pa, in_page, false);
                    self.dram
                        .read(pa.ppn(), pa.page_offset(), &mut buf[done..done + in_page]);
                }
                Translated::Abort => buf[done..done + in_page].fill(0xFF),
            }
            done += in_page;
        }
        Ok(())
    }

    /// Reads `len` bytes at `va` as `core`.
    ///
    /// # Errors
    ///
    /// See [`Machine::read_into`].
    pub fn read(&mut self, core: usize, va: VirtAddr, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_into(core, va, &mut buf)?;
        Ok(buf)
    }

    /// Writes `data` at `va` as `core`.
    ///
    /// # Errors
    ///
    /// Faults propagate; aborted accesses are silently dropped (abort-page
    /// semantics).
    pub fn write(&mut self, core: usize, va: VirtAddr, data: &[u8]) -> Result<()> {
        let mut done = 0usize;
        while done < data.len() {
            let cur = va.add(done as u64);
            let in_page = (PAGE_SIZE - cur.page_offset()).min(data.len() - done);
            match self.translate(core, cur, AccessKind::Write)? {
                Translated::Phys(pa, _) => {
                    if self.tampered(pa.0, in_page) {
                        return Err(self.integrity_fault(core, cur));
                    }
                    self.charge_data_access(core, pa, in_page, true);
                    self.dram
                        .write(pa.ppn(), pa.page_offset(), &data[done..done + in_page]);
                }
                Translated::Abort => {}
            }
            done += in_page;
        }
        Ok(())
    }

    /// Instruction fetch at `va` (execute-permission check).
    ///
    /// # Errors
    ///
    /// Returns [`FaultKind::ExecFromNonExec`] when `va` is not executable
    /// in the current mode — e.g. untrusted pages fetched from enclave mode.
    pub fn fetch(&mut self, core: usize, va: VirtAddr) -> Result<()> {
        match self.translate(core, va, AccessKind::Fetch)? {
            Translated::Phys(pa, _) => {
                // Instruction fetch pulls exactly the cache line holding
                // `pa` through the MEE like any other read: a tampered
                // line faults here, untouched neighbours do not.
                let line_base = pa.0 & !(LINE_SIZE as u64 - 1);
                if self.tampered(line_base, LINE_SIZE) {
                    return Err(self.integrity_fault(core, va));
                }
                self.charge_data_access(core, PhysAddr(line_base), LINE_SIZE, false);
                Ok(())
            }
            Translated::Abort => Err(SgxError::Fault {
                kind: FaultKind::ExecFromNonExec,
                addr: va,
            }),
        }
    }

    /// Records an MEE integrity violation at `addr`: bumps the fault
    /// counter and the trace ring together so trace-derived fault counts
    /// agree with [`Stats::faults`].
    fn integrity_fault(&mut self, core: usize, addr: VirtAddr) -> SgxError {
        self.stats.faults += 1;
        self.trace.record(Event::Fault {
            core,
            addr,
            kind: FaultKind::IntegrityViolation,
        });
        SgxError::Fault {
            kind: FaultKind::IntegrityViolation,
            addr,
        }
    }

    // ----- physical attacker surface ----------------------------------------

    /// What a physical attacker probing the DRAM bus sees for page `ppn`:
    /// ciphertext for PRM pages, plaintext for ordinary memory.
    pub fn physical_probe(&self, ppn: Ppn) -> Vec<u8> {
        let plain = self.dram.read_page(ppn);
        if self.cfg.in_prm(ppn.0) {
            self.mee.encrypt_view(ppn.base().0, &plain)
        } else {
            plain.to_vec()
        }
    }

    /// Physically overwrites `[paddr, paddr+len)` (rowhammer / bus attack).
    /// For PRM lines, the MEE integrity tree will reject the next
    /// architectural access.
    pub fn physical_tamper(&mut self, paddr: PhysAddr, data: &[u8]) {
        self.bump_replay_epoch();
        self.dram.write(paddr.ppn(), paddr.page_offset(), data);
        if self.cfg.in_prm(paddr.ppn().0) {
            self.mee.mark_tampered(paddr.0, data.len());
        }
    }

    // ----- fault injection (chaos) ------------------------------------------

    /// Installs a fault-injection plan; replaces any previous one.
    /// Chaos is off until this is called.
    pub fn install_chaos(&mut self, plan: FaultPlan) {
        self.bump_replay_epoch();
        self.chaos = Some(plan);
    }

    /// Uninstalls the fault plan (chaos off), returning it. Enclaves
    /// already poisoned stay poisoned until EREMOVEd.
    pub fn clear_chaos(&mut self) -> Option<FaultPlan> {
        self.bump_replay_epoch();
        self.chaos.take()
    }

    /// True if a fault plan is installed.
    pub fn chaos_active(&self) -> bool {
        self.chaos.is_some()
    }

    /// Injection counters of the installed plan, if any.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(FaultPlan::stats)
    }

    /// Cycle-stamped log of every injection applied since the last
    /// [`Machine::reset_metrics`], in application order. Empty when chaos
    /// never ran. The observability layer joins these against host-side
    /// recovery events to build incident reports.
    pub fn chaos_events(&self) -> &[ChaosInjection] {
        &self.chaos_events
    }

    /// Re-aims a targeted plan after a respawn handed the same logical
    /// enclave a fresh id.
    pub fn chaos_retarget(&mut self, old: EnclaveId, new: EnclaveId) {
        self.bump_replay_epoch();
        if let Some(p) = self.chaos.as_mut() {
            p.retarget(old.0, new.0);
        }
    }

    /// Marks `eid` crashed: every subsequent EENTER/NEENTER faults with
    /// [`SgxError::EnclavePoisoned`] until the enclave is EREMOVEd.
    pub fn poison_enclave(&mut self, eid: EnclaveId) {
        self.bump_replay_epoch();
        self.poisoned.insert(eid.0);
    }

    /// True if `eid` is currently poisoned.
    pub fn is_poisoned(&self, eid: EnclaveId) -> bool {
        self.poisoned.contains(&eid.0)
    }

    /// Sealed blobs the chaos layer has force-evicted and not yet
    /// reloaded (inspection; the host calls
    /// [`reload_chaos_evicted`](Machine::reload_chaos_evicted)).
    pub fn chaos_evicted_blobs(&self) -> &[EvictedPage] {
        &self.chaos_evicted
    }

    /// ELDUs every chaos-evicted page belonging to `eid` back into the
    /// EPC, in eviction order. Returns the number of pages reloaded.
    ///
    /// # Errors
    ///
    /// Propagates [`SgxError::Paging`]/[`SgxError::EpcFull`] from ELDU;
    /// blobs not yet processed stay parked.
    pub fn reload_chaos_evicted(&mut self, eid: EnclaveId) -> Result<usize> {
        let mut reloaded = 0;
        while let Some(pos) = self.chaos_evicted.iter().position(|b| b.eid == eid) {
            let blob = self.chaos_evicted.remove(pos);
            if let Err(e) = self.eldu(&blob) {
                self.chaos_evicted.insert(pos, blob);
                return Err(e);
            }
            reloaded += 1;
        }
        Ok(reloaded)
    }

    /// Consumed by the switchless layer on every queue ocall: true if
    /// the reply core is inside an injected stall window (the ocall must
    /// fail with [`SgxError::Stalled`]).
    pub fn chaos_take_stall(&mut self) -> bool {
        self.chaos.as_mut().is_some_and(FaultPlan::take_stall)
    }

    /// Drains the raw enclave ids a `migrate` chaos injection has parked
    /// since the last drain. The host calls this at a safe point (e.g. a
    /// cluster barrier) and drives its live-migration machine for each
    /// victim; ids are deduplicated and in request order.
    pub fn take_migration_requests(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.migration_requests)
    }

    // ----- internal access for instruction implementations -------------------

    pub(crate) fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    pub(crate) fn dram(&self) -> &Dram {
        &self.dram
    }

    pub(crate) fn mee_mut(&mut self) -> &mut Mee {
        &mut self.mee
    }

    pub(crate) fn validator(&self) -> &dyn TlbValidator {
        self.validator.as_ref()
    }

    // ----- invariant audit ----------------------------------------------------

    /// Audits every TLB against the paper's § VII-A security invariants:
    ///
    /// 1. Non-enclave cores hold no PRM translations.
    /// 2. In enclave mode, VPNs outside ELRANGE (and outside any associated
    ///    outer ELRANGE) never map into PRM.
    /// 3. VPNs inside ELRANGE map to EPC pages whose EPCM entry matches the
    ///    enclave id and virtual address.
    /// 4. VPNs inside an outer enclave's ELRANGE map to EPC pages whose
    ///    EPCM entry matches that outer enclave and virtual address.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn audit_tlbs(&self) -> std::result::Result<(), String> {
        for (idx, core) in self.cores.iter().enumerate() {
            match core.mode {
                CoreMode::NonEnclave => {
                    for (vpn, entry) in core.tlb.iter() {
                        if self.cfg.in_prm(entry.ppn.0) {
                            return Err(format!(
                                "invariant 1 violated: core {idx} (non-enclave) caches \
                                 {vpn:?} → PRM page {:?}",
                                entry.ppn
                            ));
                        }
                    }
                }
                CoreMode::Enclave { eid, .. } => {
                    // Collect the inner→outer ELRANGE closure (BFS over all
                    // associated outers, bounded so a malformed cycle still
                    // terminates).
                    let mut chain = Vec::new();
                    let mut queue = vec![eid];
                    while let Some(id) = queue.pop() {
                        if chain.iter().any(|(seen, _)| *seen == id) || chain.len() > 64 {
                            continue;
                        }
                        let secs = match self.enclaves.get(id) {
                            Some(s) => s,
                            None => continue,
                        };
                        chain.push((id, secs.elrange));
                        queue.extend(secs.outer_eids.iter().copied());
                    }
                    for (vpn, entry) in core.tlb.iter() {
                        let owner = chain.iter().find(|(_, r)| r.contains_page(vpn));
                        match owner {
                            None => {
                                if self.cfg.in_prm(entry.ppn.0) {
                                    return Err(format!(
                                        "invariant 2 violated: core {idx} enclave {eid} \
                                         caches out-of-ELRANGE {vpn:?} → PRM {:?}",
                                        entry.ppn
                                    ));
                                }
                            }
                            Some((owner_eid, _)) => {
                                let which = if *owner_eid == eid { 3 } else { 4 };
                                let epcm = self.epcm.get(entry.ppn);
                                let ok = epcm
                                    .map(|e| e.eid == *owner_eid && e.vpn == vpn)
                                    .unwrap_or(false);
                                if !ok {
                                    return Err(format!(
                                        "invariant {which} violated: core {idx} enclave \
                                         {eid} caches {vpn:?} → {:?} with EPCM {:?}",
                                        entry.ppn, epcm
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(HwConfig::small())
    }

    #[test]
    fn untrusted_read_write_roundtrip() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 2);
        m.write(0, va, b"hello world").unwrap();
        assert_eq!(m.read(0, va, 11).unwrap(), b"hello world");
    }

    #[test]
    fn cross_page_access_works() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 2);
        let addr = va.add(PAGE_SIZE as u64 - 3);
        m.write(0, addr, b"abcdef").unwrap();
        assert_eq!(m.read(0, addr, 6).unwrap(), b"abcdef");
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = machine();
        let err = m.read(0, VirtAddr(0xdead_0000), 4).unwrap_err();
        assert!(err.is_fault(FaultKind::NotMapped));
        assert_eq!(m.stats().faults, 1);
    }

    #[test]
    fn tlb_caches_translations() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 1);
        m.read(0, va, 1).unwrap();
        let misses = m.stats().tlb_misses;
        m.read(0, va, 1).unwrap();
        assert_eq!(m.stats().tlb_misses, misses, "second access must hit TLB");
    }

    #[test]
    fn non_enclave_prm_access_aborts_with_ones() {
        let mut m = machine();
        let prm_ppn = Ppn(m.config().prm_start());
        m.os_map(ProcessId(0), Vpn(0x100), prm_ppn, PagePerms::RW);
        let data = m.read(0, VirtAddr(0x100 << 12), 4).unwrap();
        assert_eq!(data, vec![0xFF; 4], "abort page reads all-ones");
        // Writes are dropped.
        m.write(0, VirtAddr(0x100 << 12), b"xx").unwrap();
        assert_eq!(
            m.physical_probe(prm_ppn)[..2],
            m.physical_probe(prm_ppn)[..2]
        );
        m.audit_tlbs().unwrap();
    }

    #[test]
    fn context_switch_flushes_tlb() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 1);
        m.read(0, va, 1).unwrap();
        let pid2 = m.spawn_process();
        m.set_core_process(0, pid2);
        assert!(m.core(0).tlb.is_empty());
    }

    #[test]
    fn physical_probe_of_normal_ram_is_plaintext() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 1);
        m.write(0, va, b"SECRET").unwrap();
        let pte = m.os_lookup(ProcessId(0), va.vpn()).unwrap();
        let probe = m.physical_probe(pte.ppn);
        assert_eq!(&probe[..6], b"SECRET", "normal RAM is not encrypted");
    }

    #[test]
    fn charge_and_cycles() {
        let mut m = machine();
        let before = m.cycles(1);
        m.charge(1, 500);
        assert_eq!(m.cycles(1), before + 500);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = machine();
        let frames = m.os_alloc_frames(1);
        m.os_map(ProcessId(0), Vpn(0x200), frames[0], PagePerms::R);
        let err = m.write(0, VirtAddr(0x200 << 12), b"x").unwrap_err();
        assert!(err.is_fault(FaultKind::WriteToReadOnly));
    }

    #[test]
    fn fetch_checks_exec() {
        let mut m = machine();
        let frames = m.os_alloc_frames(2);
        m.os_map(ProcessId(0), Vpn(0x300), frames[0], PagePerms::RWX);
        m.os_map(ProcessId(0), Vpn(0x301), frames[1], PagePerms::RW);
        m.fetch(0, VirtAddr(0x300 << 12)).unwrap();
        let err = m.fetch(0, VirtAddr(0x301 << 12)).unwrap_err();
        assert!(err.is_fault(FaultKind::ExecFromNonExec));
    }

    #[test]
    fn reset_metrics_clears() {
        let mut m = machine();
        let va = m.os_alloc_untrusted(ProcessId(0), 1);
        m.read(0, va, 1).unwrap();
        assert!(m.stats().tlb_misses > 0);
        m.reset_metrics();
        assert_eq!(m.stats().tlb_misses, 0);
        assert_eq!(m.cycles(0), 0);
    }
}
