//! Enclave control structures: SECS, TCS, measurement, SIGSTRUCT.

use crate::addr::{VirtAddr, VirtRange};
use ne_crypto::sha256::Sha256;
use ne_crypto::Digest32;
use std::fmt;

/// Identity of an enclave instance. In real SGX this is the physical
/// address of the SECS page, which is unique per enclave; an opaque id
/// preserves that uniqueness property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnclaveId(pub u64);

impl fmt::Display for EnclaveId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eid{}", self.0)
    }
}

/// Identity of a process (address space) on the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(pub usize);

/// Enclave life-cycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Created; pages may still be added and measured.
    Building,
    /// EINIT succeeded; the enclave may be entered.
    Initialized,
}

/// SGX Enclave Control Structure.
///
/// The two trailing fields (`outer_eids`, `inner_eids`) are the paper's
/// Fig. 3 extension, carried in what real SGX keeps as reserved SECS
/// space. The baseline validator never reads them; only the nested-enclave
/// validator and instructions (crate `ne-core`) do.
#[derive(Debug, Clone)]
pub struct Secs {
    /// This enclave's id.
    pub eid: EnclaveId,
    /// Owning process.
    pub pid: ProcessId,
    /// ELRANGE: the contiguous virtual range of the enclave.
    pub elrange: VirtRange,
    /// Life-cycle state.
    pub state: EnclaveState,
    /// Running measurement (becomes MRENCLAVE at EINIT).
    pub measurement: Measurement,
    /// Final measurement, fixed at EINIT.
    pub mrenclave: Digest32,
    /// Hash of the author's signing identity, fixed at EINIT.
    pub mrsigner: Digest32,
    /// Count of threads currently executing inside this enclave.
    pub active_threads: usize,
    /// Nested-enclave extension (reserved field in real SGX): the outer
    /// enclaves this enclave is an inner of. The paper's base design allows
    /// at most one; the § VIII lattice extension allows several.
    pub outer_eids: Vec<EnclaveId>,
    /// Nested-enclave extension (reserved field in real SGX): inner
    /// enclaves associated with this enclave.
    pub inner_eids: Vec<EnclaveId>,
}

impl Secs {
    /// Creates a SECS in the `Building` state.
    pub fn new(eid: EnclaveId, pid: ProcessId, elrange: VirtRange) -> Secs {
        let mut measurement = Measurement::new();
        measurement.ecreate(elrange);
        Secs {
            eid,
            pid,
            elrange,
            state: EnclaveState::Building,
            measurement,
            mrenclave: [0; 32],
            mrsigner: [0; 32],
            active_threads: 0,
            outer_eids: Vec::new(),
            inner_eids: Vec::new(),
        }
    }

    /// True once EINIT has completed.
    pub fn is_initialized(&self) -> bool {
        self.state == EnclaveState::Initialized
    }
}

/// Thread Control Structure: the per-thread entry ticket into an enclave.
#[derive(Debug, Clone)]
pub struct Tcs {
    /// Owning enclave.
    pub eid: EnclaveId,
    /// Virtual address of the TCS page.
    pub va: VirtAddr,
    /// Entry point inside ELRANGE jumped to on entry.
    pub entry: VirtAddr,
    /// A TCS can host one thread at a time.
    pub busy: bool,
    /// Saved register state after an asynchronous exit (simplified SSA).
    pub ssa: Option<SavedContext>,
    /// Nested-enclave extension: when this TCS was entered via NEENTER,
    /// the outer enclave context to return to on NEEXIT (the "reserved
    /// stack frame of the entering inner enclave" of § V).
    pub caller: Option<(EnclaveId, VirtAddr)>,
}

/// The architectural register state we model. Real SGX saves the full
/// register file in the SSA; eight generic registers are enough to test the
/// save/scrub/restore semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SavedContext {
    /// General-purpose registers.
    pub regs: [u64; 8],
    /// Stack pointer.
    pub rsp: u64,
    /// Instruction pointer.
    pub rip: u64,
}

/// Running SHA-256 measurement, accumulated exactly as SGX does: ECREATE
/// contributes the layout, each EADD the page's metadata, each EEXTEND the
/// page's contents (§ IV-C).
#[derive(Clone)]
pub struct Measurement {
    hasher: Sha256,
}

impl fmt::Debug for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Measurement").finish_non_exhaustive()
    }
}

impl Measurement {
    /// Fresh measurement.
    pub fn new() -> Measurement {
        Measurement {
            hasher: Sha256::new(),
        }
    }

    /// Absorbs the ECREATE record (ELRANGE geometry). Only the *size*
    /// is measured, exactly as real SGX measures SECS.SIZE and not the
    /// base: every EADD/EEXTEND already binds its base-relative page
    /// offset, so MRENCLAVE is load-position-independent. That is what
    /// makes enclave identity portable — the same image loaded at a
    /// different base (a respawn, or a live migration onto another
    /// machine) derives the same `EGETKEY` seal key and can open state
    /// sealed by its previous incarnation.
    pub fn ecreate(&mut self, elrange: VirtRange) {
        self.hasher.update(b"ECREATE");
        self.hasher.update(&elrange.len().to_le_bytes());
    }

    /// Absorbs an EADD record (page offset within ELRANGE + metadata).
    pub fn eadd(&mut self, page_offset: u64, type_tag: u8, perm_bits: u8) {
        self.hasher.update(b"EADD");
        self.hasher.update(&page_offset.to_le_bytes());
        self.hasher.update(&[type_tag, perm_bits]);
    }

    /// Absorbs an EEXTEND record (digest of the page's initial contents).
    pub fn eextend(&mut self, page_offset: u64, content_digest: &Digest32) {
        self.hasher.update(b"EEXTEND");
        self.hasher.update(&page_offset.to_le_bytes());
        self.hasher.update(content_digest);
    }

    /// Finalizes into MRENCLAVE.
    pub fn finalize(&self) -> Digest32 {
        self.hasher.clone().finalize()
    }
}

impl Default for Measurement {
    fn default() -> Self {
        Measurement::new()
    }
}

/// The enclave author's signature structure shipped with the enclave file.
///
/// Substitution note: real SGX uses RSA-3072 over the measurement; we bind
/// the author identity by name and let EINIT compare the *expected
/// measurement* — the check that actually gates initialization.
#[derive(Debug, Clone)]
pub struct SigStruct {
    /// Author identity (hashes to MRSIGNER).
    pub signer: Vec<u8>,
    /// The measurement the author signed.
    pub expected_mrenclave: Digest32,
}

impl SigStruct {
    /// Creates a signature structure for an author and expected digest.
    pub fn new(signer: &[u8], expected_mrenclave: Digest32) -> SigStruct {
        SigStruct {
            signer: signer.to_vec(),
            expected_mrenclave,
        }
    }

    /// MRSIGNER value this structure yields.
    pub fn mrsigner(&self) -> Digest32 {
        ne_crypto::sha256::digest(&self.signer)
    }
}

/// The machine's table of live enclaves.
#[derive(Debug, Default)]
pub struct EnclaveTable {
    slots: Vec<Option<Secs>>,
}

impl EnclaveTable {
    /// Empty table.
    pub fn new() -> EnclaveTable {
        EnclaveTable::default()
    }

    /// Allocates a new id and stores the SECS produced by `make`.
    pub fn create(&mut self, pid: ProcessId, elrange: VirtRange) -> EnclaveId {
        let eid = EnclaveId(self.slots.len() as u64 + 1);
        self.slots.push(Some(Secs::new(eid, pid, elrange)));
        eid
    }

    /// Looks up an enclave.
    pub fn get(&self, eid: EnclaveId) -> Option<&Secs> {
        self.slots
            .get(eid.0.checked_sub(1)? as usize)
            .and_then(|s| s.as_ref())
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, eid: EnclaveId) -> Option<&mut Secs> {
        self.slots
            .get_mut(eid.0.checked_sub(1)? as usize)
            .and_then(|s| s.as_mut())
    }

    /// Destroys an enclave (EREMOVE of the SECS).
    pub fn remove(&mut self, eid: EnclaveId) -> Option<Secs> {
        self.slots
            .get_mut(eid.0.checked_sub(1)? as usize)
            .and_then(|s| s.take())
    }

    /// Number of live enclaves.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True if no enclaves exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over live enclaves.
    pub fn iter(&self) -> impl Iterator<Item = &Secs> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::VirtAddr;

    fn range() -> VirtRange {
        VirtRange::new(VirtAddr(0x10000), 0x4000)
    }

    #[test]
    fn table_create_get_remove() {
        let mut t = EnclaveTable::new();
        let a = t.create(ProcessId(0), range());
        let b = t.create(ProcessId(0), range());
        assert_ne!(a, b);
        assert_eq!(t.get(a).unwrap().eid, a);
        assert_eq!(t.len(), 2);
        t.remove(a);
        assert!(t.get(a).is_none());
        assert_eq!(t.len(), 1);
        assert!(t.get(EnclaveId(99)).is_none());
        assert!(t.get(EnclaveId(0)).is_none());
    }

    #[test]
    fn measurement_order_sensitive() {
        let mut m1 = Measurement::new();
        m1.eadd(0, 0, 3);
        m1.eadd(4096, 0, 3);
        let mut m2 = Measurement::new();
        m2.eadd(4096, 0, 3);
        m2.eadd(0, 0, 3);
        assert_ne!(m1.finalize(), m2.finalize());
    }

    #[test]
    fn measurement_content_sensitive() {
        let mut m1 = Measurement::new();
        let mut m2 = Measurement::new();
        m1.eextend(0, &[1u8; 32]);
        m2.eextend(0, &[2u8; 32]);
        assert_ne!(m1.finalize(), m2.finalize());
    }

    #[test]
    fn identical_builds_measure_identically() {
        let mut m1 = Measurement::new();
        m1.ecreate(range());
        m1.eadd(0, 1, 2);
        m1.eextend(0, &[9u8; 32]);
        let mut m2 = Measurement::new();
        m2.ecreate(range());
        m2.eadd(0, 1, 2);
        m2.eextend(0, &[9u8; 32]);
        assert_eq!(m1.finalize(), m2.finalize());
    }

    #[test]
    fn sigstruct_signer_identity() {
        let s1 = SigStruct::new(b"acme", [0; 32]);
        let s2 = SigStruct::new(b"acme", [1; 32]);
        let s3 = SigStruct::new(b"evil", [0; 32]);
        assert_eq!(s1.mrsigner(), s2.mrsigner());
        assert_ne!(s1.mrsigner(), s3.mrsigner());
    }

    #[test]
    fn new_secs_is_building() {
        let t = Secs::new(EnclaveId(1), ProcessId(0), range());
        assert!(!t.is_initialized());
        assert!(t.outer_eids.is_empty());
        assert!(t.inner_eids.is_empty());
    }
}
