//! Enclave Page Cache Map (EPCM).
//!
//! For every EPC page, the EPCM records the owner enclave and the virtual
//! address the page is bound to. This reverse map is the anchor of SGX's
//! access control: on every TLB miss the candidate translation is checked
//! against it (§ II-B conditions 1 and 2).

use crate::addr::{Ppn, Vpn};
use crate::enclave::EnclaveId;
use std::collections::HashMap;

/// EPC page types, as in SGX.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// SGX Enclave Control Structure page.
    Secs,
    /// Thread Control Structure page.
    Tcs,
    /// Regular code/data page.
    Reg,
}

/// Access permissions recorded for an EPC page (intersected with the OS
/// page-table permissions at TLB fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagePerms {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl PagePerms {
    /// Read/write data page.
    pub const RW: PagePerms = PagePerms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only data page.
    pub const R: PagePerms = PagePerms {
        r: true,
        w: false,
        x: false,
    };
    /// Read/execute code page.
    pub const RX: PagePerms = PagePerms {
        r: true,
        w: false,
        x: true,
    };
    /// Read/write/execute (used by the OS for untrusted memory).
    pub const RWX: PagePerms = PagePerms {
        r: true,
        w: true,
        x: true,
    };

    /// Permission intersection.
    pub fn intersect(self, other: PagePerms) -> PagePerms {
        PagePerms {
            r: self.r && other.r,
            w: self.w && other.w,
            x: self.x && other.x,
        }
    }
}

/// One EPCM entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpcmEntry {
    /// Owner enclave.
    pub eid: EnclaveId,
    /// Virtual page the EPC page is bound to (fixed at EADD).
    pub vpn: Vpn,
    /// Page type.
    pub page_type: PageType,
    /// Permissions granted by the enclave author at EADD.
    pub perms: PagePerms,
    /// Set while the page is being evicted; blocks new TLB fills.
    pub blocked: bool,
    /// SGX2: page was EAUGed after EINIT and awaits the enclave's
    /// EACCEPT; inaccessible until then.
    pub pending: bool,
}

/// The Enclave Page Cache Map: physical page → ownership record.
#[derive(Debug, Default)]
pub struct Epcm {
    entries: HashMap<u64, EpcmEntry>,
}

impl Epcm {
    /// Creates an empty EPCM.
    pub fn new() -> Epcm {
        Epcm::default()
    }

    /// Looks up the entry for `ppn`, if the page is a valid EPC page.
    pub fn get(&self, ppn: Ppn) -> Option<&EpcmEntry> {
        self.entries.get(&ppn.0)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, ppn: Ppn) -> Option<&mut EpcmEntry> {
        self.entries.get_mut(&ppn.0)
    }

    /// Installs an entry for `ppn`.
    ///
    /// # Panics
    ///
    /// Panics if the page already has a valid entry — the machine must free
    /// it first (EREMOVE/EWB).
    pub fn insert(&mut self, ppn: Ppn, entry: EpcmEntry) {
        let prev = self.entries.insert(ppn.0, entry);
        assert!(prev.is_none(), "EPCM entry for {ppn:?} already valid");
    }

    /// Invalidates the entry for `ppn`, returning it.
    pub fn remove(&mut self, ppn: Ppn) -> Option<EpcmEntry> {
        self.entries.remove(&ppn.0)
    }

    /// Number of valid EPC pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no EPC page is in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(ppn, entry)` pairs (test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = (Ppn, &EpcmEntry)> {
        self.entries.iter().map(|(&p, e)| (Ppn(p), e))
    }

    /// All EPC pages owned by `eid`.
    pub fn pages_of(&self, eid: EnclaveId) -> Vec<Ppn> {
        let mut v: Vec<Ppn> = self
            .entries
            .iter()
            .filter(|(_, e)| e.eid == eid)
            .map(|(&p, _)| Ppn(p))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(eid: u64, vpn: u64) -> EpcmEntry {
        EpcmEntry {
            eid: EnclaveId(eid),
            vpn: Vpn(vpn),
            page_type: PageType::Reg,
            perms: PagePerms::RW,
            blocked: false,
            pending: false,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut m = Epcm::new();
        assert!(m.is_empty());
        m.insert(Ppn(5), entry(1, 100));
        assert_eq!(m.get(Ppn(5)).unwrap().vpn, Vpn(100));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(Ppn(5)).unwrap().eid, EnclaveId(1));
        assert!(m.get(Ppn(5)).is_none());
    }

    #[test]
    #[should_panic(expected = "already valid")]
    fn double_insert_panics() {
        let mut m = Epcm::new();
        m.insert(Ppn(5), entry(1, 100));
        m.insert(Ppn(5), entry(2, 101));
    }

    #[test]
    fn pages_of_filters_by_owner() {
        let mut m = Epcm::new();
        m.insert(Ppn(1), entry(1, 10));
        m.insert(Ppn(2), entry(2, 20));
        m.insert(Ppn(3), entry(1, 30));
        assert_eq!(m.pages_of(EnclaveId(1)), vec![Ppn(1), Ppn(3)]);
    }

    #[test]
    fn perms_intersect() {
        assert_eq!(PagePerms::RW.intersect(PagePerms::R), PagePerms::R);
        assert_eq!(PagePerms::RWX.intersect(PagePerms::RX), PagePerms::RX);
    }
}
