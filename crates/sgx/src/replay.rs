//! Macro-op replay: memoized request-level machine effects.
//!
//! Steady-state serving traffic re-executes near-identical instruction
//! sequences per (service, payload shape) once the TLB and LLC are warm.
//! This module lets the host memoize one clean execution of such a
//! sequence — every cycle charge, counter increment, histogram sample,
//! and raw TLB/LLC mutation it performed — and later *replay* that
//! effect in O(effect size) instead of stepping every access again.
//!
//! Soundness rests on three pillars:
//!
//! 1. **Epoch invalidation.** [`crate::machine::Machine`] keeps a
//!    monotonic `replay_epoch` that bumps on every operation that can
//!    change translation or protection state: EPCM changes (ECREATE /
//!    EADD / EINIT / EAUG / EACCEPT / EREMOVE), paging (EWB / ELDU), OS
//!    remapping, physical tampering, enclave poisoning, and chaos-plan
//!    installation. An effect captured under epoch *E* is only replayable
//!    while the machine is still at epoch *E*.
//! 2. **Capture cleanliness.** [`Machine::macro_capture_end`] refuses to
//!    produce an effect unless the bracketed execution was *quiet*: no
//!    LLC misses (so the MEE never ran), no faults, no AEX storms, no
//!    chaos injections, no epoch bump, and cycle movement confined to
//!    the declared cores. A quiet execution's machine interaction is a
//!    pure function of its warm-state preconditions.
//! 3. **Replay preconditions.** [`Machine::macro_replay`] checks, before
//!    mutating anything, that the warm state the capture relied on still
//!    holds: every touched LLC line is still resident (all-hit accesses
//!    never evict, so re-running them cannot diverge), every touched
//!    core's TLB either starts with a flush (making its prior content
//!    irrelevant) or matches the capture-time fingerprint exactly, and
//!    the installed chaos plan provably fires nothing across the
//!    replayed EENTER ticks. Any doubt refuses the replay and the host
//!    falls back to real execution — refusal is always sound.
//!
//! Charged quantities (cycles, [`crate::trace::Stats`] counters,
//! histogram samples) are applied as *deltas*; raw TLB and LLC
//! mutations are *re-executed* so stamp/FIFO/dirty bookkeeping advances
//! exactly as a real execution would. The split is what keeps
//! `ne-metrics/v2` exports byte-identical with the cache on or off.

use crate::addr::Vpn;
use crate::enclave::EnclaveId;
use crate::fault::ChaosStats;
use crate::machine::Machine;
use crate::metrics::CycleBreakdown;
use crate::profile::{HierLevel, ProfileEvent};
use crate::tlb::TlbEntry;
use crate::trace::Stats;
use std::collections::HashMap;

/// One raw TLB mutation observed during capture, re-executed on replay.
#[derive(Debug, Clone, Copy)]
pub enum TlbOp {
    /// The core's TLB was flushed (transition boundaries).
    Flush,
    /// A validated translation was filled after a miss.
    Insert {
        /// Virtual page the entry translates.
        vpn: Vpn,
        /// The filled entry.
        entry: TlbEntry,
    },
}

/// One contiguous LLC line range touched during capture. Raw form only —
/// [`Machine::macro_capture_end`] folds the range list into the compact
/// per-unique-line commit plan replay actually applies.
#[derive(Debug, Clone, Copy)]
struct LlcRange {
    first: u64,
    last: u64,
    write: bool,
}

/// Why [`Machine::macro_replay`] refused to apply an effect. Every
/// refusal is recoverable: the host simply executes the request for
/// real (and typically re-captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayRefusal {
    /// A capture is in progress on this machine.
    CaptureActive,
    /// The event trace is enabled; replay records no events.
    TraceEnabled,
    /// The machine's replay epoch moved since the effect was captured.
    StaleEpoch,
    /// The installed chaos plan might fire within the replayed ticks
    /// (or a stall window is open).
    ChaosUnsafe,
    /// A touched core's TLB no longer matches the capture-time state.
    TlbMismatch,
    /// A touched LLC line has been evicted since capture.
    LlcEvicted,
}

/// In-flight capture state: snapshots taken at
/// [`Machine::macro_capture_begin`] plus the raw ops recorded since.
#[derive(Debug)]
pub struct MacroRecorder {
    core: usize,
    worker: Option<usize>,
    epoch: u64,
    cycles: Vec<u64>,
    breakdowns: Vec<CycleBreakdown>,
    enclave_cycles: HashMap<Option<EnclaveId>, CycleBreakdown>,
    stats: Stats,
    next_span_id: u64,
    mee_dec: u64,
    mee_enc: u64,
    llc_misses: u64,
    chaos: Option<ChaosStats>,
    /// `(core, fingerprint)` for the declared cores only — cycle movement
    /// anywhere else disqualifies the capture, so no other core's TLB
    /// pre-state can matter.
    tlb_fingerprints: Vec<(usize, u64)>,
    tlb_ops: Vec<(usize, TlbOp)>,
    llc_ranges: Vec<LlcRange>,
    eenter_eids: Vec<u64>,
    samples: Vec<(ProfileEvent, HierLevel, u64)>,
}

impl MacroRecorder {
    pub(crate) fn note_tlb(&mut self, core: usize, op: TlbOp) {
        self.tlb_ops.push((core, op));
    }

    pub(crate) fn note_llc(&mut self, first: u64, last: u64, write: bool) {
        self.llc_ranges.push(LlcRange { first, last, write });
    }

    pub(crate) fn note_eenter(&mut self, raw_eid: u64) {
        self.eenter_eids.push(raw_eid);
    }

    pub(crate) fn note_sample(&mut self, event: ProfileEvent, level: HierLevel, cycles: u64) {
        self.samples.push((event, level, cycles));
    }
}

/// Per-core cycle movement of a captured effect.
#[derive(Debug, Clone)]
struct CoreDelta {
    core: usize,
    cycles: u64,
    breakdown: CycleBreakdown,
}

/// A memoized request effect: everything one clean execution did to the
/// machine, ready to re-apply. Produced by
/// [`Machine::macro_capture_end`], consumed by [`Machine::macro_replay`].
/// The `Default` value is the empty effect (no cycles, no ops, epoch 0) —
/// replaying it is a no-op on a machine still at epoch 0.
#[derive(Debug, Clone, Default)]
pub struct MacroEffect {
    epoch: u64,
    cores: Vec<CoreDelta>,
    enclaves: Vec<(Option<EnclaveId>, CycleBreakdown)>,
    stats: Stats,
    span_ids: u64,
    /// `(core, fingerprint)` for touched cores whose first TLB op is not
    /// a flush: their pre-state influenced the capture.
    tlb_preconditions: Vec<(usize, u64)>,
    tlb_ops: Vec<(usize, TlbOp)>,
    /// Folded LLC commit plan: one `(line, last_offset, dirty)` entry per
    /// distinct line (see [`crate::cache::Llc::replay_commit`]), applied
    /// in O(unique lines) instead of re-walking every access.
    llc_touched: Vec<(u64, u64, bool)>,
    /// Total line-accesses the capture performed (hit/tick advance).
    llc_accesses: u64,
    eenter_eids: Vec<u64>,
    samples: Vec<(ProfileEvent, HierLevel, u64)>,
}

impl MacroEffect {
    /// The machine epoch this effect was captured under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total cycles the effect advances across all cores.
    pub fn replayed_cycles(&self) -> u64 {
        self.cores.iter().map(|d| d.cycles).sum()
    }

    /// EENTER transitions folded into the effect.
    pub fn eenter_count(&self) -> usize {
        self.eenter_eids.len()
    }
}

fn stats_delta(now: &Stats, then: &Stats) -> Stats {
    Stats {
        ecalls: now.ecalls - then.ecalls,
        ocalls: now.ocalls - then.ocalls,
        n_ecalls: now.n_ecalls - then.n_ecalls,
        n_ocalls: now.n_ocalls - then.n_ocalls,
        aexes: now.aexes - then.aexes,
        eresumes: now.eresumes - then.eresumes,
        switchless_ocalls: now.switchless_ocalls - then.switchless_ocalls,
        tlb_misses: now.tlb_misses - then.tlb_misses,
        faults: now.faults - then.faults,
        ewb_pages: now.ewb_pages - then.ewb_pages,
        eldu_pages: now.eldu_pages - then.eldu_pages,
        ipis: now.ipis - then.ipis,
        span_opens: now.span_opens - then.span_opens,
        span_closes: now.span_closes - then.span_closes,
    }
}

fn breakdown_delta(now: &CycleBreakdown, then: &CycleBreakdown) -> CycleBreakdown {
    let mut d = CycleBreakdown::default();
    for (cat, v) in now.iter() {
        d.add(cat, v - then.get(cat));
    }
    d
}

/// True when `now` differs from `then` only by `eenters` quiet trigger
/// ticks (no injection counter moved).
fn chaos_quiet(now: &ChaosStats, then: &ChaosStats, eenters: u64) -> bool {
    now.eenters_seen == then.eenters_seen + eenters
        && now.aex_storms == then.aex_storms
        && now.forced_evictions == then.forced_evictions
        && now.tamperings == then.tamperings
        && now.crashes == then.crashes
        && now.stalls == then.stalls
        && now.migrations == then.migrations
}

impl Machine {
    /// Starts recording a macro-op capture bracketing one request.
    /// `core` is the entering (scheduler) core; `worker` the switchless
    /// reply core, if any — the only cores the capture may touch.
    ///
    /// Returns `false` (and records nothing) when a capture is already
    /// active or the event trace is enabled (replay records no trace
    /// events, so caching while tracing would desynchronize the ring).
    pub fn macro_capture_begin(&mut self, core: usize, worker: Option<usize>) -> bool {
        if self.macro_rec.is_some() || self.trace().is_enabled() {
            return false;
        }
        let rec = MacroRecorder {
            core,
            worker,
            epoch: self.replay_epoch(),
            cycles: self.cores.iter().map(|c| c.cycles).collect(),
            breakdowns: self.cores.iter().map(|c| c.breakdown).collect(),
            enclave_cycles: self.enclave_cycles.clone(),
            stats: self.stats(),
            next_span_id: self.next_span_id,
            mee_dec: self.mee().lines_decrypted(),
            mee_enc: self.mee().lines_encrypted(),
            llc_misses: self.llc.misses(),
            chaos: self.chaos_stats(),
            tlb_fingerprints: [Some(core), worker]
                .into_iter()
                .flatten()
                .map(|c| (c, self.cores[c].tlb.logical_fingerprint()))
                .collect(),
            tlb_ops: Vec::with_capacity(64),
            llc_ranges: Vec::with_capacity(256),
            eenter_eids: Vec::with_capacity(8),
            samples: Vec::with_capacity(32),
        };
        self.macro_rec = Some(Box::new(rec));
        true
    }

    /// Abandons an in-flight capture (request failed, retried, or took a
    /// fault): nothing is produced, recording stops.
    pub fn macro_capture_abort(&mut self) {
        self.macro_rec = None;
    }

    /// Finishes a capture. Returns the memoized effect only when the
    /// bracketed execution was provably quiet (see the module docs);
    /// otherwise returns `None` and the request simply isn't cached.
    pub fn macro_capture_end(&mut self) -> Option<MacroEffect> {
        let rec = *self.macro_rec.take()?;
        if self.replay_epoch() != rec.epoch || self.trace().is_enabled() {
            return None;
        }
        // All-hit requirement: any LLC miss means DRAM/MEE state moved in
        // ways a replay could not reproduce against different residency.
        if self.llc.misses() != rec.llc_misses
            || self.mee().lines_decrypted() != rec.mee_dec
            || self.mee().lines_encrypted() != rec.mee_enc
        {
            return None;
        }
        let stats = stats_delta(&self.stats(), &rec.stats);
        if stats.faults != 0
            || stats.aexes != 0
            || stats.eresumes != 0
            || stats.ewb_pages != 0
            || stats.eldu_pages != 0
            || stats.ipis != 0
            || stats.span_opens != stats.span_closes
        {
            return None;
        }
        match (self.chaos_stats(), rec.chaos) {
            (None, None) => {}
            (Some(now), Some(then)) if chaos_quiet(&now, &then, rec.eenter_eids.len() as u64) => {}
            _ => return None,
        }
        // Cycle movement must be confined to the declared cores.
        let mut cores = Vec::new();
        for (i, c) in self.cores.iter().enumerate() {
            if c.cycles == rec.cycles[i] {
                continue;
            }
            if i != rec.core && Some(i) != rec.worker {
                return None;
            }
            cores.push(CoreDelta {
                core: i,
                cycles: c.cycles - rec.cycles[i],
                breakdown: breakdown_delta(&c.breakdown, &rec.breakdowns[i]),
            });
        }
        if rec
            .tlb_ops
            .iter()
            .any(|&(c, _)| c != rec.core && Some(c) != rec.worker)
        {
            return None;
        }
        let mut enclaves: Vec<(Option<EnclaveId>, CycleBreakdown)> = Vec::new();
        for (eid, cur) in &self.enclave_cycles {
            let prev = rec.enclave_cycles.get(eid).copied().unwrap_or_default();
            let d = breakdown_delta(cur, &prev);
            if d.total() > 0 {
                enclaves.push((*eid, d));
            }
        }
        enclaves.sort_by_key(|(eid, _)| eid.map(|e| e.0));
        // A touched core whose first recorded TLB op is a flush starts
        // from a clean slate; any other touched core's behaviour depended
        // on its TLB pre-state, which replay must see unchanged.
        let mut tlb_preconditions = Vec::new();
        for d in &cores {
            let first = rec.tlb_ops.iter().find(|&&(c, _)| c == d.core);
            if !matches!(first, Some((_, TlbOp::Flush))) {
                let fp = rec
                    .tlb_fingerprints
                    .iter()
                    .find(|&&(c, _)| c == d.core)
                    .map(|&(_, fp)| fp)
                    .expect("touched cores are declared cores");
                tlb_preconditions.push((d.core, fp));
            }
        }
        // Fold the raw access ranges into the per-unique-line commit plan:
        // last-access offset and OR-ed dirty bit per line, plus the total
        // access count. Replay applies this in O(unique lines); a request
        // re-touches the same message buffers many times, so unique lines
        // are typically a small fraction of accesses.
        let mut llc_accesses = 0u64;
        let mut fold: HashMap<u64, (u64, bool)> = HashMap::new();
        for r in &rec.llc_ranges {
            for line in r.first..=r.last {
                let slot = fold.entry(line).or_insert((0, false));
                slot.0 = llc_accesses;
                slot.1 |= r.write;
                llc_accesses += 1;
            }
        }
        let mut llc_touched: Vec<(u64, u64, bool)> = fold
            .into_iter()
            .map(|(line, (off, dirty))| (line, off, dirty))
            .collect();
        llc_touched.sort_unstable_by_key(|&(line, _, _)| line);
        Some(MacroEffect {
            epoch: rec.epoch,
            cores,
            enclaves,
            stats,
            span_ids: self.next_span_id - rec.next_span_id,
            tlb_preconditions,
            tlb_ops: rec.tlb_ops,
            llc_touched,
            llc_accesses,
            eenter_eids: rec.eenter_eids,
            samples: rec.samples,
        })
    }

    /// Re-applies a memoized effect, or refuses without touching
    /// anything. Check-then-commit: every precondition is verified
    /// before the first mutation, so a refusal leaves the machine
    /// byte-identical to before the call.
    ///
    /// # Errors
    ///
    /// Returns the [`ReplayRefusal`] naming the failed precondition; the
    /// caller falls back to real execution.
    pub fn macro_replay(&mut self, effect: &MacroEffect) -> Result<(), ReplayRefusal> {
        if self.macro_rec.is_some() {
            return Err(ReplayRefusal::CaptureActive);
        }
        if self.trace().is_enabled() {
            return Err(ReplayRefusal::TraceEnabled);
        }
        if self.replay_epoch() != effect.epoch {
            return Err(ReplayRefusal::StaleEpoch);
        }
        if let Some(plan) = &self.chaos {
            if !plan.replay_safe(&effect.eenter_eids) {
                return Err(ReplayRefusal::ChaosUnsafe);
            }
        }
        for &(core, fp) in &effect.tlb_preconditions {
            if self.cores[core].tlb.logical_fingerprint() != fp {
                return Err(ReplayRefusal::TlbMismatch);
            }
        }
        for &(line, _, _) in &effect.llc_touched {
            if !self.llc.contains(line) {
                return Err(ReplayRefusal::LlcEvicted);
            }
        }
        // Commit. Raw TLB ops are re-executed so FIFO order and flush
        // counters advance exactly as the real execution's did; the LLC
        // effect is applied as the pre-folded commit plan (equivalent to
        // re-access, see [`crate::cache::Llc::replay_commit`] — every
        // checked line is resident and hits never evict).
        for &(core, op) in &effect.tlb_ops {
            match op {
                TlbOp::Flush => self.cores[core].tlb.flush(),
                TlbOp::Insert { vpn, entry } => self.cores[core].tlb.insert(vpn, entry),
            }
        }
        self.llc
            .replay_commit(&effect.llc_touched, effect.llc_accesses);
        for d in &effect.cores {
            let c = &mut self.cores[d.core];
            c.cycles += d.cycles;
            c.breakdown.merge(&d.breakdown);
        }
        for (eid, d) in &effect.enclaves {
            self.enclave_cycles.entry(*eid).or_default().merge(d);
        }
        self.stats_mut().merge(&effect.stats);
        self.next_span_id += effect.span_ids;
        for &(event, level, cycles) in &effect.samples {
            self.profile_record(event, level, cycles);
        }
        if let Some(plan) = self.chaos.as_mut() {
            plan.advance_quiet(effect.eenter_eids.len() as u64);
        }
        Ok(())
    }

    /// Hook for transition instructions: notes an EENTER into `raw_eid`
    /// while a capture is active (drives chaos-trigger-clock replay).
    pub(crate) fn macro_note_eenter(&mut self, raw_eid: u64) {
        if let Some(rec) = self.macro_rec.as_deref_mut() {
            rec.note_eenter(raw_eid);
        }
    }
}
