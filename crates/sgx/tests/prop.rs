//! Property-based tests for the simulator substrate.

use ne_sgx::addr::{Ppn, VirtAddr, VirtRange, PAGE_SIZE};
use ne_sgx::cache::{CacheAccess, Llc};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::ProcessId;
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::instr::PageSource;
use ne_sgx::machine::Machine;
use ne_sgx::mem::Dram;
use ne_sgx::SigStruct;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// DRAM behaves like a flat byte array (reference-model equivalence).
    #[test]
    fn dram_matches_reference_model(
        ops in prop::collection::vec(
            (0..64u64, 0..4000usize, prop::collection::vec(any::<u8>(), 1..64)),
            1..50,
        )
    ) {
        let mut dram = Dram::new(64);
        let mut reference: HashMap<(u64, usize), u8> = HashMap::new();
        for (ppn, offset, data) in &ops {
            let offset = (*offset).min(PAGE_SIZE - data.len());
            dram.write(Ppn(*ppn), offset, data);
            for (i, b) in data.iter().enumerate() {
                reference.insert((*ppn, offset + i), *b);
            }
        }
        for (ppn, offset, data) in &ops {
            let offset = (*offset).min(PAGE_SIZE - data.len());
            let mut buf = vec![0u8; data.len()];
            dram.read(Ppn(*ppn), offset, &mut buf);
            for (i, got) in buf.iter().enumerate() {
                let want = reference.get(&(*ppn, offset + i)).copied().unwrap_or(0);
                prop_assert_eq!(*got, want);
            }
        }
    }

    /// The cache's hit+miss counters always equal the access count, and
    /// an immediate re-access of the same line always hits.
    #[test]
    fn cache_accounting_consistent(
        lines in prop::collection::vec((0..4096u64, any::<bool>()), 1..200)
    ) {
        let mut llc = Llc::new(64 * 1024, 8);
        for (i, (line, write)) in lines.iter().enumerate() {
            llc.access(*line, *write);
            prop_assert_eq!(llc.hits() + llc.misses(), 2 * i as u64 + 1);
            prop_assert_eq!(llc.access(*line, false), CacheAccess::Hit);
        }
        prop_assert_eq!(llc.hits() + llc.misses(), 2 * lines.len() as u64);
    }

    /// Enclave measurement is a pure function of the build recipe: same
    /// pages → same MRENCLAVE; any different page content → different.
    #[test]
    fn measurement_binds_content(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..6),
        tweak_page in any::<prop::sample::Index>(),
    ) {
        let build = |m: &mut Machine, base: u64, pages: &[Vec<u8>]| {
            let base = VirtAddr(base);
            let eid = m
                .ecreate(
                    ProcessId(0),
                    VirtRange::new(base, pages.len() as u64 * PAGE_SIZE as u64),
                )
                .unwrap();
            for (i, content) in pages.iter().enumerate() {
                let va = base.add(i as u64 * PAGE_SIZE as u64);
                m.eadd(eid, va, PageType::Reg, PageSource::Image(content.clone()), PagePerms::RW)
                    .unwrap();
                m.eextend(eid, va).unwrap();
            }
            m.enclaves().get(eid).unwrap().measurement.finalize()
        };
        let mut m = Machine::new(HwConfig::small());
        let a = build(&mut m, 0x10_0000, &pages);
        let b = build(&mut m, 0x10_0000 + 0x100_0000, &pages);
        // The same recipe at a different base is the *same* identity
        // (SGX measures size and page offsets, never the load address —
        // what lets a migrated enclave re-derive its seal key)...
        prop_assert_eq!(a, b);
        // ...and is deterministic across machines for the identical recipe.
        let mut m2 = Machine::new(HwConfig::small());
        let a2 = build(&mut m2, 0x10_0000, &pages);
        prop_assert_eq!(a, a2);
        // And any content change shows up.
        let mut tweaked = pages.clone();
        let idx = tweak_page.index(tweaked.len());
        tweaked[idx][0] ^= 0xFF;
        let mut m3 = Machine::new(HwConfig::small());
        let a3 = build(&mut m3, 0x10_0000, &tweaked);
        prop_assert_ne!(a, a3);
    }

    /// EWB/ELDU round-trips arbitrary page contents and re-evicting the
    /// same page yields a different (fresh) blob every time.
    #[test]
    fn paging_roundtrip_arbitrary_content(
        content in prop::collection::vec(any::<u8>(), 1..256),
        rounds in 1..4usize,
    ) {
        let mut m = Machine::new(HwConfig::small());
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 2 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        let data_va = base.add(PAGE_SIZE as u64);
        m.eadd(eid, data_va, PageType::Reg, PageSource::Image(content.clone()), PagePerms::RW)
            .unwrap();
        m.eextend(eid, data_va).unwrap();
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(b"prop", measured)).unwrap();
        let mut last_sealed = Vec::new();
        for _ in 0..rounds {
            let blob = m.ewb(eid, data_va).unwrap();
            prop_assert_ne!(&blob.sealed, &last_sealed, "fresh sealing each eviction");
            last_sealed = blob.sealed.clone();
            m.eldu(&blob).unwrap();
        }
        m.eenter(0, eid, base).unwrap();
        prop_assert_eq!(m.read(0, data_va, content.len()).unwrap(), content);
    }

    /// Whatever an enclave writes, a physical probe of the backing frame
    /// never shows the plaintext (MEE confidentiality), while untrusted
    /// frames show exactly what was written.
    #[test]
    fn physical_probe_confidentiality(
        secret in prop::collection::vec(any::<u8>(), 16..128),
    ) {
        let mut m = Machine::new(HwConfig::small());
        let base = VirtAddr(0x10_0000);
        let eid = m
            .ecreate(ProcessId(0), VirtRange::new(base, 2 * PAGE_SIZE as u64))
            .unwrap();
        m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
        let data_va = base.add(PAGE_SIZE as u64);
        m.eadd(eid, data_va, PageType::Reg, PageSource::Zeros, PagePerms::RW).unwrap();
        m.eextend(eid, data_va).unwrap();
        let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
        m.einit(eid, &SigStruct::new(b"prop", measured)).unwrap();
        m.eenter(0, eid, base).unwrap();
        m.write(0, data_va, &secret).unwrap();
        m.eexit(0).unwrap();
        let frame = m.os_lookup(ProcessId(0), data_va.vpn()).unwrap().ppn;
        let probe = m.physical_probe(frame);
        prop_assert!(
            !probe.windows(secret.len()).any(|w| w == &secret[..]),
            "plaintext visible on the DRAM bus"
        );
        // Untrusted memory, by contrast, is plaintext to the prober.
        let uva = m.os_alloc_untrusted(ProcessId(0), 1);
        m.write(0, uva, &secret).unwrap();
        let uframe = m.os_lookup(ProcessId(0), uva.vpn()).unwrap().ppn;
        prop_assert_eq!(&m.physical_probe(uframe)[..secret.len()], &secret[..]);
    }
}
