//! The differential oracle: twin machines, one on the optimized memory
//! pipeline and one on the naive reference path
//! ([`HwConfig::reference_path`]), driven through identical randomized
//! traffic — reads, writes, fetches, physical tampering, TLB flushes,
//! enclave re-entries, and chaos plans. Every architecturally visible
//! output must be byte-identical: per-access outcomes (including the
//! fault sequence), cycle totals, per-category breakdowns, cache/MEE
//! counters, the event trace, and the full metrics export.

use ne_sgx::addr::{VirtAddr, VirtRange, LINE_SIZE, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::{EnclaveId, ProcessId};
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::fault::FaultPlan;
use ne_sgx::instr::PageSource;
use ne_sgx::machine::{AccessKind, Machine};
use ne_sgx::metrics::MachineMetrics;
use ne_sgx::SigStruct;
use proptest::prelude::*;

const BASE: u64 = 0x10_0000;
const DATA_PAGES: u64 = 4;

fn build_machine(reference: bool, chaos: Option<&str>) -> (Machine, EnclaveId) {
    let mut cfg = HwConfig::small();
    cfg.reference_path = reference;
    cfg.trace_events = true;
    let mut m = Machine::new(cfg);
    if let Some(spec) = chaos {
        m.install_chaos(FaultPlan::parse(spec, 77).unwrap());
    }
    let base = VirtAddr(BASE);
    let eid = m
        .ecreate(
            ProcessId(0),
            VirtRange::new(base, (DATA_PAGES + 1) * PAGE_SIZE as u64),
        )
        .unwrap();
    m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
    for i in 1..=DATA_PAGES {
        let va = base.add(i * PAGE_SIZE as u64);
        m.eadd(eid, va, PageType::Reg, PageSource::Zeros, PagePerms::RWX)
            .unwrap();
        m.eextend(eid, va).unwrap();
    }
    let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
    m.einit(eid, &SigStruct::new(b"oracle", measured)).unwrap();
    (m, eid)
}

/// One step of randomized traffic. Offsets index into the enclave's data
/// pages; lengths may cross line and page boundaries.
#[derive(Debug, Clone)]
enum Op {
    Read { off: u64, len: usize },
    Write { off: u64, len: usize, fill: u8 },
    Fetch { off: u64 },
    Tamper { off: u64, len: usize },
    FlushTlb,
    Reenter,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = (DATA_PAGES * PAGE_SIZE as u64) - 1;
    // The vendored proptest's `prop_oneof` is uniform; repeated arms bias
    // toward data traffic over the rarer structural ops.
    prop_oneof![
        (0..span, 1..300usize).prop_map(|(off, len)| Op::Read { off, len }),
        (0..span, 1..300usize).prop_map(|(off, len)| Op::Read { off, len }),
        (0..span, 1..300usize, any::<u8>()).prop_map(|(off, len, fill)| Op::Write {
            off,
            len,
            fill
        }),
        (0..span, 1..300usize, any::<u8>()).prop_map(|(off, len, fill)| Op::Write {
            off,
            len,
            fill
        }),
        (0..span).prop_map(|off| Op::Fetch { off }),
        (0..span, 1..(2 * LINE_SIZE)).prop_map(|(off, len)| Op::Tamper { off, len }),
        Just(Op::FlushTlb),
        Just(Op::Reenter),
    ]
}

/// Applies `op` to `m`, returning a log line that captures everything the
/// op observed (success/fault shape and any bytes read).
fn apply(m: &mut Machine, eid: EnclaveId, op: &Op) -> String {
    let data_base = BASE + PAGE_SIZE as u64;
    let clamp = |off: u64, len: usize| -> usize {
        let max = DATA_PAGES * PAGE_SIZE as u64 - off;
        len.min(max as usize)
    };
    match *op {
        Op::Read { off, len } => {
            let len = clamp(off, len);
            let mut buf = vec![0u8; len];
            let r = m.read_into(0, VirtAddr(data_base + off), &mut buf);
            format!("read {off}+{len}: {r:?} {buf:02x?}")
        }
        Op::Write { off, len, fill } => {
            let len = clamp(off, len);
            let data = vec![fill; len];
            let r = m.write(0, VirtAddr(data_base + off), &data);
            format!("write {off}+{len}: {r:?}")
        }
        Op::Fetch { off } => {
            let r = m.fetch(0, VirtAddr(data_base + off));
            format!("fetch {off}: {r:?}")
        }
        Op::Tamper { off, len } => {
            // Resolve the physical line through an explicit translate so
            // both twins pay the identical lookup, then flip DRAM bytes.
            let len = clamp(off, len);
            match m.translate(0, VirtAddr(data_base + off), AccessKind::Read) {
                Ok(ne_sgx::machine::Translated::Phys(pa, _)) => {
                    // DRAM writes are page-bounded; tampering stays so too.
                    let len = len.min(PAGE_SIZE - pa.page_offset());
                    m.physical_tamper(pa, &vec![0x5a; len]);
                    format!("tamper {off}+{len}: at {:#x}", pa.0)
                }
                other => format!("tamper {off}+{len}: translate {other:?}"),
            }
        }
        Op::FlushTlb => {
            m.flush_tlb(0);
            "flush".to_string()
        }
        Op::Reenter => {
            let out = m.eexit(0);
            let back = m.eenter(0, eid, VirtAddr(BASE));
            format!("reenter: {out:?} {back:?}")
        }
    }
}

/// Runs the trace on one machine and snapshots every observable output.
fn run_trace(reference: bool, chaos: Option<&str>, ops: &[Op]) -> (Vec<String>, String, String) {
    let (mut m, eid) = build_machine(reference, chaos);
    let mut log = vec![format!("enter: {:?}", m.eenter(0, eid, VirtAddr(BASE)))];
    for op in ops {
        log.push(apply(&mut m, eid, op));
    }
    log.push(format!(
        "end: cycles {} total {} llc {}/{} mee {}/{} stats {:?}",
        m.cycles(0),
        m.total_cycles(),
        m.llc().hits(),
        m.llc().misses(),
        m.mee().lines_decrypted(),
        m.mee().lines_encrypted(),
        m.stats(),
    ));
    let metrics = MachineMetrics::capture(&m).to_json();
    let trace = format!("{:?}", m.trace());
    (log, metrics, trace)
}

fn chaos_spec(idx: usize) -> Option<&'static str> {
    [
        None,
        Some("mac:2"),
        Some("aex+evict"),
        Some("mac:1+stall:2"),
    ][idx % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Optimized and reference pipelines agree on every observable output
    /// for arbitrary traffic, with and without chaos plans: per-op
    /// outcomes and fault sequences, final counters, the event trace, and
    /// the byte-exact metrics export.
    #[test]
    fn optimized_pipeline_matches_reference(
        ops in prop::collection::vec(op_strategy(), 1..60),
        chaos_idx in 0..4usize,
    ) {
        let chaos = chaos_spec(chaos_idx);
        let (log_o, metrics_o, trace_o) = run_trace(false, chaos, &ops);
        let (log_r, metrics_r, trace_r) = run_trace(true, chaos, &ops);
        for (o, r) in log_o.iter().zip(log_r.iter()) {
            prop_assert_eq!(o, r);
        }
        prop_assert_eq!(log_o.len(), log_r.len());
        prop_assert_eq!(trace_o, trace_r, "event traces diverged");
        prop_assert_eq!(metrics_o, metrics_r, "metrics exports diverged");
    }
}

/// Deterministic pin of the same property on a hand-picked hostile trace:
/// tampering followed by faulting reads, a fetch through a tampered line,
/// recovery by overwrite, and re-entries under a MAC chaos plan.
#[test]
fn fixed_hostile_trace_is_identical_across_paths() {
    let ops = vec![
        Op::Write {
            off: 0,
            len: 4096,
            fill: 0xab,
        },
        Op::Read { off: 100, len: 200 },
        Op::Tamper { off: 128, len: 64 },
        Op::Read { off: 128, len: 8 },
        Op::Fetch { off: 130 },
        Op::Write {
            off: 128,
            len: 64,
            fill: 1,
        },
        Op::Read { off: 128, len: 8 },
        Op::Reenter,
        Op::Read { off: 0, len: 64 },
        Op::FlushTlb,
        Op::Read {
            off: 4000,
            len: 300,
        },
        Op::Reenter,
        Op::Read { off: 0, len: 16 },
    ];
    let (log_o, metrics_o, trace_o) = run_trace(false, Some("mac:2"), &ops);
    let (log_r, metrics_r, trace_r) = run_trace(true, Some("mac:2"), &ops);
    assert_eq!(log_o, log_r);
    assert_eq!(trace_o, trace_r);
    assert_eq!(metrics_o, metrics_r);
    // The trace must actually exercise the fault machinery, or this test
    // pins nothing.
    assert!(
        log_o.iter().any(|l| l.contains("Err")),
        "hostile trace produced no faults: {log_o:?}"
    );
}
