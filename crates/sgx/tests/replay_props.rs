//! Machine-level properties of macro-op capture/replay (`ne_sgx::replay`):
//! a replayed effect must leave the machine byte-identical to re-running
//! the captured sequence for real, and every soundness gate (epoch
//! staleness, dirty captures, TLB preconditions) must refuse rather than
//! diverge. The serving-path leg of this oracle lives in `ne-host`'s
//! `replay_oracle` suite.

use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::{EnclaveId, ProcessId};
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::instr::PageSource;
use ne_sgx::machine::Machine;
use ne_sgx::metrics::MachineMetrics;
use ne_sgx::replay::ReplayRefusal;
use ne_sgx::SigStruct;

const BASE: u64 = 0x10_0000;
const DATA_PAGES: u64 = 2;

fn build_machine() -> (Machine, EnclaveId) {
    let mut m = Machine::new(HwConfig::small());
    let base = VirtAddr(BASE);
    let eid = m
        .ecreate(
            ProcessId(0),
            VirtRange::new(base, (DATA_PAGES + 1) * PAGE_SIZE as u64),
        )
        .unwrap();
    m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
    for i in 1..=DATA_PAGES {
        let va = base.add(i * PAGE_SIZE as u64);
        m.eadd(eid, va, PageType::Reg, PageSource::Zeros, PagePerms::RWX)
            .unwrap();
        m.eextend(eid, va).unwrap();
    }
    let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
    m.einit(eid, &SigStruct::new(b"replay", measured)).unwrap();
    m.eenter(0, eid, base).unwrap();
    (m, eid)
}

/// The repeated "request body": a small all-resident read/write mix.
fn run_body(m: &mut Machine, seed: u64) {
    let data = VirtAddr(BASE + PAGE_SIZE as u64);
    let mut buf = [0u8; 96];
    for i in 0..4u64 {
        let off = (seed * 640 + i * 160) % (DATA_PAGES * PAGE_SIZE as u64 - 256);
        m.write(0, data.add(off), &[i as u8; 96]).unwrap();
        m.read_into(0, data.add(off), &mut buf).unwrap();
    }
}

/// Warms TLB and LLC so a subsequent `run_body` is all-hit (cacheable).
fn warm(m: &mut Machine, seed: u64) {
    run_body(m, seed);
}

#[test]
fn replayed_effect_is_byte_identical_to_reexecution() {
    // Twin machines, identical warm-up. One captures a body then replays
    // the effect; the other runs the body for real both times. Every
    // observable output must agree byte-for-byte.
    let (mut a, _) = build_machine();
    let (mut b, _) = build_machine();
    for m in [&mut a, &mut b] {
        warm(m, 0);
    }

    assert!(a.macro_capture_begin(0, None));
    run_body(&mut a, 0);
    let effect = a
        .macro_capture_end()
        .expect("warm all-hit body must be cacheable");
    assert!(effect.replayed_cycles() > 0, "effect must carry real work");
    a.macro_replay(&effect).expect("fresh effect must replay");

    run_body(&mut b, 0);
    run_body(&mut b, 0);

    assert_eq!(a.cycles(0), b.cycles(0), "core clock diverged");
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b.stats()));
    assert_eq!(
        MachineMetrics::capture(&a).to_json(),
        MachineMetrics::capture(&b).to_json(),
        "metrics exports diverged between replay and re-execution"
    );
}

#[test]
fn stale_epoch_is_refused() {
    let (mut m, _) = build_machine();
    warm(&mut m, 0);
    assert!(m.macro_capture_begin(0, None));
    run_body(&mut m, 0);
    let effect = m.macro_capture_end().expect("cacheable");
    m.bump_replay_epoch();
    assert_eq!(m.macro_replay(&effect), Err(ReplayRefusal::StaleEpoch));
}

#[test]
fn cold_capture_is_refused() {
    // A cold machine misses in the LLC, so the first execution of a body
    // is never cacheable — only warmed repeats are.
    let (mut m, _) = build_machine();
    assert!(m.macro_capture_begin(0, None));
    run_body(&mut m, 0);
    assert!(
        m.macro_capture_end().is_none(),
        "cold (LLC-missing) capture must be refused"
    );
}

#[test]
fn tlb_precondition_mismatch_is_refused() {
    let (mut m, _) = build_machine();
    warm(&mut m, 0);
    assert!(m.macro_capture_begin(0, None));
    run_body(&mut m, 0);
    let effect = m.macro_capture_end().expect("cacheable");
    // The capture relied on a warm TLB; flushing it invalidates the
    // fingerprint precondition.
    m.flush_tlb(0);
    assert_eq!(m.macro_replay(&effect), Err(ReplayRefusal::TlbMismatch));
}

#[test]
fn lifecycle_ops_bump_the_epoch() {
    let mut m = Machine::new(HwConfig::small());
    let before = m.replay_epoch();
    let base = VirtAddr(BASE);
    let eid = m
        .ecreate(ProcessId(0), VirtRange::new(base, 3 * PAGE_SIZE as u64))
        .unwrap();
    assert!(m.replay_epoch() > before, "ECREATE must bump the epoch");
    let at_create = m.replay_epoch();
    m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
    m.eadd(
        eid,
        base.add(PAGE_SIZE as u64),
        PageType::Reg,
        PageSource::Zeros,
        PagePerms::RWX,
    )
    .unwrap();
    m.eextend(eid, base.add(PAGE_SIZE as u64)).unwrap();
    let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
    m.einit(eid, &SigStruct::new(b"epoch", measured)).unwrap();
    assert!(
        m.replay_epoch() > at_create,
        "EADD/EINIT must bump the epoch"
    );
    let at_init = m.replay_epoch();
    m.eremove(eid).unwrap();
    assert!(m.replay_epoch() > at_init, "EREMOVE must bump the epoch");
}
