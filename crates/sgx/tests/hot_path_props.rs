//! Model-based property tests for the memory hot-path data structures.
//!
//! Each optimized structure (O(1)-FIFO + L0 micro-TLB, stamp-LRU LLC,
//! interval-indexed tamper set) is driven against a naive model that
//! replicates the pre-optimization implementation move for move: same
//! hits, same misses, same victims, in the same order. These are the
//! structure-level legs of the differential oracle; `diff_oracle.rs`
//! checks the same property end-to-end through the machine.

use ne_sgx::addr::Vpn;
use ne_sgx::cache::{CacheAccess, Llc};
use ne_sgx::epcm::PagePerms;
use ne_sgx::mee::Mee;
use ne_sgx::tlb::{Tlb, TlbEntry};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// The pre-optimization TLB: a HashMap plus a `Vec` FIFO that evicted
/// with `remove(0)`. No L0, no VecDeque.
struct ModelTlb {
    entries: HashMap<u64, TlbEntry>,
    order: Vec<u64>,
    capacity: usize,
}

impl ModelTlb {
    fn new(capacity: usize) -> Self {
        ModelTlb {
            entries: HashMap::new(),
            order: Vec::new(),
            capacity,
        }
    }

    fn lookup(&self, vpn: u64) -> Option<TlbEntry> {
        self.entries.get(&vpn).copied()
    }

    fn insert(&mut self, vpn: u64, entry: TlbEntry) {
        if self.entries.insert(vpn, entry).is_none() {
            self.order.push(vpn);
            if self.order.len() > self.capacity {
                let victim = self.order.remove(0);
                self.entries.remove(&victim);
            }
        }
    }

    fn flush(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    fn invalidate(&mut self, vpn: u64) {
        if self.entries.remove(&vpn).is_some() {
            self.order.retain(|&v| v != vpn);
        }
    }
}

/// The pre-optimization LLC set: a recency `Vec` that moved hit ways to
/// the back and evicted with `remove(0)`.
struct ModelLlc {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
}

impl ModelLlc {
    fn new(capacity_bytes: usize, ways: usize) -> Self {
        let lines = capacity_bytes / 64;
        ModelLlc {
            sets: vec![Vec::new(); lines / ways],
            ways,
        }
    }

    fn access(&mut self, line: u64, write: bool) -> CacheAccess {
        let idx = (line as usize) % self.sets.len();
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|w| w.0 == line) {
            let mut way = set.remove(pos);
            way.1 |= write;
            set.push(way);
            return CacheAccess::Hit;
        }
        let dirty_victim = if set.len() == self.ways {
            let victim = set.remove(0);
            victim.1.then_some(victim.0)
        } else {
            None
        };
        set.push((line, write));
        CacheAccess::Miss { dirty_victim }
    }
}

#[derive(Debug, Clone)]
enum TlbOp {
    Insert(u64, u64),
    LookupHot(u64),
    LookupCold(u64),
    Invalidate(u64),
    Flush,
}

fn tlb_op() -> impl Strategy<Value = TlbOp> {
    // The vendored proptest's `prop_oneof` is uniform; repeated arms give
    // inserts and hot lookups more weight than the rare structural ops.
    prop_oneof![
        (0..24u64, 0..64u64).prop_map(|(v, p)| TlbOp::Insert(v, p)),
        (0..24u64, 0..64u64).prop_map(|(v, p)| TlbOp::Insert(v, p)),
        (0..24u64).prop_map(TlbOp::LookupHot),
        (0..24u64).prop_map(TlbOp::LookupHot),
        (0..24u64).prop_map(TlbOp::LookupCold),
        (0..24u64).prop_map(TlbOp::Invalidate),
        Just(TlbOp::Flush),
    ]
}

proptest! {
    /// The VecDeque-FIFO + L0 TLB is observationally equal to the old
    /// `Vec::remove(0)` implementation under arbitrary interleavings of
    /// inserts, hot/cold lookups, precise shootdowns, and full flushes —
    /// including the L0 coherence hazards (stale copies after
    /// invalidate/flush/eviction/update).
    #[test]
    fn tlb_matches_remove0_fifo_model(
        capacity in 1..12usize,
        ops in prop::collection::vec(tlb_op(), 1..200),
    ) {
        let mut tlb = Tlb::new(capacity);
        let mut model = ModelTlb::new(capacity);
        for op in &ops {
            match *op {
                TlbOp::Insert(v, p) => {
                    let e = TlbEntry { ppn: ne_sgx::addr::Ppn(p), perms: PagePerms::RW };
                    tlb.insert(Vpn(v), e);
                    model.insert(v, e);
                }
                TlbOp::LookupHot(v) => {
                    prop_assert_eq!(tlb.lookup_hot(Vpn(v)), model.lookup(v), "hot {}", v);
                }
                TlbOp::LookupCold(v) => {
                    prop_assert_eq!(tlb.lookup(Vpn(v)), model.lookup(v), "cold {}", v);
                }
                TlbOp::Invalidate(v) => {
                    tlb.invalidate(Vpn(v));
                    model.invalidate(v);
                }
                TlbOp::Flush => {
                    tlb.flush();
                    model.flush();
                }
            }
            prop_assert_eq!(tlb.len(), model.entries.len());
        }
        // Post-trace sweep: every vpn agrees through both lookup paths.
        for v in 0..24 {
            prop_assert_eq!(tlb.lookup(Vpn(v)), model.lookup(v));
            prop_assert_eq!(tlb.lookup_hot(Vpn(v)), model.lookup(v));
        }
    }

    /// The stamp-based LRU picks the same victims (in the same order, with
    /// the same dirty bits) as the old move-to-back recency list.
    #[test]
    fn llc_stamp_lru_matches_recency_list_model(
        accesses in prop::collection::vec((0..64u64, any::<bool>()), 1..300),
    ) {
        let mut llc = Llc::new(1024, 2); // 8 sets, 2 ways: heavy conflict
        let mut model = ModelLlc::new(1024, 2);
        for (line, write) in &accesses {
            prop_assert_eq!(
                llc.access(*line, *write),
                model.access(*line, *write),
                "line {} write {}", line, write
            );
        }
    }

    /// `access_range` is exactly a per-line `access` loop: same counters,
    /// same victims, same order.
    #[test]
    fn llc_access_range_equals_per_line_loop(
        ranges in prop::collection::vec((0..96u64, 0..32u64, any::<bool>()), 1..60),
    ) {
        let mut batched = Llc::new(2048, 4);
        let mut scalar = Llc::new(2048, 4);
        for (first, span, write) in &ranges {
            let last = first + span;
            let mut victims = Vec::new();
            let (hits, misses) = batched.access_range(*first, last, *write, &mut victims);
            let mut want_victims = Vec::new();
            let mut want_hits = 0u64;
            let mut want_misses = 0u64;
            for line in *first..=last {
                match scalar.access(line, *write) {
                    CacheAccess::Hit => want_hits += 1,
                    CacheAccess::Miss { dirty_victim } => {
                        want_misses += 1;
                        want_victims.extend(dirty_victim);
                    }
                }
            }
            prop_assert_eq!((hits, misses), (want_hits, want_misses));
            prop_assert_eq!(victims, want_victims);
            prop_assert_eq!(batched.hits(), scalar.hits());
            prop_assert_eq!(batched.misses(), scalar.misses());
        }
    }

    /// The interval-indexed tamper set answers every range query exactly
    /// like the per-line HashSet scan, across arbitrary mark/clear
    /// sequences (merges, splits, adjacency, overlaps).
    #[test]
    fn mee_interval_index_matches_scan(
        ops in prop::collection::vec(
            (any::<bool>(), 0..2048u64, 0..512usize),
            1..80,
        ),
        queries in prop::collection::vec((0..2560u64, 0..768usize), 1..60),
    ) {
        let mut mee = Mee::new([0u8; 32]);
        let mut marked: HashSet<u64> = HashSet::new();
        for (mark, paddr, len) in &ops {
            if *mark {
                mee.mark_tampered(*paddr, *len);
            } else {
                mee.clear_tamper(*paddr, *len);
            }
            if *len > 0 {
                let first = paddr / 64;
                let last = (paddr + *len as u64 - 1) / 64;
                for l in first..=last {
                    if *mark {
                        marked.insert(l);
                    } else {
                        marked.remove(&l);
                    }
                }
            }
        }
        for (paddr, len) in &queries {
            let want = mee.any_tampered_scan(*paddr, *len);
            prop_assert_eq!(mee.any_tampered(*paddr, *len), want, "({}, {})", paddr, len);
            let independent = *len > 0
                && (paddr / 64..=(paddr + *len as u64 - 1) / 64).any(|l| marked.contains(&l));
            prop_assert_eq!(want, independent, "scan vs independent set");
        }
    }
}
