//! Property tests for the per-shard metrics merge.
//!
//! The sharded cluster captures one [`MachineMetrics`] snapshot per
//! shard, namespaces each with `rebase_shard`, and folds them with
//! `absorb`. These tests pin down the algebra that makes the merged
//! report trustworthy:
//!
//! - folding the (rebased) snapshots in **any** fixed order produces the
//!   same merged report — `absorb` is commutative and associative over
//!   namespaced snapshots;
//! - the merged report always passes the §5 attribution identity checker
//!   ([`MachineMetrics::check`]), because every identity is a sum over
//!   the components the fold adds;
//! - `merge_shards` (the canonical shard-order fold) agrees with every
//!   permuted fold.

use ne_sgx::config::HwConfig;
use ne_sgx::enclave::ProcessId;
use ne_sgx::machine::Machine;
use ne_sgx::metrics::MachineMetrics;
use proptest::prelude::*;

/// A deterministic per-shard workload: a few pages of untrusted traffic
/// (TLB walks, MEE crypto, LLC churn) plus app compute on a second core.
fn shard_snapshot(work: u64, pages: usize) -> MachineMetrics {
    let mut m = Machine::new(HwConfig::small());
    let va = m.os_alloc_untrusted(ProcessId(0), pages);
    for p in 0..pages {
        let addr = ne_sgx::addr::VirtAddr(va.0 + (p as u64) * 4096);
        m.write(0, addr, b"shard workload page traffic").unwrap();
        m.read(0, addr, 27).unwrap();
    }
    m.charge(1, work);
    let snap = m.metrics();
    snap.check().expect("workload snapshot is self-consistent");
    snap
}

/// Folds the snapshots in the order given by `order`.
fn fold_in_order(snaps: &[MachineMetrics], order: &[usize]) -> MachineMetrics {
    let mut merged = snaps[order[0]].clone();
    for &i in &order[1..] {
        merged
            .absorb(&snaps[i])
            .expect("absorb namespaced snapshot");
    }
    merged
}

/// All permutations of `0..n` (Heap's algorithm; `n` stays tiny here).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(k: usize, a: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            go(k - 1, a, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    let mut a: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    go(n, &mut a, &mut out);
    out
}

proptest! {
    #[test]
    fn any_fold_order_yields_the_same_checked_report(
        works in proptest::collection::vec(1u64..50_000, 2..5),
    ) {
        // Distinct workloads per shard, namespaced like the cluster does.
        let raw: Vec<MachineMetrics> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| shard_snapshot(w + i as u64, 1 + i % 3))
            .collect();
        let rebased: Vec<MachineMetrics> = raw
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut s = s.clone();
                s.rebase_shard(i);
                s
            })
            .collect();

        // The canonical merge (shard-index order, rebasing internally).
        let canonical = MachineMetrics::merge_shards(&raw).expect("merge");
        canonical.check().expect("merged report passes the identity checker");
        prop_assert_eq!(
            canonical.total_cycles,
            raw.iter().map(|s| s.total_cycles).sum::<u64>()
        );

        // Every permutation of the fold produces the identical report.
        for order in permutations(rebased.len()) {
            let folded = fold_in_order(&rebased, &order);
            prop_assert_eq!(&folded, &canonical, "fold order {:?} diverged", order);
            folded.check().expect("permuted fold passes the identity checker");
        }
    }

    #[test]
    fn absorb_is_associative(
        wa in 1u64..10_000,
        wb in 1u64..10_000,
        wc in 1u64..10_000,
    ) {
        let mk = |i: usize, w: u64| {
            let mut s = shard_snapshot(w, 1 + i);
            s.rebase_shard(i);
            s
        };
        let (a, b, c) = (mk(0, wa), mk(1, wb), mk(2, wc));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.absorb(&b).unwrap();
        left.absorb(&c).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.absorb(&c).unwrap();
        let mut right = a.clone();
        right.absorb(&bc).unwrap();
        prop_assert_eq!(left, right);
    }
}
