//! Cross-process and resource-pressure tests for the simulator.

use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::{EnclaveId, ProcessId};
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::instr::PageSource;
use ne_sgx::machine::Machine;
use ne_sgx::{FaultKind, SgxError, SigStruct};

fn build(m: &mut Machine, pid: ProcessId, base: u64, pages: u64) -> EnclaveId {
    let base = VirtAddr(base);
    let eid = m
        .ecreate(pid, VirtRange::new(base, (pages + 1) * PAGE_SIZE as u64))
        .unwrap();
    m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
    for i in 1..=pages {
        let va = base.add(i * PAGE_SIZE as u64);
        m.eadd(eid, va, PageType::Reg, PageSource::Zeros, PagePerms::RW)
            .unwrap();
        m.eextend(eid, va).unwrap();
    }
    let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
    m.einit(eid, &SigStruct::new(b"iso", measured)).unwrap();
    eid
}

/// Two processes may use the same virtual addresses for different
/// enclaves; neither can reach the other's EPC pages.
#[test]
fn same_va_different_processes_isolated() {
    let mut m = Machine::new(HwConfig::small());
    let pid2 = m.spawn_process();
    let base = 0x10_0000u64;
    let e1 = build(&mut m, ProcessId(0), base, 2);
    let e2 = build(&mut m, pid2, base, 2);
    let data = VirtAddr(base + PAGE_SIZE as u64);
    // Write distinct secrets under the same VA in each process.
    m.eenter(0, e1, VirtAddr(base)).unwrap();
    m.write(0, data, b"process-zero").unwrap();
    m.eexit(0).unwrap();
    m.set_core_process(0, pid2);
    m.eenter(0, e2, VirtAddr(base)).unwrap();
    m.write(0, data, b"process-two!").unwrap();
    assert_eq!(m.read(0, data, 12).unwrap(), b"process-two!");
    m.eexit(0).unwrap();
    m.set_core_process(0, ProcessId(0));
    m.eenter(0, e1, VirtAddr(base)).unwrap();
    assert_eq!(m.read(0, data, 12).unwrap(), b"process-zero");
    m.eexit(0).unwrap();
    m.audit_tlbs().unwrap();
    m.audit_epcm().unwrap();
}

/// Entering an enclave from the wrong process is rejected.
#[test]
fn cross_process_eenter_rejected() {
    let mut m = Machine::new(HwConfig::small());
    let pid2 = m.spawn_process();
    let e1 = build(&mut m, ProcessId(0), 0x10_0000, 1);
    m.set_core_process(0, pid2);
    let err = m.eenter(0, e1, VirtAddr(0x10_0000)).unwrap_err();
    assert!(matches!(err, SgxError::GeneralProtection(_)));
}

/// An enclave working set far larger than the TLB still validates
/// correctly on every refill sweep.
#[test]
fn tlb_pressure_revalidates_correctly() {
    let mut cfg = HwConfig::small();
    cfg.tlb_entries = 4;
    let mut m = Machine::new(cfg);
    let pages = 32u64;
    let eid = build(&mut m, ProcessId(0), 0x10_0000, pages);
    let base = VirtAddr(0x10_0000);
    m.eenter(0, eid, base).unwrap();
    for sweep in 0..3u8 {
        for i in 1..=pages {
            let va = base.add(i * PAGE_SIZE as u64);
            m.write(0, va, &[sweep, i as u8]).unwrap();
        }
        for i in 1..=pages {
            let va = base.add(i * PAGE_SIZE as u64);
            assert_eq!(m.read(0, va, 2).unwrap(), vec![sweep, i as u8]);
        }
        m.audit_tlbs().unwrap();
    }
    assert!(
        m.stats().tlb_misses > 3 * 2 * pages - 16,
        "a 4-entry TLB must keep missing over a 32-page set"
    );
}

/// EPC pages freed by EREMOVE are recycled for new enclaves, and the
/// recycled frames carry no residue.
#[test]
fn epc_recycling_has_no_residue() {
    let mut m = Machine::new(HwConfig::small());
    let e1 = build(&mut m, ProcessId(0), 0x10_0000, 2);
    let data = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
    m.eenter(0, e1, VirtAddr(0x10_0000)).unwrap();
    m.write(0, data, b"residual secret").unwrap();
    m.eexit(0).unwrap();
    let free_before = m.free_epc_pages();
    m.eremove(e1).unwrap();
    assert_eq!(m.free_epc_pages(), free_before + 4);
    // A new enclave over the same range sees zeros.
    let e2 = build(&mut m, ProcessId(0), 0x10_0000, 2);
    m.eenter(0, e2, VirtAddr(0x10_0000)).unwrap();
    assert_eq!(m.read(0, data, 15).unwrap(), vec![0u8; 15]);
}

/// Evicting many pages under EPC pressure and reloading them on demand
/// (the § IV-E working mode) keeps contents and invariants intact.
#[test]
fn sustained_paging_pressure() {
    let mut cfg = HwConfig::small();
    cfg.prm_pages = 24; // tight EPC: 1 SECS + 1 TCS + pages
    let mut m = Machine::new(cfg);
    let pages = 16u64;
    let eid = build(&mut m, ProcessId(0), 0x10_0000, pages);
    let base = VirtAddr(0x10_0000);
    // Fill every page with identifiable content.
    m.eenter(0, eid, base).unwrap();
    for i in 1..=pages {
        m.write(0, base.add(i * PAGE_SIZE as u64), &[i as u8; 4])
            .unwrap();
    }
    m.eexit(0).unwrap();
    // Evict half, reload in reverse order, verify all.
    let mut blobs = Vec::new();
    for i in 1..=pages / 2 {
        blobs.push(m.ewb(eid, base.add(i * PAGE_SIZE as u64)).unwrap());
    }
    while let Some(blob) = blobs.pop() {
        m.eldu(&blob).unwrap();
    }
    m.eenter(0, eid, base).unwrap();
    for i in 1..=pages {
        assert_eq!(
            m.read(0, base.add(i * PAGE_SIZE as u64), 4).unwrap(),
            vec![i as u8; 4],
            "page {i}"
        );
    }
    m.audit_tlbs().unwrap();
    m.audit_epcm().unwrap();
}

/// Faults at page-boundary straddles: an access spanning a valid page and
/// a swapped-out page faults without partial side effects becoming
/// visible as success.
#[test]
fn straddling_access_faults_cleanly() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, ProcessId(0), 0x10_0000, 3);
    let base = VirtAddr(0x10_0000);
    let straddle = base.add(3 * PAGE_SIZE as u64 - 4); // crosses page 2 → 3
    let _evicted = m.ewb(eid, base.add(3 * PAGE_SIZE as u64)).unwrap();
    m.eenter(0, eid, base).unwrap();
    let err = m.read(0, straddle, 8).unwrap_err();
    assert!(
        err.is_fault(FaultKind::EnclavePageSwappedOut) || err.is_fault(FaultKind::NotMapped),
        "got {err}"
    );
}

/// The machine hands out distinct enclave ids monotonically and the
/// enclave table survives interleaved create/remove churn.
#[test]
fn enclave_table_churn() {
    let mut m = Machine::new(HwConfig::small());
    let mut live = Vec::new();
    for round in 0..6u64 {
        let eid = build(&mut m, ProcessId(0), 0x10_0000 + round * 0x10_0000, 1);
        live.push(eid);
        if round % 2 == 1 {
            let victim = live.remove(0);
            m.eremove(victim).unwrap();
        }
        for &e in &live {
            assert!(m.enclaves().get(e).is_some());
        }
    }
    let ids: Vec<u64> = live.iter().map(|e| e.0).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "ids are monotone");
    m.audit_epcm().unwrap();
}
