//! Fault-injection tests: enclave poisoning, tampered/evicted-page
//! recovery, respawn lifecycles, and chaos-plan determinism at the
//! machine level.

use ne_sgx::addr::{VirtAddr, VirtRange, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::{EnclaveId, ProcessId};
use ne_sgx::epcm::{PagePerms, PageType};
use ne_sgx::fault::FaultPlan;
use ne_sgx::instr::PageSource;
use ne_sgx::machine::Machine;
use ne_sgx::{SgxError, SigStruct};

fn build(m: &mut Machine, base: u64, pages: u64) -> EnclaveId {
    let base = VirtAddr(base);
    let eid = m
        .ecreate(
            ProcessId(0),
            VirtRange::new(base, (pages + 1) * PAGE_SIZE as u64),
        )
        .unwrap();
    m.add_tcs(eid, base, base.add(PAGE_SIZE as u64)).unwrap();
    for i in 1..=pages {
        let va = base.add(i * PAGE_SIZE as u64);
        // RWX so tests can both store data and fetch through the page.
        m.eadd(eid, va, PageType::Reg, PageSource::Zeros, PagePerms::RWX)
            .unwrap();
        m.eextend(eid, va).unwrap();
    }
    let measured = m.enclaves().get(eid).unwrap().measurement.finalize();
    m.einit(eid, &SigStruct::new(b"chaos", measured)).unwrap();
    eid
}

/// A poisoned enclave faults every EENTER until it is torn down with
/// EREMOVE and rebuilt; the rebuilt enclave enters cleanly.
#[test]
fn poisoned_enclave_faults_until_rebuilt() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    m.poison_enclave(eid);
    assert!(m.is_poisoned(eid));
    for _ in 0..3 {
        let err = m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap_err();
        assert_eq!(err, SgxError::EnclavePoisoned(eid));
    }
    // EREMOVE clears the poison; the respawned enclave works.
    m.eremove(eid).unwrap();
    let fresh = build(&mut m, 0x10_0000, 2);
    assert!(!m.is_poisoned(fresh));
    m.eenter(0, fresh, VirtAddr(0x10_0000)).unwrap();
    m.eexit(0).unwrap();
    m.audit_epcm().unwrap();
}

/// A crash-injection plan with period 1 poisons the entered enclave at
/// the EENTER boundary itself; EREMOVE + rebuild recovers.
#[test]
fn crash_injection_poisons_at_entry() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    m.install_chaos(FaultPlan::parse("crash:1", 99).unwrap());
    let err = m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap_err();
    assert_eq!(err, SgxError::EnclavePoisoned(eid));
    assert!(m.is_poisoned(eid));
    let stats = m.chaos_stats().unwrap();
    assert_eq!((stats.eenters_seen, stats.crashes), (1, 1));
    // Respawn: EREMOVE, rebuild, and retarget the plan to the new id so
    // the fault clock keeps ticking against the replacement.
    m.eremove(eid).unwrap();
    let fresh = build(&mut m, 0x10_0000, 2);
    m.chaos_retarget(eid, fresh);
    // The fresh enclave is immediately poisoned again (period 1) — the
    // plan follows the respawned identity, not the dead id.
    let err = m.eenter(0, fresh, VirtAddr(0x10_0000)).unwrap_err();
    assert_eq!(err, SgxError::EnclavePoisoned(fresh));
}

/// ELDU rejects a sealed blob whose ciphertext was flipped (MAC/auth
/// failure), and the enclave can still be rebuilt from scratch afterward
/// — the regression pair for recovery escalating reload → respawn.
#[test]
fn eldu_rejects_tampered_blob_then_respawn_recovers() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    let data = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    m.write(0, data, b"sealed secret").unwrap();
    m.eexit(0).unwrap();
    let mut blob = m.ewb(eid, data).unwrap();
    blob.sealed[0] ^= 0x80;
    let err = m.eldu(&blob).unwrap_err();
    assert!(matches!(err, SgxError::Paging(_)), "got {err}");
    // The evicted state is unusable: tear down and rebuild.
    m.eremove(eid).unwrap();
    let fresh = build(&mut m, 0x10_0000, 2);
    m.eenter(0, fresh, VirtAddr(0x10_0000)).unwrap();
    assert_eq!(m.read(0, data, 4).unwrap(), vec![0u8; 4], "no residue");
    m.eexit(0).unwrap();
}

/// EENTER into a busy TCS keeps failing cleanly under retry and succeeds
/// once the TCS frees — then the enclave survives a full
/// EREMOVE/rebuild cycle (regression for busy-TCS state after faulted
/// entries).
#[test]
fn busy_tcs_retry_then_respawn_lifecycle() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    let tcs = VirtAddr(0x10_0000);
    m.eenter(0, eid, tcs).unwrap();
    // Retrying on another core must fail the same way every time and
    // leave no state behind.
    for _ in 0..3 {
        let err = m.eenter(1, eid, tcs).unwrap_err();
        assert!(matches!(err, SgxError::GeneralProtection(_)), "got {err}");
    }
    m.eexit(0).unwrap();
    // The TCS is idle again: the retried entry now succeeds.
    m.eenter(1, eid, tcs).unwrap();
    m.eexit(1).unwrap();
    m.eremove(eid).unwrap();
    let fresh = build(&mut m, 0x10_0000, 2);
    m.eenter(0, fresh, tcs).unwrap();
    m.eexit(0).unwrap();
    m.audit_tlbs().unwrap();
    m.audit_epcm().unwrap();
}

/// Instruction fetch through a physically tampered line faults with an
/// integrity violation instead of executing tampered bytes.
#[test]
fn fetch_from_tampered_page_faults() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    let entry = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    m.fetch(0, entry).unwrap();
    // Tamper with the backing physical line from outside the enclave.
    let ne_sgx::machine::Translated::Phys(pa, _) = m
        .translate(0, entry, ne_sgx::machine::AccessKind::Fetch)
        .unwrap()
    else {
        panic!("entry page must translate");
    };
    m.physical_tamper(pa, &[0xA5; 64]);
    let err = m.fetch(0, entry).unwrap_err();
    assert!(
        err.is_fault(ne_sgx::FaultKind::IntegrityViolation),
        "got {err}"
    );
    m.eexit(0).unwrap();
}

/// Integrity violations raised by `read`/`write`/`fetch` land in the
/// trace ring as `Event::Fault`, so trace-derived fault counts agree
/// with `Stats::faults` under MEE tamper chaos.
#[test]
fn integrity_faults_reach_trace_ring() {
    let mut cfg = HwConfig::small();
    cfg.trace_events = true;
    let mut m = Machine::new(cfg);
    let eid = build(&mut m, 0x10_0000, 2);
    let data = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
    // mac:1 tampers a line of the lowest-VA REG page at every EENTER.
    m.install_chaos(FaultPlan::parse("mac:1", 11).unwrap());
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    let before = m.stats().faults;
    let kinds = [
        m.read(0, data, 8).unwrap_err(),
        m.write(0, data, b"x").unwrap_err(),
        m.fetch(0, data).unwrap_err(),
    ];
    for err in kinds {
        assert!(
            err.is_fault(ne_sgx::FaultKind::IntegrityViolation),
            "got {err}"
        );
    }
    assert_eq!(m.stats().faults - before, 3);
    let traced = m
        .trace()
        .events()
        .filter(|e| {
            matches!(
                e,
                ne_sgx::trace::Event::Fault {
                    kind: ne_sgx::FaultKind::IntegrityViolation,
                    ..
                }
            )
        })
        .count();
    assert_eq!(traced, 3, "trace ring and Stats::faults must agree");
    m.eexit(0).unwrap();
}

/// A fetch whose physical address is not line-aligned checks exactly the
/// line containing `pa` — a tampered *neighbouring* line must not fault
/// it, and a fetch landing in the tampered line still does.
#[test]
fn misaligned_fetch_checks_only_its_own_line() {
    use ne_sgx::addr::{PhysAddr, LINE_SIZE};
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 2);
    let entry = VirtAddr(0x10_0000 + PAGE_SIZE as u64);
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    let ne_sgx::machine::Translated::Phys(pa, _) = m
        .translate(0, entry, ne_sgx::machine::AccessKind::Fetch)
        .unwrap()
    else {
        panic!("entry page must translate");
    };
    // Tamper only the *second* line of the page.
    m.physical_tamper(PhysAddr(pa.0 + LINE_SIZE as u64), &[0xA5; 64]);
    // A fetch at the last byte of line 0 used to scan [pa, pa+64),
    // spilling into the tampered neighbour; it must succeed.
    m.fetch(0, entry.add(LINE_SIZE as u64 - 1)).unwrap();
    // Fetching inside the tampered line itself still faults.
    let err = m.fetch(0, entry.add(LINE_SIZE as u64)).unwrap_err();
    assert!(
        err.is_fault(ne_sgx::FaultKind::IntegrityViolation),
        "got {err}"
    );
    m.eexit(0).unwrap();
}

/// The same seed drives the same chaos decisions and the same
/// architectural event counts, instruction for instruction; a different
/// seed diverges.
#[test]
fn chaos_plans_are_deterministic_per_seed() {
    let run = |seed: u64| {
        let mut m = Machine::new(HwConfig::small());
        let eid = build(&mut m, 0x10_0000, 4);
        m.install_chaos(FaultPlan::parse("aex:2+evict:3+stall:5", seed).unwrap());
        for _ in 0..12 {
            match m.eenter(0, eid, VirtAddr(0x10_0000)) {
                Ok(()) => {
                    let _ = m.chaos_take_stall();
                    m.eexit(0).unwrap();
                }
                Err(e) => panic!("aex/evict/stall must not fail entries: {e}"),
            }
            // Reload whatever the plan evicted so later entries fetch.
            m.reload_chaos_evicted(eid).unwrap();
        }
        (m.chaos_stats().unwrap(), m.stats())
    };
    let (c1, s1) = run(7);
    let (c2, s2) = run(7);
    assert_eq!(c1, c2, "same seed, same decisions");
    assert_eq!(s1, s2, "same seed, same architectural event counts");
    assert!(c1.aex_storms > 0 && c1.forced_evictions > 0 && c1.stalls > 0);
    let (c3, _) = run(8);
    assert_ne!(c1, c3, "different seed diverges");
}

/// Pages the chaos layer force-evicts are sealed: the parked blobs never
/// contain the enclave's plaintext, so a curious OS (or outer enclave)
/// observing the eviction stream learns nothing.
#[test]
fn chaos_evicted_blobs_are_sealed() {
    let mut m = Machine::new(HwConfig::small());
    let eid = build(&mut m, 0x10_0000, 4);
    let secret = b"inner enclave secret state";
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    for i in 1..=4u64 {
        m.write(0, VirtAddr(0x10_0000 + i * PAGE_SIZE as u64), secret)
            .unwrap();
    }
    m.eexit(0).unwrap();
    // evict:1 with a large page budget sweeps the hot pages at entry.
    m.install_chaos(FaultPlan::parse("evict:1", 5).unwrap());
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    if m.current_enclave(0).is_some() {
        m.eexit(0).unwrap();
    }
    let blobs = m.chaos_evicted_blobs();
    assert!(!blobs.is_empty(), "evict term must have fired");
    for blob in blobs {
        assert!(
            !blob
                .sealed
                .windows(secret.len())
                .any(|w| w == secret.as_slice()),
            "sealed blob leaks plaintext"
        );
    }
    // The sealed state reloads intact (chaos off so the verification
    // entry does not re-evict).
    m.clear_chaos();
    m.reload_chaos_evicted(eid).unwrap();
    m.eenter(0, eid, VirtAddr(0x10_0000)).unwrap();
    assert_eq!(
        m.read(0, VirtAddr(0x10_0000 + PAGE_SIZE as u64), secret.len())
            .unwrap(),
        secret.to_vec()
    );
    m.eexit(0).unwrap();
}
