//! Transport session establishment: a real ClientHello / ServerHello
//! exchange over the socket, driven through the existing
//! [`ne_tls::handshake::perform_handshake`] machinery so version and
//! cipher-suite rollback are rejected **on the wire**, before any
//! request frame is read.
//!
//! The master secret is the tenant's pre-shared key
//! ([`ne_host::service::tenant_key`]) — the same "key distributed to
//! the echo server and client" assumption the paper's § VI-A case study
//! makes. Hello randoms are derived deterministically from `(seed,
//! tenant, service)` so a TLS run is exactly as reproducible as a
//! plaintext one; transport crypto is charged **zero simulated
//! cycles** (it happens in the untrusted front door, outside the
//! modeled enclaves), which is what keeps TLS-on-the-wire byte-identical
//! to the in-process oracle in every export.

use ne_cluster::splitmix64;
use ne_host::service::tenant_key;
use ne_tls::handshake::{perform_handshake, CipherSuite, ClientHello, TLS_VERSION};

use crate::conn::{ConnError, FramedConn};
use crate::frame::{Frame, FrameKind};

/// Salt for client Hello randoms.
const CLIENT_RANDOM_SALT: u64 = 0x11E1_105C_1E17;
/// Salt for server Hello randoms.
const SERVER_RANDOM_SALT: u64 = 0x11E1_105E_54E2;

fn pair_random(seed: u64, tenant: usize, service: usize, salt: u64) -> [u8; 16] {
    let base = splitmix64(seed ^ salt ^ ((tenant as u64) << 32) ^ service as u64);
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&splitmix64(base).to_le_bytes());
    out[8..].copy_from_slice(&splitmix64(base ^ 1).to_le_bytes());
    out
}

/// The deterministic client random for a pair's session.
pub fn client_random(seed: u64, tenant: usize, service: usize) -> [u8; 16] {
    pair_random(seed, tenant, service, CLIENT_RANDOM_SALT)
}

/// The deterministic server random for a pair's session.
pub fn server_random(seed: u64, tenant: usize, service: usize) -> [u8; 16] {
    pair_random(seed, tenant, service, SERVER_RANDOM_SALT)
}

/// Encodes a ClientHello payload: `[version u16][n u8][suite u8 × n]
/// [random 16]`.
pub fn encode_client_hello(hello: &ClientHello) -> Vec<u8> {
    let mut out = Vec::with_capacity(3 + hello.suites.len() + 16);
    out.extend_from_slice(&hello.version.to_le_bytes());
    out.push(hello.suites.len() as u8);
    for s in &hello.suites {
        out.push(*s as u8);
    }
    out.extend_from_slice(&hello.random);
    out
}

/// Decodes a ClientHello payload.
///
/// # Errors
///
/// A human-readable reason on malformed bytes.
pub fn decode_client_hello(bytes: &[u8]) -> Result<ClientHello, String> {
    if bytes.len() < 3 {
        return Err("short ClientHello".to_string());
    }
    let version = u16::from_le_bytes([bytes[0], bytes[1]]);
    let n = bytes[2] as usize;
    if bytes.len() != 3 + n + 16 {
        return Err("malformed ClientHello".to_string());
    }
    let mut suites = Vec::with_capacity(n);
    for &b in &bytes[3..3 + n] {
        suites.push(match b {
            0 => CipherSuite::NullMd5,
            1 => CipherSuite::Aes128Gcm,
            other => return Err(format!("unknown cipher suite {other}")),
        });
    }
    let mut random = [0u8; 16];
    random.copy_from_slice(&bytes[3 + n..]);
    Ok(ClientHello {
        version,
        suites,
        random,
    })
}

/// Encodes a ServerHello payload: `[random 16][suite u8]`.
pub fn encode_server_hello(random: [u8; 16], suite: CipherSuite) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.extend_from_slice(&random);
    out.push(suite as u8);
    out
}

/// Decodes a ServerHello payload into the server random.
///
/// # Errors
///
/// A human-readable reason on malformed bytes.
pub fn decode_server_hello(bytes: &[u8]) -> Result<[u8; 16], String> {
    if bytes.len() != 17 {
        return Err("malformed ServerHello".to_string());
    }
    let mut random = [0u8; 16];
    random.copy_from_slice(&bytes[..16]);
    Ok(random)
}

/// Runs the client side of the transport handshake on `conn` and
/// enables sealed records on success.
///
/// # Errors
///
/// [`ConnError::Protocol`] when the server aborts (e.g. it would be a
/// rollback) or answers out of protocol; transport errors as usual.
pub fn client_handshake(
    conn: &mut FramedConn,
    seed: u64,
    tenant: usize,
    service: usize,
) -> Result<(), ConnError> {
    let hello = ClientHello {
        version: TLS_VERSION,
        suites: vec![CipherSuite::Aes128Gcm],
        random: client_random(seed, tenant, service),
    };
    conn.send(&Frame::new(
        FrameKind::ClientHello,
        tenant as u32,
        service as u32,
        0,
        encode_client_hello(&hello),
    ))?;
    let answer = conn.recv()?;
    match answer.kind {
        FrameKind::ServerHello => {
            let server_random =
                decode_server_hello(&answer.payload).map_err(ConnError::Protocol)?;
            let keys = perform_handshake(&tenant_key(tenant), &hello, server_random)
                .map_err(|e| ConnError::Protocol(e.to_string()))?;
            conn.enable_tls(keys.record_key)?;
            Ok(())
        }
        FrameKind::Abort => Err(ConnError::Protocol(format!(
            "server aborted handshake: {}",
            String::from_utf8_lossy(&answer.payload)
        ))),
        other => Err(ConnError::Protocol(format!(
            "expected ServerHello, got {other:?}"
        ))),
    }
}

/// Runs the server side of the transport handshake given the client's
/// already-received `ClientHello` frame, and enables sealed records on
/// success. On a rollback offer the client gets an Abort with the
/// typed refusal and the connection is reported dead.
///
/// # Errors
///
/// [`ConnError::Protocol`] carrying the handshake refusal, or transport
/// errors.
pub fn server_handshake(conn: &mut FramedConn, offer: &Frame, seed: u64) -> Result<(), ConnError> {
    let tenant = offer.tenant as usize;
    let service = offer.service as usize;
    let hello = decode_client_hello(&offer.payload).map_err(ConnError::Protocol)?;
    let random = server_random(seed, tenant, service);
    match perform_handshake(&tenant_key(tenant), &hello, random) {
        Ok(keys) => {
            conn.send(&Frame::new(
                FrameKind::ServerHello,
                offer.tenant,
                offer.service,
                0,
                encode_server_hello(random, keys.suite),
            ))?;
            conn.enable_tls(keys.record_key)?;
            Ok(())
        }
        Err(e) => {
            // Best-effort notification; the refusal itself is the error.
            let _ = conn.send(&Frame::new(
                FrameKind::Abort,
                offer.tenant,
                offer.service,
                0,
                e.to_string().into_bytes(),
            ));
            Err(ConnError::Protocol(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_payloads_roundtrip() {
        let hello = ClientHello {
            version: TLS_VERSION,
            suites: vec![CipherSuite::NullMd5, CipherSuite::Aes128Gcm],
            random: client_random(7, 2, 1),
        };
        let decoded = decode_client_hello(&encode_client_hello(&hello)).unwrap();
        assert_eq!(decoded.version, hello.version);
        assert_eq!(decoded.suites, hello.suites);
        assert_eq!(decoded.random, hello.random);
        let random = server_random(7, 2, 1);
        assert_eq!(
            decode_server_hello(&encode_server_hello(random, CipherSuite::Aes128Gcm)).unwrap(),
            random
        );
    }

    #[test]
    fn randoms_are_deterministic_and_distinct() {
        assert_eq!(client_random(7, 0, 0), client_random(7, 0, 0));
        assert_ne!(client_random(7, 0, 0), client_random(7, 0, 1));
        assert_ne!(client_random(7, 0, 0), server_random(7, 0, 0));
    }
}
