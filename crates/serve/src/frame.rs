//! The length-prefixed frame codec.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     2  magic     0x4E46 ("NF")
//!      2     1  version   1
//!      3     1  kind      FrameKind
//!      4     4  tenant    global tenant id
//!      8     4  service   service index within the tenant
//!     12     8  req_id    client-chosen request id (or seq on replies)
//!     20     4  len       payload length, at most MAX_PAYLOAD
//!     24     4  checksum  FNV-1a over header (checksum zeroed) + payload
//!     28   len  payload
//! ```
//!
//! The checksum covers every header byte and the payload, so any
//! single-bit corruption is caught: a flipped magic/version byte maps to
//! the matching typed error, a flipped length either overflows the bound
//! ([`FrameError::Oversized`]) or breaks the checksum, and everything
//! else lands in [`FrameError::BadChecksum`]. On any decode error the
//! [`Decoder`] **latches**: a corrupted length field means frame
//! boundaries can no longer be trusted, so rather than resynchronize
//! wrongly (the classic desync bug) the stream is declared dead and the
//! connection torn down. A fresh connection restarts clean.

use std::fmt;

/// Frame magic, `"NF"` little-endian.
pub const MAGIC: u16 = 0x4E46;

/// Protocol version this codec speaks.
pub const VERSION: u8 = 1;

/// Header bytes per frame.
pub const HEADER_LEN: usize = 28;

/// Largest admissible payload (64 KiB) — far above any request the
/// factories generate, far below anything that could wedge a reader.
pub const MAX_PAYLOAD: usize = 64 * 1024;

/// What a frame is, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: claim a (tenant, service) pair and state the
    /// scenario (seed, mode, requests) for validation.
    Hello,
    /// Server → client: the Hello was accepted.
    HelloAck,
    /// Client → server: one request payload.
    Request,
    /// Server → client: a completion (simulated timings + reply bytes).
    Reply,
    /// Server → client: the pair's last request was rejected by
    /// admission; in closed-loop mode the pair is closed.
    Reject,
    /// Client → server: the pair's request stream ended gracefully.
    Done,
    /// Server → client: the run is over, exports are final.
    Finish,
    /// Client → server: transport handshake offer (plaintext).
    ClientHello,
    /// Server → client: transport handshake answer (plaintext).
    ServerHello,
    /// Either side: fatal protocol error, payload is a human-readable
    /// reason; the connection is dead.
    Abort,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::HelloAck => 2,
            FrameKind::Request => 3,
            FrameKind::Reply => 4,
            FrameKind::Reject => 5,
            FrameKind::Done => 6,
            FrameKind::Finish => 7,
            FrameKind::ClientHello => 8,
            FrameKind::ServerHello => 9,
            FrameKind::Abort => 10,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::HelloAck),
            3 => Some(FrameKind::Request),
            4 => Some(FrameKind::Reply),
            5 => Some(FrameKind::Reject),
            6 => Some(FrameKind::Done),
            7 => Some(FrameKind::Finish),
            8 => Some(FrameKind::ClientHello),
            9 => Some(FrameKind::ServerHello),
            10 => Some(FrameKind::Abort),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame is.
    pub kind: FrameKind,
    /// Global tenant id the frame belongs to.
    pub tenant: u32,
    /// Service index within the tenant.
    pub service: u32,
    /// Request id (client-chosen on requests; completion seq on replies).
    pub req_id: u64,
    /// Payload bytes (at most [`MAX_PAYLOAD`]).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with the given header fields and payload. The payload
    /// bound is not checked here: [`crate::conn::FrameSender::send`]
    /// refuses oversized frames with [`FrameError::Oversized`] on the
    /// way out, and the [`Decoder`] refuses them on the way in — the
    /// fallible seams, so nothing on the wire path can panic.
    pub fn new(kind: FrameKind, tenant: u32, service: u32, req_id: u64, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            tenant,
            service,
            req_id,
            payload,
        }
    }

    /// Encodes the frame into its wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(VERSION);
        out.push(self.kind.to_byte());
        out.extend_from_slice(&self.tenant.to_le_bytes());
        out.extend_from_slice(&self.service.to_le_bytes());
        out.extend_from_slice(&self.req_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let sum = checksum(&out[..24], &self.payload);
        out.extend_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Panic-free little-endian reads for the wire path: they take at most
/// the needed bytes and treat missing trailing bytes as zero. Callers
/// bounds-check first — the fold exists so that no slice-length mistake
/// can ever abort a connection thread.
pub(crate) fn le_u16(bytes: &[u8]) -> u16 {
    le(bytes, 2) as u16
}

pub(crate) fn le_u32(bytes: &[u8]) -> u32 {
    le(bytes, 4) as u32
}

pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    le(bytes, 8)
}

fn le(bytes: &[u8], width: usize) -> u64 {
    bytes
        .iter()
        .take(width)
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << (8 * i))
}

/// FNV-1a over the 24 checksum-free header bytes followed by the
/// payload.
fn checksum(header: &[u8], payload: &[u8]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for &b in header.iter().chain(payload) {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Typed decode failures. Every one of these poisons the [`Decoder`]
/// (see the module docs for why resynchronization is not attempted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The stream does not start with the frame magic.
    BadMagic(u16),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Claimed payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Header/payload checksum mismatch (bit flip or truncated write).
    BadChecksum {
        /// Checksum carried by the frame.
        claimed: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// Feeding more bytes would exceed the decoder's bounded buffer.
    BufferOverflow {
        /// Bytes the buffer would have grown to.
        len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => write!(f, "frame payload of {n} bytes exceeds bound"),
            FrameError::BadChecksum { claimed, computed } => {
                write!(
                    f,
                    "frame checksum mismatch ({claimed:#010x} != {computed:#010x})"
                )
            }
            FrameError::BufferOverflow { len } => {
                write!(f, "pending-frame buffer would grow to {len} bytes")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A streaming frame decoder over a bounded buffer. Feed arbitrary
/// chunks with [`Decoder::feed`], drain complete frames with
/// [`Decoder::next_frame`]. Never panics on any input; returns typed errors
/// and latches on the first one.
#[derive(Debug)]
pub struct Decoder {
    buf: Vec<u8>,
    cap: usize,
    poisoned: Option<FrameError>,
}

impl Decoder {
    /// Default buffer bound: two maximal frames — enough for any honest
    /// sender, small enough that a flooding client hits TCP
    /// backpressure instead of growing server memory.
    pub const DEFAULT_CAP: usize = 2 * (HEADER_LEN + MAX_PAYLOAD);

    /// A decoder with the default buffer bound.
    pub fn new() -> Decoder {
        Decoder::with_capacity(Decoder::DEFAULT_CAP)
    }

    /// A decoder with an explicit buffer bound (at least one maximal
    /// frame, or complete frames could never fit).
    pub fn with_capacity(cap: usize) -> Decoder {
        Decoder {
            buf: Vec::new(),
            cap: cap.max(HEADER_LEN + MAX_PAYLOAD),
            poisoned: None,
        }
    }

    /// Bytes currently buffered (fed but not yet drained as frames).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends raw stream bytes to the pending buffer.
    ///
    /// # Errors
    ///
    /// [`FrameError::BufferOverflow`] if the bound would be exceeded, or
    /// the latched error if the decoder is already poisoned.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() + bytes.len() > self.cap {
            let e = FrameError::BufferOverflow {
                len: self.buf.len() + bytes.len(),
            };
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Decodes the next complete frame, if the buffer holds one.
    /// `Ok(None)` means "incomplete — feed more bytes".
    ///
    /// # Errors
    ///
    /// Any [`FrameError`]; the decoder latches it and every later call
    /// returns it again.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = le_u16(&self.buf[..2]);
        if magic != MAGIC {
            return Err(self.poison(FrameError::BadMagic(magic)));
        }
        if self.buf[2] != VERSION {
            return Err(self.poison(FrameError::BadVersion(self.buf[2])));
        }
        let len = le_u32(&self.buf[20..24]);
        if len as usize > MAX_PAYLOAD {
            return Err(self.poison(FrameError::Oversized(len)));
        }
        let total = HEADER_LEN + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let claimed = le_u32(&self.buf[24..28]);
        let computed = checksum(&self.buf[..24], &self.buf[28..total]);
        if claimed != computed {
            return Err(self.poison(FrameError::BadChecksum { claimed, computed }));
        }
        // The kind byte is authenticated by the checksum, so an unknown
        // kind here is a peer speaking a newer protocol, not corruption
        // — still fatal, still typed.
        let Some(kind) = FrameKind::from_byte(self.buf[3]) else {
            return Err(self.poison(FrameError::BadKind(self.buf[3])));
        };
        let frame = Frame {
            kind,
            tenant: le_u32(&self.buf[4..8]),
            service: le_u32(&self.buf[8..12]),
            req_id: le_u64(&self.buf[12..20]),
            payload: self.buf[28..total].to_vec(),
        };
        self.buf.drain(..total);
        Ok(Some(frame))
    }

    fn poison(&mut self, e: FrameError) -> FrameError {
        self.poisoned = Some(e.clone());
        e
    }
}

impl Default for Decoder {
    fn default() -> Decoder {
        Decoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(FrameKind::Request, 3, 1, 42, vec![7, 8, 9])
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let mut d = Decoder::new();
        d.feed(&f.encode()).unwrap();
        assert_eq!(d.next_frame().unwrap(), Some(f));
        assert_eq!(d.next_frame().unwrap(), None);
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_roundtrip() {
        let f = sample();
        let mut d = Decoder::new();
        for b in f.encode() {
            d.feed(&[b]).unwrap();
        }
        assert_eq!(d.next_frame().unwrap(), Some(f));
    }

    #[test]
    fn truncated_frame_is_incomplete_not_error() {
        let bytes = sample().encode();
        let mut d = Decoder::new();
        d.feed(&bytes[..bytes.len() - 1]).unwrap();
        assert_eq!(d.next_frame().unwrap(), None);
        d.feed(&bytes[bytes.len() - 1..]).unwrap();
        assert!(d.next_frame().unwrap().is_some());
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = sample().encode();
        bytes[20..24].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        let mut d = Decoder::new();
        d.feed(&bytes).unwrap();
        assert!(matches!(d.next_frame(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().encode();
        bytes[2] = 9;
        let mut d = Decoder::new();
        d.feed(&bytes).unwrap();
        assert_eq!(d.next_frame(), Err(FrameError::BadVersion(9)));
    }

    #[test]
    fn errors_latch() {
        let mut bytes = sample().encode();
        bytes[5] ^= 0x10; // tenant bytes — caught by the checksum
        let mut d = Decoder::new();
        d.feed(&bytes).unwrap();
        let first = d.next_frame().unwrap_err();
        assert!(matches!(first, FrameError::BadChecksum { .. }));
        // A pristine frame after the corruption still errors: the
        // stream is dead, not resynchronized.
        assert_eq!(d.feed(&sample().encode()), Err(first.clone()));
        assert_eq!(d.next_frame(), Err(first));
    }

    #[test]
    fn buffer_is_bounded() {
        let mut d = Decoder::with_capacity(HEADER_LEN + MAX_PAYLOAD);
        let chunk = vec![0u8; HEADER_LEN + MAX_PAYLOAD];
        d.feed(&chunk).unwrap();
        assert!(matches!(
            d.feed(&[0]),
            Err(FrameError::BufferOverflow { .. })
        ));
    }
}
