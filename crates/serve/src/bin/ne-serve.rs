//! **ne-serve** — the TCP front door binary.
//!
//! `ne-serve --listen 127.0.0.1:0` binds a real loopback socket, waits
//! for one `ne-load --connect` client per (tenant, service) pair, and
//! serves the seeded scenario over the wire; `ne-serve --oracle` runs
//! the identical scenario entirely in-process. Both write the same
//! three exports — `ne-tenants/v1`, `ne-metrics/v2`, and (with
//! `--window`) `ne-obs/v1` — and the headline invariant is that the two
//! paths produce **byte-identical** files (CI's `serve-smoke` job
//! byte-diffs them).
//!
//! Flags: `--listen ADDR` (default `127.0.0.1:0`) or `--oracle`;
//! scenario: `--tenants N` (default 2), `--services N` (default 2,
//! capped at the 3 service kinds), `--requests N` per pair (default
//! 12), `--seed S`, `--mode closed|open` (default closed),
//! `--no-switchless`, `--chaos <spec>`, `--window <cycles>`; wire:
//! `--tls`, `--read-timeout-ms N` (default 5000), `--accept-timeout-ms
//! N` (default 30000), `--addr-out <path>` (writes the bound address
//! once listening, so scripts can use an ephemeral port); exports:
//! `--tenants-out`, `--metrics-out`, `--timeline-out`.

use std::time::Duration;

use ne_serve::oracle::run_oracle;
use ne_serve::{FrontDoor, Mode, ServeConfig, ServeOutcome};

fn flag_str(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_u64(name: &str) -> Option<u64> {
    flag_str(name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got '{v}'"))
    })
}

fn write_out(flag: &str, payload: &str) {
    if let Some(path) = flag_str(flag) {
        std::fs::write(&path, payload)
            .unwrap_or_else(|e| panic!("cannot write {flag} to {path}: {e}"));
        println!("{}: wrote {path}", flag.trim_start_matches('-'));
    }
}

fn config() -> ServeConfig {
    let mut cfg = ServeConfig::new(
        flag_u64("--tenants").unwrap_or(2) as usize,
        (flag_u64("--services").unwrap_or(2) as usize).min(3),
        flag_u64("--requests").unwrap_or(12) as usize,
        flag_u64("--seed").unwrap_or(0xC0FFEE),
    );
    cfg.mode = match flag_str("--mode").as_deref().unwrap_or("closed") {
        "closed" => Mode::Closed,
        "open" => Mode::Open,
        other => panic!("--mode expects closed|open, got '{other}'"),
    };
    cfg.switchless = !std::env::args().any(|a| a == "--no-switchless");
    cfg.tls = std::env::args().any(|a| a == "--tls");
    cfg.chaos = flag_str("--chaos");
    cfg.window = flag_u64("--window");
    if let Some(ms) = flag_u64("--read-timeout-ms") {
        cfg.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = flag_u64("--accept-timeout-ms") {
        cfg.accept_timeout = Duration::from_millis(ms);
    }
    cfg
}

fn finish(outcome: &ServeOutcome) {
    let r = &outcome.report;
    println!(
        "served {} requests: {} completed, {} shed, {} respawns",
        outcome.accepted,
        r.completed(),
        r.shed_requests(),
        r.respawns(),
    );
    write_out("--tenants-out", &outcome.tenants_export);
    write_out("--metrics-out", &outcome.metrics_json);
    if let Some(jsonl) = &outcome.timeline_jsonl {
        write_out("--timeline-out", jsonl);
    }
}

fn main() {
    let cfg = config();
    let oracle = std::env::args().any(|a| a == "--oracle");
    println!(
        "ne-serve ({}): {} tenants x {} services, {} requests per pair, seed {}, mode {}, tls {}{}",
        if oracle { "oracle" } else { "wire" },
        cfg.tenants,
        cfg.services,
        cfg.requests,
        cfg.seed,
        cfg.mode.name(),
        if cfg.tls { "on" } else { "off" },
        cfg.chaos
            .as_deref()
            .map(|c| format!(", chaos {c}"))
            .unwrap_or_default(),
    );
    let outcome = if oracle {
        run_oracle(&cfg).unwrap_or_else(|e| panic!("oracle run failed: {e}"))
    } else {
        let listen = flag_str("--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());
        let door =
            FrontDoor::bind(cfg, &listen).unwrap_or_else(|e| panic!("cannot bind {listen}: {e}"));
        let addr = door.local_addr().expect("bound address");
        println!("listening on {addr}");
        if let Some(path) = flag_str("--addr-out") {
            std::fs::write(&path, addr.to_string())
                .unwrap_or_else(|e| panic!("cannot write --addr-out to {path}: {e}"));
        }
        door.run()
            .unwrap_or_else(|e| panic!("serve run failed: {e}"))
    };
    finish(&outcome);
}
