//! The [`FrontDoor`]: a blocking accept loop that maps connections onto
//! (tenant, service) pairs, then a serve loop that feeds decoded
//! request frames through the existing admission/scheduler path via
//! [`ne_cluster::drive::closed_loop_external`] /
//! [`ne_cluster::drive::open_loop_external`], stepping the simulated
//! machine between socket polls.
//!
//! Determinism over a nondeterministic transport: the drive loops pull
//! each payload with a **blocking read on the specific pair's
//! connection** — the one the in-process loop would consult next — and
//! every arrival stamp comes from simulated state (`0` / completion
//! times / the seeded Poisson schedule / `now()` during warmup), so TCP
//! timing cannot reorder submissions or leak wall clock into exports.
//! Slow clients cannot wedge the loop either: every connection carries a
//! read deadline and a bounded pending-frame buffer, and a pair that
//! stalls gets its tenant shed through
//! [`ne_host::server::HostServer::shed_tenant`] — the same counters and
//! recovery-event stream every other loss path uses.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use ne_cluster::{drive, shard_seed, Cluster, ClusterConfig, ClusterReport};
use ne_host::Completion;
use ne_obs::{Sampler, SamplerConfig, Timeline};
use ne_sgx::fault::FaultPlan;

use crate::conn::{ConnError, FramedConn};
use crate::frame::{Frame, FrameKind};
use crate::{session, Mode, Scenario, WireCompletion, CHAOS_SALT};

/// Front-door configuration: the scenario plus wire-level knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Services per tenant.
    pub services: usize,
    /// Measured requests per (tenant, service) pair.
    pub requests: usize,
    /// Base seed of every generator stream.
    pub seed: u64,
    /// Arrival process.
    pub mode: Mode,
    /// Whether the shard runs a switchless worker core.
    pub switchless: bool,
    /// Seal every frame in a `ne-tls` record (transport handshake on
    /// connect, rollback offers refused on the wire).
    pub tls: bool,
    /// Chaos spec installed after warmup (see
    /// [`ne_sgx::fault::FaultPlan::parse`]), seeded exactly like
    /// `ne-load --chaos`.
    pub chaos: Option<String>,
    /// Collect an `ne-obs/v1` timeline with this window length.
    pub window: Option<u64>,
    /// Per-connection read deadline; a pair that stays silent past it
    /// while the server needs its next request gets its tenant shed.
    pub read_timeout: Duration,
    /// How long the accept loop waits for every pair to say Hello;
    /// tenants with missing pairs are shed before warmup.
    pub accept_timeout: Duration,
}

impl ServeConfig {
    /// A config with the scenario given and every wire knob at its
    /// default (closed loop, switchless on, plaintext, no chaos, no
    /// timeline, 5 s read deadline, 30 s accept window).
    pub fn new(tenants: usize, services: usize, requests: usize, seed: u64) -> ServeConfig {
        ServeConfig {
            tenants,
            services,
            requests,
            seed,
            mode: Mode::Closed,
            switchless: true,
            tls: false,
            chaos: None,
            window: None,
            read_timeout: Duration::from_secs(5),
            accept_timeout: Duration::from_secs(30),
        }
    }

    /// The scenario fields a client's Hello must match.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            seed: self.seed,
            mode: self.mode,
            requests: self.requests as u32,
            tenants: self.tenants as u32,
            services: self.services as u32,
        }
    }
}

/// Everything a finished run produced. The three export strings are the
/// oracle surface: byte-identical between a wire run and
/// [`crate::oracle::run_oracle`].
#[derive(Debug)]
pub struct ServeOutcome {
    /// Accepted measured requests.
    pub accepted: u64,
    /// The end-of-run cluster report.
    pub report: ClusterReport,
    /// The `ne-tenants/v1` export.
    pub tenants_export: String,
    /// The `ne-metrics/v2` export (identity-checked).
    pub metrics_json: String,
    /// The `ne-obs/v1` timeline export, when a window was configured.
    pub timeline_jsonl: Option<String>,
}

/// Builds the one-shard cluster a scenario runs on (the wire path and
/// the oracle share this, so they cannot drift).
pub(crate) fn build_cluster(cfg: &ServeConfig) -> Result<Cluster, String> {
    let mut cc = ClusterConfig::new(drive::standard_specs(cfg.tenants, cfg.services), 1);
    cc.host.seed = cfg.seed;
    cc.host.switchless = cfg.switchless;
    Cluster::build(cc).map_err(|e| format!("cluster build: {e}"))
}

/// Assembles the outcome and enforces the end-of-run invariants (the
/// same ones `ne-load` asserts: scheduler invariants read zero,
/// reply-or-shed holds, the metrics identities check out).
pub(crate) fn finish_outcome(
    cluster: &Cluster,
    accepted: u64,
    timeline: Option<Timeline>,
    label: &str,
) -> Result<ServeOutcome, String> {
    let report = cluster.report();
    if report.sched.invariant_violations > 0 {
        return Err(format!(
            "scheduler invariant violated {} times",
            report.sched.invariant_violations
        ));
    }
    if report.completed() + report.shed_requests() != report.accepted() {
        return Err(format!(
            "accepted request lost: {} completed + {} shed != {} accepted",
            report.completed(),
            report.shed_requests(),
            report.accepted()
        ));
    }
    let metrics = cluster.merged_metrics()?;
    metrics.check()?;
    Ok(ServeOutcome {
        accepted,
        report,
        tenants_export: cluster.tenants_export(),
        metrics_json: metrics.to_json(),
        timeline_jsonl: timeline.map(|t| ne_obs::to_jsonl(&t, label)),
    })
}

/// One accept-phase slot per expected (tenant, service) pair.
enum Slot {
    /// No connection claimed the pair yet.
    Waiting,
    /// The pair's connection completed its Hello.
    Ready(Box<FramedConn>),
    /// A connection claimed the pair but was refused (bad handshake or
    /// scenario mismatch); the pair will not be waited for.
    Refused,
}

/// The wire-backed [`drive::RequestSource`]: pulls block on the pair's
/// socket, deliveries and rejections are frames back to the client. A
/// pair whose connection times out, closes, or violates the protocol
/// reports [`drive::Pulled::Stalled`] and the driver sheds its tenant.
struct WireSource {
    conns: Vec<Vec<Option<FramedConn>>>,
    done: Vec<Vec<bool>>,
    last_req: Vec<Vec<u64>>,
}

impl WireSource {
    fn new(conns: Vec<Vec<Option<FramedConn>>>) -> WireSource {
        let done = conns.iter().map(|p| vec![false; p.len()]).collect();
        let last_req = conns.iter().map(|p| vec![0u64; p.len()]).collect();
        WireSource {
            conns,
            done,
            last_req,
        }
    }

    /// Broadcasts Finish to every surviving connection and closes them.
    fn finish(&mut self) {
        for (t, pairs) in self.conns.iter_mut().enumerate() {
            for (s, slot) in pairs.iter_mut().enumerate() {
                if let Some(conn) = slot.as_mut() {
                    let _ = conn.send(&Frame::new(
                        FrameKind::Finish,
                        t as u32,
                        s as u32,
                        0,
                        Vec::new(),
                    ));
                }
                *slot = None;
            }
        }
    }
}

impl drive::RequestSource for WireSource {
    fn pull(&mut self, tenant: usize, service: usize) -> drive::Pulled {
        if self.done[tenant][service] {
            return drive::Pulled::Done;
        }
        let Some(conn) = self.conns[tenant][service].as_mut() else {
            return drive::Pulled::Stalled;
        };
        match conn.recv() {
            Ok(f) if f.kind == FrameKind::Request => {
                if f.tenant as usize != tenant || f.service as usize != service {
                    self.conns[tenant][service] = None;
                    return drive::Pulled::Stalled;
                }
                self.last_req[tenant][service] = f.req_id;
                drive::Pulled::Request(f.payload)
            }
            Ok(f) if f.kind == FrameKind::Done => {
                self.done[tenant][service] = true;
                drive::Pulled::Done
            }
            Ok(_) => {
                // Out-of-protocol frame: the stream can't be trusted.
                self.conns[tenant][service] = None;
                drive::Pulled::Stalled
            }
            Err(ConnError::TimedOut) => {
                // Keep the connection: the client may still be able to
                // read its Finish, it just failed to produce in time.
                drive::Pulled::Stalled
            }
            Err(_) => {
                self.conns[tenant][service] = None;
                drive::Pulled::Stalled
            }
        }
    }

    fn deliver(&mut self, tenant: usize, service: usize, completion: &Completion) {
        if let Some(conn) = self.conns[tenant][service].as_mut() {
            let frame = Frame::new(
                FrameKind::Reply,
                tenant as u32,
                service as u32,
                completion.seq,
                WireCompletion::from_completion(completion).encode(),
            );
            if conn.send(&frame).is_err() {
                self.conns[tenant][service] = None;
            }
        }
    }

    fn rejected(&mut self, tenant: usize, service: usize) {
        if let Some(conn) = self.conns[tenant][service].as_mut() {
            let frame = Frame::new(
                FrameKind::Reject,
                tenant as u32,
                service as u32,
                self.last_req[tenant][service],
                Vec::new(),
            );
            if conn.send(&frame).is_err() {
                self.conns[tenant][service] = None;
            }
        }
    }
}

/// The TCP front door: bind, accept every pair, serve, export.
pub struct FrontDoor {
    cfg: ServeConfig,
    listener: TcpListener,
}

impl FrontDoor {
    /// Binds the listener (pass port 0 for an ephemeral port; read it
    /// back with [`FrontDoor::local_addr`]).
    ///
    /// # Errors
    ///
    /// Socket bind failure.
    pub fn bind(cfg: ServeConfig, addr: &str) -> std::io::Result<FrontDoor> {
        let listener = TcpListener::bind(addr)?;
        Ok(FrontDoor { cfg, listener })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the whole serving session: accept every (tenant, service)
    /// pair (shedding tenants whose clients never arrive), warm up over
    /// the wire, serve the measured loop, broadcast Finish, and return
    /// the exports.
    ///
    /// # Errors
    ///
    /// Build/accept failures, malformed chaos specs, or broken
    /// end-of-run invariants. Client misbehavior is **not** an error —
    /// it degrades into sheds, exactly like every other loss path.
    pub fn run(self) -> Result<ServeOutcome, String> {
        let cfg = self.cfg;
        let mut cluster = build_cluster(&cfg)?;
        let conns = accept_pairs(&self.listener, &cfg)?;
        let label = format!("ne-serve-{}", cfg.mode.name());

        let shard = &mut cluster.shards_mut()[0];
        // A tenant missing any pair cannot play the scenario: shed it up
        // front, exactly like a tenant shed at admission.
        for (t, pairs) in conns.iter().enumerate() {
            if pairs.iter().any(|c| c.is_none()) {
                shard.server.shed_tenant(t);
            }
        }
        let setup = drive::setup_counts(&drive::factories(shard, cfg.seed));
        let mut source = WireSource::new(conns);
        drive::warmup_external(shard, &mut source, &setup);
        if let Some(spec) = &cfg.chaos {
            let plan = FaultPlan::parse(spec, shard_seed(cfg.seed ^ CHAOS_SALT, shard.id))
                .map_err(|e| format!("--chaos: {e}"))?;
            shard.server.install_chaos(plan);
        }
        let mut sampler = cfg.window.map(|w| {
            Sampler::new(
                &shard.server,
                shard.globals.clone(),
                SamplerConfig {
                    window_cycles: w.max(1),
                    ..SamplerConfig::default()
                },
            )
        });
        let mut observe = |s: &ne_host::server::HostServer| {
            if let Some(smp) = sampler.as_mut() {
                smp.poll(s);
            }
        };
        let accepted = match cfg.mode {
            Mode::Closed => drive::closed_loop_external(shard, &mut source, &mut observe),
            Mode::Open => {
                // One shard: global pair ids are the local ones, and the
                // globally generated schedule routes to it unchanged.
                let pairs: Vec<(usize, usize)> = shard
                    .server
                    .tenants()
                    .iter()
                    .enumerate()
                    .flat_map(|(t, ts)| (0..ts.spec.services.len()).map(move |s| (t, s)))
                    .collect();
                let schedule = drive::poisson_schedule(&pairs, cfg.requests, cfg.seed);
                drive::open_loop_external(shard, &mut source, &schedule, &mut observe)
            }
        };
        let timeline = match sampler {
            Some(smp) => {
                let mut t = smp.finish(&shard.server);
                t.rebase_shard(shard.id);
                Some(Timeline::fold(std::slice::from_ref(&t))?)
            }
            None => None,
        };
        source.finish();
        finish_outcome(&cluster, accepted, timeline, &label)
    }
}

/// The accept phase: collects one Hello'd connection per (tenant,
/// service) pair, refusing bad handshakes and scenario mismatches, until
/// every pair is settled or the accept deadline passes.
fn accept_pairs(
    listener: &TcpListener,
    cfg: &ServeConfig,
) -> Result<Vec<Vec<Option<FramedConn>>>, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let mut slots: Vec<Vec<Slot>> = (0..cfg.tenants)
        .map(|_| (0..cfg.services).map(|_| Slot::Waiting).collect())
        .collect();
    let mut waiting = cfg.tenants * cfg.services;
    let deadline = Instant::now() + cfg.accept_timeout;
    while waiting > 0 && Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Some((t, s, outcome)) = greet(stream, cfg) {
                    if let Slot::Waiting = slots[t][s] {
                        waiting -= 1;
                        slots[t][s] = outcome;
                    }
                    // A duplicate claim never evicts the pair's settled
                    // connection; the newcomer was already aborted.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
    Ok(slots
        .into_iter()
        .map(|pairs| {
            pairs
                .into_iter()
                .map(|slot| match slot {
                    Slot::Ready(conn) => Some(*conn),
                    _ => None,
                })
                .collect()
        })
        .collect())
}

/// Greets one fresh connection: optional transport handshake, then the
/// Hello exchange. Returns the claimed pair and its settled slot, or
/// `None` when the connection never identified a pair in range.
fn greet(stream: TcpStream, cfg: &ServeConfig) -> Option<(usize, usize, Slot)> {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err() {
        return None;
    }
    let mut conn = FramedConn::new(stream).ok()?;
    let first = conn.recv().ok()?;
    let tenant = first.tenant as usize;
    let service = first.service as usize;
    if tenant >= cfg.tenants || service >= cfg.services {
        let _ = conn.send(&abort(&first, "pair out of range"));
        return None;
    }
    let hello = if cfg.tls {
        if first.kind != FrameKind::ClientHello {
            let _ = conn.send(&abort(&first, "expected ClientHello"));
            return Some((tenant, service, Slot::Refused));
        }
        if session::server_handshake(&mut conn, &first, cfg.seed).is_err() {
            // The handshake already sent the typed Abort (rollback
            // offers land here).
            return Some((tenant, service, Slot::Refused));
        }
        match conn.recv() {
            Ok(f) => f,
            Err(_) => return Some((tenant, service, Slot::Refused)),
        }
    } else {
        first
    };
    if hello.kind != FrameKind::Hello
        || hello.tenant as usize != tenant
        || hello.service as usize != service
    {
        let _ = conn.send(&abort(&hello, "expected Hello for the claimed pair"));
        return Some((tenant, service, Slot::Refused));
    }
    match Scenario::decode(&hello.payload) {
        Ok(sc) if sc == cfg.scenario() => {}
        Ok(_) => {
            let _ = conn.send(&abort(&hello, "scenario mismatch"));
            return Some((tenant, service, Slot::Refused));
        }
        Err(e) => {
            let _ = conn.send(&abort(&hello, &e));
            return Some((tenant, service, Slot::Refused));
        }
    }
    if conn
        .send(&Frame::new(
            FrameKind::HelloAck,
            tenant as u32,
            service as u32,
            hello.req_id,
            Vec::new(),
        ))
        .is_err()
    {
        return Some((tenant, service, Slot::Refused));
    }
    Some((tenant, service, Slot::Ready(Box::new(conn))))
}

fn abort(cause: &Frame, reason: &str) -> Frame {
    Frame::new(
        FrameKind::Abort,
        cause.tenant,
        cause.service,
        cause.req_id,
        reason.as_bytes().to_vec(),
    )
}
