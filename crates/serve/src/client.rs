//! The wire load client behind `ne-load --connect`: one TCP connection
//! per (tenant, service) pair, each replaying the pair's seeded
//! [`RequestFactory`] stream against the front door — warmup frames fire
//! and forget, then the measured loop (closed: next request at the
//! previous reply; open: the whole stream up front, arrivals paced by
//! the server's seeded schedule).
//!
//! The report is **byte-deterministic**: everything in it (latencies,
//! digests, counters) is a simulation fact carried back in Reply frames,
//! never a wall-clock measurement, so two runs against servers with the
//! same seed render identical reports — asserted by test and by CI's
//! `serve-smoke` job. Per-tenant reply digests use the exact
//! `ne-tenants/v1` packing, so they can be grepped straight against the
//! server's export.

use std::net::TcpStream;
use std::time::Duration;

use ne_host::{RequestFactory, ServiceKind};

use crate::conn::{ConnError, FramedConn};
use crate::frame::{Frame, FrameKind};
use crate::{session, Mode, Scenario, WireCompletion};

/// Wire client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// `host:port` of the front door.
    pub addr: String,
    /// Number of tenants (must match the server's scenario).
    pub tenants: usize,
    /// Services per tenant.
    pub services: usize,
    /// Measured requests per (tenant, service) pair.
    pub requests: usize,
    /// Base seed of every generator stream.
    pub seed: u64,
    /// Arrival process.
    pub mode: Mode,
    /// Run the transport handshake and seal every frame.
    pub tls: bool,
    /// Read deadline on every connection; the server side warms up and
    /// steps the simulation between replies, so this bounds patience,
    /// not throughput.
    pub read_timeout: Duration,
}

impl ClientConfig {
    /// The scenario this client will announce in its Hellos.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            seed: self.seed,
            mode: self.mode,
            requests: self.requests as u32,
            tenants: self.tenants as u32,
            services: self.services as u32,
        }
    }
}

/// What one pair's connection experienced.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Tenant index.
    pub tenant: usize,
    /// Service index.
    pub service: usize,
    /// Measured requests sent (warmup excluded).
    pub sent: u64,
    /// Replies received, as `(service, seq, reply)` — the
    /// `ne-tenants/v1` digest unit.
    pub replies: Vec<(usize, u64, Vec<u8>)>,
    /// Reply latencies in simulated cycles, in arrival order.
    pub latencies: Vec<u64>,
    /// Requests the server rejected at admission.
    pub rejected: u64,
    /// Replies that failed the factory's sanity check.
    pub bad_replies: u64,
    /// A connection-fatal failure, if any.
    pub error: Option<String>,
}

impl PairOutcome {
    fn new(tenant: usize, service: usize) -> PairOutcome {
        PairOutcome {
            tenant,
            service,
            sent: 0,
            replies: Vec::new(),
            latencies: Vec::new(),
            rejected: 0,
            bad_replies: 0,
            error: None,
        }
    }

    fn failed(tenant: usize, service: usize, error: String) -> PairOutcome {
        PairOutcome {
            error: Some(error),
            ..PairOutcome::new(tenant, service)
        }
    }
}

/// The deterministic end-of-run report.
#[derive(Debug)]
pub struct ClientReport {
    cfg: ClientConfig,
    /// Per-pair outcomes in (tenant, service) order.
    pub pairs: Vec<PairOutcome>,
}

/// The wire load client: runs every pair's connection and renders the
/// report.
pub struct LoadClient {
    cfg: ClientConfig,
}

impl LoadClient {
    /// A client for `cfg`.
    pub fn new(cfg: ClientConfig) -> LoadClient {
        LoadClient { cfg }
    }

    /// Runs one connection per (tenant, service) pair, concurrently (the
    /// closed-loop server interleaves pulls across pairs, so serial
    /// clients would deadlock), and collects outcomes in (tenant,
    /// service) order.
    pub fn run(&self) -> ClientReport {
        let cfg = &self.cfg;
        let pairs: Vec<(usize, usize)> = (0..cfg.tenants)
            .flat_map(|t| (0..cfg.services).map(move |s| (t, s)))
            .collect();
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(t, s)| scope.spawn(move || run_pair(cfg, t, s)))
                .collect();
            handles
                .into_iter()
                .zip(&pairs)
                .map(|(h, &(t, s))| {
                    h.join()
                        .unwrap_or_else(|_| PairOutcome::failed(t, s, "panicked".to_string()))
                })
                .collect()
        });
        ClientReport {
            cfg: self.cfg.clone(),
            pairs: outcomes,
        }
    }
}

/// Drives one pair's whole session against the front door. Public so
/// tests can run a single well-behaved pair alongside a misbehaving one.
pub fn run_pair(cfg: &ClientConfig, tenant: usize, service: usize) -> PairOutcome {
    match pair_session(cfg, tenant, service) {
        Ok(outcome) => outcome,
        Err(e) => PairOutcome::failed(tenant, service, e.to_string()),
    }
}

fn pair_factory(cfg: &ClientConfig, tenant: usize, service: usize) -> RequestFactory {
    // The same (kind, global tenant, seed) the server's standard specs
    // produce — this is what makes the wire stream byte-identical to the
    // in-process factories.
    let kind = ServiceKind::ALL[service % ServiceKind::ALL.len()];
    RequestFactory::new(kind, tenant, cfg.seed)
}

fn connect(cfg: &ClientConfig) -> Result<FramedConn, ConnError> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| ConnError::Io(e.kind()))?;
    let _ = stream.set_nodelay(true);
    let conn = FramedConn::new(stream).map_err(|e| ConnError::Io(e.kind()))?;
    conn.set_read_timeout(Some(cfg.read_timeout))
        .map_err(|e| ConnError::Io(e.kind()))?;
    Ok(conn)
}

/// Connects, handshakes, Hellos, and returns the ready connection —
/// shared by the measured session and by tests that need a raw greeted
/// connection.
pub fn greet(cfg: &ClientConfig, tenant: usize, service: usize) -> Result<FramedConn, ConnError> {
    let mut conn = connect(cfg)?;
    if cfg.tls {
        session::client_handshake(&mut conn, cfg.seed, tenant, service)?;
    }
    conn.send(&Frame::new(
        FrameKind::Hello,
        tenant as u32,
        service as u32,
        0,
        cfg.scenario().encode(),
    ))?;
    let ack = conn.recv()?;
    match ack.kind {
        FrameKind::HelloAck => Ok(conn),
        FrameKind::Abort => Err(ConnError::Protocol(format!(
            "server refused Hello: {}",
            String::from_utf8_lossy(&ack.payload)
        ))),
        other => Err(ConnError::Protocol(format!(
            "expected HelloAck, got {other:?}"
        ))),
    }
}

fn pair_session(
    cfg: &ClientConfig,
    tenant: usize,
    service: usize,
) -> Result<PairOutcome, ConnError> {
    let mut conn = greet(cfg, tenant, service)?;
    let mut factory = pair_factory(cfg, tenant, service);
    let mut req_id = 0u64;
    // Warmup fires and forgets: the server serves these before the
    // measured window opens and never replies to them.
    for _ in 0..factory.setup_requests().max(1) {
        req_id += 1;
        conn.send(&request_frame(tenant, service, req_id, &mut factory))?;
    }
    match cfg.mode {
        Mode::Closed => closed_session(cfg, tenant, service, conn, factory, req_id),
        Mode::Open => open_session(cfg, tenant, service, conn, factory, req_id),
    }
}

fn request_frame(
    tenant: usize,
    service: usize,
    req_id: u64,
    factory: &mut RequestFactory,
) -> Frame {
    Frame::new(
        FrameKind::Request,
        tenant as u32,
        service as u32,
        req_id,
        factory.next_request(),
    )
}

fn done_frame(tenant: usize, service: usize) -> Frame {
    Frame::new(
        FrameKind::Done,
        tenant as u32,
        service as u32,
        0,
        Vec::new(),
    )
}

/// Records one Reply frame into the outcome.
fn record_reply(
    outcome: &mut PairOutcome,
    factory: &RequestFactory,
    frame: &Frame,
) -> Result<(), ConnError> {
    let wc = WireCompletion::decode(&frame.payload).map_err(ConnError::Protocol)?;
    if !factory.check_reply(&wc.reply) {
        outcome.bad_replies += 1;
    }
    outcome.latencies.push(wc.latency);
    outcome.replies.push((outcome.service, wc.seq, wc.reply));
    Ok(())
}

fn closed_session(
    cfg: &ClientConfig,
    tenant: usize,
    service: usize,
    mut conn: FramedConn,
    mut factory: RequestFactory,
    mut req_id: u64,
) -> Result<PairOutcome, ConnError> {
    let mut outcome = PairOutcome::new(tenant, service);
    if cfg.requests == 0 {
        conn.send(&done_frame(tenant, service))?;
    } else {
        req_id += 1;
        conn.send(&request_frame(tenant, service, req_id, &mut factory))?;
        outcome.sent += 1;
    }
    let mut finished_sending = cfg.requests == 0;
    loop {
        let frame = conn.recv()?;
        match frame.kind {
            FrameKind::Reply => {
                record_reply(&mut outcome, &factory, &frame)?;
                if (outcome.sent as usize) < cfg.requests {
                    req_id += 1;
                    conn.send(&request_frame(tenant, service, req_id, &mut factory))?;
                    outcome.sent += 1;
                } else if !finished_sending {
                    conn.send(&done_frame(tenant, service))?;
                    finished_sending = true;
                }
            }
            FrameKind::Reject => {
                // Admission closed this pair; nothing more will be
                // pulled. Wait for the broadcast Finish.
                outcome.rejected += 1;
            }
            FrameKind::Finish => return Ok(outcome),
            FrameKind::Abort => {
                return Err(ConnError::Protocol(format!(
                    "server aborted: {}",
                    String::from_utf8_lossy(&frame.payload)
                )))
            }
            other => {
                return Err(ConnError::Protocol(format!(
                    "unexpected frame {other:?} mid-session"
                )))
            }
        }
    }
}

fn open_session(
    cfg: &ClientConfig,
    tenant: usize,
    service: usize,
    conn: FramedConn,
    mut factory: RequestFactory,
    mut req_id: u64,
) -> Result<PairOutcome, ConnError> {
    let mut outcome = PairOutcome::new(tenant, service);
    // The reply check only reads the factory's identity, never its RNG
    // position, so a dedicated checker keyed the same way is equivalent.
    let checker = pair_factory(cfg, tenant, service);
    let (mut tx, mut rx) = conn.into_split();
    std::thread::scope(|scope| -> Result<(), ConnError> {
        // The server paces pulls by its seeded schedule while replies
        // stream back interleaved; writing from a second thread keeps
        // the stream full without blocking reads.
        let writer = scope.spawn(move || -> Result<u64, ConnError> {
            let mut sent = 0u64;
            for _ in 0..cfg.requests {
                req_id += 1;
                tx.send(&request_frame(tenant, service, req_id, &mut factory))?;
                sent += 1;
            }
            tx.send(&done_frame(tenant, service))?;
            Ok(sent)
        });
        loop {
            let frame = match rx.recv() {
                Ok(f) => f,
                Err(ConnError::Closed) => break,
                Err(e) => return Err(e),
            };
            match frame.kind {
                FrameKind::Reply => record_reply(&mut outcome, &checker, &frame)?,
                FrameKind::Reject => outcome.rejected += 1,
                FrameKind::Finish => break,
                FrameKind::Abort => {
                    return Err(ConnError::Protocol(format!(
                        "server aborted: {}",
                        String::from_utf8_lossy(&frame.payload)
                    )))
                }
                other => {
                    return Err(ConnError::Protocol(format!(
                        "unexpected frame {other:?} mid-session"
                    )))
                }
            }
        }
        outcome.sent = writer
            .join()
            .map_err(|_| ConnError::Protocol("writer panicked".to_string()))??;
        Ok(())
    })?;
    Ok(outcome)
}

/// Nearest-rank percentile of an already sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ClientReport {
    /// Renders the deterministic report: a scenario header, one line per
    /// tenant (counters, simulated-latency percentiles, and the
    /// `ne-tenants/v1` reply digest), error lines for failed pairs, and
    /// a total line.
    pub fn render(&self) -> String {
        let cfg = &self.cfg;
        let mut out = format!(
            "ne-load wire report: {} tenants x {} services, {} requests per pair, \
             seed {}, mode {}, tls {}\n",
            cfg.tenants,
            cfg.services,
            cfg.requests,
            cfg.seed,
            cfg.mode.name(),
            if cfg.tls { "on" } else { "off" },
        );
        let mut total_sent = 0u64;
        let mut total_replies = 0u64;
        let mut total_rejected = 0u64;
        for t in 0..cfg.tenants {
            let pairs: Vec<&PairOutcome> = self.pairs.iter().filter(|p| p.tenant == t).collect();
            let sent: u64 = pairs.iter().map(|p| p.sent).sum();
            let replies: u64 = pairs.iter().map(|p| p.replies.len() as u64).sum();
            let rejected: u64 = pairs.iter().map(|p| p.rejected).sum();
            let bad: u64 = pairs.iter().map(|p| p.bad_replies).sum();
            total_sent += sent;
            total_replies += replies;
            total_rejected += rejected;
            let mut latencies: Vec<u64> = pairs
                .iter()
                .flat_map(|p| p.latencies.iter().copied())
                .collect();
            latencies.sort_unstable();
            // The server's per-tenant digest unit, byte for byte.
            let mut entries: Vec<&(usize, u64, Vec<u8>)> =
                pairs.iter().flat_map(|p| p.replies.iter()).collect();
            entries.sort_by_key(|(s, seq, _)| (*s, *seq));
            let mut bytes = Vec::new();
            for (s, seq, reply) in entries {
                bytes.extend_from_slice(&(*s as u32).to_le_bytes());
                bytes.extend_from_slice(&seq.to_le_bytes());
                bytes.extend_from_slice(&(reply.len() as u32).to_le_bytes());
                bytes.extend_from_slice(reply);
            }
            let digest = ne_crypto::sha256_digest(&bytes);
            let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
            out.push_str(&format!(
                "tenant {t} sent {sent} replies {replies} rejected {rejected} \
                 shed {} bad {bad} latency_p50 {} p99 {} replies sha256:{hex}\n",
                sent.saturating_sub(replies + rejected),
                percentile(&latencies, 50.0),
                percentile(&latencies, 99.0),
            ));
            for p in pairs.iter().filter(|p| p.error.is_some()) {
                out.push_str(&format!(
                    "pair {}.{}: error {}\n",
                    p.tenant,
                    p.service,
                    p.error.as_deref().unwrap_or(""),
                ));
            }
        }
        out.push_str(&format!(
            "total: sent {total_sent} replies {total_replies} rejected {total_rejected}\n"
        ));
        out
    }
}
