//! Framed TCP connections: a [`FramedConn`] pairs a [`FrameSender`] and
//! a [`FrameReceiver`] over one socket (via `try_clone`), so open-loop
//! clients can split sending and receiving across threads. With TLS
//! enabled ([`FramedConn::enable_tls`]) every frame travels inside one
//! `ne-tls` record — the wire bytes are ciphertext; framing, sequence
//! numbers, and tampering are authenticated by the record layer before
//! the frame decoder ever sees a byte.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ne_tls::record::{ContentType, RecordError, RecordLayer};

use crate::frame::{Decoder, Frame, FrameError, HEADER_LEN, MAX_PAYLOAD};

/// Largest admissible TLS record body on the wire: one maximal frame
/// plus the record tag, with a little slack. Anything larger is a
/// protocol violation, refused before allocating.
const MAX_RECORD: usize = HEADER_LEN + MAX_PAYLOAD + 64;

/// Connection-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The read deadline expired (slow or stalled peer).
    TimedOut,
    /// The peer closed the connection.
    Closed,
    /// Frame decode failure (see [`FrameError`]); the stream is dead.
    Frame(FrameError),
    /// TLS record failure (tamper, replay, framing); the stream is dead.
    Record(RecordError),
    /// Protocol violation above the codec (wrong frame kind, oversized
    /// record, handshake refusal).
    Protocol(String),
    /// Any other socket error.
    Io(std::io::ErrorKind),
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::TimedOut => write!(f, "read deadline expired"),
            ConnError::Closed => write!(f, "connection closed by peer"),
            ConnError::Frame(e) => write!(f, "frame error: {e}"),
            ConnError::Record(e) => write!(f, "record error: {e}"),
            ConnError::Protocol(m) => write!(f, "protocol error: {m}"),
            ConnError::Io(k) => write!(f, "socket error: {k:?}"),
        }
    }
}

impl std::error::Error for ConnError {}

fn map_io(e: std::io::Error) -> ConnError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ConnError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ConnError::Closed,
        k => ConnError::Io(k),
    }
}

/// The sending half of a framed connection.
#[derive(Debug)]
pub struct FrameSender {
    stream: TcpStream,
    seal: Option<RecordLayer>,
}

impl FrameSender {
    /// Encodes and writes one frame (sealed in a record when TLS is
    /// enabled).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ConnError> {
        let bytes = frame.encode();
        let wire = match &mut self.seal {
            Some(layer) => layer.seal(ContentType::Data, &bytes),
            None => bytes,
        };
        self.stream.write_all(&wire).map_err(map_io)
    }
}

/// The receiving half of a framed connection.
#[derive(Debug)]
pub struct FrameReceiver {
    stream: TcpStream,
    seal: Option<RecordLayer>,
    decoder: Decoder,
}

impl FrameReceiver {
    /// Blocks for the next frame, honoring the socket's read timeout.
    ///
    /// In plaintext mode a timeout leaves buffered partial bytes intact
    /// (the read is resumable); in TLS mode a timeout mid-record is
    /// fatal to the stream — the caller treats any [`ConnError`] other
    /// than a clean first-byte timeout as reason to drop the peer.
    ///
    /// # Errors
    ///
    /// [`ConnError`] on timeout, close, decode, or record failure.
    pub fn recv(&mut self) -> Result<Frame, ConnError> {
        loop {
            if let Some(frame) = self.decoder.next_frame().map_err(ConnError::Frame)? {
                return Ok(frame);
            }
            match &mut self.seal {
                None => {
                    let mut chunk = [0u8; 4096];
                    let n = self.stream.read(&mut chunk).map_err(map_io)?;
                    if n == 0 {
                        return Err(ConnError::Closed);
                    }
                    self.decoder.feed(&chunk[..n]).map_err(ConnError::Frame)?;
                }
                Some(layer) => {
                    let mut header = [0u8; 5];
                    read_exact(&mut self.stream, &mut header)?;
                    let len =
                        u32::from_le_bytes(header[1..5].try_into().expect("4 bytes")) as usize;
                    if len > MAX_RECORD {
                        return Err(ConnError::Protocol(format!(
                            "oversized record of {len} bytes"
                        )));
                    }
                    let mut wire = vec![0u8; 5 + len];
                    wire[..5].copy_from_slice(&header);
                    read_exact(&mut self.stream, &mut wire[5..])?;
                    let (ty, plaintext) = layer.open(&wire).map_err(ConnError::Record)?;
                    if ty != ContentType::Data {
                        return Err(ConnError::Protocol(format!(
                            "unexpected record type {ty:?}"
                        )));
                    }
                    self.decoder.feed(&plaintext).map_err(ConnError::Frame)?;
                }
            }
        }
    }
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ConnError> {
    stream.read_exact(buf).map_err(map_io)
}

/// A framed connection: one socket, both directions.
#[derive(Debug)]
pub struct FramedConn {
    tx: FrameSender,
    rx: FrameReceiver,
}

impl FramedConn {
    /// Wraps a connected stream. The stream is cloned so the two halves
    /// can later be split across threads.
    ///
    /// # Errors
    ///
    /// Socket clone failure.
    pub fn new(stream: TcpStream) -> std::io::Result<FramedConn> {
        let write_half = stream.try_clone()?;
        Ok(FramedConn {
            tx: FrameSender {
                stream: write_half,
                seal: None,
            },
            rx: FrameReceiver {
                stream,
                seal: None,
                decoder: Decoder::new(),
            },
        })
    }

    /// Sets the read deadline for [`FramedConn::recv`] (`None` blocks
    /// forever).
    ///
    /// # Errors
    ///
    /// Socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.rx.stream.set_read_timeout(timeout)
    }

    /// Switches both directions to sealed records under `key` (each
    /// direction gets its own [`RecordLayer`] so the halves stay
    /// independently owned). Must be called at a frame boundary — i.e.
    /// right after the plaintext handshake frames — or the leftover
    /// buffered bytes would be misinterpreted.
    pub fn enable_tls(&mut self, key: [u8; 16]) {
        assert_eq!(
            self.rx.decoder.buffered(),
            0,
            "enable_tls mid-stream would desynchronize"
        );
        self.tx.seal = Some(RecordLayer::new(key));
        self.rx.seal = Some(RecordLayer::new(key));
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// As [`FrameSender::send`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), ConnError> {
        self.tx.send(frame)
    }

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// As [`FrameReceiver::recv`].
    pub fn recv(&mut self) -> Result<Frame, ConnError> {
        self.rx.recv()
    }

    /// Splits the connection into independently owned halves (the
    /// open-loop client writes from one thread and reads from another).
    pub fn into_split(self) -> (FrameSender, FrameReceiver) {
        (self.tx, self.rx)
    }
}
