//! Framed TCP connections: a [`FramedConn`] pairs a [`FrameSender`] and
//! a [`FrameReceiver`] over one socket (via `try_clone`), so open-loop
//! clients can split sending and receiving across threads. With TLS
//! enabled ([`FramedConn::enable_tls`]) every frame travels inside one
//! `ne-tls` record — the wire bytes are ciphertext; framing, sequence
//! numbers, and tampering are authenticated by the record layer before
//! the frame decoder ever sees a byte.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ne_tls::record::{ContentType, RecordError, RecordLayer};

use crate::frame::{le_u32, Decoder, Frame, FrameError, HEADER_LEN, MAX_PAYLOAD};

/// Largest admissible TLS record body on the wire: one maximal frame
/// plus the record tag, with a little slack. Anything larger is a
/// protocol violation, refused before allocating.
const MAX_RECORD: usize = HEADER_LEN + MAX_PAYLOAD + 64;

/// Connection-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The read deadline expired (slow or stalled peer).
    TimedOut,
    /// The peer closed the connection.
    Closed,
    /// Frame decode failure (see [`FrameError`]); the stream is dead.
    Frame(FrameError),
    /// TLS record failure (tamper, replay, framing); the stream is dead.
    Record(RecordError),
    /// Protocol violation above the codec (wrong frame kind, oversized
    /// record, handshake refusal).
    Protocol(String),
    /// Any other socket error.
    Io(std::io::ErrorKind),
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::TimedOut => write!(f, "read deadline expired"),
            ConnError::Closed => write!(f, "connection closed by peer"),
            ConnError::Frame(e) => write!(f, "frame error: {e}"),
            ConnError::Record(e) => write!(f, "record error: {e}"),
            ConnError::Protocol(m) => write!(f, "protocol error: {m}"),
            ConnError::Io(k) => write!(f, "socket error: {k:?}"),
        }
    }
}

impl std::error::Error for ConnError {}

fn map_io(e: std::io::Error) -> ConnError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ConnError::TimedOut,
        std::io::ErrorKind::UnexpectedEof => ConnError::Closed,
        k => ConnError::Io(k),
    }
}

/// The sending half of a framed connection.
#[derive(Debug)]
pub struct FrameSender {
    stream: TcpStream,
    seal: Option<RecordLayer>,
}

impl FrameSender {
    /// Encodes and writes one frame (sealed in a record when TLS is
    /// enabled).
    ///
    /// # Errors
    ///
    /// [`FrameError::Oversized`] for a payload past [`MAX_PAYLOAD`]
    /// (the peer's decoder would refuse it anyway — failing here keeps
    /// the stream alive), or socket write failures.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ConnError> {
        if frame.payload.len() > MAX_PAYLOAD {
            return Err(ConnError::Frame(FrameError::Oversized(
                frame.payload.len().min(u32::MAX as usize) as u32,
            )));
        }
        let bytes = frame.encode();
        let wire = match &mut self.seal {
            Some(layer) => layer.seal(ContentType::Data, &bytes),
            None => bytes,
        };
        self.stream.write_all(&wire).map_err(map_io)
    }
}

/// The receiving half of a framed connection.
#[derive(Debug)]
pub struct FrameReceiver {
    stream: TcpStream,
    seal: Option<RecordLayer>,
    decoder: Decoder,
}

impl FrameReceiver {
    /// Blocks for the next frame, honoring the socket's read timeout.
    ///
    /// In plaintext mode a timeout leaves buffered partial bytes intact
    /// (the read is resumable); in TLS mode a timeout mid-record is
    /// fatal to the stream — the caller treats any [`ConnError`] other
    /// than a clean first-byte timeout as reason to drop the peer.
    ///
    /// # Errors
    ///
    /// [`ConnError`] on timeout, close, decode, or record failure.
    pub fn recv(&mut self) -> Result<Frame, ConnError> {
        loop {
            if let Some(frame) = self.decoder.next_frame().map_err(ConnError::Frame)? {
                return Ok(frame);
            }
            match &mut self.seal {
                None => {
                    let mut chunk = [0u8; 4096];
                    let n = self.stream.read(&mut chunk).map_err(map_io)?;
                    if n == 0 {
                        return Err(ConnError::Closed);
                    }
                    self.decoder.feed(&chunk[..n]).map_err(ConnError::Frame)?;
                }
                Some(layer) => {
                    let mut header = [0u8; 5];
                    read_exact(&mut self.stream, &mut header)?;
                    let len = le_u32(&header[1..5]) as usize;
                    if len > MAX_RECORD {
                        return Err(ConnError::Protocol(format!(
                            "oversized record of {len} bytes"
                        )));
                    }
                    let mut wire = vec![0u8; 5 + len];
                    wire[..5].copy_from_slice(&header);
                    read_exact(&mut self.stream, &mut wire[5..])?;
                    let (ty, plaintext) = layer.open(&wire).map_err(ConnError::Record)?;
                    if ty != ContentType::Data {
                        return Err(ConnError::Protocol(format!(
                            "unexpected record type {ty:?}"
                        )));
                    }
                    self.decoder.feed(&plaintext).map_err(ConnError::Frame)?;
                }
            }
        }
    }
}

fn read_exact(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), ConnError> {
    stream.read_exact(buf).map_err(map_io)
}

/// A framed connection: one socket, both directions.
#[derive(Debug)]
pub struct FramedConn {
    tx: FrameSender,
    rx: FrameReceiver,
}

impl FramedConn {
    /// Wraps a connected stream. The stream is cloned so the two halves
    /// can later be split across threads.
    ///
    /// # Errors
    ///
    /// Socket clone failure.
    pub fn new(stream: TcpStream) -> std::io::Result<FramedConn> {
        let write_half = stream.try_clone()?;
        Ok(FramedConn {
            tx: FrameSender {
                stream: write_half,
                seal: None,
            },
            rx: FrameReceiver {
                stream,
                seal: None,
                decoder: Decoder::new(),
            },
        })
    }

    /// Sets the read deadline for [`FramedConn::recv`] (`None` blocks
    /// forever).
    ///
    /// # Errors
    ///
    /// Socket option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.rx.stream.set_read_timeout(timeout)
    }

    /// Switches both directions to sealed records under `key` (each
    /// direction gets its own [`RecordLayer`] so the halves stay
    /// independently owned). Must be called at a frame boundary — i.e.
    /// right after the plaintext handshake frames.
    ///
    /// # Errors
    ///
    /// [`ConnError::Protocol`] if the peer pipelined bytes past its
    /// handshake frame: those buffered plaintext bytes would be
    /// misinterpreted once records are on, so the stream is refused
    /// instead of desynchronized (a hostile client must not be able to
    /// abort the front door — it only gets its own connection dropped).
    pub fn enable_tls(&mut self, key: [u8; 16]) -> Result<(), ConnError> {
        let buffered = self.rx.decoder.buffered();
        if buffered != 0 {
            return Err(ConnError::Protocol(format!(
                "{buffered} bytes pipelined past the handshake frame"
            )));
        }
        self.tx.seal = Some(RecordLayer::new(key));
        self.rx.seal = Some(RecordLayer::new(key));
        Ok(())
    }

    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// As [`FrameSender::send`].
    pub fn send(&mut self, frame: &Frame) -> Result<(), ConnError> {
        self.tx.send(frame)
    }

    /// Receives one frame.
    ///
    /// # Errors
    ///
    /// As [`FrameReceiver::recv`].
    pub fn recv(&mut self) -> Result<Frame, ConnError> {
        self.rx.recv()
    }

    /// Splits the connection into independently owned halves (the
    /// open-loop client writes from one thread and reads from another).
    pub fn into_split(self) -> (FrameSender, FrameReceiver) {
        (self.tx, self.rx)
    }
}
