//! The in-process oracle: the same scenario a [`crate::FrontDoor`]
//! serves, run entirely through the existing [`ne_cluster::Cluster`]
//! drive loops with no socket anywhere. Byte-for-byte, its three exports
//! are what the wire run must produce — the headline invariant of this
//! crate, asserted by the `wire_oracle` integration test and CI's
//! `serve-smoke` job.

use ne_obs::SamplerConfig;

use crate::server::{build_cluster, finish_outcome, ServeConfig, ServeOutcome};
use crate::Mode;

/// Runs the scenario in-process and returns the exports a conforming
/// wire run must match byte for byte. Only the scenario fields of `cfg`
/// matter; the wire knobs (timeouts, TLS) have no in-process analogue —
/// which is the point: TLS on the wire must not change a single exported
/// byte.
///
/// # Errors
///
/// Cluster build failures, malformed chaos specs, or broken end-of-run
/// invariants.
pub fn run_oracle(cfg: &ServeConfig) -> Result<ServeOutcome, String> {
    let mut cluster = build_cluster(cfg)?;
    let label = format!("ne-serve-{}", cfg.mode.name());
    let chaos_base = cfg.seed ^ crate::CHAOS_SALT;
    let chaos: Option<(&str, u64)> = cfg.chaos.as_deref().map(|spec| (spec, chaos_base));
    let (accepted, timeline) = match (cfg.mode, cfg.window) {
        (Mode::Closed, None) => (cluster.run_closed_loop(cfg.requests, chaos)?, None),
        (Mode::Open, None) => (cluster.run_open_loop(cfg.requests, chaos)?, None),
        (Mode::Closed, Some(w)) => {
            let (a, t) = cluster.run_closed_loop_observed(cfg.requests, chaos, obs(w))?;
            (a, Some(t))
        }
        (Mode::Open, Some(w)) => {
            let (a, t) = cluster.run_open_loop_observed(cfg.requests, chaos, obs(w))?;
            (a, Some(t))
        }
    };
    finish_outcome(&cluster, accepted, timeline, &label)
}

fn obs(window: u64) -> SamplerConfig {
    SamplerConfig {
        window_cycles: window.max(1),
        ..SamplerConfig::default()
    }
}
