#![deny(missing_docs)]

//! # ne-serve — the wire front door
//!
//! Everything below `ne-serve` drives the simulated hosting server
//! in-process; this crate puts a **real loopback TCP socket** in front
//! of it, the shape an enclave-hosted service actually has: untrusted
//! clients speak a wire protocol, the gate enclave terminates the
//! session, and requests flow through admission → scheduler → service
//! enclaves exactly as before.
//!
//! The moving parts:
//!
//! * [`frame`] — the length-prefixed frame codec: a 28-byte versioned
//!   header (magic, version, kind, tenant, service, request id, payload
//!   length, checksum), a bounded streaming [`frame::Decoder`] with
//!   typed [`frame::FrameError`]s that latches on corruption instead of
//!   resynchronizing wrongly;
//! * [`conn`] — a framed TCP connection ([`conn::FramedConn`]) with a
//!   per-connection read deadline, splittable into send/receive halves,
//!   optionally sealing every frame in a `ne-tls` record;
//! * [`session`] — the transport handshake: a real ClientHello /
//!   ServerHello exchange over the socket, driven through
//!   [`ne_tls::handshake::perform_handshake`] (version and cipher-suite
//!   rollback are rejected on the wire) with the tenant's pre-shared
//!   key as master secret;
//! * [`server`] — [`server::FrontDoor`], the blocking accept loop plus
//!   the serve loop: decoded requests feed
//!   [`ne_cluster::drive::closed_loop_external`] /
//!   [`ne_cluster::drive::open_loop_external`], which step the simulated
//!   machine between socket polls;
//! * [`client`] — [`client::LoadClient`], the seeded wire client behind
//!   `ne-load --connect` (one connection per (tenant, service) pair,
//!   open or closed loop, deterministic report);
//! * [`oracle`] — the same scenario run entirely in-process, the
//!   byte-exact oracle.
//!
//! # Clock discipline and the oracle invariant
//!
//! The wire never touches the simulation clock. Arrival stamps come
//! from simulated state only (`0` and completion times for the closed
//! loop, the seeded Poisson schedule for the open loop, `now()` during
//! warmup); socket reads are **blocking reads on the specific pair the
//! drive loop would consult next**, so network interleaving cannot
//! reorder submissions. The headline invariant, asserted by integration
//! test and CI's `serve-smoke` job: the same seeded scenario served
//! over TCP produces **byte-identical** `ne-tenants/v1`,
//! `ne-metrics/v2`, and `ne-obs/v1` exports to the in-process run —
//! with or without TLS on the wire.

pub mod client;
pub mod conn;
pub mod frame;
pub mod oracle;
pub mod server;
pub mod session;

pub use client::{ClientConfig, ClientReport, LoadClient};
pub use conn::{ConnError, FramedConn};
pub use frame::{Decoder, Frame, FrameError, FrameKind};
pub use server::{FrontDoor, ServeConfig, ServeOutcome};

/// Arrival process of a serving run (the wire protocol carries it in
/// the Hello so server and client agree on the scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// One client per (tenant, service), next request at the previous
    /// completion time.
    Closed,
    /// Seeded Poisson arrivals offered regardless of completions.
    Open,
}

impl Mode {
    /// Stable name, also used in export labels.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Closed => "closed-loop",
            Mode::Open => "open-loop",
        }
    }

    /// Wire encoding of the mode.
    pub fn to_byte(self) -> u8 {
        match self {
            Mode::Closed => 0,
            Mode::Open => 1,
        }
    }

    /// Decodes a wire mode byte.
    pub fn from_byte(b: u8) -> Option<Mode> {
        match b {
            0 => Some(Mode::Closed),
            1 => Some(Mode::Open),
            _ => None,
        }
    }
}

/// The salt XORed into the base seed for chaos plans, matching
/// `ne-load` so a chaos run over the wire is byte-identical to the
/// harness's.
pub const CHAOS_SALT: u64 = 0xC4A0_5EED;

/// The scenario a Hello frame pins down. Server and client must agree
/// on every field — the generator streams are seeded from them, so a
/// mismatch would silently desynchronize payloads; the server refuses
/// it up front instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Base seed of every generator stream.
    pub seed: u64,
    /// Arrival process.
    pub mode: Mode,
    /// Measured requests per (tenant, service) pair.
    pub requests: u32,
    /// Number of tenants.
    pub tenants: u32,
    /// Services per tenant.
    pub services: u32,
}

impl Scenario {
    /// Encodes the scenario as a Hello payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(21);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.push(self.mode.to_byte());
        out.extend_from_slice(&self.requests.to_le_bytes());
        out.extend_from_slice(&self.tenants.to_le_bytes());
        out.extend_from_slice(&self.services.to_le_bytes());
        out
    }

    /// Decodes a Hello payload.
    ///
    /// # Errors
    ///
    /// A human-readable reason on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Scenario, String> {
        if bytes.len() != 21 {
            return Err("malformed Hello payload".to_string());
        }
        Ok(Scenario {
            seed: frame::le_u64(&bytes[..8]),
            mode: Mode::from_byte(bytes[8]).ok_or_else(|| format!("unknown mode {}", bytes[8]))?,
            requests: frame::le_u32(&bytes[9..13]),
            tenants: frame::le_u32(&bytes[13..17]),
            services: frame::le_u32(&bytes[17..21]),
        })
    }
}

/// A completion as carried by a Reply frame: the simulated timings plus
/// the reply bytes, everything the client needs for a byte-deterministic
/// report (latencies and digests are simulation facts, not wall-clock
/// ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireCompletion {
    /// Per-(tenant, service) completion sequence number.
    pub seq: u64,
    /// Arrival stamp the request was submitted with (simulated cycles).
    pub arrival: u64,
    /// Service start (simulated cycles).
    pub start: u64,
    /// Completion time (simulated cycles).
    pub end: u64,
    /// End-to-end latency (simulated cycles).
    pub latency: u64,
    /// Serving core.
    pub core: u32,
    /// Reply bytes.
    pub reply: Vec<u8>,
}

impl WireCompletion {
    /// Packs a [`ne_host::Completion`] into a Reply payload.
    pub fn from_completion(c: &ne_host::Completion) -> WireCompletion {
        WireCompletion {
            seq: c.seq,
            arrival: c.arrival,
            start: c.start,
            end: c.end,
            latency: c.latency,
            core: c.core as u32,
            reply: c.reply.clone(),
        }
    }

    /// Encodes as a Reply payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48 + self.reply.len());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.arrival.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.end.to_le_bytes());
        out.extend_from_slice(&self.latency.to_le_bytes());
        out.extend_from_slice(&self.core.to_le_bytes());
        out.extend_from_slice(&(self.reply.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.reply);
        out
    }

    /// Decodes a Reply payload.
    ///
    /// # Errors
    ///
    /// A human-readable reason on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<WireCompletion, String> {
        if bytes.len() < 48 {
            return Err("short Reply payload".to_string());
        }
        let reply_len = frame::le_u32(&bytes[44..48]) as usize;
        if bytes.len() != 48 + reply_len {
            return Err("malformed Reply payload".to_string());
        }
        Ok(WireCompletion {
            seq: frame::le_u64(&bytes[..8]),
            arrival: frame::le_u64(&bytes[8..16]),
            start: frame::le_u64(&bytes[16..24]),
            end: frame::le_u64(&bytes[24..32]),
            latency: frame::le_u64(&bytes[32..40]),
            core: frame::le_u32(&bytes[40..44]),
            reply: bytes[48..].to_vec(),
        })
    }
}
