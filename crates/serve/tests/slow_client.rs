//! Wire-robustness regressions: a slow, stalled, or rollback-attempting
//! client must never wedge the front door or corrupt the run — its
//! tenant is shed through the existing admission counters
//! ([`ne_host::ShedReason::ClientStalled`] recovery events), and every
//! other tenant's run completes untouched.

use std::time::Duration;

use ne_serve::client::{greet, run_pair};
use ne_serve::frame::{Frame, FrameKind};
use ne_serve::session::{client_random, encode_client_hello};
use ne_serve::{ClientConfig, ConnError, FramedConn, FrontDoor, ServeConfig};
use ne_tls::handshake::{CipherSuite, ClientHello};

fn scenario(tls: bool) -> ServeConfig {
    let mut cfg = ServeConfig::new(2, 1, 2, 0xBAD_C11E);
    cfg.tls = tls;
    // Short deadline so the stall is detected quickly; the good client
    // stays comfortably inside it (replies stream back in microseconds).
    cfg.read_timeout = Duration::from_millis(250);
    cfg.accept_timeout = Duration::from_secs(10);
    cfg
}

fn client_config(cfg: &ServeConfig, addr: String) -> ClientConfig {
    ClientConfig {
        addr,
        tenants: cfg.tenants,
        services: cfg.services,
        requests: cfg.requests,
        seed: cfg.seed,
        mode: cfg.mode,
        tls: cfg.tls,
        read_timeout: Duration::from_secs(10),
    }
}

fn export_line(export: &str, tenant: usize) -> &str {
    export
        .lines()
        .find(|l| l.starts_with(&format!("tenant {tenant} ")))
        .expect("tenant line in export")
}

/// A client that completes the Hello and then goes silent: its tenant is
/// shed at the warmup pull's read deadline; the other tenant's run is
/// untouched and the stalled connection still gets the Finish broadcast.
#[test]
fn stalled_client_sheds_its_tenant_only() {
    let cfg = scenario(false);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr);
    // Pair (0, 0) Hellos and then stalls, keeping the socket open.
    let mut stalled = greet(&ccfg, 0, 0).expect("greet");
    // Pair (1, 0) plays the whole scenario correctly.
    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");

    assert_eq!(good.error, None, "good pair failed: {:?}", good.error);
    assert_eq!(good.replies.len(), cfg.requests);
    let t0 = export_line(&outcome.tenants_export, 0);
    assert!(
        t0.contains("accepted 0") && t0.contains("completed 0"),
        "stalled tenant should have served nothing: {t0}"
    );
    let t1 = export_line(&outcome.tenants_export, 1);
    assert!(
        t1.contains(&format!("completed {}", cfg.requests)),
        "good tenant perturbed by the stall: {t1}"
    );
    // The stalled client was not cut off rudely: the Finish broadcast
    // still reaches it.
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let finish = stalled.recv().expect("finish frame");
    assert_eq!(finish.kind, FrameKind::Finish);
}

/// A version-rollback ClientHello is refused on the wire with a typed
/// Abort; the pair is dead, its tenant shed, and the honest TLS tenant
/// completes normally.
#[test]
fn rollback_hello_is_refused_on_the_wire() {
    let cfg = scenario(true);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr.clone());

    // Pair (0, 0): a handcrafted TLS 1.0 offer.
    let stream = std::net::TcpStream::connect(&addr).expect("connect");
    let mut conn = FramedConn::new(stream).expect("conn");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let hello = ClientHello {
        version: 0x0301,
        suites: vec![CipherSuite::Aes128Gcm],
        random: client_random(cfg.seed, 0, 0),
    };
    conn.send(&Frame::new(
        FrameKind::ClientHello,
        0,
        0,
        0,
        encode_client_hello(&hello),
    ))
    .expect("send offer");
    let answer = conn.recv().expect("answer");
    assert_eq!(answer.kind, FrameKind::Abort);
    let reason = String::from_utf8_lossy(&answer.payload).to_string();
    assert!(
        reason.contains("rollback"),
        "abort should name the rollback: {reason}"
    );

    // Pair (1, 0) handshakes honestly and completes.
    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None, "good pair failed: {:?}", good.error);
    let t0 = export_line(&outcome.tenants_export, 0);
    assert!(
        t0.contains("accepted 0"),
        "rollback tenant should have served nothing: {t0}"
    );
    let t1 = export_line(&outcome.tenants_export, 1);
    assert!(
        t1.contains(&format!("completed {}", cfg.requests)),
        "honest tenant perturbed by the rollback: {t1}"
    );
}

/// Closing the connection mid-stream (instead of stalling) is the same
/// story: the tenant is shed, nobody else notices, the server exits.
#[test]
fn disconnected_client_sheds_its_tenant_only() {
    let cfg = scenario(false);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr);
    // Greet and immediately hang up.
    drop(greet(&ccfg, 0, 0).expect("greet"));
    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None);
    assert_eq!(good.replies.len(), cfg.requests);
    assert!(export_line(&outcome.tenants_export, 0).contains("accepted 0"));
}

/// The greet itself enforces the scenario: a client announcing a
/// different seed is refused with an Abort, surfaced as a typed
/// [`ConnError::Protocol`].
#[test]
fn scenario_mismatch_is_refused_at_hello() {
    let cfg = scenario(false);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr);
    let mut wrong = ccfg.clone();
    wrong.seed ^= 1;
    match greet(&wrong, 0, 0) {
        Err(ConnError::Protocol(reason)) => {
            assert!(reason.contains("scenario mismatch"), "got: {reason}")
        }
        other => panic!("mismatched Hello should be refused, got {other:?}"),
    }
    // The run still completes: the refused pair's tenant is shed, the
    // good tenant plays through.
    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None);
    assert!(export_line(&outcome.tenants_export, 0).contains("accepted 0"));
}
