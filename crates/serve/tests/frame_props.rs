//! Property tests of the wire frame codec: arbitrary junk, truncations,
//! and bit flips must produce typed errors or "need more bytes" — never
//! a panic, and never a decoded frame from corrupted input. Chunking
//! must be invisible: a frame stream split at any byte boundaries
//! decodes to the same frames.

use ne_serve::{Decoder, Frame, FrameKind};
use proptest::prelude::*;

const KINDS: [FrameKind; 10] = [
    FrameKind::Hello,
    FrameKind::HelloAck,
    FrameKind::Request,
    FrameKind::Reply,
    FrameKind::Reject,
    FrameKind::Done,
    FrameKind::Finish,
    FrameKind::ClientHello,
    FrameKind::ServerHello,
    FrameKind::Abort,
];

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        prop::sample::select(KINDS.to_vec()),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        prop::collection::vec(any::<u8>(), 0..300),
    )
        .prop_map(|(kind, tenant, service, req_id, payload)| {
            Frame::new(kind, tenant, service, req_id, payload)
        })
}

/// Feeds `bytes` in the chunking described by `splits` and collects
/// every decode outcome until the buffer is exhausted or the decoder
/// errors.
fn drain(decoder: &mut Decoder) -> Result<Vec<Frame>, ()> {
    let mut out = Vec::new();
    loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => out.push(frame),
            Ok(None) => return Ok(out),
            Err(_) => return Err(()),
        }
    }
}

proptest! {
    /// A stream of valid frames decodes identically no matter how the
    /// bytes are chunked.
    #[test]
    fn roundtrip_survives_arbitrary_chunking(
        frames in prop::collection::vec(arb_frame(), 1..5),
        splits in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        let mut points: Vec<usize> = splits.iter().map(|s| s.index(wire.len() + 1)).collect();
        points.push(0);
        points.push(wire.len());
        points.sort_unstable();
        let mut decoder = Decoder::new();
        let mut decoded = Vec::new();
        for w in points.windows(2) {
            decoder.feed(&wire[w[0]..w[1]]).expect("valid stream never overflows");
            decoded.extend(drain(&mut decoder).expect("valid stream decodes"));
        }
        prop_assert_eq!(decoded, frames);
    }

    /// Arbitrary junk never panics: every outcome is a frame, "need more
    /// bytes", or a typed error.
    #[test]
    fn junk_never_panics(junk in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut decoder = Decoder::new();
        if decoder.feed(&junk).is_ok() {
            let _ = drain(&mut decoder);
        }
    }

    /// Any strict prefix of a valid frame is "need more bytes", never an
    /// error and never a frame — truncation cannot desynchronize.
    #[test]
    fn truncation_is_incomplete(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let wire = frame.encode();
        let cut = cut.index(wire.len()); // 0..len, always a strict prefix
        let mut decoder = Decoder::new();
        decoder.feed(&wire[..cut]).expect("prefix fits");
        prop_assert_eq!(drain(&mut decoder), Ok(Vec::new()));
    }

    /// A single bit flip anywhere in a frame never yields a decoded
    /// frame: the outcome is a typed error (bad magic/version/kind,
    /// oversized, checksum mismatch) or "need more bytes" (a length
    /// corrupted upward keeps the decoder waiting, which is safe).
    #[test]
    fn bitflip_never_yields_a_frame(
        frame in arb_frame(),
        byte in any::<prop::sample::Index>(),
        bit in 0..8u32,
    ) {
        let mut wire = frame.encode();
        let idx = byte.index(wire.len());
        wire[idx] ^= 1 << bit;
        let mut decoder = Decoder::new();
        if decoder.feed(&wire).is_ok() {
            let decoded = drain(&mut decoder);
            prop_assert_eq!(decoded.unwrap_or_default(), Vec::new());
        }
    }
}
