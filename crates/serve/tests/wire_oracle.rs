//! The headline `ne-serve` invariant: the same seeded scenario served
//! over a real loopback TCP socket produces **byte-identical**
//! `ne-tenants/v1`, `ne-metrics/v2`, and `ne-obs/v1` exports to the
//! in-process oracle — plaintext or TLS, closed or open loop, clean or
//! under chaos. Plus the client-side guarantees: per-tenant reply
//! digests match the server export, and the rendered report is
//! byte-deterministic across runs.

use std::time::Duration;

use ne_serve::client::ClientReport;
use ne_serve::oracle::run_oracle;
use ne_serve::{ClientConfig, FrontDoor, LoadClient, Mode, ServeConfig, ServeOutcome};

fn scenario(mode: Mode, tls: bool, chaos: Option<&str>) -> ServeConfig {
    let mut cfg = ServeConfig::new(2, 2, 3, 0x7E57_5EED);
    cfg.mode = mode;
    cfg.tls = tls;
    cfg.chaos = chaos.map(str::to_string);
    cfg.window = Some(400_000);
    cfg.read_timeout = Duration::from_secs(10);
    cfg.accept_timeout = Duration::from_secs(10);
    cfg
}

fn client_config(cfg: &ServeConfig, addr: String) -> ClientConfig {
    ClientConfig {
        addr,
        tenants: cfg.tenants,
        services: cfg.services,
        requests: cfg.requests,
        seed: cfg.seed,
        mode: cfg.mode,
        tls: cfg.tls,
        read_timeout: Duration::from_secs(10),
    }
}

/// Serves `cfg` over loopback TCP against a full wire client; returns
/// the server outcome and the client report.
fn serve_over_wire(cfg: &ServeConfig) -> (ServeOutcome, ClientReport) {
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let report = LoadClient::new(client_config(cfg, addr)).run();
    let outcome = server.join().expect("server thread").expect("serve run");
    (outcome, report)
}

fn assert_outcomes_identical(wire: &ServeOutcome, oracle: &ServeOutcome) {
    assert_eq!(wire.accepted, oracle.accepted, "accepted diverged");
    assert_eq!(
        wire.tenants_export, oracle.tenants_export,
        "ne-tenants/v1 diverged"
    );
    assert_eq!(
        wire.metrics_json, oracle.metrics_json,
        "ne-metrics/v2 diverged"
    );
    assert_eq!(
        wire.timeline_jsonl, oracle.timeline_jsonl,
        "ne-obs/v1 diverged"
    );
}

fn assert_clean_client(report: &ClientReport, cfg: &ServeConfig) {
    for p in &report.pairs {
        assert_eq!(p.error, None, "pair {}.{} failed", p.tenant, p.service);
        assert_eq!(p.sent as usize, cfg.requests);
        assert_eq!(p.replies.len(), cfg.requests);
        assert_eq!(p.bad_replies, 0);
    }
}

#[test]
fn closed_loop_wire_matches_oracle() {
    let cfg = scenario(Mode::Closed, false, None);
    let (wire, report) = serve_over_wire(&cfg);
    let oracle = run_oracle(&cfg).expect("oracle");
    assert_outcomes_identical(&wire, &oracle);
    assert_clean_client(&report, &cfg);
    // The client's per-tenant digests are the server's export digests.
    for line in report.render().lines().filter(|l| l.starts_with("tenant ")) {
        let digest = line.split("sha256:").nth(1).expect("digest in line");
        assert!(
            wire.tenants_export.contains(digest),
            "client digest {digest} missing from server export"
        );
    }
}

#[test]
fn tls_on_the_wire_is_invisible_in_exports() {
    let cfg = scenario(Mode::Closed, true, None);
    let (wire, report) = serve_over_wire(&cfg);
    // The oracle has no transport at all; TLS must not move a byte.
    let oracle = run_oracle(&cfg).expect("oracle");
    assert_outcomes_identical(&wire, &oracle);
    assert_clean_client(&report, &cfg);
}

#[test]
fn open_loop_wire_matches_oracle() {
    let cfg = scenario(Mode::Open, false, None);
    let (wire, report) = serve_over_wire(&cfg);
    let oracle = run_oracle(&cfg).expect("oracle");
    assert_outcomes_identical(&wire, &oracle);
    for p in &report.pairs {
        assert_eq!(p.error, None, "pair {}.{} failed", p.tenant, p.service);
        assert_eq!(p.sent as usize, cfg.requests);
    }
}

#[test]
fn chaos_wire_matches_oracle() {
    // crash sheds tenants mid-run: the wire path must mirror the
    // oracle's reject/shed bookkeeping, not just the happy path.
    for spec in ["aex+evict", "crash:3"] {
        let cfg = scenario(Mode::Closed, false, Some(spec));
        let (wire, report) = serve_over_wire(&cfg);
        let oracle = run_oracle(&cfg).expect("oracle");
        assert_outcomes_identical(&wire, &oracle);
        for p in &report.pairs {
            assert_eq!(
                p.error, None,
                "chaos must degrade into rejects, not client errors"
            );
        }
    }
}

#[test]
fn client_report_is_byte_deterministic() {
    let cfg = scenario(Mode::Closed, false, None);
    let (_, first) = serve_over_wire(&cfg);
    let (_, second) = serve_over_wire(&cfg);
    assert_eq!(
        first.render(),
        second.render(),
        "two runs against the same seed rendered different reports"
    );
}
