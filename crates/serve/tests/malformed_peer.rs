//! Malformed-peer regressions: no byte sequence a client can send may
//! panic the front door. Garbage is refused with typed errors, the
//! offending tenant is shed through the normal admission counters, and
//! every other tenant's run completes byte-exactly.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use ne_serve::client::run_pair;
use ne_serve::frame::{Decoder, Frame, FrameKind, MAX_PAYLOAD};
use ne_serve::session::{client_random, encode_client_hello};
use ne_serve::{ClientConfig, ConnError, FrameError, FramedConn, FrontDoor, ServeConfig};
use ne_tls::handshake::{CipherSuite, ClientHello, TLS_VERSION};

fn scenario(tls: bool) -> ServeConfig {
    let mut cfg = ServeConfig::new(2, 1, 2, 0xFA11_FEED);
    cfg.tls = tls;
    cfg.read_timeout = Duration::from_millis(250);
    cfg.accept_timeout = Duration::from_secs(10);
    cfg
}

fn client_config(cfg: &ServeConfig, addr: String) -> ClientConfig {
    ClientConfig {
        addr,
        tenants: cfg.tenants,
        services: cfg.services,
        requests: cfg.requests,
        seed: cfg.seed,
        mode: cfg.mode,
        tls: cfg.tls,
        read_timeout: Duration::from_secs(10),
    }
}

fn export_line(export: &str, tenant: usize) -> &str {
    export
        .lines()
        .find(|l| l.starts_with(&format!("tenant {tenant} ")))
        .expect("tenant line in export")
}

/// Reads frames off a raw socket until one decodes (helper for tests
/// that drive the wire by hand).
fn read_frame(stream: &mut TcpStream, decoder: &mut Decoder) -> Frame {
    loop {
        if let Some(frame) = decoder.next_frame().expect("decode") {
            return frame;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "peer closed before a frame arrived");
        decoder.feed(&chunk[..n]).expect("feed");
    }
}

/// A hostile client that pipelines garbage bytes behind its ClientHello
/// in a single TCP write. Enabling records with plaintext still
/// buffered would desynchronize the stream — the server must refuse the
/// connection with a typed error (this used to be an `assert!` in
/// `enable_tls`, i.e. a remotely-triggerable panic) and the honest
/// tenant must be untouched.
#[test]
fn pipelined_handshake_bytes_are_refused_not_panicked() {
    let cfg = scenario(true);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr.clone());

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let hello = ClientHello {
        version: TLS_VERSION,
        suites: vec![CipherSuite::Aes128Gcm],
        random: client_random(cfg.seed, 0, 0),
    };
    let mut bytes =
        Frame::new(FrameKind::ClientHello, 0, 0, 0, encode_client_hello(&hello)).encode();
    bytes.extend_from_slice(b"pipelined plaintext the record layer must never see");
    stream.write_all(&bytes).expect("write offer + garbage");

    // The server must survive: the honest pair completes, the hostile
    // pair's tenant serves nothing.
    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None, "good pair failed: {:?}", good.error);
    assert_eq!(good.replies.len(), cfg.requests);
    assert!(export_line(&outcome.tenants_export, 0).contains("accepted 0"));
    assert!(
        export_line(&outcome.tenants_export, 1).contains(&format!("completed {}", cfg.requests))
    );
}

/// A fuzzed frame after a clean Hello: the greeted pair starts spewing
/// bytes that are not frames. The decoder latches a typed error, the
/// tenant is shed, and the rest of the run is untouched.
#[test]
fn fuzzed_frame_sheds_the_tenant_only() {
    let cfg = scenario(false);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr.clone());

    // Hello by hand on a raw socket so the fuzz bytes can follow.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(&Frame::new(FrameKind::Hello, 0, 0, 0, ccfg.scenario().encode()).encode())
        .expect("hello");
    let mut decoder = Decoder::new();
    let ack = read_frame(&mut stream, &mut decoder);
    assert_eq!(ack.kind, FrameKind::HelloAck);

    // Deterministic fuzz: a byte soup that breaks the magic on the
    // first header and keeps the stream poisoned from there.
    let junk: Vec<u8> = (0u32..512)
        .map(|i| (i.wrapping_mul(167) >> 3) as u8)
        .collect();
    stream.write_all(&junk).expect("fuzz");

    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None, "good pair failed: {:?}", good.error);
    assert_eq!(good.replies.len(), cfg.requests);
    assert!(export_line(&outcome.tenants_export, 0).contains("accepted 0"));
    assert!(
        export_line(&outcome.tenants_export, 1).contains(&format!("completed {}", cfg.requests))
    );
}

/// A hostile client that completes the transport handshake and then
/// spews bytes that are not records: the server's record layer must
/// refuse them with a typed error (`RecordLayer::open` used to carry a
/// panic-typed length conversion on this path), the hostile tenant is
/// shed, and the honest tenant's run is untouched.
#[test]
fn garbage_tls_records_are_refused_not_panicked() {
    let cfg = scenario(true);
    let door = FrontDoor::bind(cfg.clone(), "127.0.0.1:0").expect("bind");
    let addr = door.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || door.run());
    let ccfg = client_config(&cfg, addr.clone());

    // Offer a well-formed ClientHello so the server commits to sealed
    // records, then feed it a "record" whose body is garbage.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let hello = ClientHello {
        version: TLS_VERSION,
        suites: vec![CipherSuite::Aes128Gcm],
        random: client_random(cfg.seed, 0, 0),
    };
    stream
        .write_all(
            &Frame::new(FrameKind::ClientHello, 0, 0, 0, encode_client_hello(&hello)).encode(),
        )
        .expect("offer");
    let mut decoder = Decoder::new();
    let answer = read_frame(&mut stream, &mut decoder);
    assert_eq!(answer.kind, FrameKind::ServerHello);
    // A plausible record header (Data type, 16-byte body) followed by
    // bytes that cannot authenticate: the open must fail typed, never
    // panic.
    let mut junk = vec![23u8, 16, 0, 0, 0];
    junk.extend_from_slice(&[0xA5; 16]);
    stream.write_all(&junk).expect("garbage record");

    let good = run_pair(&ccfg, 1, 0);
    let outcome = server.join().expect("server thread").expect("serve run");
    assert_eq!(good.error, None, "good pair failed: {:?}", good.error);
    assert_eq!(good.replies.len(), cfg.requests);
    assert!(export_line(&outcome.tenants_export, 0).contains("accepted 0"));
    assert!(
        export_line(&outcome.tenants_export, 1).contains(&format!("completed {}", cfg.requests))
    );
}

/// A hostile *server* answering a Reply frame whose payload is too short
/// to be a completion: the client must fail that pair with a typed
/// protocol error, not a panic or an out-of-bounds read.
#[test]
fn malformed_reply_payload_is_a_typed_client_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let fake_server = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut conn = FramedConn::new(stream).expect("conn");
        // Greet the pair, then answer its first request with a Reply
        // whose payload cannot hold a completion header.
        loop {
            let f = conn.recv().expect("client frame");
            match f.kind {
                FrameKind::Hello => {
                    conn.send(&Frame::new(
                        FrameKind::HelloAck,
                        f.tenant,
                        f.service,
                        f.req_id,
                        Vec::new(),
                    ))
                    .expect("ack");
                }
                FrameKind::Request => {
                    conn.send(&Frame::new(
                        FrameKind::Reply,
                        f.tenant,
                        f.service,
                        1,
                        vec![9u8; 10],
                    ))
                    .expect("short reply");
                    return;
                }
                other => panic!("unexpected client frame {other:?}"),
            }
        }
    });
    let ccfg = ClientConfig {
        addr,
        tenants: 1,
        services: 1,
        requests: 2,
        seed: 0xFA11_FEED,
        mode: ne_serve::Mode::Closed,
        tls: false,
        read_timeout: Duration::from_secs(10),
    };
    let outcome = run_pair(&ccfg, 0, 0);
    fake_server.join().expect("fake server");
    let err = outcome.error.expect("pair must fail typed");
    assert!(
        err.contains("Reply"),
        "want a malformed-Reply protocol error, got {err}"
    );
}

/// An oversized payload is refused at the send seam with the typed
/// frame error — not a panic — and the connection stays healthy for
/// well-formed frames afterwards.
#[test]
fn oversized_send_is_a_typed_error_not_a_panic() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let peer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut conn = FramedConn::new(stream).expect("conn");
        conn.recv().expect("valid frame after the refused one")
    });
    let mut conn = FramedConn::new(TcpStream::connect(addr).expect("connect")).expect("conn");
    let huge = Frame::new(FrameKind::Request, 0, 0, 1, vec![0u8; MAX_PAYLOAD + 1]);
    match conn.send(&huge) {
        Err(ConnError::Frame(FrameError::Oversized(n))) => {
            assert_eq!(n as usize, MAX_PAYLOAD + 1)
        }
        other => panic!("want Oversized, got {other:?}"),
    }
    let ok = Frame::new(FrameKind::Request, 0, 0, 2, vec![7; 16]);
    conn.send(&ok).expect("stream survives the refusal");
    assert_eq!(peer.join().expect("peer"), ok);
}
