//! Table III: porting effort in lines of code.
//!
//! The paper counts how many lines changed when porting each application
//! from the conventional enclave to nested enclave, against the size of
//! the untouched SGX-enabled libraries. Our analog: the case-study
//! harnesses mark their nested-enclave-specific glue with
//! `[port:begin <name>]` / `[port:end <name>]` comments; this module
//! counts those regions at compile time from the embedded sources and
//! reports them next to the paper's figures.

/// One Table III row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRow {
    /// Workload name.
    pub name: &'static str,
    /// Lines of nested-enclave-specific glue in this repository.
    pub ours_modified: usize,
    /// Total lines of the workload implementation in this repository.
    pub ours_total: usize,
    /// The paper's "Modified LOC" (C/C++ + EDL).
    pub paper_modified: usize,
    /// The paper's untouched library size ("Original LOC").
    pub paper_original: &'static str,
}

/// Counts the lines between `[port:begin name]` and `[port:end name]`.
fn marked_lines(source: &str, name: &str) -> usize {
    let begin = format!("[port:begin {name}]");
    let end = format!("[port:end {name}]");
    let mut counting = false;
    let mut count = 0;
    for line in source.lines() {
        if line.contains(&begin) {
            counting = true;
            continue;
        }
        if line.contains(&end) {
            break;
        }
        if counting && !line.trim().is_empty() {
            count += 1;
        }
    }
    count
}

fn code_lines(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}

/// Builds the Table III analog for this repository.
pub fn table3_rows() -> Vec<LocRow> {
    let echo_src = include_str!("../../tls/src/echo.rs");
    let svm_src = include_str!("svm_case.rs");
    let db_src = include_str!("db_case.rs");
    vec![
        LocRow {
            name: "echo server",
            ours_modified: marked_lines(echo_src, "echo"),
            ours_total: code_lines(echo_src),
            paper_modified: 34 + 10,
            paper_original: "507k (SGX-OpenSSL)",
        },
        LocRow {
            name: "SQLite server",
            ours_modified: marked_lines(db_src, "sqlite"),
            ours_total: code_lines(db_src),
            paper_modified: 19 + 5,
            paper_original: "127k (SGX-SQLite)",
        },
        LocRow {
            name: "svm-predict",
            ours_modified: marked_lines(svm_src, "svm"),
            ours_total: code_lines(svm_src),
            paper_modified: 27 + 10,
            paper_original: "152k (SGX-LibSVM)",
        },
        LocRow {
            name: "svm-train",
            ours_modified: marked_lines(svm_src, "svm"),
            ours_total: code_lines(svm_src),
            paper_modified: 24 + 10,
            paper_original: "152k (SGX-LibSVM)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_counting() {
        let src = "a\n// [port:begin x]\nline1\n\nline2\n// [port:end x]\nb\n";
        assert_eq!(marked_lines(src, "x"), 2);
        assert_eq!(marked_lines(src, "missing"), 0);
    }

    #[test]
    fn code_line_counting_skips_comments_and_blanks() {
        assert_eq!(code_lines("// c\n\nlet x = 1;\n  // d\ny();\n"), 2);
    }

    #[test]
    fn rows_have_nonzero_measurements() {
        for row in table3_rows() {
            assert!(row.ours_total > 0, "{}", row.name);
        }
        // The SQLite and SVM ports carry explicit markers.
        let rows = table3_rows();
        assert!(rows.iter().any(|r| r.ours_modified > 0));
    }

    #[test]
    fn ports_are_small_fractions_like_the_paper() {
        // The paper's point: porting touches tens of lines, not the
        // libraries. Our glue regions must stay well under the totals.
        for row in table3_rows() {
            if row.ours_modified > 0 {
                assert!(
                    row.ours_modified * 2 < row.ours_total,
                    "{}: {} of {}",
                    row.name,
                    row.ours_modified,
                    row.ours_total
                );
            }
        }
    }
}
