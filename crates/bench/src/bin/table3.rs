//! Regenerates **Table III**: lines of code modified to port each
//! application to nested enclave, next to this repository's own
//! marker-counted porting glue.

use ne_bench::loc::table3_rows;
use ne_bench::report::{banner, want_trace, write_trace, MetricsReport, Table};

fn main() {
    banner("Table III: porting effort (modified lines of code)");
    // No simulated machine runs here; the report is empty but the flag is
    // still honored so callers can treat every binary uniformly.
    let report = MetricsReport::new("table3");
    let mut t = Table::new(&[
        "Name",
        "Ours: port glue LoC",
        "Ours: harness LoC",
        "Paper: modified LoC",
        "Paper: library LoC (untouched)",
    ]);
    for row in table3_rows() {
        t.row(&[
            row.name.into(),
            row.ours_modified.to_string(),
            row.ours_total.to_string(),
            row.paper_modified.to_string(),
            row.paper_original.into(),
        ]);
    }
    t.print();
    println!(
        "\nThe paper's point holds here too: confining a library to an outer\n\
         enclave touches only initialization and call-site glue (tens of\n\
         lines), never the library implementation itself."
    );
    if want_trace() {
        // No machine runs in this table; say so instead of silently
        // producing nothing.
        write_trace(None);
    }
    report.finish();
}
