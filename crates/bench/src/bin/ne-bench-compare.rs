//! Diffs a fresh `ne-bench/v1` baseline against a committed one and
//! fails on regressions.
//!
//! ```text
//! ne-bench-compare <baseline.json> <current.json> [--threshold 0.05] [--advisory]
//! ```
//!
//! Exit codes:
//!
//! * `0` — no metric grew past the threshold (or `--advisory` was given
//!   and only regressions were found),
//! * `1` — at least one metric regressed past the threshold,
//! * `2` — schema violation (unparseable file, wrong schema string, a
//!   baseline metric missing from the current run). Never downgraded by
//!   `--advisory`: a comparison that cannot be made is not a pass.

use ne_bench::compare::compare;
use std::process::ExitCode;

const USAGE: &str =
    "usage: ne-bench-compare <baseline.json> <current.json> [--threshold 0.05] [--advisory]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = 0.05f64;
    let mut advisory = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--advisory" => advisory = true,
            "--threshold" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a numeric value\n{USAGE}");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            arg if arg.starts_with("--threshold=") => {
                let Ok(v) = arg["--threshold=".len()..].parse::<f64>() else {
                    eprintln!("--threshold needs a numeric value\n{USAGE}");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            arg if arg.starts_with("--") => {
                eprintln!("unknown flag {arg}\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(args[i].clone()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(baseline_path), read(current_path)) else {
        return ExitCode::from(2);
    };
    println!("baseline: {baseline_path}\ncurrent:  {current_path}");
    let outcome = compare(&baseline, &current, threshold);
    print!("{}", outcome.render(threshold));
    if advisory && !outcome.regressions.is_empty() && outcome.schema_errors.is_empty() {
        println!("(advisory mode: regressions reported, exit 0)");
    }
    ExitCode::from(outcome.exit_code(advisory) as u8)
}
