//! Wall-clock harness for the simulator's hot paths.
//!
//! Runs each scenario twice — once on the optimized pipelines (the
//! default) and once with every optimization swapped for its naive
//! reference form (`HwConfig::reference_path` for the memory pipeline,
//! [`ne_crypto::set_reference_impl`] for the crypto primitives) — and
//! reports host wall-clock for both. The two runs must be
//! architecturally indistinguishable: the harness hard-fails if cycle
//! totals or the full metrics exports differ by a byte, so a speedup
//! here is evidence of faster simulation, never of changed simulation.
//!
//! Scenarios:
//!
//! * `closed-loop` — the multi-tenant hosting server under think-time-
//!   free closed-loop load (the `ne-load` shape): crypto-heavy services,
//!   scheduling, admission control.
//! * `echo` — the nested SSL echo server (the Fig. 7 shape): bulk
//!   record traffic through two enclave levels.
//!
//! With `--shards N` (N > 1) a third scenario runs: `shard-scale`, the
//! same closed-loop load driven through the `ne-cluster` shard layer at
//! one shard and at N shards (one OS thread per shard). The two shard
//! counts must produce byte-identical `ne-tenants/v1` per-tenant exports
//! — the shard-count-invariance oracle — and the table reports the
//! N-shard wall time in the "Optimized" column against the one-shard
//! wall time in "Reference", so the speedup column is the parallel
//! scaling factor. `--min-shard-speedup <x>` gates on it, but only on
//! hosts with at least 4 CPUs (`std::thread::available_parallelism`);
//! on smaller machines the gate is skipped with a note, since threads
//! cannot beat one core with CPU-bound work.
//!
//! With `--replay` a fourth scenario runs: `replay`, the same closed-loop
//! load with the macro-op replay cache ([`ne_host::replay`]) off and on,
//! both on the optimized simulation path. The two runs must produce
//! byte-identical cycle totals and metrics exports — the replay
//! differential oracle — and the cache-on run must log real hits, so the
//! reported speedup is the cache's wall-clock win on unchanged
//! simulation output. `--min-replay-speedup <x>` gates on it.
//!
//! Flags: `--requests <n>` / `--messages <n>` scale the scenarios,
//! `--repeat <n>` takes the best of n timings per path (default 1),
//! `--full` is a bigger preset, `--min-speedup <x>` exits nonzero if
//! any scenario's speedup lands below `x` (for local verification;
//! wall-clock on shared CI runners is too noisy to gate on),
//! `--shards <n>` / `--min-shard-speedup <x>` and
//! `--replay` / `--min-replay-speedup <x>` as above, and
//! `--bench-out <path>` writes an `ne-bench/v1` document whose leaves
//! are the deterministic cycle totals plus the (noisy) wall times and
//! the optimized/reference ratio — compare against
//! `results/baselines/BENCH_wallclock.json` (or
//! `BENCH_wallclock_shards.json` / `BENCH_wallclock_replay.json` for
//! `--shards` / `--replay` runs) with `ne-bench-compare --advisory` and
//! a generous threshold.
//!
//! `--timeline-out <path>` runs the closed-loop scenario once more on
//! each path with an `ne-obs` sampler attached and writes the
//! `ne-obs/v1` windowed timeline — after hard-failing unless the
//! optimized and reference timelines are byte-identical, extending the
//! differential oracle to the observability plane.

use std::time::Instant;

use ne_bench::report::{
    banner, bench_out_path, f2, flag_str, flag_u64, timeline_out_path, Table, BENCH_SCHEMA,
};
use ne_cluster::{drive, Cluster, ClusterConfig};
use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_obs::{Sampler, SamplerConfig};
use ne_tls::echo::{run_echo, EchoConfig};

const TENANTS: usize = 4;
const SEED: u64 = 7;

/// One scenario's paired measurement. `total_cycles` and `metrics_json`
/// come from the optimized run after being checked equal to the
/// reference run's.
struct Measurement {
    label: &'static str,
    wall_ms_opt: f64,
    wall_ms_ref: f64,
    total_cycles: u64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.wall_ms_ref / self.wall_ms_opt.max(1e-9)
    }
}

/// Times `run` on both paths, best of `repeat`, checking that the
/// architectural outputs — total cycles and the full metrics export —
/// are byte-identical across paths and across repeats.
fn measure(label: &'static str, repeat: usize, run: impl Fn(bool) -> (u64, String)) -> Measurement {
    let mut outputs: Vec<(bool, u64, String)> = Vec::new();
    let mut best = [f64::INFINITY; 2];
    for reference in [false, true] {
        for _ in 0..repeat {
            ne_crypto::set_reference_impl(reference);
            let start = Instant::now();
            let (cycles, metrics) = run(reference);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            ne_crypto::set_reference_impl(false);
            best[reference as usize] = best[reference as usize].min(ms);
            outputs.push((reference, cycles, metrics));
        }
    }
    let (_, cycles0, metrics0) = &outputs[0];
    for (reference, cycles, metrics) in &outputs[1..] {
        assert_eq!(
            cycles0, cycles,
            "{label}: cycle totals diverged (reference={reference})"
        );
        assert_eq!(
            metrics0, metrics,
            "{label}: metrics exports diverged (reference={reference})"
        );
    }
    Measurement {
        label,
        wall_ms_opt: best[0],
        wall_ms_ref: best[1],
        total_cycles: *cycles0,
    }
}

/// The `ne-load` closed-loop shape: every (tenant, service) client keeps
/// exactly one request in flight until its quota is served.
fn closed_loop(requests: usize, reference: bool) -> (u64, String) {
    let (_, cycles, metrics, _, _) = closed_loop_inner(requests, reference, false, None);
    (cycles, metrics)
}

/// The closed-loop scenario with the macro-op replay cache toggled; both
/// legs run the optimized simulation path. Returns the serving-loop wall
/// time and the cache counters so the harness can prove the cache
/// actually engaged. Unlike the externally timed scenarios, the replay
/// legs are timed from the first measured submit to the final drain:
/// server construction and the provisioning warmup are identical setup
/// work on both legs (and the warmup legitimately pre-warms the cache,
/// just as production provisioning would), so including them would only
/// dilute the quantity under test — the cache's effect on steady-state
/// serving.
fn closed_loop_replay(
    requests: usize,
    replay: bool,
) -> (f64, u64, String, Option<ne_host::ReplayCacheStats>) {
    let (serve_ms, cycles, metrics, _, stats) = closed_loop_inner(requests, false, replay, None);
    (serve_ms, cycles, metrics, stats)
}

/// The closed-loop scenario with an `ne-obs` sampler riding along; the
/// sampler only reads, so the simulated run is byte-identical to the
/// unobserved one. Returns the `ne-obs/v1` export.
fn closed_loop_timeline(requests: usize, reference: bool) -> String {
    let (_, _, _, timeline, _) =
        closed_loop_inner(requests, reference, false, Some(SamplerConfig::default()));
    ne_obs::to_jsonl(
        &timeline.expect("sampled run yields a timeline"),
        "ne-wallclock-closed-loop",
    )
}

fn closed_loop_inner(
    requests: usize,
    reference: bool,
    replay: bool,
    obs: Option<SamplerConfig>,
) -> (
    f64,
    u64,
    String,
    Option<ne_obs::Timeline>,
    Option<ne_host::ReplayCacheStats>,
) {
    let specs: Vec<TenantSpec> = (0..TENANTS)
        .map(|i| {
            TenantSpec::new(
                &format!("tenant{i}"),
                (TENANTS - i) as u8,
                ServiceKind::ALL.to_vec(),
            )
        })
        .collect();
    let mut cfg = HostConfig::new(specs);
    cfg.seed = SEED;
    cfg.hw.reference_path = reference;
    cfg.replay_cache = replay;
    let mut server = HostServer::build(cfg).expect("host build");
    let mut factories: Vec<Vec<RequestFactory>> = (0..TENANTS)
        .map(|t| {
            ServiceKind::ALL
                .iter()
                .map(|&k| RequestFactory::new(k, t, SEED))
                .collect()
        })
        .collect();
    // Provisioning pass (the ne-load warmup): serve each service's setup
    // requests so the measured loop sees steady-state work — real
    // sealed-state traffic, not cold-start no-ops.
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(server.submit(t, s, server.now(), payload).is_accepted());
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
    let mut sampler = obs.map(|cfg| Sampler::new(&server, (0..TENANTS).collect(), cfg));
    let mut remaining = vec![vec![requests; ServiceKind::ALL.len()]; TENANTS];
    let serve_start = Instant::now();
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            remaining[t][s] -= 1;
            let payload = factory.next_request();
            assert!(server.submit(t, s, 0, payload).is_accepted());
        }
    }
    while server.pending() > 0 {
        let stepped = server.step().expect("closed-loop step");
        if let Some(sampler) = &mut sampler {
            sampler.poll(&server);
        }
        let Some(c) = stepped else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if !server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                // Shed under pressure: this client stops.
                remaining[c.tenant][c.service] = 0;
            }
        }
    }
    server.drain().expect("drain");
    let serve_ms = serve_start.elapsed().as_secs_f64() * 1e3;
    let m = server.app.machine.metrics();
    (
        serve_ms,
        m.total_cycles,
        m.to_json(),
        sampler.map(|s| s.finish(&server)),
        server.replay_stats(),
    )
}

/// Times the closed loop's serving phase with the macro-op replay cache
/// off vs on, best of `repeat` each, enforcing the replay differential
/// oracle inline: total cycles and the full metrics export must be
/// byte-identical with the cache on or off (and across repeats), and the
/// cache-on runs must produce real hits. The cache-off numbers land in
/// the "Reference" column, so the speedup column reads as the cache's
/// wall-clock win on steady-state serving (see [`closed_loop_replay`]
/// for why setup is excluded from this row's timer).
fn measure_replay(requests: usize, repeat: usize) -> Measurement {
    let mut best = [f64::INFINITY; 2];
    let mut outputs: Vec<(bool, u64, String)> = Vec::new();
    for (slot, replay) in [(1usize, false), (0, true)] {
        for rep in 0..repeat {
            let (ms, cycles, metrics, stats) = closed_loop_replay(requests, replay);
            best[slot] = best[slot].min(ms);
            if replay {
                let stats = stats.expect("cache-on run reports stats");
                assert!(
                    stats.hits > 0,
                    "replay scenario produced no cache hits: {stats:?}"
                );
                if rep == 0 {
                    println!(
                        "replay cache: {} hits, {} misses, {} rejects, {} captures \
                         ({:.1}% hit rate)",
                        stats.hits,
                        stats.misses,
                        stats.rejects,
                        stats.captures,
                        100.0 * stats.hits as f64
                            / (stats.hits + stats.misses + stats.rejects).max(1) as f64,
                    );
                }
            }
            outputs.push((replay, cycles, metrics));
        }
    }
    let (_, cycles0, metrics0) = &outputs[0];
    for (replay, cycles, metrics) in &outputs[1..] {
        assert_eq!(
            cycles0, cycles,
            "replay: cycle totals diverged (cache={replay})"
        );
        assert_eq!(
            metrics0, metrics,
            "replay: metrics exports diverged (cache={replay})"
        );
    }
    Measurement {
        label: "replay",
        wall_ms_opt: best[0],
        wall_ms_ref: best[1],
        total_cycles: *cycles0,
    }
}

/// One cluster closed-loop run at `shards` shards: merged total cycles,
/// merged metrics JSON, and the `ne-tenants/v1` per-tenant export.
fn cluster_closed_loop(requests: usize, shards: usize) -> (u64, String, String) {
    let mut cfg = ClusterConfig::new(
        drive::standard_specs(TENANTS, ServiceKind::ALL.len()),
        shards,
    );
    cfg.host.seed = SEED;
    let mut cluster = Cluster::build(cfg).expect("cluster build");
    cluster
        .run_closed_loop(requests, None)
        .expect("cluster closed loop");
    let m = cluster.merged_metrics().expect("metrics merge");
    m.check().expect("merged metrics identities");
    (m.total_cycles, m.to_json(), cluster.tenants_export())
}

/// Times the cluster closed loop at one shard vs `shards` shards, best
/// of `repeat` each, enforcing the shard-count-invariance oracle: the
/// per-tenant exports must be byte-identical across shard counts and
/// across repeats, and each shard count's merged metrics must be
/// byte-reproducible. The one-shard numbers land in the "reference"
/// column, so the speedup column reads as the parallel scaling factor.
fn measure_shards(requests: usize, shards: usize, repeat: usize) -> Measurement {
    let mut best = [f64::INFINITY; 2];
    let mut outputs: Vec<(usize, u64, String, String)> = Vec::new();
    for (slot, n) in [(1usize, 1usize), (0, shards)] {
        for _ in 0..repeat {
            let start = Instant::now();
            let (cycles, metrics, export) = cluster_closed_loop(requests, n);
            let ms = start.elapsed().as_secs_f64() * 1e3;
            best[slot] = best[slot].min(ms);
            outputs.push((n, cycles, metrics, export));
        }
    }
    let (_, cycles0, _, export0) = &outputs[0];
    for (n, cycles, metrics, export) in &outputs[1..] {
        assert_eq!(
            export0, export,
            "shard-scale: per-tenant export diverged at {n} shard(s) — \
             the shard-count-invariance oracle failed"
        );
        // Metrics are only byte-reproducible within a shard count (wall
        // cycles differ across machine splits); check against the first
        // run of the same count.
        let (_, c_first, m_first, _) = outputs
            .iter()
            .find(|(m, ..)| m == n)
            .expect("first run of this shard count");
        assert_eq!(
            c_first, cycles,
            "shard-scale: cycles diverged at {n} shard(s)"
        );
        assert_eq!(
            m_first, metrics,
            "shard-scale: metrics diverged at {n} shard(s)"
        );
    }
    Measurement {
        label: "shard-scale",
        wall_ms_opt: best[0],
        wall_ms_ref: best[1],
        total_cycles: *cycles0,
    }
}

/// The Fig. 7 shape: nested SSL echo, bulk records through two levels.
fn echo(messages: usize, reference: bool) -> (u64, String) {
    let run = run_echo(&EchoConfig {
        chunk_size: 4096,
        num_messages: messages,
        nested: true,
        trace: false,
        reference,
    })
    .expect("echo run");
    (run.metrics.total_cycles, run.metrics.to_json())
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let requests = flag_u64("--requests").unwrap_or(if full { 1024 } else { 256 }) as usize;
    let messages = flag_u64("--messages").unwrap_or(if full { 1_000 } else { 200 }) as usize;
    let repeat = flag_u64("--repeat").unwrap_or(1).max(1) as usize;
    let min_speedup = flag_str("--min-speedup").map(|s| {
        s.parse::<f64>()
            .unwrap_or_else(|e| panic!("--min-speedup {s}: {e}"))
    });
    let shards = flag_u64("--shards").unwrap_or(1).max(1) as usize;
    let min_shard_speedup = flag_str("--min-shard-speedup").map(|s| {
        s.parse::<f64>()
            .unwrap_or_else(|e| panic!("--min-shard-speedup {s}: {e}"))
    });
    let replay = std::env::args().any(|a| a == "--replay");
    let min_replay_speedup = flag_str("--min-replay-speedup").map(|s| {
        s.parse::<f64>()
            .unwrap_or_else(|e| panic!("--min-replay-speedup {s}: {e}"))
    });
    banner(&format!(
        "Wall-clock: optimized vs reference paths \
         ({requests} req/client closed loop, {messages} echo messages, best of {repeat}{})",
        if shards > 1 {
            format!(", shard-scale at {shards} shards")
        } else {
            String::new()
        }
    ));
    let mut runs = vec![
        measure("closed-loop", repeat, |r| closed_loop(requests, r)),
        measure("echo", repeat, |r| echo(messages, r)),
    ];
    if shards > 1 {
        runs.push(measure_shards(requests, shards, repeat));
    }
    if replay {
        runs.push(measure_replay(requests, repeat));
    }
    let mut t = Table::new(&[
        "Scenario",
        "Optimized ms",
        "Reference ms",
        "Speedup",
        "Total cycles",
    ]);
    for m in &runs {
        t.row(&[
            m.label.to_string(),
            f2(m.wall_ms_opt),
            f2(m.wall_ms_ref),
            format!("{}x", f2(m.speedup())),
            m.total_cycles.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nBoth paths produced byte-identical metrics exports; the speedup\n\
         is pure wall-clock. Cycle totals are deterministic; wall times\n\
         are host-dependent (compare advisory, with a generous threshold)."
    );
    if shards > 1 {
        println!(
            "shard-scale row: \"Optimized\" is the {shards}-shard run, \"Reference\" the\n\
             one-shard run; per-tenant exports were byte-identical at both counts\n\
             (the shard-count-invariance oracle). Host has {} CPU(s).",
            available_cpus()
        );
    }
    if let Some(path) = bench_out_path() {
        std::fs::write(&path, bench_json(&runs))
            .unwrap_or_else(|e| panic!("cannot write bench baseline to {}: {e}", path.display()));
        println!(
            "\nbench baseline: wrote {} run(s) to {}",
            runs.len(),
            path.display()
        );
    }
    if let Some(path) = timeline_out_path() {
        // One more closed-loop run per path, sampled: the timelines must
        // be byte-identical — the differential oracle extended to the
        // observability plane (window boundaries, SLO verdicts, event
        // attribution all ride on architectural state only).
        let opt = closed_loop_timeline(requests, false);
        ne_crypto::set_reference_impl(true);
        let reference = closed_loop_timeline(requests, true);
        ne_crypto::set_reference_impl(false);
        assert_eq!(
            opt, reference,
            "timeline export diverged between optimized and reference paths"
        );
        std::fs::write(&path, &opt)
            .unwrap_or_else(|e| panic!("cannot write timeline export to {}: {e}", path.display()));
        println!(
            "timeline export: optimized and reference paths byte-identical; wrote {}",
            path.display()
        );
    }
    if replay {
        println!(
            "replay row: \"Optimized\" is the cache-on serving loop, \"Reference\"\n\
             the cache-off serving loop (setup excluded on both legs); cycle\n\
             totals and metrics exports were byte-identical with the cache on\n\
             or off (the replay differential oracle)."
        );
    }
    if let Some(min) = min_speedup {
        // shard-scale and replay have their own gates
        // (--min-shard-speedup / --min-replay-speedup), so they are
        // excluded from the optimized-vs-reference one.
        for m in runs
            .iter()
            .filter(|m| m.label != "shard-scale" && m.label != "replay")
        {
            if m.speedup() < min {
                eprintln!(
                    "FAIL: {} speedup {:.2}x below required {min:.2}x",
                    m.label,
                    m.speedup()
                );
                std::process::exit(1);
            }
        }
        println!("\nok: every scenario at or above {min:.2}x");
    }
    if let Some(min) = min_replay_speedup {
        let m = runs
            .iter()
            .find(|m| m.label == "replay")
            .unwrap_or_else(|| panic!("--min-replay-speedup needs --replay"));
        if m.speedup() < min {
            eprintln!(
                "FAIL: replay speedup {:.2}x below required {min:.2}x",
                m.speedup()
            );
            std::process::exit(1);
        }
        println!("\nok: replay cache at or above {min:.2}x");
    }
    if let Some(min) = min_shard_speedup {
        let m = runs
            .iter()
            .find(|m| m.label == "shard-scale")
            .unwrap_or_else(|| panic!("--min-shard-speedup needs --shards > 1"));
        let cpus = available_cpus();
        if cpus < 4 {
            // One thread per shard cannot beat one core with CPU-bound
            // work; the acceptance bar ("≥2x on a ≥4-core machine") only
            // applies where the hardware can express it.
            println!(
                "\nskip: --min-shard-speedup {min:.2}x not enforced on a \
                 {cpus}-CPU host (needs >= 4); measured {:.2}x",
                m.speedup()
            );
        } else if m.speedup() < min {
            eprintln!(
                "FAIL: shard-scale speedup {:.2}x below required {min:.2}x on a {cpus}-CPU host",
                m.speedup()
            );
            std::process::exit(1);
        } else {
            println!("\nok: shard-scale at or above {min:.2}x on a {cpus}-CPU host");
        }
    }
}

/// CPUs visible to this process, 1 when undeterminable.
fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Hand-rolled `ne-bench/v1` document. Higher is worse for every leaf:
/// cycles (deterministic), wall milliseconds (noisy), and the
/// optimized-over-reference wall ratio in permille (the regression
/// signal — it grows when the optimized path loses its lead).
fn bench_json(runs: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{BENCH_SCHEMA}\",\n"));
    out.push_str("  \"experiment\": \"wallclock\",\n");
    out.push_str("  \"runs\": [\n");
    for (i, m) in runs.iter().enumerate() {
        let permille = (1000.0 * m.wall_ms_opt / m.wall_ms_ref.max(1e-9)).round();
        out.push_str("    {\n");
        out.push_str(&format!("      \"label\": \"{}\",\n", m.label));
        out.push_str(&format!("      \"total_cycles\": {},\n", m.total_cycles));
        out.push_str(&format!(
            "      \"wall_ms_optimized\": {:.0},\n",
            m.wall_ms_opt.max(1.0).round()
        ));
        out.push_str(&format!(
            "      \"wall_ms_reference\": {:.0},\n",
            m.wall_ms_ref.max(1.0).round()
        ));
        out.push_str(&format!("      \"opt_over_ref_permille\": {permille}\n"));
        out.push_str("    }");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}
