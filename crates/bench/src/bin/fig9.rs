//! Regenerates **Table V** (dataset inventory) and **Fig. 9** (normalized
//! LibSVM training and prediction time under nested enclave).
//!
//! Datasets are synthetic stand-ins with Table V's exact shapes; run with
//! `--full` for the full sizes (slow: full cod-rna has ~60 k samples) —
//! the default uses 2% scale. `--seed <u64>` draws different synthetic
//! datasets of the same shapes (default 0 reproduces the committed
//! numbers). `--metrics-out <path>` exports every run's machine snapshot;
//! `--bench-out`, `--profile-out` and `--trace-out` export the regression
//! baseline, latency histograms, and a Chrome/Perfetto trace of the
//! nested dna run (see `ne_bench::report`).

use ne_bench::report::{banner, f3, flag_u64, want_trace, write_trace, MetricsReport, Table};
use ne_bench::svm_case::{run_svm_case, SvmCaseConfig};
use ne_svm::data::TableVDataset;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { 1.0 } else { 0.005 };
    let seed = flag_u64("--seed").unwrap_or(0);
    let mut report = MetricsReport::new("fig9");

    banner("Table V: datasets used for evaluating LibSVM");
    let mut tv = Table::new(&["name", "class", "training size", "testing size", "feature"]);
    for ds in TableVDataset::ALL {
        let (classes, train, test, feat) = ds.shape();
        tv.row(&[
            ds.name().into(),
            classes.to_string(),
            format!("{train}"),
            test.map_or("-".to_string(), |t| t.to_string()),
            feat.to_string(),
        ]);
    }
    tv.print();
    println!("(synthetic data of identical shape; '-' reuses a training fraction)\n");

    banner(&format!(
        "Fig. 9: normalized execution time (scale {scale}, seed {seed})"
    ));
    let mut t = Table::new(&[
        "dataset",
        "train (nested/mono)",
        "predict (nested/mono)",
        "accuracy",
        "n_calls",
    ]);
    let mut traced = None;
    for ds in TableVDataset::ALL {
        let mono = run_svm_case(&SvmCaseConfig {
            dataset: ds,
            scale,
            nested: false,
            trace: false,
            seed,
        })
        .expect("monolithic run");
        // The traced dataset is dna: the one Fig. 9's discussion names.
        let trace_this = want_trace() && ds.name() == "dna";
        let nested = run_svm_case(&SvmCaseConfig {
            dataset: ds,
            scale,
            nested: true,
            trace: trace_this,
            seed,
        })
        .expect("nested run");
        if trace_this {
            traced = nested.trace.clone();
        }
        report.push_run(&format!("mono-{}", ds.name()), mono.metrics.clone());
        report.push_run(&format!("nested-{}", ds.name()), nested.metrics.clone());
        t.row(&[
            ds.name().into(),
            f3(nested.train_cycles as f64 / mono.train_cycles as f64),
            f3(nested.predict_cycles as f64 / mono.predict_cycles as f64),
            f3(nested.accuracy),
            nested.n_calls.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): ratios ≈ 1.00 — \"a small number of extra\n\
         transitions between the inner and outer enclaves do not add\n\
         significant overheads in the LibSVM computations\"."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
