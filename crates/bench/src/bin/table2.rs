//! Regenerates **Table II**: average latency of enclave transition calls
//! for real-hardware SGX, emulated SGX, and emulated nested enclave.
//!
//! Run with `--full` for the paper's 1 M iterations (default 10 k).
//! `--metrics-out`, `--bench-out`, `--profile-out` and `--trace-out`
//! export snapshots, the regression baseline, latency histograms, and a
//! Chrome/Perfetto trace of the nested phase (see `ne_bench::report`).

use ne_bench::report::{banner, f2, want_trace, write_trace, MetricsReport, Table};
use ne_bench::transitions::{measure_classic, measure_nested};
use ne_sgx::cost::CostProfile;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let iters: u64 = if full { 1_000_000 } else { 10_000 };
    banner(&format!(
        "Table II: average transition latency ({iters} calls per mode)"
    ));
    let hw = measure_classic(CostProfile::hw_sgx(), iters, false);
    let em = measure_classic(CostProfile::emulated(), iters, false);
    // The traced mode is the one the paper introduces: nested transitions.
    let ne = measure_nested(CostProfile::emulated(), iters, want_trace());
    let mut report = MetricsReport::new("table2");
    report.push_run("hw-sgx", hw.metrics.clone());
    report.push_run("emulated-sgx", em.metrics.clone());
    report.push_run("emulated-nested", ne.metrics.clone());
    let mut t = Table::new(&["Mode", "ecall", "ocall", "paper ecall", "paper ocall"]);
    t.row(&[
        "HW SGX ecall/ocall".into(),
        format!("{}us", f2(hw.ecall_us)),
        format!("{}us", f2(hw.ocall_us)),
        "3.45us".into(),
        "3.13us".into(),
    ]);
    t.row(&[
        "Emulated SGX ecall/ocall".into(),
        format!("{}us", f2(em.ecall_us)),
        format!("{}us", f2(em.ocall_us)),
        "1.25us".into(),
        "1.14us".into(),
    ]);
    t.row(&[
        "Emulated nested (n_ecall/n_ocall)".into(),
        format!("{}us", f2(ne.ecall_us)),
        format!("{}us", f2(ne.ocall_us)),
        "1.11us".into(),
        "1.06us".into(),
    ]);
    t.print();
    println!(
        "\nAs in the paper, the emulated transitions underestimate the real\n\
         hardware cost, and nested transitions are slightly cheaper than\n\
         emulated classic transitions (no kernel round trip)."
    );
    if want_trace() {
        write_trace(ne.trace.as_ref());
    }
    report.finish();
}
