//! Regenerates **Fig. 7**: echo-server throughput with varying chunk
//! sizes, normalized to the monolithic baseline, plus the ecall/ocall
//! counts per message (for nested runs the count includes n_ecall and
//! n_ocall, as in the paper).
//!
//! Run with `--full` for more messages per point, and
//! `--metrics-out <path>` to export every run's machine snapshot.
//! `--bench-out`, `--profile-out` and `--trace-out` export the
//! regression baseline, the latency histograms, and a Chrome/Perfetto
//! trace of the nested 1KB run (see `ne_bench::report`).

use ne_bench::report::{
    banner, breakdown_table, f2, f3, want_trace, write_trace, MetricsReport, Table,
};
use ne_tls::echo::{run_echo, EchoConfig};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let messages = if full { 2_000 } else { 200 };
    let mut report = MetricsReport::new("fig7");
    let mut nested_snapshot = None;
    let mut nested_trace = None;
    banner(&format!(
        "Fig. 7: SSL echo server throughput ({messages} messages per point)"
    ));
    let mut t = Table::new(&[
        "Chunk",
        "Monolithic MB/s",
        "Nested MB/s",
        "Normalized",
        "Mono calls/MB",
        "Nested calls/MB",
    ]);
    for chunk in [128usize, 256, 512, 1024, 2048, 4096, 8192, 16384] {
        let mono = run_echo(&EchoConfig {
            chunk_size: chunk,
            num_messages: messages,
            nested: false,
            trace: false,
            reference: false,
        })
        .expect("monolithic echo");
        // The traced point is the nested 1KB run — the configuration the
        // paper's Fig. 7 discussion centres on.
        let nested = run_echo(&EchoConfig {
            chunk_size: chunk,
            num_messages: messages,
            nested: true,
            trace: want_trace() && chunk == 1024,
            reference: false,
        })
        .expect("nested echo");
        let label = if chunk >= 1024 {
            format!("{}KB", chunk / 1024)
        } else {
            format!("{chunk}B")
        };
        report.push_run(&format!("mono-{label}"), mono.metrics.clone());
        report.push_run(&format!("nested-{label}"), nested.metrics.clone());
        if chunk == 1024 {
            nested_snapshot = Some(nested.metrics.clone());
            nested_trace = nested.trace.clone();
        }
        // The paper plots call counts for a fixed data volume, which is
        // why "the number of additional calls increases as chunk size
        // decreases": per megabyte, small chunks mean many messages.
        let per_mb = |calls_per_msg: f64| calls_per_msg * (1e6 / chunk as f64);
        t.row(&[
            label,
            f2(mono.throughput_mbps()),
            f2(nested.throughput_mbps()),
            f3(nested.throughput_mbps() / mono.throughput_mbps()),
            f2(per_mb(mono.calls_per_message(messages))),
            f2(per_mb(nested.calls_per_message(messages))),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): normalized throughput 0.94–0.98, worst at\n\
         small chunks where the extra n_ecall/n_ocall per message weigh most."
    );
    // Where the nested run's cycles actually go: the SSL outer enclave,
    // the application inner enclave, and the untrusted side each get
    // their own attribution bucket; rows sum to the machine total (the
    // exporter's checker enforces it).
    let m = nested_snapshot.expect("1KB point always runs");
    println!("\nPer-enclave cycle breakdown (nested run, 1KB chunks):");
    breakdown_table(&m).print();
    if want_trace() {
        write_trace(nested_trace.as_ref());
    }
    report.finish();
}
