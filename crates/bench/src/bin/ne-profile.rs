//! Latency-profile front end: renders histogram summaries from exported
//! metrics JSON, or runs a small traced demo workload.
//!
//! ```text
//! ne-profile report <metrics.json>   # ne-metrics/v2 or ne-metrics-report/v2
//! ne-profile demo [--metrics-out p] [--bench-out p] [--profile-out p] [--trace-out p]
//! ```
//!
//! `report` accepts either a single [`ne-metrics/v2`] snapshot or a
//! [`ne-metrics-report/v2`] multi-run report (the `--metrics-out`
//! payloads of every experiment binary) and prints one
//! count/mean/p50/p90/p99/max table per run from the embedded `profile`
//! summaries. `demo` runs a short nested TLS echo with event tracing on
//! and honors the same four export flags as the experiment binaries, so
//! a full profile + Perfetto trace + bench baseline can be produced in
//! one command without picking an experiment first.
//!
//! [`ne-metrics/v2`]: ne_sgx::metrics::METRICS_SCHEMA
//! [`ne-metrics-report/v2`]: ne_bench::report::REPORT_SCHEMA

use ne_bench::json::{self, Value};
use ne_bench::report::{
    banner, f2, profile_table, want_trace, write_trace, MetricsReport, Table, REPORT_SCHEMA,
};
use ne_sgx::metrics::METRICS_SCHEMA;
use ne_tls::echo::{run_echo, EchoConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: ne-profile report <metrics.json>\n\
                     \x20      ne-profile demo [--metrics-out <p>] [--bench-out <p>] \
                     [--profile-out <p>] [--trace-out <p>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => {
            let Some(path) = args.get(1) else {
                eprintln!("report needs a metrics JSON path\n{USAGE}");
                return ExitCode::from(2);
            };
            match report(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("demo") => demo(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses an exported metrics file and prints its histogram tables.
fn report(path: &str) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = json::parse(&src)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" field")?;
    match schema {
        METRICS_SCHEMA => {
            print_profile("snapshot", &doc)?;
            Ok(())
        }
        REPORT_SCHEMA => {
            let runs = doc
                .get("runs")
                .and_then(Value::as_array)
                .ok_or("report has no \"runs\" array")?;
            for run in runs {
                let label = run
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or("run without a \"label\"")?;
                let metrics = run.get("metrics").ok_or("run without \"metrics\"")?;
                print_profile(label, metrics)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unsupported schema \"{other}\" (expected \"{METRICS_SCHEMA}\" or \"{REPORT_SCHEMA}\")"
        )),
    }
}

/// Prints one run's `profile` summaries as a table.
fn print_profile(label: &str, metrics: &Value) -> Result<(), String> {
    let entries = metrics
        .get("profile")
        .and_then(Value::as_array)
        .ok_or("metrics without a \"profile\" array")?;
    println!("run: {label}");
    if entries.is_empty() {
        println!("  (no latency samples recorded)\n");
        return Ok(());
    }
    let mut t = Table::new(&[
        "event", "level", "count", "mean", "p50", "p90", "p99", "max",
    ]);
    for e in entries {
        let s = |k: &str| {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("profile entry missing \"{k}\""))
        };
        let n = |k: &str| {
            e.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("profile entry missing numeric \"{k}\""))
        };
        let (count, sum) = (n("count")?, n("sum")?);
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        t.row(&[
            s("event")?,
            s("level")?,
            count.to_string(),
            f2(mean),
            n("p50")?.to_string(),
            n("p90")?.to_string(),
            n("p99")?.to_string(),
            n("max")?.to_string(),
        ]);
    }
    t.print();
    println!();
    Ok(())
}

/// Runs a short traced nested echo and exports like any experiment bin.
fn demo() -> ExitCode {
    banner("ne-profile demo: traced nested TLS echo (64 x 1 KiB)");
    let run = run_echo(&EchoConfig {
        chunk_size: 1024,
        num_messages: 64,
        nested: true,
        trace: true,
        reference: false,
    })
    .expect("echo");
    println!(
        "echoed {} bytes in {} cycles ({} ecalls, {} n_ecalls)\n",
        run.bytes, run.cycles, run.ecalls, run.n_ecalls
    );
    profile_table(&run.metrics).print();
    let mut report = MetricsReport::new("ne-profile-demo");
    report.push_run("nested-echo-1KiB", run.metrics);
    if want_trace() {
        write_trace(run.trace.as_ref());
    }
    report.finish();
    ExitCode::SUCCESS
}
