//! Latency-profile front end: renders histogram summaries from exported
//! metrics JSON, or runs a small traced demo workload.
//!
//! ```text
//! ne-profile report <metrics.json>     # ne-metrics/v2 or ne-metrics-report/v2
//! ne-profile timeline <timeline.jsonl> # ne-obs/v1
//! ne-profile demo [--metrics-out p] [--bench-out p] [--profile-out p] [--trace-out p]
//! ```
//!
//! `report` accepts either a single [`ne-metrics/v2`] snapshot or a
//! [`ne-metrics-report/v2`] multi-run report (the `--metrics-out`
//! payloads of every experiment binary) and prints one
//! count/mean/p50/p90/p99/max table per run from the embedded `profile`
//! summaries. `timeline` pretty-prints an `ne-obs/v1` JSONL timeline
//! (from `ne-load --timeline-out` / `ne-wallclock --timeline-out`): a
//! per-window table, the per-tenant SLO state transitions, and the
//! correlated incidents. `demo` runs a short nested TLS echo with event
//! tracing on and honors the same four export flags as the experiment
//! binaries, so a full profile + Perfetto trace + bench baseline can be
//! produced in one command without picking an experiment first.
//!
//! [`ne-metrics/v2`]: ne_sgx::metrics::METRICS_SCHEMA
//! [`ne-metrics-report/v2`]: ne_bench::report::REPORT_SCHEMA

use ne_bench::json::{self, Value};
use ne_bench::report::{
    banner, f2, profile_table, want_trace, write_trace, MetricsReport, Table, REPORT_SCHEMA,
};
use ne_sgx::metrics::METRICS_SCHEMA;
use ne_tls::echo::{run_echo, EchoConfig};
use std::process::ExitCode;

const USAGE: &str = "usage: ne-profile report <metrics.json>\n\
                     \x20      ne-profile timeline <timeline.jsonl>\n\
                     \x20      ne-profile demo [--metrics-out <p>] [--bench-out <p>] \
                     [--profile-out <p>] [--trace-out <p>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => {
            let Some(path) = args.get(1) else {
                eprintln!("report needs a metrics JSON path\n{USAGE}");
                return ExitCode::from(2);
            };
            match report(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("timeline") => {
            let Some(path) = args.get(1) else {
                eprintln!("timeline needs an ne-obs/v1 JSONL path\n{USAGE}");
                return ExitCode::from(2);
            };
            match timeline(path) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("demo") => demo(),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parses an exported metrics file and prints its histogram tables.
fn report(path: &str) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = json::parse(&src)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing \"schema\" field")?;
    match schema {
        METRICS_SCHEMA => {
            print_profile("snapshot", &doc)?;
            Ok(())
        }
        REPORT_SCHEMA => {
            let runs = doc
                .get("runs")
                .and_then(Value::as_array)
                .ok_or("report has no \"runs\" array")?;
            for run in runs {
                let label = run
                    .get("label")
                    .and_then(Value::as_str)
                    .ok_or("run without a \"label\"")?;
                let metrics = run.get("metrics").ok_or("run without \"metrics\"")?;
                print_profile(label, metrics)?;
            }
            Ok(())
        }
        other => Err(format!(
            "unsupported schema \"{other}\" (expected \"{METRICS_SCHEMA}\" or \"{REPORT_SCHEMA}\")"
        )),
    }
}

/// Prints one run's `profile` summaries as a table.
fn print_profile(label: &str, metrics: &Value) -> Result<(), String> {
    let entries = metrics
        .get("profile")
        .and_then(Value::as_array)
        .ok_or("metrics without a \"profile\" array")?;
    println!("run: {label}");
    if entries.is_empty() {
        println!("  (no latency samples recorded)\n");
        return Ok(());
    }
    let mut t = Table::new(&[
        "event", "level", "count", "mean", "p50", "p90", "p99", "max",
    ]);
    for e in entries {
        let s = |k: &str| {
            e.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or(format!("profile entry missing \"{k}\""))
        };
        let n = |k: &str| {
            e.get(k)
                .and_then(Value::as_u64)
                .ok_or(format!("profile entry missing numeric \"{k}\""))
        };
        let (count, sum) = (n("count")?, n("sum")?);
        let mean = if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        };
        t.row(&[
            s("event")?,
            s("level")?,
            count.to_string(),
            f2(mean),
            n("p50")?.to_string(),
            n("p90")?.to_string(),
            n("p99")?.to_string(),
            n("max")?.to_string(),
        ]);
    }
    t.print();
    println!();
    Ok(())
}

/// Pretty-prints an `ne-obs/v1` JSONL timeline: per-window table, SLO
/// state transitions, incidents, and the reconciliation totals.
fn timeline(path: &str) -> Result<(), String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut lines = src.lines().enumerate();
    let (_, meta_line) = lines.next().ok_or("empty timeline file")?;
    let meta = json::parse(meta_line)?;
    let schema = meta
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("first line has no \"schema\" field")?;
    if schema != ne_obs::OBS_SCHEMA {
        return Err(format!(
            "unsupported schema \"{schema}\" (expected \"{}\")",
            ne_obs::OBS_SCHEMA
        ));
    }
    let mu = |k: &str| meta.get(k).and_then(Value::as_u64).unwrap_or(0);
    println!(
        "timeline: {} — {} window(s) of {} cycles, {} shard(s), {} tenant(s)",
        meta.get("label").and_then(Value::as_str).unwrap_or("?"),
        mu("windows"),
        mu("window_cycles"),
        mu("shards"),
        mu("tenants"),
    );
    if let Some(slo) = meta.get("slo") {
        let su = |k: &str| slo.get(k).and_then(Value::as_u64).unwrap_or(0);
        println!(
            "slo: latency target {} cycles, availability {} permille, \
             warn/page burn {}/{} over {} long window(s)\n",
            su("latency_target"),
            su("availability_permille"),
            su("warn_burn"),
            su("page_burn"),
            su("long_windows"),
        );
    }

    let mut windows = Table::new(&[
        "window", "cycles", "done", "shed", "p50", "p99", "viol", "inj", "rec", "slo",
    ]);
    let mut transitions: Vec<String> = Vec::new();
    let mut incidents: Vec<String> = Vec::new();
    let mut total: Option<String> = None;
    // tenant id -> last seen SLO state, for the transition log.
    let mut last_state: Vec<(u64, String)> = Vec::new();
    for (i, line) in lines {
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = doc
            .get("kind")
            .and_then(Value::as_str)
            .ok_or(format!("line {}: no \"kind\"", i + 1))?;
        match kind {
            "window" | "base" => {
                let wu = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
                let req = doc.get("request").ok_or("window without \"request\"")?;
                let ru = |k: &str| req.get(k).and_then(Value::as_u64).unwrap_or(0);
                let tenants = doc
                    .get("tenants")
                    .and_then(Value::as_array)
                    .ok_or("window without \"tenants\"")?;
                let index = wu("index");
                let mut done = 0;
                let mut shed = 0;
                let mut viol = 0;
                let mut states: Vec<String> = Vec::new();
                for t in tenants {
                    let tu = |k: &str| t.get(k).and_then(Value::as_u64).unwrap_or(0);
                    done += tu("completed");
                    shed += tu("shed");
                    viol += tu("latency_violations");
                    let id = tu("tenant");
                    let state = t
                        .get("slo")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                    if state != "ok" {
                        states.push(format!("t{id}:{state}"));
                    }
                    match last_state.iter_mut().find(|(t, _)| *t == id) {
                        Some((_, prev)) => {
                            if *prev != state {
                                transitions.push(format!(
                                    "window {index}: tenant {id} {prev} -> {state} \
                                     (burn {}/{})",
                                    tu("burn_short"),
                                    tu("burn_long")
                                ));
                                *prev = state;
                            }
                        }
                        None => {
                            if state != "ok" {
                                transitions.push(format!(
                                    "window {index}: tenant {id} ok -> {state} (burn {}/{})",
                                    tu("burn_short"),
                                    tu("burn_long")
                                ));
                            }
                            last_state.push((id, state));
                        }
                    }
                }
                windows.row(&[
                    if kind == "base" {
                        format!("{index}*")
                    } else {
                        index.to_string()
                    },
                    wu("cycles").to_string(),
                    done.to_string(),
                    shed.to_string(),
                    ru("p50").to_string(),
                    ru("p99").to_string(),
                    viol.to_string(),
                    doc.get("injections")
                        .and_then(Value::as_array)
                        .map_or(0, |a| a.len())
                        .to_string(),
                    doc.get("recoveries")
                        .and_then(Value::as_array)
                        .map_or(0, |a| a.len())
                        .to_string(),
                    if states.is_empty() {
                        "ok".to_string()
                    } else {
                        states.join(" ")
                    },
                ]);
            }
            "incident" => {
                let iu = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
                incidents.push(format!(
                    "tenant {} windows {}..{}: worst {}, {} impacted window(s)",
                    iu("tenant"),
                    iu("first_window"),
                    iu("last_window"),
                    doc.get("worst").and_then(Value::as_str).unwrap_or("?"),
                    iu("impacted_windows"),
                ));
            }
            "total" => {
                let tu = |k: &str| doc.get(k).and_then(Value::as_u64).unwrap_or(0);
                total = Some(format!(
                    "totals: {} cycles, {} completed, {} shed (window deltas \
                     reconcile to these exactly)",
                    tu("cycles"),
                    tu("completed"),
                    tu("shed"),
                ));
            }
            // Checkpoints and tenant totals are the byte-diff plane, not
            // for human eyes.
            "checkpoint" | "tenant_total" => {}
            other => return Err(format!("line {}: unknown kind \"{other}\"", i + 1)),
        }
    }
    windows.print();
    println!("\nSLO transitions:");
    if transitions.is_empty() {
        println!("  (none — every tenant stayed OK)");
    }
    for t in &transitions {
        println!("  {t}");
    }
    println!("\nincidents:");
    if incidents.is_empty() {
        println!("  (none)");
    }
    for i in &incidents {
        println!("  {i}");
    }
    if let Some(t) = total {
        println!("\n{t}");
    }
    Ok(())
}

/// Runs a short traced nested echo and exports like any experiment bin.
fn demo() -> ExitCode {
    banner("ne-profile demo: traced nested TLS echo (64 x 1 KiB)");
    let run = run_echo(&EchoConfig {
        chunk_size: 1024,
        num_messages: 64,
        nested: true,
        trace: true,
        reference: false,
    })
    .expect("echo");
    println!(
        "echoed {} bytes in {} cycles ({} ecalls, {} n_ecalls)\n",
        run.bytes, run.cycles, run.ecalls, run.n_ecalls
    );
    profile_table(&run.metrics).print();
    let mut report = MetricsReport::new("ne-profile-demo");
    report.push_run("nested-echo-1KiB", run.metrics);
    if want_trace() {
        write_trace(run.trace.as_ref());
    }
    report.finish();
    ExitCode::SUCCESS
}
