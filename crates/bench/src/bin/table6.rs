//! Regenerates **Table VI**: SQLite throughput under YCSB mixes (uniform
//! random request distribution), normalized to the monolithic enclave.
//!
//! The paper runs 10 000 queries; that is the `--full` setting (default
//! 500 for a quick run).

use ne_bench::db_case::run_db_case;
use ne_bench::report::{banner, f2, f3, MetricsReport, Table};
use ne_db::WorkloadMix;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (records, ops) = if full { (1_000, 10_000) } else { (100, 500) };
    banner(&format!(
        "Table VI: SQLite YCSB throughput ({ops} queries, {records} records)"
    ));
    let mut t = Table::new(&[
        "Workload",
        "Mono kops/s",
        "Nested kops/s",
        "Normalized",
        "paper",
    ]);
    let paper = ["0.99", "0.99", "0.98", "0.98"];
    let mut report = MetricsReport::new("table6");
    for (mix, paper_v) in WorkloadMix::ALL.into_iter().zip(paper) {
        let mono = run_db_case(mix, records, ops, false).expect("monolithic");
        let nested = run_db_case(mix, records, ops, true).expect("nested");
        report.push_run(&format!("mono-{}", mix.name()), mono.metrics.clone());
        report.push_run(&format!("nested-{}", mix.name()), nested.metrics.clone());
        t.row(&[
            mix.name().into(),
            f2(mono.ops_per_second() / 1e3),
            f2(nested.ops_per_second() / 1e3),
            f3(nested.ops_per_second() / mono.ops_per_second()),
            paper_v.into(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): normalized throughput 0.98–0.99 — the\n\
         inner enclave's parse+encrypt and the extra n_ocall are a small\n\
         fraction of the per-query engine work."
    );
    report.finish();
}
