//! Regenerates **Table VI**: SQLite throughput under YCSB mixes (uniform
//! random request distribution), normalized to the monolithic enclave.
//!
//! The paper runs 10 000 queries; that is the `--full` setting (default
//! 500 for a quick run). `--seed <u64>` picks the YCSB workload stream
//! (default reproduces the committed numbers). `--metrics-out`,
//! `--bench-out`, `--profile-out` and `--trace-out` export snapshots, the
//! regression baseline, latency histograms, and a Chrome/Perfetto trace
//! of the first nested mix (see `ne_bench::report`).

use ne_bench::db_case::{run_db_case, DEFAULT_DB_SEED};
use ne_bench::report::{banner, f2, f3, flag_u64, want_trace, write_trace, MetricsReport, Table};
use ne_db::WorkloadMix;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (records, ops) = if full { (1_000, 10_000) } else { (100, 500) };
    let seed = flag_u64("--seed").unwrap_or(DEFAULT_DB_SEED);
    banner(&format!(
        "Table VI: SQLite YCSB throughput ({ops} queries, {records} records, seed {seed})"
    ));
    let mut t = Table::new(&[
        "Workload",
        "Mono kops/s",
        "Nested kops/s",
        "Normalized",
        "paper",
    ]);
    let paper = ["0.99", "0.99", "0.98", "0.98"];
    let mut report = MetricsReport::new("table6");
    let mut traced = None;
    for (i, (mix, paper_v)) in WorkloadMix::ALL.into_iter().zip(paper).enumerate() {
        let mono = run_db_case(mix, records, ops, false, false, seed).expect("monolithic");
        // The traced mix is the first (pure-select) nested run.
        let trace_this = want_trace() && i == 0;
        let nested = run_db_case(mix, records, ops, true, trace_this, seed).expect("nested");
        if trace_this {
            traced = nested.trace.clone();
        }
        report.push_run(&format!("mono-{}", mix.name()), mono.metrics.clone());
        report.push_run(&format!("nested-{}", mix.name()), nested.metrics.clone());
        t.row(&[
            mix.name().into(),
            f2(mono.ops_per_second() / 1e3),
            f2(nested.ops_per_second() / 1e3),
            f3(nested.ops_per_second() / mono.ops_per_second()),
            paper_v.into(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): normalized throughput 0.98–0.99 — the\n\
         inner enclave's parse+encrypt and the extra n_ocall are a small\n\
         fraction of the per-query engine work."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
