//! Regenerates **Fig. 11**: throughput of intra-enclave communication via
//! the MEE-protected outer enclave versus enclave-to-enclave communication
//! with software AES-GCM through untrusted memory, across chunk sizes and
//! communication footprints.
//!
//! Run with `--full` for more traffic per point. `--metrics-out`,
//! `--bench-out`, `--profile-out` and `--trace-out` export snapshots,
//! the regression baseline, latency histograms, and a Chrome/Perfetto
//! trace of the 2MB/4KB MEE run (see `ne_bench::report`).

use ne_bench::channel_exp::{run_gcm_channel, run_outer_channel};
use ne_bench::report::{banner, f2, want_trace, write_trace, MetricsReport, Table};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    banner("Fig. 11: MEE (outer-enclave channel) vs GCM (untrusted memory)");
    let mut report = MetricsReport::new("fig11");
    let mut traced = None;
    // Footprints: below the 8 MiB LLC, at it, and far above.
    for (label, footprint) in [("2MB", 2usize << 20), ("8MB", 8 << 20), ("32MB", 32 << 20)] {
        // Traffic must loop over the region several times so the steady
        // state (cache-resident or thrashing) dominates cold misses.
        let total: u64 = if full {
            4 * footprint as u64
        } else {
            2 * footprint as u64
        };
        println!("\n-- communication footprint {label} --");
        let mut t = Table::new(&[
            "Chunk",
            "MEE MB/s",
            "GCM MB/s",
            "MEE/GCM",
            "MEE lines touched",
        ]);
        for chunk in [64usize, 256, 1024, 4096, 16384, 65536] {
            // The traced point is the smallest footprint at 4KB chunks:
            // representative traffic without a multi-gigabyte trace file.
            let trace_this = want_trace() && footprint == 2 << 20 && chunk == 4096;
            let mee =
                run_outer_channel(chunk, footprint, total, trace_this).expect("outer channel");
            let gcm = run_gcm_channel(chunk, footprint, total, false).expect("gcm channel");
            if trace_this {
                traced = mee.trace.clone();
            }
            let chunk_label = if chunk >= 1024 {
                format!("{}KB", chunk / 1024)
            } else {
                format!("{chunk}B")
            };
            report.push_run(&format!("mee-{label}-{chunk_label}"), mee.metrics.clone());
            report.push_run(&format!("gcm-{label}-{chunk_label}"), gcm.metrics.clone());
            let label = chunk_label;
            t.row(&[
                label,
                f2(mee.throughput_mbps()),
                f2(gcm.throughput_mbps()),
                f2(mee.throughput_mbps() / gcm.throughput_mbps()),
                mee.mee_lines.to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "\nExpected shape (paper): the intra-enclave channel wins everywhere —\n\
         up to ~30x at small chunks — and the gap is largest while the\n\
         footprint fits the 8 MiB LLC, where the MEE is never invoked; GCM\n\
         narrows the gap at large chunks as its setup cost amortizes."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
