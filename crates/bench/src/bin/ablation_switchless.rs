//! Ablation (§ IX related work): classic ocalls vs switchless (exitless)
//! calls, the SDK mechanism the paper cites as the software alternative to
//! cheap boundary crossings.
//!
//! For each payload size, one thousand calls are made through each
//! mechanism and the average caller-core cost is reported. Switchless
//! avoids the EEXIT/EENTER pair but burns a worker core; nested enclave's
//! NEENTER/NEEXIT attacks the *enclave-to-enclave* crossings instead —
//! the two are complementary.

use ne_bench::report::{banner, f2, want_trace, write_trace, MetricsReport, Table};
use ne_core::edl::Edl;
use ne_core::loader::EnclaveImage;
use ne_core::runtime::{NestedApp, TrustedFn, UntrustedCtx, UntrustedFn};
use ne_core::switchless::SwitchlessQueue;
use ne_sgx::addr::VirtAddr;
use ne_sgx::config::HwConfig;
use std::sync::Arc;

fn build_app(trace: bool) -> NestedApp {
    let mut hw = HwConfig::testbed();
    hw.trace_events = trace;
    let mut app = NestedApp::new(hw);
    app.register_untrusted(
        "service",
        Arc::new(|_cx: &mut UntrustedCtx<'_>, args: &[u8]| Ok(args.to_vec())) as UntrustedFn,
    );
    let classic: TrustedFn = Arc::new(|cx, args| cx.ocall("service", args));
    let switchless: TrustedFn = Arc::new(|cx, args| {
        let slot = VirtAddr(u64::from_le_bytes(args[..8].try_into().expect("8")));
        let q = SwitchlessQueue::with_slot(slot, 4096, 1);
        q.ocall(cx, "service", &args[8..])
    });
    let img = EnclaveImage::new("e", b"bench").heap_pages(4).edl(
        Edl::new()
            .ecall("classic")
            .ecall("switchless")
            .ocall("service"),
    );
    app.load(
        img,
        [
            ("classic".to_string(), classic),
            ("switchless".to_string(), switchless),
        ],
    )
    .expect("load");
    app
}

fn main() {
    banner("Ablation: classic ocall vs switchless call (caller-core cycles)");
    let iters = 1_000u64;
    let mut report = MetricsReport::new("ablation_switchless");
    let mut t = Table::new(&[
        "Payload",
        "Classic cycles/call",
        "Switchless cycles/call",
        "Speedup",
    ]);
    let mut traced = None;
    for payload in [16usize, 256, 1024, 4096] {
        // The traced point is the 1KB payload — switchless and classic
        // spans side by side at a representative size.
        let trace_this = want_trace() && payload == 1024;
        let mut app = build_app(trace_this);
        let q = app.untrusted(0, |cx| SwitchlessQueue::create(cx, 4096, 1));
        let data = vec![0x7Au8; payload];
        // Classic: measure the marginal ocall cost inside one ecall each.
        app.machine.reset_metrics();
        for _ in 0..iters {
            app.ecall(0, "e", "classic", &data).expect("classic");
        }
        let classic = app.machine.cycles(0) / iters;
        report.push_run(&format!("classic-{payload}B"), app.machine.metrics());
        // Switchless.
        let mut args = q.slot().0.to_le_bytes().to_vec();
        args.extend_from_slice(&data);
        app.machine.reset_metrics();
        for _ in 0..iters {
            app.ecall(0, "e", "switchless", &args).expect("switchless");
        }
        let switchless = app.machine.cycles(0) / iters;
        report.push_run(&format!("switchless-{payload}B"), app.machine.metrics());
        if trace_this {
            traced = Some(ne_sgx::spantree::TraceBundle::capture(&app.machine));
        }
        t.row(&[
            format!("{payload}B"),
            classic.to_string(),
            switchless.to_string(),
            f2(classic as f64 / switchless as f64),
        ]);
    }
    t.print();
    println!(
        "\nSwitchless trims the per-call cost by skipping the EEXIT/EENTER\n\
         pair (and its TLB flushes), at the price of copies through\n\
         untrusted memory and a dedicated worker core — consistent with\n\
         HotCalls/SDK-switchless measurements the paper cites."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
