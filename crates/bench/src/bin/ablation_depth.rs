//! Ablation (§ VIII): validation cost of multi-level nesting.
//!
//! "Arbitrary levels of nesting only increase the validation time without
//! extra hardware complexity." This sweep builds chains of 2–6 levels and
//! measures the innermost enclave's cost of touching the outermost
//! enclave's memory (worst-case chain traversal on every TLB miss).

use ne_bench::report::{banner, f2, want_trace, write_trace, MetricsReport, Table};
use ne_core::validate::NestedValidator;
use ne_core::{nasso, AssocPolicy, EnclaveImage};
use ne_sgx::addr::{VirtAddr, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::ProcessId;
use ne_sgx::machine::Machine;
use ne_sgx::metrics::MachineMetrics;
use ne_sgx::spantree::TraceBundle;

fn run(depth: usize, touches: usize, trace: bool) -> (f64, MachineMetrics, Option<TraceBundle>) {
    let mut cfg = HwConfig::testbed();
    cfg.tlb_entries = 1; // every access misses: isolates validation cost
    cfg.trace_events = trace;
    let mut m = Machine::with_validator(cfg, Box::new(NestedValidator::with_max_depth(depth)));
    let mut next = 0x1000_0000u64;
    let mut layouts = Vec::new();
    for level in 0..depth {
        let img = EnclaveImage::new(&format!("level-{level}"), b"bench").heap_pages(4);
        let base = VirtAddr(next);
        next += img.total_pages() * PAGE_SIZE as u64;
        let l = ne_core::load_image(&mut m, ProcessId(0), base, &img).expect("load");
        layouts.push((l, img.identity(base)));
    }
    // level-0 is the outermost; each level-i+1 is an inner of level-i.
    for i in 1..depth {
        let (outer, outer_id) = (&layouts[i - 1].0, layouts[i - 1].1.clone());
        let (inner, inner_id) = (&layouts[i].0, layouts[i].1.clone());
        nasso(
            &mut m,
            inner.eid,
            outer.eid,
            &outer_id,
            &inner_id,
            AssocPolicy::SingleOuter,
        )
        .expect("NASSO");
    }
    let innermost = &layouts[depth - 1].0;
    let outermost = &layouts[0].0;
    m.eenter(0, innermost.eid, innermost.base).expect("enter");
    m.reset_metrics();
    for i in 0..touches {
        // Alternate two pages so the single-entry TLB always misses.
        let page = (i % 2) as u64;
        m.read(0, outermost.heap_base.add(page * PAGE_SIZE as u64), 8)
            .expect("chain access");
    }
    let bundle = trace.then(|| TraceBundle::capture(&m));
    (m.cycles(0) as f64 / touches as f64, m.metrics(), bundle)
}

fn main() {
    banner("Ablation: TLB-miss validation cost vs nesting depth");
    let touches = 10_000;
    let mut t = Table::new(&["Chain depth", "Cycles per access (all TLB misses)"]);
    let mut report = MetricsReport::new("ablation_depth");
    let mut prev = 0.0;
    let mut traced = None;
    for depth in 2..=6 {
        // The traced sweep point is the deepest chain — the one whose
        // per-miss walk the flamegraph is most interesting for.
        let trace_this = want_trace() && depth == 6;
        let (c, metrics, bundle) = run(depth, touches, trace_this);
        if trace_this {
            traced = bundle;
        }
        report.push_run(&format!("depth-{depth}"), metrics);
        t.row(&[depth.to_string(), f2(c)]);
        assert!(c >= prev, "validation cost must grow with depth");
        prev = c;
    }
    t.print();
    println!(
        "\nCost grows linearly with the inner→outer chain length — the\n\
         § VIII observation that deeper nesting 'only increases the\n\
         validation time' with no new hardware."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
