//! Regenerates **Fig. 10**: time to load enclaves running the OpenSSL
//! server, and the total loaded memory, as library sharing via nested
//! enclave increases.
//!
//! The paper uses 500 application instances (SSL ≈ 4 MB, App ≈ 1 MB);
//! that is the `--full` setting. The default scales to 50 instances so the
//! sweep finishes quickly; the shape is identical. `--metrics-out`,
//! `--bench-out`, `--profile-out` and `--trace-out` export snapshots,
//! the regression baseline, latency histograms, and a Chrome/Perfetto
//! trace of the single-outer nested run (see `ne_bench::report`).

use ne_bench::loading::{run_loading, LoadMode};
use ne_bench::report::{banner, f2, want_trace, write_trace, MetricsReport, Table};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let apps = if full { 500 } else { 50 };
    let mut report = MetricsReport::new("fig10");
    banner(&format!(
        "Fig. 10: loading time and memory footprint ({apps} App instances)"
    ));
    let mut t = Table::new(&[
        "Configuration",
        "Load time (sim ms)",
        "Footprint (MB)",
        "Enclaves",
    ]);
    let sep = run_loading(LoadMode::BaselineSeparate, apps, 0, false).expect("separate");
    report.push_run("baseline-separate", sep.metrics.clone());
    t.row(&[
        format!("baseline: {apps} SSL + {apps} App"),
        f2(sep.load_ms),
        f2(sep.footprint_mb),
        sep.enclaves.to_string(),
    ]);
    let comb = run_loading(LoadMode::BaselineCombined, apps, 0, false).expect("combined");
    report.push_run("baseline-combined", comb.metrics.clone());
    t.row(&[
        format!("baseline: {apps} (SSL+App)"),
        f2(comb.load_ms),
        f2(comb.footprint_mb),
        comb.enclaves.to_string(),
    ]);
    let mut traced = None;
    for outers in [1usize, apps / 10, apps / 5, apps / 2, apps] {
        let outers = outers.max(1);
        // The traced sweep point is maximum sharing: one SSL outer.
        let trace_this = want_trace() && outers == 1 && traced.is_none();
        let r = run_loading(LoadMode::Nested, apps, outers, trace_this).expect("nested");
        if trace_this {
            traced = r.trace.clone();
        }
        report.push_run(&format!("nested-{outers}-outers"), r.metrics.clone());
        t.row(&[
            format!("nested: {apps} App inner + {outers} SSL outer"),
            f2(r.load_ms),
            f2(r.footprint_mb),
            r.enclaves.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nExpected shape (paper): nested sharing shortens loading and shrinks\n\
         the footprint; with one outer per inner ({apps} SSL) it matches the\n\
         separate baseline, and 'as more sharing is allowed, the benefits of\n\
         reduced memory footprints increase'."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
