//! Ablation (§ IV-E): EPC-eviction TLB-shootdown policy — precise
//! inner-enclave thread tracking vs. interrupting every core.
//!
//! "A simplified, but potentially more costly solution is to send
//! inter-processor interrupts to all the cores in the system. It can
//! potentially cause exceptions even for unrelated cores, but the tracking
//! becomes simpler."

use ne_bench::report::{banner, want_trace, write_trace, MetricsReport, Table};
use ne_core::validate::NestedValidator;
use ne_core::{nasso, AssocPolicy, EnclaveImage};
use ne_sgx::addr::{VirtAddr, PAGE_SIZE};
use ne_sgx::config::HwConfig;
use ne_sgx::enclave::ProcessId;
use ne_sgx::machine::Machine;
use ne_sgx::metrics::MachineMetrics;
use ne_sgx::spantree::TraceBundle;

/// Builds a machine with one outer + one inner enclave pair and an
/// *unrelated* enclave running on another core, then evicts outer pages.
fn run(
    flush_all: bool,
    evictions: usize,
    trace: bool,
) -> (u64, u64, u64, MachineMetrics, Option<TraceBundle>) {
    let mut cfg = HwConfig::testbed();
    cfg.flush_all_on_evict = flush_all;
    cfg.trace_events = trace;
    let mut m = Machine::with_validator(cfg, Box::new(NestedValidator::new()));
    let mut next = 0x1000_0000u64;
    let mut load = |m: &mut Machine, name: &str, pages: u64| {
        let img = EnclaveImage::new(name, b"bench").heap_pages(pages);
        let base = VirtAddr(next);
        next += img.total_pages() * PAGE_SIZE as u64;
        let l = ne_core::load_image(m, ProcessId(0), base, &img).expect("load");
        (l, img.identity(base))
    };
    let (outer, outer_id) = load(&mut m, "outer", 64);
    let (inner, inner_id) = load(&mut m, "inner", 4);
    let (stranger, _) = load(&mut m, "stranger", 4);
    nasso(
        &mut m,
        inner.eid,
        outer.eid,
        &outer_id,
        &inner_id,
        AssocPolicy::SingleOuter,
    )
    .expect("NASSO");
    // Core 1: an inner-enclave thread whose TLB caches outer translations.
    m.eenter(1, inner.eid, inner.base).expect("enter inner");
    m.read(1, outer.heap_base, 64).expect("inner reads outer");
    // Core 2: a completely unrelated enclave.
    m.eenter(2, stranger.eid, stranger.base)
        .expect("enter stranger");
    m.read(2, stranger.heap_base, 64)
        .expect("stranger reads itself");
    m.reset_metrics();
    for i in 0..evictions {
        let va = outer.heap_base.add((i % 64) as u64 * PAGE_SIZE as u64);
        let page = m.ewb(outer.eid, va).expect("EWB");
        m.eldu(&page).expect("ELDU");
        // The interrupted inner thread resumes, refilling its TLB.
        if m.current_enclave(1).is_none() {
            m.eresume(1, inner.eid, inner.base).expect("resume inner");
            m.read(1, outer.heap_base.add(PAGE_SIZE as u64), 64).ok();
        }
        if m.current_enclave(2).is_none() {
            m.eresume(2, stranger.eid, stranger.base)
                .expect("resume stranger");
        }
    }
    let stats = m.stats();
    let bundle = trace.then(|| TraceBundle::capture(&m));
    (
        stats.ipis,
        stats.aexes,
        m.total_cycles(),
        m.metrics(),
        bundle,
    )
}

fn main() {
    banner("Ablation: eviction shootdown policy (precise tracking vs flush-all)");
    let evictions = 200;
    let mut t = Table::new(&["Policy", "IPIs", "AEXes", "Total cycles"]);
    let mut report = MetricsReport::new("ablation_evict");
    let mut traced = None;
    for (label, flush_all) in [("precise inner tracking", false), ("flush all cores", true)] {
        // The traced policy is flush-all: the one with AEX/ERESUME storms
        // worth seeing on a timeline.
        let trace_this = want_trace() && flush_all;
        let (ipis, aexes, cycles, metrics, bundle) = run(flush_all, evictions, trace_this);
        if trace_this {
            traced = bundle;
        }
        report.push_run(if flush_all { "flush-all" } else { "precise" }, metrics);
        t.row(&[
            label.into(),
            ipis.to_string(),
            aexes.to_string(),
            cycles.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPrecise tracking interrupts only cores running the evicted\n\
         enclave's tree (outer + inners); flush-all also kicks the\n\
         unrelated core on every eviction, spending more IPIs and cycles."
    );
    if want_trace() {
        write_trace(traced.as_ref());
    }
    report.finish();
}
