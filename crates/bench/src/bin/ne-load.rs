//! **ne-load** — the load-generator harness for the `ne-host`
//! multi-tenant hosting server, driven through the `ne-cluster` shard
//! layer.
//!
//! Where the figure/table binaries measure single calls, this one drives
//! **sustained traffic** through the full admission → scheduler →
//! ecall → n_ecall → reply chain and reports end-to-end request latency
//! (p50/p99) and throughput. Two arrival processes run, each against a
//! freshly built cluster:
//!
//! * **open-loop** — Poisson arrivals (exponential inter-arrival times
//!   from the seeded RNG) offered regardless of completion; overload
//!   surfaces as backpressure rejections, never queue growth;
//! * **closed-loop** — one client per (tenant, service) pair that submits
//!   its next request the moment the previous one completes, the classic
//!   latency-oriented harness.
//!
//! Everything is deterministic under `--seed`: the arrival schedule, the
//! request payloads, and the per-tenant models/datasets, so two runs with
//! the same flags export byte-identical `ne-bench/v1` baselines. With
//! `--shards N` the tenants are consistent-hashed onto N independent
//! machine shards, one OS thread each; `--shards 1` (the default) is
//! byte-identical to the historic unsharded harness, and the per-tenant
//! export (`--tenants-out`) is byte-identical at **every** shard count
//! for clean closed-loop runs — the shard-count-invariance oracle (see
//! `ARCHITECTURE.md` §8).
//!
//! Flags: `--tenants N` (default 4), `--services N` per tenant (default
//! 2, capped at the 3 service kinds), `--requests N` per (tenant,
//! service) per run (default 12), `--seed S`, `--mode open|closed|both`
//! (default both), `--shards N` (default 1), `--no-switchless`,
//! `--replay` (the macro-op replay cache — byte-invisible in every
//! export, host wall-clock only), plus the
//! standard `--metrics-out`, `--bench-out`, `--profile-out` and
//! `--trace-out` exports (the traced run is the closed-loop one; shard
//! `k > 0` traces land at `<path>.shard<k>`), and `--tenants-out <path>`
//! for the `ne-tenants/v1` per-tenant export of the last run.
//!
//! `--chaos <spec>` installs a deterministic fault-injection plan per
//! shard (see [`ne_sgx::fault::FaultPlan::parse`]) after warmup: terms
//! joined by `+`, each `kind[:period]` with kinds `aex`, `evict`, `mac`,
//! `crash`, `stall` — e.g. `--chaos aex+evict` or `--chaos crash:11`.
//! The plan's RNG is derived from `--seed` (and, above shard 0, the
//! shard id), so a chaos run is exactly as reproducible as a clean one:
//! same flags, byte-identical exports. The run then asserts
//! reply-or-shed (`completed + shed == accepted`) and the metrics
//! identities instead of zero-loss.
//!
//! `--timeline-out <path>` writes the `ne-obs/v1` windowed timeline of
//! the last run (per-window counter deltas, latency histograms, SLO
//! burn-rate states, chaos injections joined with recovery events, and
//! correlated incident reports — all on simulated cycles, so the bytes
//! are seed-deterministic); `--window <cycles>` sets the window length
//! (default 2,000,000) and `--dash` replays the timeline as a text
//! dashboard after the run summary.
//!
//! `--migrate <tenant>@<trigger>` runs one **segmented** closed-loop
//! scenario with a live migration at the mid-run barrier (shards are
//! forced to at least 2). Triggers: `planned` moves that tenant to the
//! next shard; `epc` arms the EPC low-water evacuation policy (the
//! largest tenant per pressured shard moves — the named tenant is the
//! one the summary highlights); `chaos[:period]` injects seeded
//! migration requests through the fault plan (composable with
//! `--chaos`). The run prints the usual per-tenant table, one line per
//! migration record, and a final `dropped=<n>` line that is asserted to
//! be `dropped=0` — the zero-dropped-requests invariant. Everything is
//! a simulation fact, so the report and the `--tenants-out` /
//! `--timeline-out` exports are byte-identical across repeats of the
//! same flags.
//!
//! `--connect host:port` switches the harness into **wire client**
//! mode: instead of building a cluster it opens one TCP connection per
//! (tenant, service) pair to a running `ne-serve` front door and plays
//! the same seeded request streams over the socket (`--tls` seals every
//! frame in an `ne-tls` record; `--mode` must be `open` or `closed` —
//! the server pins one scenario). The printed report is
//! byte-deterministic: every number in it is a simulation fact carried
//! back in Reply frames, and the per-tenant reply digests match the
//! server's `ne-tenants/v1` export line for line.

use ne_bench::report::{
    banner, f2, flag_str, flag_u64, tenants_out_path, throughput_rps, timeline_out_path,
    want_trace, write_shard_traces, MetricsReport, Table,
};
use ne_cluster::{
    drive, Cluster, ClusterConfig, ClusterReport, MigrationOutcome, MigrationPolicy,
    MigrationRecord, PlannedMove,
};
use ne_host::{RequestFactory, ServiceKind};
use ne_obs::{SamplerConfig, Timeline};

#[derive(Clone)]
struct Plan {
    tenants: usize,
    services: usize,
    requests: usize,
    seed: u64,
    shards: usize,
    switchless: bool,
    chaos: Option<String>,
    reference: bool,
    replay: bool,
}

fn build(plan: &Plan, trace: bool) -> Cluster {
    let mut cfg = ClusterConfig::new(
        drive::standard_specs(plan.tenants, plan.services),
        plan.shards,
    );
    cfg.host.seed = plan.seed;
    cfg.host.switchless = plan.switchless;
    cfg.host.hw.trace_events = trace;
    cfg.host.hw.reference_path = plan.reference;
    cfg.host.replay_cache = plan.replay;
    Cluster::build(cfg).expect("cluster build")
}

fn tenant_table(report: &ClusterReport, shards: usize) -> Table {
    let mut headers = vec![
        "tenant",
        "prio",
        "loaded",
        "accepted",
        "rej_full",
        "rej_shed",
        "completed",
        "shed_req",
        "respawns",
    ];
    // The shard column only appears for actual multi-shard runs, keeping
    // one-shard output byte-identical to the historic harness.
    if shards > 1 {
        headers.push("shard");
    }
    let mut t = Table::new(&headers);
    for g in &report.tenants {
        let r = &g.report;
        let mut row = vec![
            r.name.clone(),
            r.priority.to_string(),
            if r.loaded { "yes" } else { "SHED" }.to_string(),
            r.accepted.to_string(),
            r.rejected_full.to_string(),
            r.rejected_shed.to_string(),
            r.completed.to_string(),
            r.shed_requests.to_string(),
            if r.breaker_open {
                format!("{}!", r.respawns)
            } else {
                r.respawns.to_string()
            },
        ];
        if shards > 1 {
            row.push(g.shard.to_string());
        }
        t.row(&row);
    }
    t
}

/// Runs one scenario on a fresh cluster; returns the per-tenant export
/// and, when traced, the per-shard trace bundles.
fn run(
    label: &str,
    plan: &Plan,
    report: &mut MetricsReport,
    trace: bool,
    obs: Option<SamplerConfig>,
) -> (
    String,
    Option<Vec<ne_sgx::spantree::TraceBundle>>,
    Option<Timeline>,
) {
    let mut cluster = build(plan, trace);
    // Chaos plans are seeded from --seed (salted) at shard 0, exactly the
    // historic harness; higher shards get independent derived streams.
    let chaos = plan
        .chaos
        .as_deref()
        .map(|spec| (spec, plan.seed ^ 0xC4A0_5EED));
    // The sampler only reads the servers, so the observed variants are
    // byte-identical to the plain runs in every pre-existing export.
    let (accepted, timeline) = match (label, obs) {
        ("open-loop", None) => (cluster.run_open_loop(plan.requests, chaos), None),
        ("closed-loop", None) => (cluster.run_closed_loop(plan.requests, chaos), None),
        ("open-loop", Some(cfg)) => match cluster.run_open_loop_observed(plan.requests, chaos, cfg)
        {
            Ok((a, t)) => (Ok(a), Some(t)),
            Err(e) => (Err(e), None),
        },
        ("closed-loop", Some(cfg)) => {
            match cluster.run_closed_loop_observed(plan.requests, chaos, cfg) {
                Ok((a, t)) => (Ok(a), Some(t)),
                Err(e) => (Err(e), None),
            }
        }
        (other, _) => unreachable!("unknown run label {other}"),
    };
    let accepted = accepted.unwrap_or_else(|e| panic!("--chaos: {e}"));
    let hr = cluster.report();
    assert_eq!(
        hr.sched.invariant_violations, 0,
        "scheduler invariant violated in {label}"
    );
    // Reply-or-shed: every accepted request terminated, with a reply or
    // an explicit counted shed (zero sheds without chaos).
    assert_eq!(
        hr.completed() + hr.shed_requests(),
        accepted,
        "accepted request lost in {label}"
    );
    // Spot-check every reply against a fresh factory of the same stream,
    // keyed by the tenant's global id.
    let specs = drive::standard_specs(plan.tenants, plan.services);
    for (global, c) in cluster.completions() {
        let f = RequestFactory::new(specs[global].services[c.service], global, plan.seed);
        assert!(
            f.check_reply(&c.reply),
            "bad {label} reply for {}",
            specs[global].name
        );
    }
    let m = cluster
        .merged_metrics()
        .unwrap_or_else(|e| panic!("metrics merge failed in {label}: {e}"));
    m.check()
        .unwrap_or_else(|e| panic!("metrics identity broken in {label}: {e}"));
    let s = cluster.request_histogram().summary();
    let clock = cluster.clock_ghz();
    println!("\n{label}: {accepted} requests served");
    tenant_table(&hr, plan.shards).print();
    if let Some(cs) = cluster.chaos_stats() {
        println!(
            "  chaos: {} eenters seen | {} aex storms, {} forced evictions, {} tamperings, \
             {} crashes, {} stalls -> {} respawns, {} sheds, {} degraded replies",
            cs.eenters_seen,
            cs.aex_storms,
            cs.forced_evictions,
            cs.tamperings,
            cs.crashes,
            cs.stalls,
            hr.respawns(),
            hr.shed_requests(),
            hr.degraded_replies,
        );
    }
    println!(
        "  throughput: {} req/s   latency p50 {} cycles ({} us)  p99 {} cycles ({} us)\n  \
         dispatches {} (home {}, steals {}), max backlog {}",
        f2(throughput_rps(&m).unwrap_or(0.0)),
        s.p50,
        f2(s.p50 as f64 / (clock * 1e3)),
        s.p99,
        f2(s.p99 as f64 / (clock * 1e3)),
        hr.sched.dispatched,
        hr.sched.home_dispatches,
        hr.sched.steals,
        hr.sched.max_backlog,
    );
    report.push_run(label, m);
    let export = cluster.tenants_export();
    (export, trace.then(|| cluster.trace_bundles()), timeline)
}

/// What `--migrate <tenant>@<trigger>` asked for.
#[derive(Debug, PartialEq, Eq)]
enum MigrateTrigger {
    Planned,
    Epc,
    Chaos(u64),
}

/// Parses `--migrate <tenant>@<planned|epc|chaos[:period]>`.
///
/// # Errors
///
/// A typed message for malformed specs, out-of-range tenants, and — like
/// the `--chaos` grammar ([`ne_sgx::fault::FaultPlan::parse`]) — a zero
/// chaos period,
/// which would otherwise produce a trigger that can never fire.
fn parse_migrate(spec: &str, tenants: usize) -> Result<(usize, MigrateTrigger), String> {
    let bad = |spec: &str| format!("expected <tenant>@<planned|epc|chaos[:period]>, got '{spec}'");
    let (tenant, trigger) = spec.split_once('@').ok_or_else(|| bad(spec))?;
    let tenant: usize = tenant.parse().map_err(|_| bad(spec))?;
    if tenant >= tenants {
        return Err(format!(
            "names tenant {tenant}, but the run has {tenants} tenants"
        ));
    }
    let trigger = match trigger.split_once(':') {
        None => match trigger {
            "planned" => MigrateTrigger::Planned,
            "epc" => MigrateTrigger::Epc,
            "chaos" => MigrateTrigger::Chaos(5),
            _ => return Err(bad(spec)),
        },
        Some(("chaos", period)) => {
            let period: u64 = period.parse().map_err(|_| bad(spec))?;
            if period == 0 {
                return Err(format!("zero period in migrate trigger '{spec}'"));
            }
            MigrateTrigger::Chaos(period)
        }
        Some(_) => return Err(bad(spec)),
    };
    Ok((tenant, trigger))
}

fn migration_line(r: &MigrationRecord) -> String {
    match &r.outcome {
        MigrationOutcome::Adopted { to, .. } => format!(
            "  barrier {}: tenant {} shard {} -> shard {} ({})",
            r.segment,
            r.global,
            r.from,
            to,
            r.trigger.name()
        ),
        MigrationOutcome::RolledBack { error, .. } => format!(
            "  barrier {}: tenant {} stayed on shard {} ({}, rolled back: {error})",
            r.segment,
            r.global,
            r.from,
            r.trigger.name()
        ),
    }
}

/// Migration mode (`--migrate`): one segmented closed-loop run with a
/// barrier migration mid-run, the per-tenant table, the migration log,
/// and the asserted `dropped=0` line. Exports describe this run.
fn run_migrate(spec: &str, plan: &Plan, obs: Option<SamplerConfig>, dash: bool) {
    let (tenant, trigger) =
        parse_migrate(spec, plan.tenants).unwrap_or_else(|e| panic!("--migrate: {e}"));
    assert!(
        plan.requests >= 2,
        "--migrate needs at least 2 requests per pair (one per segment)"
    );
    let mut plan = plan.clone();
    // Migration needs a destination; a single-shard request is promoted.
    plan.shards = plan.shards.max(2);
    let mut cluster = build(&plan, false);
    // One barrier at the midpoint of the run.
    let first = plan.requests - plan.requests / 2;
    let segments = [first, plan.requests - first];
    let mut policy = MigrationPolicy::default();
    let mut chaos_spec = plan.chaos.clone();
    let highlight = match trigger {
        MigrateTrigger::Planned => {
            let (from, _) = cluster.placement(tenant);
            policy.moves.push(PlannedMove {
                segment: 0,
                global: tenant,
                to_shard: (from + 1) % plan.shards,
            });
            format!("planned move of tenant {tenant} off shard {from}")
        }
        MigrateTrigger::Epc => {
            // Always below the water line: every shard evacuates its
            // largest tenant at the barrier.
            policy.epc_low_water = Some(usize::MAX);
            format!("EPC-pressure evacuation (watching tenant {tenant})")
        }
        MigrateTrigger::Chaos(period) => {
            let term = format!("migrate:{period}");
            chaos_spec = Some(match chaos_spec.take() {
                Some(existing) => format!("{existing}+{term}"),
                None => term.clone(),
            });
            format!("chaos-injected requests ({term}, watching tenant {tenant})")
        }
    };
    banner(&format!(
        "ne-load --migrate: {} tenants x {} services, {} requests per pair ({}+{} around the \
         barrier), seed {}, shards {}, {}{}",
        plan.tenants,
        plan.services,
        plan.requests,
        segments[0],
        segments[1],
        plan.seed,
        plan.shards,
        highlight,
        chaos_spec
            .as_deref()
            .map(|c| format!(", chaos {c}"))
            .unwrap_or_default()
    ));
    let chaos = chaos_spec.as_deref().map(|s| (s, plan.seed ^ 0xC4A0_5EED));
    let (accepted, timeline, log) = match obs {
        None => {
            let (a, log) = cluster
                .run_segmented_closed_loop(&segments, chaos, &policy)
                .unwrap_or_else(|e| panic!("--migrate run failed: {e}"));
            (a, None, log)
        }
        Some(cfg) => {
            let (a, t, log) = cluster
                .run_segmented_closed_loop_observed(&segments, chaos, &policy, cfg)
                .unwrap_or_else(|e| panic!("--migrate run failed: {e}"));
            (a, Some(t), log)
        }
    };
    let hr = cluster.report();
    assert_eq!(
        hr.sched.invariant_violations, 0,
        "scheduler invariant violated"
    );
    println!("\nsegmented closed-loop: {accepted} requests served");
    tenant_table(&hr, plan.shards).print();
    println!("\nmigrations: {}", log.len());
    for r in &log {
        println!("{}", migration_line(r));
    }
    for r in &log {
        let (shard, _) = cluster.placement(r.global);
        println!(
            "  tenant {} now on shard {} (seal floor {})",
            r.global,
            shard,
            cluster.seal_floor(r.global)
        );
    }
    // The headline invariant: every accepted request terminated with a
    // reply or an explicit counted shed — migration dropped nothing.
    let dropped = accepted - hr.completed() - hr.shed_requests();
    println!("dropped={dropped}");
    assert_eq!(dropped, 0, "migration dropped an accepted request");
    if let Some(path) = tenants_out_path() {
        let payload = cluster.tenants_export();
        std::fs::write(&path, &payload)
            .unwrap_or_else(|e| panic!("cannot write tenants export to {}: {e}", path.display()));
        println!("\ntenants export: wrote {}", path.display());
    }
    if let Some(t) = &timeline {
        if dash {
            println!();
            print!("{}", ne_obs::dash::render(t, "ne-load-migrate"));
        }
        if let Some(path) = timeline_out_path() {
            std::fs::write(&path, ne_obs::to_jsonl(t, "ne-load-migrate")).unwrap_or_else(|e| {
                panic!("cannot write timeline export to {}: {e}", path.display())
            });
            println!("\ntimeline export: wrote {}", path.display());
        }
    }
}

/// Wire-client mode (`--connect`): replay the seeded streams against a
/// running `ne-serve` front door and print the deterministic report.
fn run_connect(addr: String) {
    let mode = match flag_str("--mode").as_deref().unwrap_or("closed") {
        "closed" => ne_serve::Mode::Closed,
        "open" => ne_serve::Mode::Open,
        other => panic!("--connect runs one scenario; --mode expects open|closed, got '{other}'"),
    };
    let cfg = ne_serve::ClientConfig {
        addr,
        tenants: flag_u64("--tenants").unwrap_or(4) as usize,
        services: (flag_u64("--services").unwrap_or(2) as usize).min(ServiceKind::ALL.len()),
        requests: flag_u64("--requests").unwrap_or(12) as usize,
        seed: flag_u64("--seed").unwrap_or(0xC0FFEE),
        mode,
        tls: std::env::args().any(|a| a == "--tls"),
        read_timeout: std::time::Duration::from_millis(
            flag_u64("--read-timeout-ms").unwrap_or(30_000),
        ),
    };
    let report = ne_serve::LoadClient::new(cfg).run();
    print!("{}", report.render());
    if report.pairs.iter().any(|p| p.error.is_some()) {
        std::process::exit(1);
    }
}

fn main() {
    if let Some(addr) = flag_str("--connect") {
        run_connect(addr);
        return;
    }
    let plan = Plan {
        tenants: flag_u64("--tenants").unwrap_or(4) as usize,
        services: (flag_u64("--services").unwrap_or(2) as usize).min(ServiceKind::ALL.len()),
        requests: flag_u64("--requests").unwrap_or(12) as usize,
        seed: flag_u64("--seed").unwrap_or(0xC0FFEE),
        shards: (flag_u64("--shards").unwrap_or(1) as usize).max(1),
        switchless: !std::env::args().any(|a| a == "--no-switchless"),
        chaos: flag_str("--chaos"),
        reference: std::env::args().any(|a| a == "--reference"),
        // The macro-op replay cache is byte-invisible in every export
        // (the replay differential oracle); the flag only changes host
        // wall-clock, exactly like --reference in the other direction.
        replay: std::env::args().any(|a| a == "--replay"),
    };
    // `--reference` means the naive forms of every optimized hot path: the
    // simulator's memory pipeline (via `HwConfig::reference_path`) and the
    // bit/byte-wise crypto primitives. Outputs are identical either way.
    ne_crypto::set_reference_impl(plan.reference);
    if let Some(spec) = flag_str("--migrate") {
        let dash = std::env::args().any(|a| a == "--dash");
        let obs = (dash || timeline_out_path().is_some()).then(|| SamplerConfig {
            window_cycles: flag_u64("--window").unwrap_or(2_000_000).max(1),
            ..SamplerConfig::default()
        });
        run_migrate(&spec, &plan, obs, dash);
        return;
    }
    let mode = flag_str("--mode").unwrap_or_else(|| "both".to_string());
    let (open, closed) = match mode.as_str() {
        "open" => (true, false),
        "closed" => (false, true),
        "both" => (true, true),
        other => panic!("--mode expects open|closed|both, got '{other}'"),
    };
    banner(&format!(
        "ne-load: {} tenants x {} services, {} requests per pair, seed {}, switchless {}{}{}",
        plan.tenants,
        plan.services,
        plan.requests,
        plan.seed,
        plan.switchless,
        // Only announced when actually sharded, so one-shard stdout stays
        // byte-identical to the pre-cluster harness.
        if plan.shards > 1 {
            format!(", shards {}", plan.shards)
        } else {
            String::new()
        },
        plan.chaos
            .as_deref()
            .map(|c| format!(", chaos {c}"))
            .unwrap_or_default()
    ));
    let dash = std::env::args().any(|a| a == "--dash");
    // The observability plane rides along only when asked for — the
    // plain runs stay exactly the historic code path.
    let obs = (dash || timeline_out_path().is_some()).then(|| SamplerConfig {
        window_cycles: flag_u64("--window").unwrap_or(2_000_000).max(1),
        ..SamplerConfig::default()
    });
    let mut report = MetricsReport::new("ne-load");
    let mut bundles = None;
    let mut export = None;
    let mut timeline = None;
    let mut timeline_label = "";
    if open {
        let (e, _, t) = run("open-loop", &plan, &mut report, false, obs);
        export = Some(e);
        if t.is_some() {
            timeline = t;
            timeline_label = "open-loop";
        }
    }
    if closed {
        // The traced run: the closed loop has the cleanest span structure
        // (no overlapping idle-advance from future arrivals).
        let (e, b, t) = run("closed-loop", &plan, &mut report, want_trace(), obs);
        export = Some(e);
        bundles = b;
        if t.is_some() {
            timeline = t;
            timeline_label = "closed-loop";
        }
    }
    if want_trace() {
        write_shard_traces(bundles.as_deref().unwrap_or(&[]));
    }
    if let Some(path) = tenants_out_path() {
        let payload = export.expect("at least one run when --tenants-out is given");
        std::fs::write(&path, &payload)
            .unwrap_or_else(|e| panic!("cannot write tenants export to {}: {e}", path.display()));
        println!("\ntenants export: wrote {}", path.display());
    }
    // Like --tenants-out, the timeline describes the *last* run.
    if let Some(t) = &timeline {
        let label = format!("ne-load-{timeline_label}");
        if dash {
            println!();
            print!("{}", ne_obs::dash::render(t, &label));
        }
        if let Some(path) = timeline_out_path() {
            std::fs::write(&path, ne_obs::to_jsonl(t, &label)).unwrap_or_else(|e| {
                panic!("cannot write timeline export to {}: {e}", path.display())
            });
            println!("\ntimeline export: wrote {}", path.display());
        }
    }
    report.finish();
}

#[cfg(test)]
mod tests {
    use super::{parse_migrate, MigrateTrigger};
    use ne_sgx::fault::FaultPlan;

    #[test]
    fn migrate_grammar_parses_every_trigger() {
        assert_eq!(
            parse_migrate("0@planned", 2),
            Ok((0, MigrateTrigger::Planned))
        );
        assert_eq!(parse_migrate("1@epc", 2), Ok((1, MigrateTrigger::Epc)));
        assert_eq!(
            parse_migrate("0@chaos", 2),
            Ok((0, MigrateTrigger::Chaos(5)))
        );
        assert_eq!(
            parse_migrate("0@chaos:3", 2),
            Ok((0, MigrateTrigger::Chaos(3)))
        );
    }

    /// `chaos:0` is a trigger that can never fire; it must be a typed
    /// parse error, not a silently-dead migration request.
    #[test]
    fn migrate_grammar_rejects_zero_period() {
        let err = parse_migrate("0@chaos:0", 2).unwrap_err();
        assert!(err.contains("zero period"), "got: {err}");
    }

    #[test]
    fn migrate_grammar_rejects_malformed_specs() {
        for spec in [
            "",
            "0",
            "@planned",
            "x@planned",
            "0@",
            "0@chaos:x",
            "0@epc:1",
        ] {
            assert!(parse_migrate(spec, 2).is_err(), "accepted '{spec}'");
        }
        // Out-of-range tenants are named in the error, not asserted on.
        let err = parse_migrate("2@planned", 2).unwrap_err();
        assert!(err.contains("2 tenants"), "got: {err}");
    }

    /// The `--chaos` grammar shares the zero-period rule: `aex:0` must
    /// stay a typed error too (the authoritative test lives with
    /// `FaultPlan`; this pins the CLI-visible contract).
    #[test]
    fn chaos_grammar_rejects_zero_period() {
        let err = FaultPlan::parse("aex:0", 1).unwrap_err();
        assert!(err.contains("zero period"), "got: {err}");
    }
}
