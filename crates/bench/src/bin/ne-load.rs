//! **ne-load** — the load-generator harness for the `ne-host`
//! multi-tenant hosting server.
//!
//! Where the figure/table binaries measure single calls, this one drives
//! **sustained traffic** through the full admission → scheduler →
//! ecall → n_ecall → reply chain and reports end-to-end request latency
//! (p50/p99) and throughput. Two arrival processes run, each against a
//! freshly built server:
//!
//! * **open-loop** — Poisson arrivals (exponential inter-arrival times
//!   from the seeded RNG) offered regardless of completion; overload
//!   surfaces as backpressure rejections, never queue growth;
//! * **closed-loop** — one client per (tenant, service) pair that submits
//!   its next request the moment the previous one completes, the classic
//!   latency-oriented harness.
//!
//! Everything is deterministic under `--seed`: the arrival schedule, the
//! request payloads, and the per-tenant models/datasets, so two runs with
//! the same flags export byte-identical `ne-bench/v1` baselines.
//!
//! Flags: `--tenants N` (default 4), `--services N` per tenant (default
//! 2, capped at the 3 service kinds), `--requests N` per (tenant,
//! service) per run (default 12), `--seed S`, `--mode open|closed|both`
//! (default both), `--no-switchless`, plus the standard `--metrics-out`,
//! `--bench-out`, `--profile-out` and `--trace-out` exports (the traced
//! run is the closed-loop one).
//!
//! `--chaos <spec>` installs a deterministic fault-injection plan
//! (see [`ne_sgx::fault::FaultPlan::parse`]) after warmup: terms joined
//! by `+`, each `kind[:period]` with kinds `aex`, `evict`, `mac`,
//! `crash`, `stall` — e.g. `--chaos aex+evict` or `--chaos crash:11`.
//! The plan's RNG is derived from `--seed`, so a chaos run is exactly as
//! reproducible as a clean one: same flags, byte-identical exports. The
//! run then asserts reply-or-shed (`completed + shed == accepted`) and
//! the metrics identities instead of zero-loss.

use ne_bench::report::{
    banner, f2, flag_str, flag_u64, throughput_rps, want_trace, write_trace, MetricsReport, Table,
};
use ne_host::{HostConfig, HostServer, RequestFactory, ServiceKind, TenantSpec};
use ne_sgx::fault::FaultPlan;
use ne_sgx::profile::ProfileEvent;
use ne_sgx::spantree::TraceBundle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Mean inter-arrival gap of the open-loop Poisson process, in cycles
/// across all tenants. Roughly 70% utilization of three serving cores at
/// the mixed-service cost, so the open-loop run is busy but not saturated.
const MEAN_GAP_CYCLES: f64 = 120_000.0;

#[derive(Clone)]
struct Plan {
    tenants: usize,
    services: usize,
    requests: usize,
    seed: u64,
    switchless: bool,
    chaos: Option<String>,
    reference: bool,
}

fn specs(plan: &Plan) -> Vec<TenantSpec> {
    (0..plan.tenants)
        .map(|i| {
            let kinds: Vec<ServiceKind> = (0..plan.services)
                .map(|s| ServiceKind::ALL[s % ServiceKind::ALL.len()])
                .collect();
            TenantSpec::new(&format!("tenant{i}"), (plan.tenants - i) as u8, kinds)
        })
        .collect()
}

fn build(plan: &Plan, trace: bool) -> HostServer {
    let mut cfg = HostConfig::new(specs(plan));
    cfg.seed = plan.seed;
    cfg.switchless = plan.switchless;
    cfg.hw.trace_events = trace;
    cfg.hw.reference_path = plan.reference;
    HostServer::build(cfg).expect("host build")
}

fn factories(plan: &Plan) -> Vec<Vec<RequestFactory>> {
    specs(plan)
        .iter()
        .enumerate()
        .map(|(t, spec)| {
            spec.services
                .iter()
                .map(|&k| RequestFactory::new(k, t, plan.seed))
                .collect()
        })
        .collect()
}

/// Serves every provisioning request (db schema + pre-loads; at least one
/// request per service to warm the paths), drains, and resets the
/// measurement window so the measured runs see only steady-state work.
fn warmup(server: &mut HostServer, factories: &mut [Vec<RequestFactory>]) {
    for (t, tenant_factories) in factories.iter_mut().enumerate() {
        if server.tenants()[t].shed {
            continue;
        }
        for (s, factory) in tenant_factories.iter_mut().enumerate() {
            for _ in 0..factory.setup_requests().max(1) {
                let payload = factory.next_request();
                assert!(
                    server.submit(t, s, server.now(), payload).is_accepted(),
                    "warmup request rejected (queue bound too small for setup?)"
                );
                // Serve as we go so setup never trips the queue bound.
                server.step().expect("warmup step");
            }
        }
    }
    server.drain().expect("warmup drain");
    server.reset_measurement();
}

/// Offered-load run: a pre-generated Poisson arrival schedule is submitted
/// on time regardless of completions; full queues reject (backpressure).
fn open_loop(server: &mut HostServer, factories: &mut [Vec<RequestFactory>], plan: &Plan) -> u64 {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0x5EED_AD11);
    let pairs: Vec<(usize, usize)> = (0..plan.tenants)
        .flat_map(|t| (0..factories[t].len()).map(move |s| (t, s)))
        .collect();
    let mut schedule = Vec::with_capacity(plan.requests * pairs.len());
    let mut at = 0u64;
    for i in 0..plan.requests * pairs.len() {
        let u: f64 = rng.gen_range(0.0..1.0);
        at += (-(1.0 - u).ln() * MEAN_GAP_CYCLES) as u64;
        let (t, s) = pairs[i % pairs.len()];
        schedule.push((t, s, at));
    }
    let mut accepted = 0u64;
    let mut i = 0;
    while i < schedule.len() || server.pending() > 0 {
        // Submit everything that has arrived by the serving clock; when
        // the server is idle, jump to the next arrival.
        while i < schedule.len() && (schedule[i].2 <= server.now() || server.pending() == 0) {
            let (t, s, at) = schedule[i];
            i += 1;
            let payload = factories[t][s].next_request();
            if server.submit(t, s, at, payload).is_accepted() {
                accepted += 1;
            }
        }
        if server.pending() > 0 {
            server.step().expect("open-loop step");
        }
    }
    accepted
}

/// Think-time-free closed loop: one client per (tenant, service); each
/// submits its next request at the completion time of its previous one.
fn closed_loop(server: &mut HostServer, factories: &mut [Vec<RequestFactory>], plan: &Plan) -> u64 {
    let mut remaining: Vec<Vec<usize>> = factories
        .iter()
        .enumerate()
        .map(|(t, fs)| {
            let n = if server.tenants()[t].shed {
                0
            } else {
                plan.requests
            };
            vec![n; fs.len()]
        })
        .collect();
    let mut accepted = 0u64;
    for t in 0..factories.len() {
        for s in 0..factories[t].len() {
            if remaining[t][s] > 0 {
                remaining[t][s] -= 1;
                let payload = factories[t][s].next_request();
                if server.submit(t, s, 0, payload).is_accepted() {
                    accepted += 1;
                } else {
                    // Shed (e.g. a tripped breaker under chaos): this
                    // client stops; reply-or-shed still holds.
                    remaining[t][s] = 0;
                }
            }
        }
    }
    // A `None` step under chaos means a request was shed, not that the
    // queues are dry — keep stepping until pending work is gone.
    while server.pending() > 0 {
        let Some(c) = server.step().expect("closed-loop step") else {
            continue;
        };
        if remaining[c.tenant][c.service] > 0 {
            remaining[c.tenant][c.service] -= 1;
            let payload = factories[c.tenant][c.service].next_request();
            if server
                .submit(c.tenant, c.service, c.end, payload)
                .is_accepted()
            {
                accepted += 1;
            } else {
                remaining[c.tenant][c.service] = 0;
            }
        }
    }
    accepted
}

fn tenant_table(server: &HostServer) -> Table {
    let mut t = Table::new(&[
        "tenant",
        "prio",
        "loaded",
        "accepted",
        "rej_full",
        "rej_shed",
        "completed",
        "shed_req",
        "respawns",
    ]);
    for r in server.report().tenants {
        t.row(&[
            r.name,
            r.priority.to_string(),
            if r.loaded { "yes" } else { "SHED" }.to_string(),
            r.accepted.to_string(),
            r.rejected_full.to_string(),
            r.rejected_shed.to_string(),
            r.completed.to_string(),
            r.shed_requests.to_string(),
            if r.breaker_open {
                format!("{}!", r.respawns)
            } else {
                r.respawns.to_string()
            },
        ]);
    }
    t
}

fn run(label: &str, plan: &Plan, report: &mut MetricsReport, trace: bool) -> Option<TraceBundle> {
    let mut server = build(plan, trace);
    let mut fs = factories(plan);
    warmup(&mut server, &mut fs);
    if let Some(spec) = &plan.chaos {
        // Installed after warmup so the fault clock starts with the
        // measured window; seeded from --seed for byte reproducibility.
        let fp = FaultPlan::parse(spec, plan.seed ^ 0xC4A0_5EED)
            .unwrap_or_else(|e| panic!("--chaos: {e}"));
        server.install_chaos(fp);
    }
    let accepted = match label {
        "open-loop" => open_loop(&mut server, &mut fs, plan),
        "closed-loop" => closed_loop(&mut server, &mut fs, plan),
        other => unreachable!("unknown run label {other}"),
    };
    let hr = server.report();
    assert_eq!(
        hr.sched.invariant_violations, 0,
        "scheduler invariant violated in {label}"
    );
    // Reply-or-shed: every accepted request terminated, with a reply or
    // an explicit counted shed (zero sheds without chaos).
    assert_eq!(
        hr.completed() + hr.shed_requests(),
        accepted,
        "accepted request lost in {label}"
    );
    // Spot-check every reply against a fresh factory of the same stream.
    for c in server.completions() {
        let spec = &server.tenants()[c.tenant].spec;
        let f = RequestFactory::new(spec.services[c.service], c.tenant, plan.seed);
        assert!(
            f.check_reply(&c.reply),
            "bad {label} reply for {}",
            spec.name
        );
    }
    let m = server.app.machine.metrics();
    m.check()
        .unwrap_or_else(|e| panic!("metrics identity broken in {label}: {e}"));
    let hist = server.app.machine.profile().merged(ProfileEvent::Request);
    let s = hist.summary();
    let clock = plan_clock(&server);
    println!("\n{label}: {accepted} requests served");
    tenant_table(&server).print();
    if let Some(cs) = server.chaos_stats() {
        println!(
            "  chaos: {} eenters seen | {} aex storms, {} forced evictions, {} tamperings, \
             {} crashes, {} stalls -> {} respawns, {} sheds, {} degraded replies",
            cs.eenters_seen,
            cs.aex_storms,
            cs.forced_evictions,
            cs.tamperings,
            cs.crashes,
            cs.stalls,
            hr.respawns(),
            hr.shed_requests(),
            hr.degraded_replies,
        );
    }
    println!(
        "  throughput: {} req/s   latency p50 {} cycles ({} us)  p99 {} cycles ({} us)\n  \
         dispatches {} (home {}, steals {}), max backlog {}",
        f2(throughput_rps(&m).unwrap_or(0.0)),
        s.p50,
        f2(s.p50 as f64 / (clock * 1e3)),
        s.p99,
        f2(s.p99 as f64 / (clock * 1e3)),
        hr.sched.dispatched,
        hr.sched.home_dispatches,
        hr.sched.steals,
        hr.sched.max_backlog,
    );
    report.push_run(label, m);
    trace.then(|| TraceBundle::capture(&server.app.machine))
}

fn plan_clock(server: &HostServer) -> f64 {
    server.app.machine.config().cost.clock_ghz
}

fn main() {
    let plan = Plan {
        tenants: flag_u64("--tenants").unwrap_or(4) as usize,
        services: (flag_u64("--services").unwrap_or(2) as usize).min(ServiceKind::ALL.len()),
        requests: flag_u64("--requests").unwrap_or(12) as usize,
        seed: flag_u64("--seed").unwrap_or(0xC0FFEE),
        switchless: !std::env::args().any(|a| a == "--no-switchless"),
        chaos: flag_str("--chaos"),
        reference: std::env::args().any(|a| a == "--reference"),
    };
    // `--reference` means the naive forms of every optimized hot path: the
    // simulator's memory pipeline (via `HwConfig::reference_path`) and the
    // bit/byte-wise crypto primitives. Outputs are identical either way.
    ne_crypto::set_reference_impl(plan.reference);
    let mode = flag_str("--mode").unwrap_or_else(|| "both".to_string());
    let (open, closed) = match mode.as_str() {
        "open" => (true, false),
        "closed" => (false, true),
        "both" => (true, true),
        other => panic!("--mode expects open|closed|both, got '{other}'"),
    };
    banner(&format!(
        "ne-load: {} tenants x {} services, {} requests per pair, seed {}, switchless {}{}",
        plan.tenants,
        plan.services,
        plan.requests,
        plan.seed,
        plan.switchless,
        plan.chaos
            .as_deref()
            .map(|c| format!(", chaos {c}"))
            .unwrap_or_default()
    ));
    let mut report = MetricsReport::new("ne-load");
    let mut bundle = None;
    if open {
        run("open-loop", &plan, &mut report, false);
    }
    if closed {
        // The traced run: the closed loop has the cleanest span structure
        // (no overlapping idle-advance from future arrivals).
        bundle = run("closed-loop", &plan, &mut report, want_trace());
    }
    if want_trace() {
        write_trace(bundle.as_ref());
    }
    report.finish();
}
